"""Fig. 8 — system cost of tree trimming.

Paper series: trimming saves 34.2% / 43.0% of inter-device communication
rounds per epoch (supervised, Facebook / LastFM) and 27.3% / 36.8%
(unsupervised); it saves 13.3% / 36.4% of the per-epoch training time
(supervised) and 10.3% / 10.9% (unsupervised).
"""

from __future__ import annotations

import pytest

from repro.eval.figures import figure8


@pytest.mark.benchmark(group="fig8-system-cost")
def test_fig8_system_cost(benchmark, scale):
    """Regenerate the communication-round and epoch-time comparison."""
    result = benchmark.pedantic(lambda: figure8(scale=scale, verbose=True), rounds=1, iterations=1)
    for key, values in result.items():
        # Trimming always reduces communication and the straggler-bound time.
        assert values["rounds_with_trimming"] < values["rounds_without_trimming"], key
        assert values["epoch_time_with_trimming"] < values["epoch_time_without_trimming"], key
        # Savings land in a sane band around the paper's 10-45%.
        assert 5.0 <= values["rounds_saving_percent"] <= 70.0, key
        assert 2.0 <= values["time_saving_percent"] <= 70.0, key
