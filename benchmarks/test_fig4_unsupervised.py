"""Fig. 4 — unsupervised link-prediction ROC-AUC.

Paper series: Lumos loses only 3.6-9.1% AUC vs centralized GNN and gains
~20-23% (relative) over Naive FedGNN on both datasets and both backbones.
"""

from __future__ import annotations

import pytest

from repro.eval.figures import figure4


@pytest.mark.benchmark(group="fig4-unsupervised")
@pytest.mark.parametrize("backbone", ["gcn", "gat"])
def test_fig4_link_prediction_auc(benchmark, scale, backbone):
    """Regenerate the Fig. 4 bars for one backbone on both datasets."""
    result = benchmark.pedantic(
        lambda: figure4(scale=scale, backbones=(backbone,), verbose=True),
        rounds=1,
        iterations=1,
    )
    for key, values in result.items():
        assert values["lumos"] > 0.5, key  # clearly better than chance
        assert values["centralized"] >= values["lumos"] - 0.05, key
        assert values["lumos"] >= values["naive_fedgnn"] - 0.10, key
