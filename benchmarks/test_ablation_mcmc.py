"""Design-choice ablation (beyond the paper's figures): greedy vs greedy+MCMC.

DESIGN.md calls out the two-stage balancing as a design choice worth
quantifying: the greedy initialisation alone already removes most of the
imbalance for high-degree hubs, and the MCMC iterations then shave off the
remaining peak.  This bench reports the objective f(X) after each stage.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Assignment, MCMCBalancer, greedy_initialization
from repro.eval.reporting import format_table
from repro.federation import FederatedEnvironment
from repro.graph import load_dataset


@pytest.mark.benchmark(group="ablation-mcmc")
@pytest.mark.parametrize("dataset", ["facebook", "lastfm"])
def test_balancing_stage_contributions(benchmark, scale, dataset):
    """Objective value after no trimming, greedy only, and greedy + MCMC."""
    graph = load_dataset(dataset, seed=scale.seed, num_nodes=scale.num_nodes)

    def run():
        environment = FederatedEnvironment.from_graph(graph, seed=scale.seed)
        untrimmed = Assignment.full(graph).objective()
        greedy = greedy_initialization(environment, rng=np.random.default_rng(scale.seed))
        greedy_objective = greedy.objective()
        balancer = MCMCBalancer(
            environment, iterations=scale.mcmc_iterations, rng=np.random.default_rng(scale.seed)
        )
        mcmc_result = balancer.run(greedy)
        return {
            "untrimmed": untrimmed,
            "greedy": greedy_objective,
            "greedy+mcmc": mcmc_result.final_objective,
            "acceptance_rate": mcmc_result.acceptance_rate,
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n[Ablation] Balancing stages — {dataset}")
    print(
        format_table(
            ["stage", "max workload f(X)"],
            [
                ["no trimming", result["untrimmed"]],
                ["greedy only (Alg. 1)", result["greedy"]],
                ["greedy + MCMC (Alg. 2)", result["greedy+mcmc"]],
            ],
            float_format="{:.0f}",
        )
    )
    assert result["greedy"] <= result["untrimmed"]
    assert result["greedy+mcmc"] <= result["greedy"]
    assert result["greedy+mcmc"] < result["untrimmed"]
