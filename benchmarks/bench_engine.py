"""Micro-benchmark of the staged execution engine.

Times the three things the engine refactor targets and writes the results to
``BENCH_engine.json`` at the repository root, so future PRs have a perf
trajectory to regress against:

* **TreeBatch assembly** — vectorised block assembly vs the generic per-node
  builder;
* **one training epoch** — fast backend (cached transposes, CSR segment
  reductions, fused pooling / constant-input reuse) vs the reference kernels;
* **a 5-point epsilon sweep** — the engine path (shared artifact store, fast
  backend) vs an emulation of the pre-refactor "seed" path (reference
  kernels, no artifact reuse, generic batch assembly, per-epoch
  communication-profile recomputation).

Run with::

    PYTHONPATH=src python benchmarks/bench_engine.py [--nodes 300]
        [--epochs 50] [--mcmc 300] [--repeat 2]

The default scale uses the paper's Facebook MCMC budget (1,000 balancing
iterations, as in ``default_config_for("facebook")``) on a 300-device
synthetic graph with 50 training epochs per sweep point.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np  # noqa: E402

from repro.core import LumosSystem, TreeBasedGNNTrainer, TreeBatch, default_config_for  # noqa: E402
from repro.engine import ArtifactStore  # noqa: E402
from repro.graph import load_dataset, split_nodes  # noqa: E402
from repro.nn.backend import use_backend  # noqa: E402

EPSILONS = (0.5, 1.0, 2.0, 3.0, 4.0)


class _SeedScheduleTrainer(TreeBasedGNNTrainer):
    """Trainer emulating the seed's per-epoch schedule.

    The pre-refactor trainer recomputed the communication profile and tree
    sizes inside every epoch's ledger charge; dropping the caches before each
    charge reproduces that cost, so the baseline timing is a faithful stand-in
    for the pre-engine implementation.
    """

    def _charge_epoch(self, task: str) -> None:
        self._profile_cache.clear()
        self._epoch_charge_cache.clear()
        self._tree_sizes = None
        super()._charge_epoch(task)


def _config(args, epsilon: float = 2.0):
    return (
        default_config_for("facebook")
        .with_mcmc_iterations(args.mcmc)
        .with_epochs(args.epochs)
        .with_epsilon(epsilon)
    )


def _best(fn, repeat: int) -> float:
    return min(fn() for _ in range(repeat))


def bench_treebatch(graph, args) -> dict:
    """Time union-graph assembly: vectorised vs generic per-node path."""
    system = LumosSystem(graph, _config(args), store=ArtifactStore())
    construction = system.construct_trees()
    initialization = system.initialize_embeddings()
    environment = system.environment
    dim = graph.num_features

    def vectorized() -> float:
        start = time.perf_counter()
        TreeBatch._build_vectorized(environment, construction, initialization, dim)
        return time.perf_counter() - start

    def generic() -> float:
        start = time.perf_counter()
        TreeBatch._build_generic(environment, construction, initialization, dim)
        return time.perf_counter() - start

    fast = _best(vectorized, args.repeat + 1)
    slow = _best(generic, args.repeat + 1)
    return {
        "vectorized_seconds": fast,
        "generic_seconds": slow,
        "speedup": slow / fast if fast else float("nan"),
    }


def bench_epoch(graph, split, args) -> dict:
    """Time one steady-state supervised training epoch on each backend.

    Measured as the marginal cost ``(t(E epochs) - t(1 epoch)) / (E - 1)`` so
    one-time setup (model init, constant propagation, prepared matrices) does
    not pollute the per-epoch number.
    """
    epochs = max(args.epochs, 10)
    results = {}
    for backend in ("numpy", "reference"):
        with use_backend(backend):
            system = LumosSystem(graph, _config(args), store=ArtifactStore())
            trainer = system.trainer()

            def run(num_epochs: int) -> float:
                start = time.perf_counter()
                trainer.train_supervised(graph.labels, split, epochs=num_epochs)
                return time.perf_counter() - start

            run(1)  # warm caches (prepared matrices, profiles)
            long = _best(lambda: run(epochs), args.repeat)
            short = _best(lambda: run(1), args.repeat)
            results[f"{backend}_seconds"] = max(long - short, 0.0) / (epochs - 1)
    results["speedup"] = results["reference_seconds"] / results["numpy_seconds"]
    return results


def _sweep_seed_path(graph, split, args) -> float:
    """Emulate the pre-refactor path: reference kernels, no reuse."""
    start = time.perf_counter()
    with use_backend("reference"):
        for epsilon in EPSILONS:
            config = _config(args, epsilon)
            system = LumosSystem(graph, config, store=ArtifactStore())
            construction = system.construct_trees()
            initialization = system.initialize_embeddings()
            batch = TreeBatch._build_generic(
                system.environment, construction, initialization, graph.num_features
            )
            trainer = _SeedScheduleTrainer(
                system.environment, construction, initialization,
                config.trainer, rng=system.rng, batch=batch,
            )
            trainer.train_supervised(graph.labels, split)
    return time.perf_counter() - start


def _sweep_engine(graph, split, args):
    store = ArtifactStore()
    start = time.perf_counter()
    for epsilon in EPSILONS:
        system = LumosSystem(graph, _config(args, epsilon), store=store)
        system.run_supervised(split)
    return time.perf_counter() - start, store


def bench_epsilon_sweep(graph, split, args) -> dict:
    # Interleave the two measurements so CPU-frequency drift during the run
    # biases neither path; report best-of for each.
    seed_seconds = None
    best = None
    store = None
    for _ in range(args.repeat):
        seed_elapsed = _sweep_seed_path(graph, split, args)
        if seed_seconds is None or seed_elapsed < seed_seconds:
            seed_seconds = seed_elapsed
        engine_elapsed, run_store = _sweep_engine(graph, split, args)
        if best is None or engine_elapsed < best:
            best, store = engine_elapsed, run_store
    summary = store.summary()
    return {
        "points": len(EPSILONS),
        "epsilons": list(EPSILONS),
        "seed_path_seconds": seed_seconds,
        "engine_seconds": best,
        "speedup": seed_seconds / best,
        "construction_runs": summary["construction"]["misses"],
        "construction_hits": summary["construction"]["hits"],
        "stage_stats": summary,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=300)
    parser.add_argument("--epochs", type=int, default=50)
    parser.add_argument("--mcmc", type=int, default=1000,
                        help="MCMC balancing iterations (paper default for "
                             "the Facebook graph: 1000)")
    parser.add_argument("--repeat", type=int, default=3,
                        help="timing repetitions (best-of)")
    parser.add_argument("--output", default=None,
                        help="output path (default: <repo>/BENCH_engine.json)")
    args = parser.parse_args(argv)

    graph = load_dataset("facebook", seed=0, num_nodes=args.nodes)
    split = split_nodes(graph, seed=0)

    print(f"[bench_engine] graph: {graph.num_nodes} devices, "
          f"{graph.num_edges} edges, d={graph.num_features}")
    treebatch = bench_treebatch(graph, args)
    print(f"[bench_engine] TreeBatch assembly: vectorized "
          f"{treebatch['vectorized_seconds'] * 1e3:.2f} ms vs generic "
          f"{treebatch['generic_seconds'] * 1e3:.2f} ms "
          f"({treebatch['speedup']:.1f}x)")
    epoch = bench_epoch(graph, split, args)
    print(f"[bench_engine] one epoch: fast {epoch['numpy_seconds'] * 1e3:.2f} ms "
          f"vs reference {epoch['reference_seconds'] * 1e3:.2f} ms "
          f"({epoch['speedup']:.2f}x)")
    sweep = bench_epsilon_sweep(graph, split, args)
    print(f"[bench_engine] epsilon sweep ({sweep['points']} points): engine "
          f"{sweep['engine_seconds']:.2f} s vs seed path "
          f"{sweep['seed_path_seconds']:.2f} s ({sweep['speedup']:.2f}x, "
          f"construction ran {sweep['construction_runs']}x)")

    payload = {
        "scale": {
            "num_nodes": args.nodes,
            "epochs": args.epochs,
            "mcmc_iterations": args.mcmc,
            "repeat": args.repeat,
        },
        "treebatch_assembly": treebatch,
        "training_epoch": epoch,
        "epsilon_sweep": sweep,
    }
    output = Path(args.output) if args.output else Path(__file__).resolve().parents[1] / "BENCH_engine.json"
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"[bench_engine] wrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
