"""Repository shim for the engine micro-benchmark.

The implementation lives in :mod:`repro.bench.engine` (installed as the
``repro-bench`` console script).  Running this shim pins the output path to
the repository root, where ``BENCH_engine.json`` records the perf
trajectory that the regression gate compares against.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench.engine import (  # noqa: E402,F401  (re-exported for tests)
    REGRESSION_TOLERANCE,
    TRACKED_SPEEDUPS,
    bench_parallel_sweep,
    bench_secure_construction,
    bench_tree_maintenance,
    check_trajectory,
    main as _main,
)


def main(argv=None) -> int:
    return _main(argv, default_output=REPO_ROOT / "BENCH_engine.json")


if __name__ == "__main__":
    raise SystemExit(main())
