"""Fig. 6 — ablation study: virtual nodes and tree trimming (accuracy side).

Paper series: removing the virtual nodes costs 7.7-16.4% accuracy / AUC;
removing tree trimming changes accuracy by less than 0.01% (Lumos stays
expressive because every edge is still covered by at least one tree).

The GAT columns of Fig. 6 behave like the GCN ones in the paper; the default
benchmark regenerates the GCN columns (add "gat" to BACKBONES for the full
grid — the code path is identical).
"""

from __future__ import annotations

import pytest

from repro.eval.reporting import format_table
from repro.eval.runner import run_ablation

DATASETS = ("facebook", "lastfm")
BACKBONES = ("gcn",)


@pytest.mark.benchmark(group="fig6-ablation")
@pytest.mark.parametrize("task", ["supervised", "unsupervised"])
def test_fig6_ablation(benchmark, scale, task):
    """Regenerate the ablation bars for one task on both datasets."""

    def run():
        results = {}
        for dataset in DATASETS:
            for backbone in BACKBONES:
                results[f"{dataset}/{backbone}"] = run_ablation(
                    dataset, task=task, backbone=backbone, scale=scale
                )
        return results

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [key, values["lumos"], values["lumos_wo_vn"], values["lumos_wo_tt"]]
        for key, values in result.items()
    ]
    print(f"\n[Fig. 6] Ablation ({task})")
    print(format_table(["dataset/backbone", "Lumos", "Lumos w.o. VN", "Lumos w.o. TT"], rows))

    for key, values in result.items():
        # Virtual nodes are the load-bearing component: dropping them hurts
        # (paper: 7.7-16.4% gap).  The ordering is strict on the Facebook-like
        # graph; the 18-class LastFM stand-in is too small at bench scale for
        # a stable per-class signal, so it only gets a sanity band.
        if key.startswith("facebook"):
            assert values["lumos"] >= values["lumos_wo_vn"] - 0.05, key
        else:
            assert values["lumos"] >= values["lumos_wo_vn"] - 0.30, key
        # Tree trimming barely affects accuracy (well within noise).
        assert abs(values["lumos"] - values["lumos_wo_tt"]) < 0.20, key
