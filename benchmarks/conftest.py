"""Shared configuration of the benchmark harness.

Every benchmark regenerates one figure (or headline claim) of the paper's
evaluation section and prints the corresponding series, so that
``pytest benchmarks/ --benchmark-only`` produces both timing numbers and the
paper-vs-measured tables recorded in EXPERIMENTS.md.

The default scale is intentionally small (synthetic graphs of a few hundred
devices, tens of epochs) so the whole suite completes in minutes on a laptop;
set ``REPRO_BENCH_SCALE=medium`` (or ``paper``) for larger runs.
"""

from __future__ import annotations

import os
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.eval.runner import ExperimentScale  # noqa: E402


def _resolve_scale() -> ExperimentScale:
    name = os.environ.get("REPRO_BENCH_SCALE", "bench")
    if name == "medium":
        return ExperimentScale.medium()
    if name == "paper":
        return ExperimentScale.paper()
    if name == "small":
        return ExperimentScale.small()
    # Benchmark default: small graphs, enough epochs for the orderings to emerge.
    return ExperimentScale(num_nodes=400, epochs=60, mcmc_iterations=100, seed=0)


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    """The experiment scale used by every figure benchmark."""
    return _resolve_scale()
