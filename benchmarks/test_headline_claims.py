"""Headline claims of the abstract.

Paper: "Lumos outperforms the baseline with a 39.48% accuracy increase,
reducing 35.16% of inter-device communication rounds and 17.74% of training
time."  (The accuracy figure is the average over settings; per-setting gains
range from ~33% to ~74%.)
"""

from __future__ import annotations

import pytest

from repro.eval.figures import headline_summary


@pytest.mark.benchmark(group="headline")
def test_headline_claims(benchmark, scale):
    """Regenerate the three headline numbers on the Facebook-like graph."""
    result = benchmark.pedantic(
        lambda: headline_summary(scale=scale, dataset="facebook", verbose=True),
        rounds=1,
        iterations=1,
    )
    # Lumos clearly beats the naive federated baseline (paper: +39% average,
    # +33..74% per setting); the exact factor depends on the synthetic data.
    assert result["accuracy_gain_percent"] > 10.0
    # Tree trimming saves a substantial share of communication and time.
    assert result["communication_rounds_saving_percent"] > 10.0
    assert result["training_time_saving_percent"] > 5.0
