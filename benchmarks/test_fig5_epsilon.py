"""Fig. 5 — sensitivity of Lumos to the privacy budget epsilon.

Paper series: raising epsilon from 0.5 to 4 increases accuracy by ~10-17%
(relative) and AUC by ~17-19%; the curve is monotone and flattens for large
epsilon ("Lumos is robust to variation in large epsilon values").
"""

from __future__ import annotations

import pytest

from repro.eval.figures import figure5

EPSILONS = (0.5, 1.0, 2.0, 4.0)


@pytest.mark.benchmark(group="fig5-epsilon")
def test_fig5_epsilon_sensitivity(benchmark, scale):
    """Regenerate both epsilon sweeps (supervised accuracy, unsupervised AUC)."""
    result = benchmark.pedantic(
        lambda: figure5(scale=scale, epsilons=EPSILONS, verbose=True),
        rounds=1,
        iterations=1,
    )
    for task, per_dataset in result.items():
        for dataset, sweep in per_dataset.items():
            lowest, highest = sweep[EPSILONS[0]], sweep[EPSILONS[-1]]
            # The shape of Fig. 5: more budget never hurts much, and the
            # strictest budget is the worst (or tied) setting.
            assert highest >= lowest - 0.05, (task, dataset)
            assert max(sweep.values()) >= sweep[EPSILONS[0]], (task, dataset)
