"""Fig. 7 — CDF of per-device workload with and without tree trimming.

Paper series: on Facebook the maximal workload drops from >150 to 39, on
LastFM from >100 to 16; the CDF of trimmed workloads has no heavy tail.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.figures import figure7


@pytest.mark.benchmark(group="fig7-workload")
def test_fig7_workload_cdf(benchmark, scale):
    """Regenerate the workload CDF statistics on both datasets."""
    result = benchmark.pedantic(lambda: figure7(scale=scale, verbose=True), rounds=1, iterations=1)
    for dataset, stats in result.items():
        trimmed = np.asarray(stats["workloads_with_trimming"])
        untrimmed = np.asarray(stats["workloads_without_trimming"])
        # The heavy tail disappears: the max workload shrinks by at least 2x
        # and the p99 workload by a large margin.
        assert stats["max_with_trimming"] * 2 <= stats["max_without_trimming"], dataset
        assert np.percentile(trimmed, 99) < np.percentile(untrimmed, 99), dataset
        # Every edge is still represented at least once: the total number of
        # selections cannot drop below the number of edges.
        assert trimmed.sum() >= untrimmed.sum() / 2, dataset
