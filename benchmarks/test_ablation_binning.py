"""Design-choice ablation (beyond the paper's figures): LDP element binning.

Section VI-A argues that sending each neighbour only one *bin* of encoded
elements (with the rest fixed at the neutral symbol) yields lower-variance
recovered features than encoding every element for every neighbour under the
same total budget.  This bench measures the mean-squared error of the two
strategies directly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.crypto import FeatureBinPartitioner, OneBitMechanism
from repro.eval.reporting import format_table


@pytest.mark.benchmark(group="ablation-ldp-binning")
def test_binning_reduces_recovery_error(benchmark, scale):
    """Compare per-message MSE of binned vs full-feature 1-bit encoding."""
    rng = np.random.default_rng(scale.seed)
    dimension, workload, epsilon = 128, 8, 2.0
    features = rng.random((200, dimension))

    def run():
        binned_mechanism = OneBitMechanism(epsilon=epsilon)
        full_mechanism = OneBitMechanism(epsilon=epsilon)
        binned_errors, full_errors = [], []
        for feature in features:
            partitioner = FeatureBinPartitioner(dimension, workload, rng=rng)
            # Binned strategy: per-element budget eps*wl/d, one bin per message.
            recovered = binned_mechanism.encode_and_recover(
                feature, workload=workload, dimension=dimension,
                selected=partitioner.mask_for_bin(0), rng=rng,
            )
            binned_errors.append(np.mean((recovered - feature) ** 2))
            # Full strategy: every element encoded in every message, so the
            # per-element budget is eps/d (workload=1 in our parametrisation).
            recovered_full = full_mechanism.encode_and_recover(
                feature, workload=1, dimension=dimension, rng=rng
            )
            full_errors.append(np.mean((recovered_full - feature) ** 2))
        return {"binned_mse": float(np.mean(binned_errors)), "full_mse": float(np.mean(full_errors))}

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n[Ablation] LDP element binning")
    print(
        format_table(
            ["strategy", "per-message MSE"],
            [["binned (Lumos)", result["binned_mse"]], ["full encoding", result["full_mse"]]],
        )
    )
    # The binned strategy has lower variance per transmitted message.
    assert result["binned_mse"] < result["full_mse"]
