"""Fig. 3 — supervised label-classification accuracy.

Paper series (Facebook / LastFM, GCN & GAT):
Lumos loses ~15-16% accuracy vs centralized GNN, beats LPGNN by ~5-12% and
beats Naive FedGNN by ~33-74% (relative).  This benchmark regenerates the
same four bars per dataset/backbone and asserts the ordering.
"""

from __future__ import annotations

import pytest

from repro.eval.figures import figure3


@pytest.mark.benchmark(group="fig3-supervised")
@pytest.mark.parametrize("backbone", ["gcn", "gat"])
def test_fig3_supervised_accuracy(benchmark, scale, backbone):
    """Regenerate the Fig. 3 bars for one backbone on both datasets."""
    result = benchmark.pedantic(
        lambda: figure3(scale=scale, backbones=(backbone,), verbose=True),
        rounds=1,
        iterations=1,
    )
    for key, values in result.items():
        # Shape of the paper's comparison: centralized is the upper bound,
        # Lumos clearly beats the naive federated baseline, and is at least
        # competitive with LPGNN.  The LastFM stand-in is ~19x smaller than
        # the real graph while keeping its 18 classes, so its absolute
        # accuracies are low and noisy; the facebook rows carry the strict
        # ordering check.
        assert values["centralized"] >= values["lumos"] - 0.05, key
        if key.startswith("facebook"):
            assert values["lumos"] > values["naive_fedgnn"], key
        else:
            assert values["lumos"] >= values["naive_fedgnn"] - 0.10, key
        assert values["lumos"] >= values["lpgnn"] - 0.10, key
