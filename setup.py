"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so the
package can be installed in environments whose pip/setuptools are too old for
PEP 660 editable installs (``pip install -e . --no-use-pep517`` falls back to
``setup.py develop``).
"""

from setuptools import setup

setup()
