"""Tests for the baselines, the metrics and the evaluation harness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    LPGNNConfig,
    NaiveFedGNNConfig,
    perturb_graph,
    train_centralized_supervised,
    train_centralized_unsupervised,
    train_lpgnn_supervised,
    train_naive_fedgnn_supervised,
    train_naive_fedgnn_unsupervised,
)
from repro.eval.metrics import accuracy, confusion_matrix, f1_macro, relative_change, roc_auc_score
from repro.eval.reporting import (
    cdf_series,
    format_table,
    relative_difference_percent,
    relative_savings_percent,
    summarize_comparison,
)
from repro.graph import generate_facebook_like, split_edges, split_nodes


@pytest.fixture(scope="module")
def bench_graph():
    return generate_facebook_like(seed=11, num_nodes=150)


@pytest.fixture(scope="module")
def bench_split(bench_graph):
    return split_nodes(bench_graph, seed=0)


class TestMetrics:
    def test_accuracy(self):
        assert accuracy(np.array([1, 0, 1]), np.array([1, 1, 1])) == pytest.approx(2 / 3)
        assert accuracy(np.array([1, 0]), np.array([1, 1]), mask=np.array([True, False])) == 1.0
        assert accuracy(np.array([]), np.array([])) == 0.0
        with pytest.raises(ValueError):
            accuracy(np.array([1]), np.array([1, 2]))

    def test_roc_auc_perfect_and_random(self):
        targets = np.array([1, 1, 0, 0])
        assert roc_auc_score(targets, np.array([0.9, 0.8, 0.2, 0.1])) == 1.0
        assert roc_auc_score(targets, np.array([0.1, 0.2, 0.8, 0.9])) == 0.0
        assert roc_auc_score(targets, np.array([0.5, 0.5, 0.5, 0.5])) == pytest.approx(0.5)

    def test_roc_auc_handles_ties_and_degenerate_inputs(self):
        targets = np.array([1, 0, 1, 0])
        scores = np.array([0.7, 0.7, 0.3, 0.3])
        assert roc_auc_score(targets, scores) == pytest.approx(0.5)
        assert roc_auc_score(np.ones(3), np.random.default_rng(0).random(3)) == 0.5
        with pytest.raises(ValueError):
            roc_auc_score(np.array([1, 0]), np.array([0.5]))

    def test_roc_auc_matches_probability_interpretation(self):
        rng = np.random.default_rng(0)
        positives = rng.normal(1.0, 1.0, 300)
        negatives = rng.normal(0.0, 1.0, 300)
        scores = np.concatenate([positives, negatives])
        targets = np.concatenate([np.ones(300), np.zeros(300)])
        empirical = np.mean(positives[:, None] > negatives[None, :])
        assert roc_auc_score(targets, scores) == pytest.approx(empirical, abs=1e-6)

    def test_f1_and_confusion_matrix(self):
        targets = np.array([0, 0, 1, 1, 2])
        predictions = np.array([0, 1, 1, 1, 2])
        matrix = confusion_matrix(targets, predictions)
        assert matrix.shape == (3, 3)
        assert matrix[0, 0] == 1 and matrix[0, 1] == 1
        assert 0 < f1_macro(targets, predictions) <= 1.0

    def test_relative_change(self):
        assert relative_change(0.5, 0.75) == pytest.approx(50.0)
        assert relative_change(0.0, 1.0) == 0.0


class TestReporting:
    def test_format_table_alignment(self):
        table = format_table(["name", "value"], [["lumos", 0.75], ["baseline", 0.5]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "lumos" in lines[2] and "0.7500" in lines[2]

    def test_relative_helpers(self):
        assert relative_difference_percent(0.5, 0.6) == pytest.approx(20.0)
        assert relative_savings_percent(100.0, 65.0) == pytest.approx(35.0)
        assert relative_difference_percent(0.0, 1.0) == 0.0
        assert relative_savings_percent(0.0, 1.0) == 0.0

    def test_cdf_series(self):
        series = cdf_series(np.array([1.0, 2.0, 3.0, 4.0]), points=[2.0, 4.0])
        assert series[2.0] == pytest.approx(0.5)
        assert series[4.0] == pytest.approx(1.0)
        assert cdf_series(np.array([])) == {}

    def test_summarize_comparison(self):
        text = summarize_comparison({"lumos": 0.8, "naive": 0.5}, reference_key="naive")
        assert "reference" in text and "+60.0%" in text


class TestCentralizedBaseline:
    def test_supervised_learns_homophilous_graph(self, bench_graph, bench_split):
        result = train_centralized_supervised(bench_graph, bench_split, epochs=40, seed=0)
        assert result.test_accuracy > 0.6
        assert result.losses[-1] < result.losses[0]

    def test_unsupervised_beats_chance(self, bench_graph):
        edge_split = split_edges(bench_graph, seed=0)
        result = train_centralized_unsupervised(bench_graph, edge_split, epochs=30, seed=0)
        assert result.test_auc > 0.55

    def test_requires_labels(self, bench_graph, bench_split):
        from repro.graph import Graph

        unlabeled = Graph(num_nodes=bench_graph.num_nodes, edges=bench_graph.edges,
                          features=bench_graph.features)
        with pytest.raises(ValueError):
            train_centralized_supervised(unlabeled, bench_split, epochs=1)


class TestNaiveFedGNN:
    def test_perturb_graph_changes_everything(self, bench_graph):
        rng = np.random.default_rng(0)
        noisy_graph, noisy_labels = perturb_graph(bench_graph, NaiveFedGNNConfig(), rng)
        assert noisy_graph.num_nodes == bench_graph.num_nodes
        assert not np.allclose(noisy_graph.features, bench_graph.normalized_features().features)
        assert noisy_graph.edge_set() != bench_graph.edge_set()
        assert np.any(noisy_labels != bench_graph.labels)

    def test_perturbation_strength_scales_with_epsilon(self, bench_graph):
        rng_a, rng_b = np.random.default_rng(0), np.random.default_rng(0)
        strong, _ = perturb_graph(bench_graph, NaiveFedGNNConfig(edge_epsilon=0.1), rng_a)
        weak, _ = perturb_graph(bench_graph, NaiveFedGNNConfig(edge_epsilon=6.0), rng_b)
        true_edges = bench_graph.edge_set()
        strong_kept = len(true_edges & strong.edge_set())
        weak_kept = len(true_edges & weak.edge_set())
        assert weak_kept > strong_kept

    def test_supervised_runs_and_underperforms_centralized(self, bench_graph, bench_split):
        central = train_centralized_supervised(bench_graph, bench_split, epochs=40, seed=0)
        naive = train_naive_fedgnn_supervised(bench_graph, bench_split, epochs=40, seed=0)
        assert 0.0 <= naive.test_accuracy <= 1.0
        assert naive.test_accuracy < central.test_accuracy

    def test_unsupervised_runs(self, bench_graph):
        edge_split = split_edges(bench_graph, seed=0)
        result = train_naive_fedgnn_unsupervised(bench_graph, edge_split, epochs=20, seed=0)
        assert 0.0 <= result.test_auc <= 1.0


class TestLPGNN:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            LPGNNConfig(feature_epsilon=0.0)
        with pytest.raises(ValueError):
            LPGNNConfig(kprop_steps=-1)

    def test_supervised_runs_between_naive_and_centralized(self, bench_graph, bench_split):
        central = train_centralized_supervised(bench_graph, bench_split, epochs=40, seed=0)
        lpgnn = train_lpgnn_supervised(bench_graph, bench_split, epochs=40, seed=0)
        naive = train_naive_fedgnn_supervised(bench_graph, bench_split, epochs=40, seed=0)
        assert naive.test_accuracy <= lpgnn.test_accuracy <= central.test_accuracy + 0.05

    def test_feature_encoding_is_lossy_but_denoised(self, bench_graph):
        from repro.baselines.lpgnn import encode_features_lpgnn

        rng = np.random.default_rng(0)
        encoded = encode_features_lpgnn(bench_graph, LPGNNConfig(), rng)
        normalized = bench_graph.normalized_features().features
        assert encoded.shape == normalized.shape
        assert not np.allclose(encoded, normalized)
        # KProp keeps values within the recovery range (finite, bounded).
        assert np.all(np.isfinite(encoded))


class TestExperimentRunner:
    def test_supervised_comparison_orders_methods(self):
        from repro.eval.runner import ExperimentScale, run_supervised_comparison

        scale = ExperimentScale(num_nodes=120, epochs=15, mcmc_iterations=20, seed=0)
        results = run_supervised_comparison("facebook", scale=scale)
        assert set(results) == {"lumos", "centralized", "lpgnn", "naive_fedgnn"}
        assert results["centralized"] >= results["naive_fedgnn"]
        assert results["lumos"] > results["naive_fedgnn"]

    def test_workload_analysis_shows_trimming_effect(self):
        from repro.eval.runner import ExperimentScale, run_workload_analysis

        scale = ExperimentScale(num_nodes=150, epochs=2, mcmc_iterations=40, seed=0)
        analysis = run_workload_analysis("facebook", scale=scale)
        assert analysis["lumos"].max() < analysis["lumos_wo_tt"].max()
        np.testing.assert_array_equal(analysis["lumos_wo_tt"], analysis["degrees"])

    def test_system_cost_shows_savings(self):
        from repro.eval.runner import ExperimentScale, run_system_cost

        scale = ExperimentScale(num_nodes=150, epochs=2, mcmc_iterations=40, seed=0)
        cost = run_system_cost("lastfm", scale=scale)
        assert (
            cost["lumos"]["supervised_rounds_per_device"]
            < cost["lumos_wo_tt"]["supervised_rounds_per_device"]
        )
        assert (
            cost["lumos"]["supervised_epoch_time"]
            < cost["lumos_wo_tt"]["supervised_epoch_time"]
        )

    def test_experiment_scales(self):
        from repro.eval.runner import ExperimentScale

        assert ExperimentScale.small().num_nodes == 300
        assert ExperimentScale.medium().epochs == 150
        assert ExperimentScale.paper().num_nodes is None

    def test_figures_module_jsonable(self):
        from repro.eval.figures import _to_jsonable

        payload = {"a": np.array([1.0, 2.0]), "b": {"c": np.float64(0.5)}, "d": (1, 2)}
        converted = _to_jsonable(payload)
        assert converted == {"a": [1.0, 2.0], "b": {"c": 0.5}, "d": [1, 2]}
