"""Tests for the local differential privacy mechanisms."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import (
    FeatureBinPartitioner,
    FeatureBounds,
    GaussianMechanism,
    OneBitMechanism,
    RandomizedResponse,
)


class TestFeatureBounds:
    def test_properties(self):
        bounds = FeatureBounds(-1.0, 3.0)
        assert bounds.midpoint == pytest.approx(1.0)
        assert bounds.width == pytest.approx(4.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            FeatureBounds(1.0, 1.0)


class TestOneBitMechanism:
    def test_probability_formula_matches_eq26(self):
        mechanism = OneBitMechanism(epsilon=2.0)
        eps_prime = mechanism.per_element_epsilon(workload=4, dimension=8)
        assert eps_prime == pytest.approx(1.0)
        probability = mechanism.probability_one(np.array([0.0, 1.0, 0.5]), eps_prime)
        e = np.e
        np.testing.assert_allclose(
            probability,
            [1 / (e + 1), 1 / (e + 1) + (e - 1) / (e + 1), 1 / (e + 1) + 0.5 * (e - 1) / (e + 1)],
        )

    def test_encode_outputs_bits(self):
        mechanism = OneBitMechanism(epsilon=2.0)
        rng = np.random.default_rng(0)
        encoded = mechanism.encode(np.linspace(0, 1, 50), workload=5, rng=rng)
        assert set(np.unique(encoded)) <= {0.0, 1.0}

    def test_encode_with_selection_mask_uses_neutral_symbol(self):
        mechanism = OneBitMechanism(epsilon=2.0)
        rng = np.random.default_rng(0)
        values = np.linspace(0, 1, 10)
        mask = np.zeros(10, dtype=bool)
        mask[:3] = True
        encoded = mechanism.encode(values, workload=2, selected=mask, rng=rng)
        assert np.all(encoded[~mask] == OneBitMechanism.NEUTRAL)
        assert set(np.unique(encoded[mask])) <= {0.0, 1.0}

    def test_recover_maps_neutral_to_midpoint(self):
        mechanism = OneBitMechanism(epsilon=2.0, bounds=FeatureBounds(0.0, 1.0))
        recovered = mechanism.recover(np.array([0.5, 0.5]), workload=3, dimension=2)
        np.testing.assert_allclose(recovered, [0.5, 0.5])

    def test_recovery_is_unbiased(self):
        """Theorem 3: E[x''] == x for every encoded element."""
        mechanism = OneBitMechanism(epsilon=2.0)
        rng = np.random.default_rng(0)
        true_value = 0.3
        values = np.full(40_000, true_value)
        recovered = mechanism.encode_and_recover(values, workload=4, dimension=8, rng=rng)
        assert recovered.mean() == pytest.approx(true_value, abs=0.02)

    @given(st.floats(0.05, 0.95), st.floats(0.5, 6.0), st.integers(1, 10))
    @settings(max_examples=25, deadline=None)
    def test_unbiasedness_property(self, true_value, epsilon, workload):
        mechanism = OneBitMechanism(epsilon=epsilon)
        eps_prime = mechanism.per_element_epsilon(workload, dimension=workload * 3)
        p1 = mechanism.probability_one(np.array([true_value]), eps_prime)[0]
        recovered_one = mechanism.recover(np.array([1.0]), workload, dimension=workload * 3)[0]
        recovered_zero = mechanism.recover(np.array([0.0]), workload, dimension=workload * 3)[0]
        expectation = p1 * recovered_one + (1 - p1) * recovered_zero
        assert expectation == pytest.approx(true_value, abs=1e-9)

    def test_smaller_epsilon_means_more_noise(self):
        rng = np.random.default_rng(1)
        values = np.full(20_000, 0.8)
        noisy = OneBitMechanism(0.5).encode_and_recover(values, workload=1, rng=np.random.default_rng(1))
        cleaner = OneBitMechanism(8.0).encode_and_recover(values, workload=1, rng=np.random.default_rng(1))
        assert np.var(noisy) > np.var(cleaner)

    def test_ldp_inequality_holds(self):
        """Definition 1: Pr[R(x)=y] <= e^eps Pr[R(x')=y] for the per-element encoder."""
        epsilon = 1.5
        mechanism = OneBitMechanism(epsilon=epsilon)
        # Single element with the whole budget (workload=d so eps' = eps).
        p_x = mechanism.probability_one(np.array([1.0]), epsilon)[0]
        p_xp = mechanism.probability_one(np.array([0.0]), epsilon)[0]
        for a, b in ((p_x, p_xp), (p_xp, p_x), (1 - p_x, 1 - p_xp), (1 - p_xp, 1 - p_x)):
            assert a <= np.exp(epsilon) * b + 1e-12

    def test_validation(self):
        with pytest.raises(ValueError):
            OneBitMechanism(epsilon=0.0)
        mechanism = OneBitMechanism(epsilon=1.0)
        with pytest.raises(ValueError):
            mechanism.per_element_epsilon(0, 5)
        with pytest.raises(ValueError):
            mechanism.encode(np.ones(4), workload=2, selected=np.ones(3, dtype=bool))

    def test_values_outside_bounds_are_clipped(self):
        mechanism = OneBitMechanism(epsilon=2.0)
        probability = mechanism.probability_one(np.array([-5.0, 5.0]), 2.0)
        assert 0.0 <= probability[0] <= probability[1] <= 1.0


class TestFeatureBinPartitioner:
    def test_bins_partition_all_indices(self):
        partitioner = FeatureBinPartitioner(dimension=37, num_bins=5, rng=np.random.default_rng(0))
        union = np.zeros(37, dtype=int)
        for mask in partitioner.masks():
            union += mask.astype(int)
        np.testing.assert_array_equal(union, np.ones(37, dtype=int))

    def test_single_bin_contains_everything(self):
        partitioner = FeatureBinPartitioner(dimension=10, num_bins=1)
        assert partitioner.mask_for_bin(0).all()

    def test_invalid_bin_index(self):
        partitioner = FeatureBinPartitioner(dimension=10, num_bins=2)
        with pytest.raises(ValueError):
            partitioner.mask_for_bin(5)

    def test_validation(self):
        with pytest.raises(ValueError):
            FeatureBinPartitioner(0, 2)
        with pytest.raises(ValueError):
            FeatureBinPartitioner(4, 0)


class TestGaussianMechanism:
    def test_sigma_decreases_with_epsilon(self):
        assert GaussianMechanism(4.0).sigma < GaussianMechanism(0.5).sigma

    def test_noise_distribution(self):
        mechanism = GaussianMechanism(epsilon=1.0, delta=1e-5)
        rng = np.random.default_rng(0)
        noisy = mechanism.randomize(np.zeros(50_000), rng=rng)
        assert abs(noisy.mean()) < 0.05 * mechanism.sigma + 1e-9
        assert abs(noisy.std() - mechanism.sigma) < 0.05 * mechanism.sigma

    def test_validation(self):
        with pytest.raises(ValueError):
            GaussianMechanism(0.0)
        with pytest.raises(ValueError):
            GaussianMechanism(1.0, delta=2.0)


class TestRandomizedResponse:
    def test_keep_probability_formula(self):
        mechanism = RandomizedResponse(epsilon=np.log(3), num_categories=2)
        assert mechanism.keep_probability == pytest.approx(0.75)

    def test_flipped_values_are_valid_categories(self):
        mechanism = RandomizedResponse(epsilon=0.5, num_categories=5)
        rng = np.random.default_rng(0)
        values = rng.integers(5, size=1000)
        noisy = mechanism.randomize(values, rng=rng)
        assert noisy.min() >= 0 and noisy.max() < 5

    def test_empirical_keep_rate(self):
        mechanism = RandomizedResponse(epsilon=1.0, num_categories=4)
        rng = np.random.default_rng(1)
        values = np.zeros(30_000, dtype=int)
        noisy = mechanism.randomize(values, rng=rng)
        assert abs((noisy == 0).mean() - mechanism.keep_probability) < 0.02

    def test_randomize_bits_requires_binary(self):
        with pytest.raises(ValueError):
            RandomizedResponse(1.0, num_categories=3).randomize_bits(np.array([0, 1]))
        noisy = RandomizedResponse(1.0, num_categories=2).randomize_bits(np.array([0, 1, 1]))
        assert set(np.unique(noisy)) <= {0, 1}

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomizedResponse(0.0)
        with pytest.raises(ValueError):
            RandomizedResponse(1.0, num_categories=1)

    @given(st.floats(0.2, 5.0), st.integers(2, 10))
    @settings(max_examples=20, deadline=None)
    def test_keep_probability_satisfies_ldp_bound(self, epsilon, categories):
        mechanism = RandomizedResponse(epsilon, categories)
        p_keep = mechanism.keep_probability
        p_other = (1 - p_keep) / (categories - 1)
        assert p_keep <= np.exp(epsilon) * p_other + 1e-12
