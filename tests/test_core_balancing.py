"""Tests for the greedy initialisation, Alg. 3 and the MCMC balancer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    Assignment,
    MCMCBalancer,
    TreeConstructor,
    TreeConstructorConfig,
    find_max_workload_device,
    greedy_initialization,
)
from repro.crypto import TranscriptAccountant
from repro.federation import FederatedEnvironment
from repro.graph import generate_facebook_like, generate_star


@pytest.fixture()
def star_environment(star_graph):
    return FederatedEnvironment.from_graph(star_graph, seed=0)


@pytest.fixture()
def social_environment(social_graph):
    return FederatedEnvironment.from_graph(social_graph, seed=0)


class TestGreedyInitialization:
    def test_star_center_sheds_its_branches(self, star_graph, star_environment):
        """Alg. 1 on a star: the hub (bucket 2) drops leaves (bucket 0), leaves keep the hub."""
        assignment = greedy_initialization(star_environment, rng=np.random.default_rng(0))
        assert assignment.workload(0) == 0
        assert all(assignment.workload(v) == 1 for v in range(1, star_graph.num_nodes))
        assert assignment.covers_all_edges(star_graph)

    def test_coverage_constraint_always_holds(self, social_graph, social_environment):
        assignment = greedy_initialization(social_environment, rng=np.random.default_rng(0))
        assert assignment.covers_all_edges(social_graph)
        assert assignment.is_consistent_with(social_graph)

    def test_objective_not_worse_than_untrimmed(self, social_graph, social_environment):
        assignment = greedy_initialization(social_environment, rng=np.random.default_rng(0))
        assert assignment.objective() <= Assignment.full(social_graph).objective()

    def test_equal_degree_endpoints_both_keep_the_edge(self):
        graph = generate_star(num_leaves=1)  # a single edge, both endpoints degree 1
        environment = FederatedEnvironment.from_graph(graph, seed=0)
        assignment = greedy_initialization(environment, rng=np.random.default_rng(0))
        assert assignment.workload(0) == 1 and assignment.workload(1) == 1

    def test_transcript_records_comparisons(self, social_environment):
        accountant = TranscriptAccountant()
        greedy_initialization(social_environment, accountant=accountant, rng=np.random.default_rng(0))
        # One secure comparison per directed neighbour relation.
        expected = sum(device.degree for device in social_environment.devices.values())
        assert accountant.comparisons == expected
        assert accountant.bits > 0

    def test_assignment_installed_on_environment(self, social_environment):
        assignment = greedy_initialization(social_environment, rng=np.random.default_rng(0))
        assert social_environment.workloads() == assignment.workloads()


class TestFindMaxWorkloadDevice:
    def test_fast_path_finds_global_maximum(self, social_graph, social_environment):
        assignment = Assignment.full(social_graph)
        chosen = find_max_workload_device(social_environment, assignment)
        assert assignment.workload(chosen) == assignment.objective()

    def test_secure_path_agrees_with_fast_path(self, small_graph):
        from repro.crypto import WorkloadComparisonProtocol

        environment = FederatedEnvironment.from_graph(small_graph, seed=0)
        assignment = Assignment.full(small_graph)
        fast = find_max_workload_device(environment, assignment)
        protocol = WorkloadComparisonProtocol(rng=np.random.default_rng(0))
        secure = find_max_workload_device(
            environment, assignment, protocol=protocol, per_device_ledger=True
        )
        assert assignment.workload(fast) == assignment.workload(secure)

    def test_accountant_charged_analytically(self, social_graph, social_environment):
        assignment = Assignment.full(social_graph)
        accountant = TranscriptAccountant()
        find_max_workload_device(social_environment, assignment, accountant=accountant)
        assert accountant.comparisons >= 2 * social_graph.num_edges


class TestMCMCBalancer:
    def test_objective_never_ends_above_start(self, social_graph, social_environment):
        initial = greedy_initialization(social_environment, rng=np.random.default_rng(0))
        balancer = MCMCBalancer(social_environment, iterations=60, rng=np.random.default_rng(1))
        result = balancer.run(initial)
        assert result.final_objective <= result.initial_objective
        assert result.iterations == 60
        assert len(result.objective_history) == 61

    def test_coverage_preserved_by_every_transition(self, social_graph, social_environment):
        initial = greedy_initialization(social_environment, rng=np.random.default_rng(0))
        balancer = MCMCBalancer(social_environment, iterations=40, rng=np.random.default_rng(2))
        result = balancer.run(initial)
        assert result.assignment.covers_all_edges(social_graph)
        assert result.assignment.is_consistent_with(social_graph)

    def test_balancing_beats_untrimmed_objective(self, social_graph, social_environment):
        initial = greedy_initialization(social_environment, rng=np.random.default_rng(0))
        balancer = MCMCBalancer(social_environment, iterations=80, rng=np.random.default_rng(3))
        result = balancer.run(initial)
        untrimmed = Assignment.full(social_graph).objective()
        assert result.final_objective < untrimmed

    def test_zero_iterations_is_identity(self, social_graph, social_environment):
        initial = greedy_initialization(social_environment, rng=np.random.default_rng(0))
        balancer = MCMCBalancer(social_environment, iterations=0)
        result = balancer.run(initial)
        assert result.assignment.as_lists() == initial.as_lists()
        assert result.acceptance_rate == 0.0

    def test_validation(self, social_environment):
        with pytest.raises(ValueError):
            MCMCBalancer(social_environment, iterations=-1)

    def test_acceptance_rate_bounded(self, social_graph, social_environment):
        initial = greedy_initialization(social_environment, rng=np.random.default_rng(0))
        balancer = MCMCBalancer(social_environment, iterations=30, rng=np.random.default_rng(4))
        result = balancer.run(initial)
        assert 0.0 <= result.acceptance_rate <= 1.0

    def test_secure_mode_matches_objective_semantics(self, star_graph):
        environment = FederatedEnvironment.from_graph(star_graph, seed=0)
        initial = Assignment.full(star_graph)
        balancer = MCMCBalancer(environment, iterations=10, secure=True, rng=np.random.default_rng(0))
        result = balancer.run(initial)
        assert result.assignment.covers_all_edges(star_graph)
        assert result.final_objective <= initial.objective()


class TestTreeConstructor:
    def test_full_pipeline_balances_and_builds_trees(self, social_graph):
        environment = FederatedEnvironment.from_graph(social_graph, seed=0)
        constructor = TreeConstructor(TreeConstructorConfig(mcmc_iterations=60),
                                      rng=np.random.default_rng(0))
        result = constructor.construct(environment)
        assert result.used_tree_trimming and result.used_virtual_nodes
        assert result.assignment.covers_all_edges(social_graph)
        assert result.max_workload() < int(social_graph.degrees().max())
        assert len(result.local_graphs) == social_graph.num_nodes
        # Tree sizes follow 3*wl + 1 (or 1 for empty selections).
        for device_id, graph in result.local_graphs.items():
            workload = result.assignment.workload(device_id)
            assert graph.num_nodes == (1 if workload == 0 else 3 * workload + 1)

    def test_without_trimming_keeps_all_neighbors(self, social_graph):
        environment = FederatedEnvironment.from_graph(social_graph, seed=0)
        constructor = TreeConstructor(TreeConstructorConfig(use_tree_trimming=False),
                                      rng=np.random.default_rng(0))
        result = constructor.construct(environment)
        assert result.mcmc_result is None and result.greedy_assignment is None
        assert result.max_workload() == int(social_graph.degrees().max())

    def test_without_virtual_nodes_builds_stars(self, social_graph):
        environment = FederatedEnvironment.from_graph(social_graph, seed=0)
        constructor = TreeConstructor(
            TreeConstructorConfig(use_virtual_nodes=False, mcmc_iterations=30),
            rng=np.random.default_rng(0),
        )
        result = constructor.construct(environment)
        assert not result.used_virtual_nodes
        for device_id, graph in result.local_graphs.items():
            workload = result.assignment.workload(device_id)
            assert graph.num_nodes == workload + 1

    def test_total_tree_nodes_consistent(self, social_graph):
        environment = FederatedEnvironment.from_graph(social_graph, seed=0)
        constructor = TreeConstructor(TreeConstructorConfig(mcmc_iterations=20),
                                      rng=np.random.default_rng(0))
        result = constructor.construct(environment)
        assert result.total_tree_nodes() == sum(
            graph.num_nodes for graph in result.local_graphs.values()
        )
