"""Integration tests for the privacy guarantees (paper Section VII).

These tests check the *system-level* privacy behaviour rather than the
individual mechanisms: what actually leaves a device during tree construction
and embedding initialisation, and that it matches what Theorems 4 and 5 allow.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    LDPEmbeddingInitializer,
    TreeConstructor,
    TreeConstructorConfig,
    greedy_initialization,
)
from repro.crypto import (
    OneBitMechanism,
    TranscriptAccountant,
    verify_zero_knowledge_transcript,
)
from repro.federation import FederatedEnvironment, MessageKind
from repro.graph import generate_facebook_like


@pytest.fixture(scope="module")
def privacy_graph():
    return generate_facebook_like(seed=21, num_nodes=100).normalized_features(0.0, 1.0)


class TestFeaturePrivacy:
    """Theorem 4: the embedding initialisation protects epsilon-LDP."""

    def test_per_element_budget_composes_to_epsilon(self):
        """d/wl elements per neighbour, each at eps*wl/d, compose to eps."""
        epsilon, dimension, workload = 2.0, 128, 8
        mechanism = OneBitMechanism(epsilon=epsilon)
        per_element = mechanism.per_element_epsilon(workload, dimension)
        elements_per_bin = dimension / workload
        assert per_element * elements_per_bin == pytest.approx(epsilon)

    def test_transmitted_symbols_are_discrete(self, privacy_graph):
        """Only the ternary alphabet {0, 0.5, 1} ever leaves a device."""
        mechanism = OneBitMechanism(epsilon=2.0)
        rng = np.random.default_rng(0)
        feature = privacy_graph.features[0]
        mask = np.zeros(feature.shape[0], dtype=bool)
        mask[::4] = True
        encoded = mechanism.encode(feature, workload=4, selected=mask, rng=rng)
        assert set(np.unique(encoded)) <= {0.0, 0.5, 1.0}

    def test_receivers_cannot_reconstruct_raw_features(self, privacy_graph):
        environment = FederatedEnvironment.from_graph(privacy_graph, seed=0)
        construction = TreeConstructor(
            TreeConstructorConfig(mcmc_iterations=20), rng=np.random.default_rng(0)
        ).construct(environment)
        initializer = LDPEmbeddingInitializer(epsilon=2.0, rng=np.random.default_rng(1))
        initialization = initializer.run(environment, construction.assignment)
        for receiver, per_sender in initialization.received_features.items():
            for sender, received in per_sender.items():
                raw = privacy_graph.features[sender]
                # The received vector is a noisy, partially-neutral estimate,
                # never the raw vector itself.
                assert not np.allclose(received, raw, atol=1e-6)

    def test_smaller_epsilon_gives_larger_recovery_spread(self):
        mechanism_tight = OneBitMechanism(epsilon=0.5)
        mechanism_loose = OneBitMechanism(epsilon=4.0)
        spread_tight = mechanism_tight.recover(np.array([1.0]), workload=1, dimension=16)[0]
        spread_loose = mechanism_loose.recover(np.array([1.0]), workload=1, dimension=16)[0]
        # The recovered "1" symbol sits farther from the midpoint under a
        # tighter budget (higher variance, same mean).
        assert spread_tight > spread_loose


class TestDegreePrivacy:
    """Theorem 5 / Definition 2: degree comparisons are zero-knowledge."""

    def test_greedy_transcript_reveals_only_sizes(self, privacy_graph):
        environment = FederatedEnvironment.from_graph(privacy_graph, seed=0)
        accountant = TranscriptAccountant()
        greedy_initialization(environment, accountant=accountant, rng=np.random.default_rng(0))
        assert verify_zero_knowledge_transcript(accountant)

    def test_ledger_messages_carry_no_degree_payload(self, privacy_graph):
        """Secure-comparison ledger entries record only byte counts."""
        environment = FederatedEnvironment.from_graph(privacy_graph, seed=0)
        greedy_initialization(environment, rng=np.random.default_rng(0))
        degree_values = set(int(d) for d in privacy_graph.degrees())
        for message in environment.ledger.messages:
            if message.kind is MessageKind.SECURE_COMPARISON:
                assert "deg" not in message.description or "comparison" in message.description
                # Message sizes are protocol transcript sizes, orders of
                # magnitude larger than any plausible raw degree encoding.
                assert message.size_bytes > max(degree_values)

    def test_server_only_sees_candidate_ids(self, privacy_graph):
        """Alg. 3: the server learns which devices are candidates, not workloads."""
        from repro.core import Assignment, find_max_workload_device

        environment = FederatedEnvironment.from_graph(privacy_graph, seed=0)
        assignment = Assignment.full(privacy_graph)
        find_max_workload_device(environment, assignment, per_device_ledger=True)
        server_messages = [
            message for message in environment.ledger.messages
            if message.kind is MessageKind.SERVER_COORDINATION
        ]
        assert server_messages, "Alg. 3 must involve the server"
        assert all(message.size_bytes <= 1 for message in server_messages)

    def test_labels_never_enter_the_ledger(self, privacy_graph):
        """Labels are used locally only (paper §IV-B): no label-bearing messages."""
        environment = FederatedEnvironment.from_graph(privacy_graph, seed=0)
        construction = TreeConstructor(
            TreeConstructorConfig(mcmc_iterations=10), rng=np.random.default_rng(0)
        ).construct(environment)
        initializer = LDPEmbeddingInitializer(epsilon=2.0, rng=np.random.default_rng(1))
        initializer.run(environment, construction.assignment)
        descriptions = {message.description for message in environment.ledger.messages}
        assert all("label" not in description for description in descriptions)
