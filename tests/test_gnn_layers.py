"""Tests for the GCN / GAT layers, encoders, task heads and pooling."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.gnn import (
    EncoderConfig,
    GATLayer,
    GCNLayer,
    GNNEncoder,
    GraphInput,
    LinkPredictor,
    NodeClassifier,
    build_edge_index,
    get_pooling,
    max_pool,
    mean_pool,
    sum_pool,
)
from repro.graph import Graph, generate_small_world, split_nodes
from repro.graph.sparse import symmetric_normalize
from repro.nn import Adam, Tensor, cross_entropy


def path_graph() -> Graph:
    return Graph(
        num_nodes=4,
        edges=np.array([[0, 1], [1, 2], [2, 3]]),
        features=np.eye(4),
        labels=np.array([0, 0, 1, 1]),
    )


class TestGCNLayer:
    def test_output_shape(self):
        graph = path_graph()
        adjacency = symmetric_normalize(graph.adjacency())
        layer = GCNLayer(4, 3, rng=np.random.default_rng(0))
        out = layer(Tensor(graph.features), adjacency)
        assert out.shape == (4, 3)

    def test_identity_adjacency_reduces_to_linear(self):
        layer = GCNLayer(3, 2, rng=np.random.default_rng(0))
        features = Tensor(np.random.default_rng(1).normal(size=(5, 3)))
        identity = sp.eye(5, format="csr")
        out = layer(features, identity)
        expected = features.data @ layer.weight.data + layer.bias.data
        np.testing.assert_allclose(out.data, expected)

    def test_message_passing_mixes_neighbours(self):
        # With one-hot features, a node's output depends on its neighbours.
        graph = path_graph()
        adjacency = symmetric_normalize(graph.adjacency())
        layer = GCNLayer(4, 4, bias=False, rng=np.random.default_rng(0))
        layer.weight.data = np.eye(4)
        out = layer(Tensor(graph.features), adjacency).data
        assert out[1, 0] > 0  # node 1 received mass from node 0
        assert out[3, 0] == pytest.approx(0.0)  # node 3 is two hops from node 0

    def test_gradients_flow_to_weights(self):
        graph = path_graph()
        adjacency = symmetric_normalize(graph.adjacency())
        layer = GCNLayer(4, 2, rng=np.random.default_rng(0))
        out = layer(Tensor(graph.features), adjacency)
        out.sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None

    def test_shape_mismatch_raises(self):
        layer = GCNLayer(4, 2)
        with pytest.raises(ValueError):
            layer(Tensor(np.ones((3, 4))), sp.eye(5, format="csr"))

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            GCNLayer(0, 3)


class TestGATLayer:
    def _edge_index(self, graph: Graph) -> np.ndarray:
        return graph.directed_edge_index(add_self_loops=True)

    def test_output_shape_concat(self):
        graph = path_graph()
        layer = GATLayer(4, 3, num_heads=2, concat_heads=True, rng=np.random.default_rng(0))
        out = layer(Tensor(graph.features), self._edge_index(graph))
        assert out.shape == (4, 6)
        assert layer.output_dim == 6

    def test_output_shape_average(self):
        graph = path_graph()
        layer = GATLayer(4, 3, num_heads=4, concat_heads=False, rng=np.random.default_rng(0))
        out = layer(Tensor(graph.features), self._edge_index(graph))
        assert out.shape == (4, 3)

    def test_isolated_node_with_self_loop_is_finite(self):
        features = Tensor(np.random.default_rng(0).normal(size=(3, 4)))
        edge_index = np.array([[0, 1, 2], [0, 1, 2]])  # only self loops
        layer = GATLayer(4, 2, num_heads=2, rng=np.random.default_rng(1))
        out = layer(features, edge_index)
        assert np.all(np.isfinite(out.data))

    def test_gradients_flow_to_attention_parameters(self):
        graph = path_graph()
        layer = GATLayer(4, 2, num_heads=2, rng=np.random.default_rng(0))
        out = layer(Tensor(graph.features), self._edge_index(graph))
        out.sum().backward()
        assert layer.attention_src.grad is not None
        assert layer.attention_dst.grad is not None
        assert layer.weight.grad is not None

    def test_edge_index_validation(self):
        layer = GATLayer(4, 2)
        with pytest.raises(ValueError):
            layer(Tensor(np.ones((3, 4))), np.ones((3, 3)))

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            GATLayer(4, 2, num_heads=0)


class TestEncodersAndHeads:
    def test_encoder_config_validation(self):
        with pytest.raises(ValueError):
            EncoderConfig(backbone="sage")
        with pytest.raises(ValueError):
            EncoderConfig(num_layers=0)

    @pytest.mark.parametrize("backbone", ["gcn", "gat"])
    def test_encoder_output_dimension(self, backbone):
        graph = path_graph()
        encoder = GNNEncoder(4, EncoderConfig(backbone=backbone, hidden_dim=8, output_dim=6),
                             rng=np.random.default_rng(0))
        out = encoder(Tensor(graph.features), GraphInput.from_graph(graph))
        assert out.shape == (4, 6)

    def test_graph_input_from_adjacency(self):
        graph = path_graph()
        graph_input = GraphInput.from_adjacency(graph.adjacency())
        assert graph_input.num_nodes == 4
        assert graph_input.edge_index.shape[0] == 2

    def test_graph_input_validation(self):
        with pytest.raises(ValueError):
            GraphInput(sp.eye(3, format="csr"), np.ones((3, 2)))

    def test_build_edge_index_self_loops(self):
        graph = path_graph()
        index = build_edge_index(graph.adjacency(), add_self_loops=True)
        assert index.shape[1] == 2 * graph.num_edges + graph.num_nodes

    @pytest.mark.parametrize("backbone", ["gcn", "gat"])
    def test_node_classifier_learns_small_graph(self, backbone):
        from repro.graph import generate_facebook_like

        graph = generate_facebook_like(seed=0, num_nodes=150)
        split = split_nodes(graph, seed=0)
        model = NodeClassifier(graph.num_features, graph.num_classes,
                               EncoderConfig(backbone=backbone), rng=np.random.default_rng(0))
        optimizer = Adam(model.parameters(), lr=0.05)
        graph_input = GraphInput.from_graph(graph)
        tensor = Tensor(graph.features)
        for _ in range(60):
            model.train()
            loss = cross_entropy(model(tensor, graph_input), graph.labels, mask=split.train_mask)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        model.eval()
        predictions = model.predict(tensor, graph_input)
        accuracy = (predictions[split.test_mask] == graph.labels[split.test_mask]).mean()
        assert accuracy > 0.7

    def test_link_predictor_scores_and_probabilities(self):
        graph = path_graph()
        model = LinkPredictor(4, EncoderConfig(), rng=np.random.default_rng(0))
        embeddings = model(Tensor(graph.features), GraphInput.from_graph(graph))
        pairs = np.array([[0, 1], [0, 3]])
        scores = model.score_pairs(embeddings, pairs)
        assert scores.shape == (2,)
        probabilities = model.predict_proba(embeddings, pairs)
        assert np.all((probabilities >= 0) & (probabilities <= 1))


class TestPooling:
    def test_mean_pool(self):
        embeddings = Tensor(np.array([[2.0], [4.0], [10.0]]))
        out = mean_pool(embeddings, np.array([0, 0, 1]), 2)
        np.testing.assert_allclose(out.data, [[3.0], [10.0]])

    def test_sum_pool(self):
        embeddings = Tensor(np.array([[2.0], [4.0], [10.0]]))
        out = sum_pool(embeddings, np.array([0, 0, 1]), 2)
        np.testing.assert_allclose(out.data, [[6.0], [10.0]])

    def test_max_pool_forward_and_backward(self):
        embeddings = Tensor(np.array([[2.0, 1.0], [4.0, 0.5], [10.0, -1.0]]), requires_grad=True)
        out = max_pool(embeddings, np.array([0, 0, 1]), 2)
        np.testing.assert_allclose(out.data, [[4.0, 1.0], [10.0, -1.0]])
        out.sum().backward()
        np.testing.assert_allclose(embeddings.grad, [[0, 1], [1, 0], [1, 1]])

    def test_mean_pool_empty_segment_is_zero(self):
        embeddings = Tensor(np.array([[2.0]]))
        out = mean_pool(embeddings, np.array([1]), 3)
        np.testing.assert_allclose(out.data, [[0.0], [2.0], [0.0]])

    def test_mean_pool_gradient_splits_equally(self):
        embeddings = Tensor(np.ones((4, 2)), requires_grad=True)
        out = mean_pool(embeddings, np.array([0, 0, 0, 1]), 2)
        out.sum().backward()
        np.testing.assert_allclose(embeddings.grad, [[1 / 3] * 2] * 3 + [[1.0] * 2])

    def test_get_pooling_lookup(self):
        assert get_pooling("mean") is mean_pool
        with pytest.raises(KeyError):
            get_pooling("median")
