"""Spill-file integrity: checksums on write, verification + quarantine on read.

``DiskSpillStore`` persists evicted artifacts as ``.npz`` files.  A partial
write (process kill mid-spill), filesystem bit rot, or a stale-format file
from an older revision must never crash the worker that reloads it — the
contract is *miss, quarantine, recompute*:

* every spilled payload carries a SHA-256 checksum, verified before the
  pickle is ever touched;
* an unusable file is renamed to ``*.npz.quarantined`` (kept for
  post-mortem, no longer advertised by ``__contains__``) and counted in
  ``integrity_failures``;
* the key can immediately be re-published by a later eviction.
"""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.engine.store import DiskSpillStore, StoredArtifact


def _spilled(tmp_path, key: str = "stage/key", value=None) -> DiskSpillStore:
    store = DiskSpillStore(tmp_path, max_bytes=1)  # spill on every put
    store.put(key, StoredArtifact(value=np.arange(64) if value is None else value))
    assert store._path_for(key).exists()
    return store


class TestChecksumRoundTrip:
    def test_spilled_file_carries_a_verifiable_checksum(self, tmp_path):
        store = _spilled(tmp_path)
        path = store._path_for("stage/key")
        with np.load(path) as archive:
            assert set(archive.files) >= {"version", "key", "checksum", "payload"}
            assert len(archive["checksum"].tobytes()) == 32
        artifact = store.get("stage/key")
        assert artifact is not None
        assert np.array_equal(artifact.value, np.arange(64))
        assert store.integrity_failures == 0


class TestTruncatedFile:
    def test_truncated_npz_is_a_miss_not_a_crash(self, tmp_path):
        store = _spilled(tmp_path)
        path = store._path_for("stage/key")
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])  # deliberate truncation

        assert store.get("stage/key") is None  # miss — caller recomputes
        assert store.integrity_failures == 1
        assert not path.exists()
        assert path.with_name(path.name + ".quarantined").exists()
        # The store stops advertising the key entirely.
        assert "stage/key" not in store

    def test_empty_file_is_a_miss(self, tmp_path):
        store = _spilled(tmp_path)
        path = store._path_for("stage/key")
        path.write_bytes(b"")
        assert store.get("stage/key") is None
        assert store.integrity_failures == 1
        assert path.with_name(path.name + ".quarantined").exists()

    def test_fresh_reader_also_degrades_to_miss(self, tmp_path):
        store = _spilled(tmp_path)
        path = store._path_for("stage/key")
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 3])

        reader = DiskSpillStore(tmp_path, max_bytes=1)
        assert reader.get("stage/key") is None
        assert reader.integrity_failures == 1


class TestTamperedPayload:
    def test_bit_flip_inside_a_valid_zip_fails_the_checksum(self, tmp_path):
        # A torn write is caught by the zip layer; silent corruption inside
        # a structurally valid archive is exactly what the checksum is for.
        store = _spilled(tmp_path)
        path = store._path_for("stage/key")
        with np.load(path) as archive:
            fields = {name: archive[name].copy() for name in archive.files}
        fields["payload"][len(fields["payload"]) // 2] ^= 0xFF
        buffer = io.BytesIO()
        np.savez(buffer, **fields)
        path.write_bytes(buffer.getvalue())

        assert store.get("stage/key") is None
        assert store.integrity_failures == 1
        assert path.with_name(path.name + ".quarantined").exists()


class TestConcurrentQuarantine:
    def test_two_readers_racing_the_same_corrupt_file_both_miss(self, tmp_path):
        """A checksum failure during concurrent reload by two readers: both
        degrade to a miss, the losing rename falls back harmlessly, and the
        bytes end up quarantined exactly once."""
        import threading

        store = _spilled(tmp_path)
        path = store._path_for("stage/key")
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])

        readers = [DiskSpillStore(tmp_path, max_bytes=1) for _ in range(2)]
        barrier = threading.Barrier(2)
        results = [object(), object()]
        errors = []

        def reload(index: int) -> None:
            try:
                barrier.wait(timeout=10)
                results[index] = readers[index].get("stage/key")
            except BaseException as exc:  # noqa: BLE001 - recorded for assert
                errors.append(exc)

        threads = [threading.Thread(target=reload, args=(i,)) for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        assert results == [None, None]
        # At least one reader verified the checksum and quarantined the
        # bytes; a reader that lost the rename race still counts its own
        # failed load, so the total is one or two — never zero, never a crash.
        assert 1 <= sum(reader.integrity_failures for reader in readers) <= 2
        assert not path.exists()
        assert path.with_name(path.name + ".quarantined").exists()
        assert all("stage/key" not in reader for reader in readers)

        # Either reader can immediately re-publish, and both then read it.
        readers[0].put("stage/key", StoredArtifact(value=np.arange(4)))
        for reader in readers:
            artifact = reader.get("stage/key")
            assert artifact is not None
            assert np.array_equal(artifact.value, np.arange(4))


class TestRecoveryAfterQuarantine:
    def test_key_can_be_republished_after_quarantine(self, tmp_path):
        store = _spilled(tmp_path)
        path = store._path_for("stage/key")
        path.write_bytes(path.read_bytes()[:10])
        assert store.get("stage/key") is None

        # Recompute-and-republish: the quarantined bytes do not block the
        # fresh spill, and the new file round-trips.
        store.put("stage/key", StoredArtifact(value=np.full(8, 7)))
        artifact = store.get("stage/key")
        assert artifact is not None
        assert np.array_equal(artifact.value, np.full(8, 7))
        assert path.exists()
        assert path.with_name(path.name + ".quarantined").exists()

    def test_clear_removes_quarantined_files_too(self, tmp_path):
        store = _spilled(tmp_path)
        path = store._path_for("stage/key")
        path.write_bytes(b"junk")
        assert store.get("stage/key") is None
        store.clear()
        assert not list(tmp_path.glob("*.npz"))
        assert not list(tmp_path.glob("*.npz.quarantined"))
        assert store.integrity_failures == 0
