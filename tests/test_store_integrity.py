"""Spill-file integrity: checksums on write, verification + quarantine on read.

``DiskSpillStore`` persists evicted artifacts as ``.npz`` files.  A partial
write (process kill mid-spill), filesystem bit rot, or a stale-format file
from an older revision must never crash the worker that reloads it — the
contract is *miss, quarantine, recompute*:

* every spilled payload carries a SHA-256 checksum, verified before the
  pickle is ever touched;
* an unusable file is renamed to ``*.npz.quarantined`` (kept for
  post-mortem, no longer advertised by ``__contains__``) and counted in
  ``integrity_failures``;
* the key can immediately be re-published by a later eviction.
"""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.engine.store import DiskSpillStore, StoredArtifact


def _spilled(tmp_path, key: str = "stage/key", value=None) -> DiskSpillStore:
    store = DiskSpillStore(tmp_path, max_bytes=1)  # spill on every put
    store.put(key, StoredArtifact(value=np.arange(64) if value is None else value))
    assert store._path_for(key).exists()
    return store


class TestChecksumRoundTrip:
    def test_spilled_file_carries_a_verifiable_checksum(self, tmp_path):
        store = _spilled(tmp_path)
        path = store._path_for("stage/key")
        with np.load(path) as archive:
            assert set(archive.files) >= {"version", "key", "checksum", "payload"}
            assert len(archive["checksum"].tobytes()) == 32
        artifact = store.get("stage/key")
        assert artifact is not None
        assert np.array_equal(artifact.value, np.arange(64))
        assert store.integrity_failures == 0


class TestTruncatedFile:
    def test_truncated_npz_is_a_miss_not_a_crash(self, tmp_path):
        store = _spilled(tmp_path)
        path = store._path_for("stage/key")
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])  # deliberate truncation

        assert store.get("stage/key") is None  # miss — caller recomputes
        assert store.integrity_failures == 1
        assert not path.exists()
        assert path.with_name(path.name + ".quarantined").exists()
        # The store stops advertising the key entirely.
        assert "stage/key" not in store

    def test_empty_file_is_a_miss(self, tmp_path):
        store = _spilled(tmp_path)
        path = store._path_for("stage/key")
        path.write_bytes(b"")
        assert store.get("stage/key") is None
        assert store.integrity_failures == 1
        assert path.with_name(path.name + ".quarantined").exists()

    def test_fresh_reader_also_degrades_to_miss(self, tmp_path):
        store = _spilled(tmp_path)
        path = store._path_for("stage/key")
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 3])

        reader = DiskSpillStore(tmp_path, max_bytes=1)
        assert reader.get("stage/key") is None
        assert reader.integrity_failures == 1


class TestTamperedPayload:
    def test_bit_flip_inside_a_valid_zip_fails_the_checksum(self, tmp_path):
        # A torn write is caught by the zip layer; silent corruption inside
        # a structurally valid archive is exactly what the checksum is for.
        store = _spilled(tmp_path)
        path = store._path_for("stage/key")
        with np.load(path) as archive:
            fields = {name: archive[name].copy() for name in archive.files}
        fields["payload"][len(fields["payload"]) // 2] ^= 0xFF
        buffer = io.BytesIO()
        np.savez(buffer, **fields)
        path.write_bytes(buffer.getvalue())

        assert store.get("stage/key") is None
        assert store.integrity_failures == 1
        assert path.with_name(path.name + ".quarantined").exists()


class TestRecoveryAfterQuarantine:
    def test_key_can_be_republished_after_quarantine(self, tmp_path):
        store = _spilled(tmp_path)
        path = store._path_for("stage/key")
        path.write_bytes(path.read_bytes()[:10])
        assert store.get("stage/key") is None

        # Recompute-and-republish: the quarantined bytes do not block the
        # fresh spill, and the new file round-trips.
        store.put("stage/key", StoredArtifact(value=np.full(8, 7)))
        artifact = store.get("stage/key")
        assert artifact is not None
        assert np.array_equal(artifact.value, np.full(8, 7))
        assert path.exists()
        assert path.with_name(path.name + ".quarantined").exists()

    def test_clear_removes_quarantined_files_too(self, tmp_path):
        store = _spilled(tmp_path)
        path = store._path_for("stage/key")
        path.write_bytes(b"junk")
        assert store.get("stage/key") is None
        store.clear()
        assert not list(tmp_path.glob("*.npz"))
        assert not list(tmp_path.glob("*.npz.quarantined"))
        assert store.integrity_failures == 0
