"""Tests of the observability layer: spans, metrics, exporters — and above
all the *invisibility contract*.

The contract has three clauses (see ``repro.obs``): instrumentation never
draws from any RNG, nothing observability-related enters fingerprints or the
canonical ledger/accountant state, and a run with the tracer disabled is
bit-for-bit identical to an untraced run — while an *enabled* tracer adds
only the ``obs`` side-channel to worker payloads.  The tests here pin all
three clauses on the serial path and through the process executor, then
check the exporters: the Chrome trace-event JSON must be schema-valid and
carry one named track per worker process.
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.core import default_config_for
from repro.engine import ArtifactStore
from repro.eval.runner import ExperimentScale, run_epsilon_sweep
from repro.runtime import GraphSpec, LumosItem

SPEC = GraphSpec(dataset="facebook", seed=0, num_nodes=40)
SCALE = ExperimentScale(num_nodes=40, epochs=3, mcmc_iterations=10, seed=0)
EPSILONS = [0.5, 1.0, 2.0, 3.0, 4.0]


def _config(epsilon=2.0):
    return (
        default_config_for("facebook")
        .with_mcmc_iterations(10)
        .with_epochs(3)
        .with_epsilon(epsilon)
    )


def _sweep_item(epsilon):
    return LumosItem(
        graph_spec=SPEC, config=_config(epsilon), task="supervised",
        split_seed=0, label=f"eps={epsilon}",
    )


@pytest.fixture(autouse=True)
def _no_ambient_tracer():
    """Every test starts and ends with the tracer disabled."""
    previous = obs.set_tracer(None)
    try:
        yield
    finally:
        obs.set_tracer(previous)


# --------------------------------------------------------------------------- #
# The invisibility contract
# --------------------------------------------------------------------------- #
class TestInvisibilityContract:
    def test_traced_serial_run_is_bit_identical_plus_obs_side_channel(self):
        untraced = _sweep_item(2.0).execute(ArtifactStore())
        with obs.tracing() as tracer:
            traced = _sweep_item(2.0).execute(ArtifactStore())

        # The payload carries the full determinism surface: final metrics,
        # canonical ledger transcript, accountant snapshot and the RNG end
        # state.  Tracing must change none of it.
        assert "obs" not in untraced
        assert traced == untraced
        # ...and the tracer really was on: spans and metrics were recorded.
        assert tracer.spans
        assert any(
            name.startswith("engine.stage.") for name in tracer.metrics.counters
        )

    def test_traced_process_sweep_matches_untraced_serial(self):
        serial = run_epsilon_sweep(
            "facebook", epsilons=EPSILONS, scale=SCALE, store=ArtifactStore()
        )
        with obs.tracing():
            traced = run_epsilon_sweep(
                "facebook", epsilons=EPSILONS, scale=SCALE,
                executor="process", max_workers=2,
            )
        assert traced == serial

    def test_untraced_process_payloads_carry_no_obs_key(self):
        from repro.runtime import ProcessExecutor, WorkPlan

        plan = WorkPlan()
        key = plan.add(_sweep_item(2.0))
        report = ProcessExecutor(max_workers=1).execute(plan)
        assert report.records[key].obs is None


# --------------------------------------------------------------------------- #
# Cross-process aggregation (the acceptance scenario)
# --------------------------------------------------------------------------- #
class TestMergedRunTrace:
    @pytest.fixture(scope="class")
    def traced_sweep(self):
        with obs.tracing() as tracer:
            results = run_epsilon_sweep(
                "facebook", epsilons=EPSILONS, scale=SCALE,
                executor="process", max_workers=2,
            )
        return results, obs.RunTrace.from_tracer(tracer)

    def test_worker_snapshots_are_merged(self, traced_sweep):
        _, trace = traced_sweep
        processes = trace.processes()
        assert processes[0] == "main"
        assert any(name.startswith("worker-") for name in processes)

    def test_worker_spans_cover_items_and_stages(self, traced_sweep):
        _, trace = traced_sweep
        worker_spans = [
            span for span in trace.spans()
            if span["process"].startswith("worker-")
        ]
        names = {span["name"] for span in worker_spans}
        assert "runtime.item" in names
        assert any(name.startswith("engine.stage.") for name in names)
        for span in worker_spans:
            assert span["wall"] >= 0.0
            assert span["cpu"] >= 0.0

    def test_merged_metrics_sum_across_processes(self, traced_sweep):
        _, trace = traced_sweep
        counters = trace.merged_metrics()["counters"]
        assert counters["runtime.dispatches"] == float(len(EPSILONS))
        assert counters["crypto.comparisons"] > 0.0

    def test_merge_order_is_plan_request_order(self, traced_sweep):
        """Worker snapshots follow the plan's item order, not completion."""
        _, trace = traced_sweep
        labels = [
            span["attributes"]["label"]
            for span in trace.spans()
            if span["name"] == "runtime.item"
            and span["process"].startswith("worker-")
        ]
        assert labels == [f"sweep/supervised/facebook/eps={e}" for e in EPSILONS]

    def test_chrome_export_has_one_track_per_worker(self, traced_sweep, tmp_path):
        _, trace = traced_sweep
        path = obs.write_chrome_trace(trace, tmp_path / "sweep.json")
        document = json.loads(path.read_text())
        thread_names = {
            event["args"]["name"]
            for event in document["traceEvents"]
            if event.get("name") == "thread_name"
        }
        assert "main" in thread_names
        assert any(name.startswith("worker-") for name in thread_names)

    def test_summary_table_mentions_stages_and_counters(self, traced_sweep):
        _, trace = traced_sweep
        table = obs.summary_table(trace)
        assert "runtime.item" in table
        assert "crypto.comparisons" in table


# --------------------------------------------------------------------------- #
# Exporter schemas
# --------------------------------------------------------------------------- #
def _small_trace():
    with obs.tracing() as tracer:
        with obs.span("outer", scope="test"):
            with obs.span("inner"):
                obs.add_counter("unit.count", 2.0)
                obs.observe("unit.latency", 0.5)
        obs.set_gauge("unit.level", 3.0)
    return obs.RunTrace.from_tracer(tracer)


class TestExporters:
    def test_chrome_export_is_schema_valid_json(self, tmp_path):
        path = obs.write_chrome_trace(_small_trace(), tmp_path / "trace.json")
        document = json.loads(path.read_text())
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        assert events, "export produced no events"
        for event in events:
            assert event["ph"] in ("M", "X")
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            assert isinstance(event["name"], str)
            if event["ph"] == "X":
                assert event["ts"] >= 0.0
                assert event["dur"] >= 0.0
        complete = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in complete} == {"outer", "inner"}
        inner = next(e for e in complete if e["name"] == "inner")
        outer = next(e for e in complete if e["name"] == "outer")
        assert outer["ts"] <= inner["ts"]
        assert outer["dur"] >= inner["dur"]
        assert outer["args"]["scope"] == "test"

    def test_spans_jsonl_round_trips(self, tmp_path):
        path = obs.write_spans_jsonl(_small_trace(), tmp_path / "spans.jsonl")
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert {line["name"] for line in lines} == {"outer", "inner"}
        inner = next(line for line in lines if line["name"] == "inner")
        outer = next(line for line in lines if line["name"] == "outer")
        assert inner["parent"] == outer["id"]
        assert all(line["process"] == "main" for line in lines)

    def test_summary_table_lists_metrics(self):
        table = obs.summary_table(_small_trace())
        assert "unit.count" in table
        assert "unit.latency" in table
        assert "unit.level" in table


# --------------------------------------------------------------------------- #
# Metrics registry semantics
# --------------------------------------------------------------------------- #
class TestMetricsRegistry:
    def test_merge_sums_counters_and_histograms(self):
        left = obs.MetricsRegistry()
        left.add_counter("c", 2.0)
        left.observe("h", 1.0)
        left.set_gauge("g", 1.0)
        right = obs.MetricsRegistry()
        right.add_counter("c", 3.0)
        right.observe("h", 5.0)
        right.set_gauge("g", 7.0)

        left.merge(right.snapshot())
        merged = left.snapshot()
        assert merged["counters"]["c"] == 5.0
        assert merged["histograms"]["h"] == {
            "count": 2.0, "sum": 6.0, "min": 1.0, "max": 5.0,
        }
        assert merged["gauges"]["g"] == 7.0  # last write wins

    def test_disabled_helpers_are_no_ops(self):
        obs.add_counter("nothing")
        obs.observe("nothing", 1.0)
        obs.set_gauge("nothing", 1.0)
        with obs.span("nothing") as record:
            record["attributes"]["key"] = "value"  # annotation-style call site
        assert obs.current_tracer() is None


# --------------------------------------------------------------------------- #
# Overhead envelope (slow)
# --------------------------------------------------------------------------- #
@pytest.mark.slow
def test_tracing_overhead_is_bounded():
    """Tracing a 300-device sweep must stay within a generous envelope.

    A factor-of-three bound: instrumentation is one dict append and two
    clock reads per event, so anything past this indicates an accidental
    hot-loop hook, not timing noise.
    """
    import time

    scale = ExperimentScale(num_nodes=300, epochs=3, mcmc_iterations=25, seed=0)

    def run():
        return run_epsilon_sweep(
            "facebook", epsilons=EPSILONS, scale=scale, store=ArtifactStore()
        )

    run()  # warm dataset caches so both timings see the same state
    start = time.perf_counter()
    untraced = run()
    untraced_seconds = time.perf_counter() - start

    with obs.tracing():
        start = time.perf_counter()
        traced = run()
        traced_seconds = time.perf_counter() - start

    assert traced == untraced
    assert traced_seconds <= 3.0 * untraced_seconds + 5.0
