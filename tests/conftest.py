"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import generate_facebook_like, generate_small_world, generate_star, load_dataset
from repro.graph.splits import split_edges, split_nodes


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    """Deterministic random generator shared by tests that only need randomness."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_graph():
    """A 60-node small-world graph with labels (fast, deterministic)."""
    return generate_small_world(num_nodes=60, k=4, num_features=6, num_classes=2, seed=3)


@pytest.fixture(scope="session")
def star_graph():
    """A 1-centre / 6-leaf star graph — the canonical degree-skew case."""
    return generate_star(num_leaves=6, num_features=4, seed=1)


@pytest.fixture(scope="session")
def social_graph():
    """A 200-node synthetic Facebook-like graph (heavy-tailed, homophilous)."""
    return generate_facebook_like(seed=7, num_nodes=200)


@pytest.fixture(scope="session")
def node_split(small_graph):
    """A 50/25/25 node split of the small graph."""
    return split_nodes(small_graph, seed=0)


@pytest.fixture(scope="session")
def edge_split(small_graph):
    """An 80/5/15 edge split of the small graph."""
    return split_edges(small_graph, seed=0)
