"""Tests for LDP embedding initialisation, the tree-based trainer and LumosSystem."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    EpochCostModel,
    LDPEmbeddingInitializer,
    LumosConfig,
    LumosSystem,
    TrainerConfig,
    TreeBasedGNNTrainer,
    TreeBatch,
    TreeConstructor,
    TreeConstructorConfig,
    default_config_for,
)
from repro.core.trainer import roc_auc_from_embeddings
from repro.federation import FederatedEnvironment, MessageKind
from repro.graph import generate_facebook_like, split_edges, split_nodes


@pytest.fixture(scope="module")
def tiny_graph():
    return generate_facebook_like(seed=5, num_nodes=120)


@pytest.fixture(scope="module")
def prepared(tiny_graph):
    """Environment + construction + LDP initialisation for the tiny graph."""
    graph = tiny_graph.normalized_features(0.0, 1.0)
    environment = FederatedEnvironment.from_graph(graph, seed=0)
    constructor = TreeConstructor(TreeConstructorConfig(mcmc_iterations=40),
                                  rng=np.random.default_rng(0))
    construction = constructor.construct(environment)
    initializer = LDPEmbeddingInitializer(epsilon=2.0, rng=np.random.default_rng(1))
    initialization = initializer.run(environment, construction.assignment)
    return graph, environment, construction, initialization


class TestEmbeddingInitialization:
    def test_every_selected_neighbor_receives_a_feature(self, prepared):
        _, environment, construction, initialization = prepared
        for receiver, selected in construction.assignment.selected.items():
            for sender in selected:
                assert sender in initialization.received_features[receiver]

    def test_messages_match_selection_count(self, prepared):
        _, _, construction, initialization = prepared
        assert initialization.messages_sent == construction.assignment.total_selected_edges()
        assert initialization.bytes_sent > 0
        assert initialization.epsilon == 2.0

    def test_received_features_stay_in_recovery_range(self, prepared):
        graph, _, _, initialization = prepared
        for per_receiver in initialization.received_features.values():
            for feature in per_receiver.values():
                assert feature.shape == (graph.num_features,)
                assert np.all(np.isfinite(feature))

    def test_raw_features_never_transmitted(self, prepared):
        """The exact raw feature vector must not appear in any received message."""
        graph, _, _, initialization = prepared
        for receiver, per_receiver in initialization.received_features.items():
            for sender, feature in per_receiver.items():
                assert not np.allclose(feature, graph.features[sender])

    def test_ledger_records_feature_exchange(self, prepared):
        _, environment, _, initialization = prepared
        count = environment.ledger.total_messages([MessageKind.FEATURE_EXCHANGE])
        assert count == initialization.messages_sent

    def test_validation(self):
        with pytest.raises(ValueError):
            LDPEmbeddingInitializer(epsilon=0.0)


class TestTreeBatch:
    def test_union_graph_shapes(self, prepared):
        graph, environment, construction, initialization = prepared
        batch = TreeBatch.build(environment, construction, initialization, graph.num_features)
        assert batch.num_nodes == construction.total_tree_nodes()
        assert batch.num_vertices == graph.num_nodes
        assert batch.features.shape == (batch.num_nodes, graph.num_features)
        assert batch.adjacency.shape == (batch.num_nodes, batch.num_nodes)

    def test_leaf_mapping_covers_every_vertex(self, prepared):
        graph, environment, construction, initialization = prepared
        batch = TreeBatch.build(environment, construction, initialization, graph.num_features)
        assert set(np.unique(batch.leaf_vertices)) == set(range(graph.num_nodes))

    def test_center_leaves_carry_raw_features(self, prepared):
        graph, environment, construction, initialization = prepared
        batch = TreeBatch.build(environment, construction, initialization, graph.num_features)
        for device_id, (offset, _) in batch.device_slices.items():
            local_graph = construction.local_graphs[device_id]
            for node in local_graph.nodes:
                if node.vertex == device_id:
                    np.testing.assert_allclose(
                        batch.features[offset + node.local_id], graph.features[device_id]
                    )

    def test_virtual_nodes_have_zero_features(self, prepared):
        graph, environment, construction, initialization = prepared
        batch = TreeBatch.build(environment, construction, initialization, graph.num_features)
        for device_id, (offset, _) in batch.device_slices.items():
            local_graph = construction.local_graphs[device_id]
            for node in local_graph.nodes:
                if node.vertex is None:
                    np.testing.assert_allclose(batch.features[offset + node.local_id], 0.0)

    def test_no_edges_between_different_trees(self, prepared):
        graph, environment, construction, initialization = prepared
        batch = TreeBatch.build(environment, construction, initialization, graph.num_features)
        slices = sorted(batch.device_slices.values())
        owner_of = np.zeros(batch.num_nodes, dtype=np.int64)
        for index, (offset, size) in enumerate(slices):
            owner_of[offset : offset + size] = index
        coo = batch.adjacency.tocoo()
        off_diagonal = coo.row != coo.col
        assert np.all(owner_of[coo.row[off_diagonal]] == owner_of[coo.col[off_diagonal]])


class TestTrainer:
    def _trainer(self, prepared, **overrides) -> TreeBasedGNNTrainer:
        graph, environment, construction, initialization = prepared
        config = TrainerConfig(epochs=25, **overrides)
        return TreeBasedGNNTrainer(
            environment, construction, initialization, config, rng=np.random.default_rng(0)
        )

    def test_supervised_training_learns(self, prepared):
        graph = prepared[0]
        trainer = self._trainer(prepared)
        split = split_nodes(graph, seed=0)
        _, history = trainer.train_supervised(graph.labels, split)
        assert len(history.losses) == 25
        assert history.losses[-1] < history.losses[0]
        assert history.test_accuracy > 1.5 / graph.num_classes  # clearly above chance
        assert history.best_val_accuracy >= max(history.val_accuracy) - 1e-9

    def test_unsupervised_training_beats_chance(self, prepared):
        graph = prepared[0]
        trainer = self._trainer(prepared)
        edge_split = split_edges(graph, seed=0)
        _, history = trainer.train_unsupervised(edge_split, epochs=25)
        assert history.test_auc > 0.5
        assert len(history.losses) == 25

    def test_gat_backbone_runs(self, prepared):
        graph = prepared[0]
        trainer = self._trainer(prepared, backbone="gat")
        split = split_nodes(graph, seed=0)
        _, history = trainer.train_supervised(graph.labels, split, epochs=5)
        assert len(history.losses) == 5
        assert np.isfinite(history.losses[-1])

    def test_communication_profile_supervised(self, prepared):
        graph, environment, construction, _ = prepared
        trainer = self._trainer(prepared)
        profile = trainer.communication_profile("supervised")
        rounds = profile["per_device_rounds"]
        assert rounds.shape == (graph.num_nodes,)
        # Total sends + receives = 2 * total selections, plus one loss round each.
        expected_total = 2 * construction.assignment.total_selected_edges() + graph.num_nodes
        assert int(rounds.sum()) == expected_total

    def test_communication_profile_unsupervised_is_larger(self, prepared):
        trainer = self._trainer(prepared)
        supervised = trainer.communication_profile("supervised")["per_device_rounds"].mean()
        unsupervised = trainer.communication_profile("unsupervised")["per_device_rounds"].mean()
        assert unsupervised > supervised
        with pytest.raises(ValueError):
            trainer.communication_profile("other")

    def test_simulated_epoch_time_positive_and_monotone_in_cost(self, prepared):
        graph, environment, construction, initialization = prepared
        cheap = TreeBasedGNNTrainer(
            environment, construction, initialization, TrainerConfig(epochs=5),
            cost_model=EpochCostModel(compute_per_node=0.001, time_per_round=0.001),
        )
        expensive = TreeBasedGNNTrainer(
            environment, construction, initialization, TrainerConfig(epochs=5),
            cost_model=EpochCostModel(compute_per_node=0.1, time_per_round=0.1),
        )
        assert 0 < cheap.simulated_epoch_time() < expensive.simulated_epoch_time()

    def test_roc_auc_helper_perfect_separation(self):
        embeddings = np.array([[1.0, 0.0], [1.0, 0.0], [0.0, 1.0], [0.0, 1.0]])
        positives = np.array([[0, 1]])
        negatives = np.array([[0, 2]])
        assert roc_auc_from_embeddings(embeddings, positives, negatives) == 1.0


class TestLumosSystem:
    def test_supervised_end_to_end(self, tiny_graph):
        config = default_config_for("facebook").with_mcmc_iterations(30).with_epochs(20)
        system = LumosSystem(tiny_graph, config)
        result = system.run_supervised(split_nodes(tiny_graph, seed=0))
        assert 0.0 <= result.test_accuracy <= 1.0
        assert result.test_accuracy > 1.0 / tiny_graph.num_classes
        assert result.communication_rounds_per_device > 0
        assert result.simulated_epoch_time > 0
        assert result.construction.max_workload() <= int(tiny_graph.degrees().max())

    def test_unsupervised_end_to_end(self, tiny_graph):
        config = default_config_for("lastfm").with_mcmc_iterations(30).with_epochs(15)
        system = LumosSystem(tiny_graph, config)
        result = system.run_unsupervised(split_edges(tiny_graph, seed=0))
        assert 0.0 <= result.test_auc <= 1.0

    def test_pipeline_stages_are_cached(self, tiny_graph):
        config = default_config_for("facebook").with_mcmc_iterations(10).with_epochs(5)
        system = LumosSystem(tiny_graph, config)
        assert system.construct_trees() is system.construct_trees()
        assert system.initialize_embeddings() is system.initialize_embeddings()
        assert system.trainer() is system.trainer()

    def test_supervised_requires_labels(self, tiny_graph):
        from repro.graph import Graph

        unlabeled = Graph(num_nodes=tiny_graph.num_nodes, edges=tiny_graph.edges,
                          features=tiny_graph.features, labels=None)
        system = LumosSystem(unlabeled, default_config_for("facebook").with_epochs(2))
        with pytest.raises(ValueError):
            system.run_supervised(split_nodes(tiny_graph, seed=0))

    def test_summary_and_workloads(self, tiny_graph):
        config = default_config_for("facebook").with_mcmc_iterations(10).with_epochs(2)
        system = LumosSystem(tiny_graph, config)
        workloads = system.workload_distribution()
        assert workloads.shape == (tiny_graph.num_nodes,)
        summary = system.summary()
        assert {"num_devices", "max_workload", "secure_comparisons"} <= set(summary)

    def test_run_supervised_many_matches_sequential(self, tiny_graph):
        # The batched cross-sweep-point trainer must be observably identical
        # to running each point in order: losses, accuracies, ledger
        # summaries and the systems' RNG states all bit-equal.
        from repro.core.lumos import run_supervised_many
        from repro.engine.store import ArtifactStore

        split = split_nodes(tiny_graph, seed=0)
        base = default_config_for("facebook").with_mcmc_iterations(10).with_epochs(4)
        epsilons = (1.0, 3.0)

        def build():
            store = ArtifactStore()
            return [
                LumosSystem(tiny_graph, base.with_epsilon(epsilon), store=store)
                for epsilon in epsilons
            ]

        batched_systems = build()
        batched = run_supervised_many(batched_systems, split)
        sequential_systems = build()
        sequential = [
            system.run_supervised(split) for system in sequential_systems
        ]
        for batched_result, sequential_result in zip(batched, sequential):
            assert batched_result.test_accuracy == sequential_result.test_accuracy
            assert batched_result.history.losses == sequential_result.history.losses
            assert (
                batched_result.history.val_accuracy
                == sequential_result.history.val_accuracy
            )
            assert batched_result.ledger_summary == sequential_result.ledger_summary
        for batched_system, sequential_system in zip(
            batched_systems, sequential_systems
        ):
            assert (
                batched_system.rng.bit_generator.state
                == sequential_system.rng.bit_generator.state
            )

    def test_run_supervised_many_single_system_falls_back(self, tiny_graph):
        from repro.core.lumos import run_supervised_many
        from repro.engine.store import ArtifactStore

        split = split_nodes(tiny_graph, seed=0)
        config = default_config_for("facebook").with_mcmc_iterations(10).with_epochs(3)
        system = LumosSystem(tiny_graph, config, store=ArtifactStore())
        (result,) = run_supervised_many([system], split)
        reference = LumosSystem(
            tiny_graph, config, store=ArtifactStore()
        ).run_supervised(split)
        assert result.test_accuracy == reference.test_accuracy
        assert result.history.losses == reference.history.losses
        assert run_supervised_many([], split) == []

    def test_config_helpers(self):
        config = LumosConfig()
        assert config.with_backbone("gat").trainer.backbone == "gat"
        assert config.with_epsilon(0.5).trainer.epsilon == 0.5
        assert config.with_epochs(7).trainer.epochs == 7
        assert config.with_mcmc_iterations(3).constructor.mcmc_iterations == 3
        assert not config.without_virtual_nodes().constructor.use_virtual_nodes
        assert not config.without_tree_trimming().constructor.use_tree_trimming
        assert config.with_seed(9).seed == 9
        assert default_config_for("facebook").constructor.mcmc_iterations == 1000
        assert default_config_for("lastfm").constructor.mcmc_iterations == 300

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TrainerConfig(backbone="sage")
        with pytest.raises(ValueError):
            TrainerConfig(epochs=0)
        with pytest.raises(ValueError):
            TrainerConfig(epsilon=-1.0)
        with pytest.raises(ValueError):
            TreeConstructorConfig(mcmc_iterations=-5)


class TestNonContiguousDeviceIds:
    """tree_sizes / communication_profile must not assume ids are 0..n-1."""

    @pytest.fixture()
    def sparse_id_environment(self):
        from repro.graph.ego import EgoNetwork

        rng = np.random.default_rng(0)
        partition = {
            0: EgoNetwork(center=0, neighbors=[2], feature=rng.random(4)),
            2: EgoNetwork(center=2, neighbors=[0, 5], feature=rng.random(4)),
            5: EgoNetwork(center=5, neighbors=[2], feature=rng.random(4)),
        }
        return FederatedEnvironment.from_partition(partition, seed=0)

    def _trainer_for(self, environment):
        from repro.core import LDPEmbeddingInitializer

        constructor = TreeConstructor(
            TreeConstructorConfig(use_tree_trimming=False),
            rng=np.random.default_rng(0),
        )
        construction = constructor.construct(environment)
        initialization = LDPEmbeddingInitializer(
            epsilon=2.0, rng=np.random.default_rng(1)
        ).run(environment, construction.assignment)
        return TreeBasedGNNTrainer(
            environment, construction, initialization, TrainerConfig(epochs=2),
            rng=np.random.default_rng(2),
        )

    def test_tree_sizes_aligned_to_sorted_ids(self, sparse_id_environment):
        trainer = self._trainer_for(sparse_id_environment)
        # Untrimmed workloads: wl(0)=1, wl(2)=2, wl(5)=1 -> tree sizes 3w+1.
        np.testing.assert_array_equal(trainer.tree_sizes(), [4, 7, 4])

    def test_communication_profile_aligned_to_sorted_ids(self, sparse_id_environment):
        trainer = self._trainer_for(sparse_id_environment)
        profile = trainer.communication_profile("supervised")
        np.testing.assert_array_equal(profile["device_ids"], [0, 2, 5])
        np.testing.assert_array_equal(profile["workloads"], [1, 2, 1])
        np.testing.assert_array_equal(profile["incoming"], [1, 2, 1])
        np.testing.assert_array_equal(profile["per_device_rounds"], [3, 5, 3])
        assert trainer.simulated_epoch_time("supervised") > 0

    def test_epoch_charge_uses_real_ids(self, sparse_id_environment):
        trainer = self._trainer_for(sparse_id_environment)
        trainer._charge_epoch("supervised")
        bulk = sparse_id_environment.ledger.bulk_compute_events[-1]
        np.testing.assert_array_equal(bulk.devices, [0, 2, 5])
        np.testing.assert_array_equal(bulk.costs, [4.0, 7.0, 4.0])

    def test_ledger_per_device_queries_with_sparse_ids(self, sparse_id_environment):
        trainer = self._trainer_for(sparse_id_environment)
        ledger = sparse_id_environment.ledger
        baseline = ledger.per_device_compute(3, device_ids=np.array([0, 2, 5]))
        trainer._charge_epoch("supervised")
        costs = ledger.per_device_compute(3, device_ids=np.array([0, 2, 5]))
        # Positional indexing would silently drop device 5's share.
        np.testing.assert_allclose(costs - baseline, [4.0, 7.0, 4.0], atol=1e-9)
        counts = ledger.per_device_message_counts(3, device_ids=np.array([0, 2, 5]))
        assert counts.sum() == sum(
            1 for m in ledger.messages if m.sender in (0, 2, 5)
        )
        completion = ledger.epoch_completion_time(3, device_ids=np.array([0, 2, 5]))
        assert completion >= costs.max()

    def test_training_runs_on_sparse_ids(self, sparse_id_environment):
        from repro.graph.splits import NodeSplit

        trainer = self._trainer_for(sparse_id_environment)
        labels = np.array([0, 1, 0])
        split = NodeSplit(
            train_mask=np.array([True, False, False]),
            val_mask=np.array([False, True, False]),
            test_mask=np.array([False, False, True]),
        )
        _, history = trainer.train_supervised(labels, split, epochs=2)
        assert len(history.losses) == 2
        assert np.isfinite(history.losses[-1])
