"""Concurrent-writer guarantees and counters of the artifact stores.

``DiskSpillStore``'s cross-process story was previously a comment ("per-
process temp name"); these tests turn it into a contract:

* concurrent processes spilling and reloading the *same* content keys never
  observe a torn or wrong value — every read returns either nothing (a
  cache miss, recomputed) or the exact bytes some complete write published;
* evicting an entry that was reloaded from disk re-publishes it with an
  atomic replace when the file has vanished (e.g. another process's
  corruption cleanup), instead of assuming a stale ``exists()`` check;
* ``stats()`` exposes the hit/miss/spill/evict counters benchmarks report.
"""

from __future__ import annotations

import multiprocessing
import sys
import traceback

import numpy as np
import pytest

from repro.engine.store import ArtifactStore, DiskSpillStore, StoredArtifact

KEYS = [f"stage/key-{index}" for index in range(5)]


def _expected_value(key: str) -> np.ndarray:
    # Content-keyed stores hold content-derived values: every process
    # derives the same array for a key, exactly like real artifacts.
    seed = abs(hash(key)) % (2**32)
    return np.arange(64, dtype=np.int64) + np.int64(seed % 1000)


def _hammer(directory: str, worker: int, iterations: int, error_queue) -> None:
    try:
        store = DiskSpillStore(directory, max_bytes=1)  # spill on every put
        for iteration in range(iterations):
            for index, key in enumerate(KEYS):
                expected = _expected_value(key)
                artifact = store.get(key)
                if artifact is not None and not np.array_equal(artifact.value, expected):
                    raise AssertionError(
                        f"worker {worker} read a wrong value for {key!r}"
                    )
                store.put(key, StoredArtifact(value=expected))
                # Periodically simulate the corruption-cleanup race: the
                # file vanishes under another writer's feet and must be
                # re-published on the next eviction, not skipped.
                if (iteration + index) % 7 == worker:
                    store._path_for(key).unlink(missing_ok=True)
                    store._published.discard(key)
        # Final publish pass: inside each worker every simulated unlink is
        # paired with a ``_published`` discard, so this put re-publishes
        # whatever this worker deleted last — after both workers finish,
        # every key must be durably on disk.
        for key in KEYS:
            store.put(key, StoredArtifact(value=_expected_value(key)))
    except BaseException:
        error_queue.put(f"worker {worker}:\n{traceback.format_exc()}")
        raise


class TestConcurrentSpill:
    def test_two_processes_spill_and_reload_the_same_keys(self, tmp_path):
        context = multiprocessing.get_context("fork")
        error_queue = context.Queue()
        workers = [
            context.Process(target=_hammer, args=(str(tmp_path), worker, 120, error_queue))
            for worker in range(2)
        ]
        for process in workers:
            process.start()
        for process in workers:
            process.join(timeout=120)
        failures = []
        while not error_queue.empty():
            failures.append(error_queue.get())
        assert not failures, "\n".join(failures)
        assert all(process.exitcode == 0 for process in workers)

        # Whatever interleaving happened, a fresh reader hydrates every key.
        reader = DiskSpillStore(tmp_path, max_bytes=1)
        for key in KEYS:
            artifact = reader.get(key)
            assert artifact is not None
            assert np.array_equal(artifact.value, _expected_value(key))

    def test_reload_time_eviction_republishes_after_unlink(self, tmp_path):
        writer = DiskSpillStore(tmp_path, max_bytes=1)
        writer.put("k", StoredArtifact(value=np.ones(8)))  # spilled immediately
        path = writer._path_for("k")
        assert path.exists()

        reader = DiskSpillStore(tmp_path, max_bytes=10**9)
        assert reader.get("k") is not None  # reloaded into memory
        assert reader.spill_loads == 1

        # Benign re-eviction: the file is intact and this instance published
        # (verified) it, so no redundant rewrite happens.
        writes_before = reader.spill_writes
        reader._on_evict("k", reader._entries.pop("k"))
        assert reader.spill_writes == writes_before and path.exists()

        # Out-of-band unlink (another process dropped a file it could not
        # read): the next eviction must atomically re-publish, not assume
        # the earlier observation still holds.
        assert reader.get("k") is not None
        path.unlink()
        reader._on_evict("k", reader._entries.pop("k"))
        assert path.exists()
        assert DiskSpillStore(tmp_path, max_bytes=1).get("k") is not None


class TestStoreStats:
    def test_memory_store_snapshot(self):
        store = ArtifactStore(max_entries=2)
        store.put("a", StoredArtifact(value=1))
        store.put("b", StoredArtifact(value=2))
        store.put("c", StoredArtifact(value=3))  # evicts "a"
        store.record_miss("stage")
        store.record_hit("stage")
        store.record_hit("stage")
        snapshot = store.stats()
        assert snapshot["entries"] == 2
        assert snapshot["evictions"] == 1
        assert snapshot["hits"] == 2 and snapshot["misses"] == 1
        assert snapshot["per_stage"] == {"stage": {"hits": 2, "misses": 1}}

    def test_spill_store_snapshot_extends_the_base(self, tmp_path):
        store = DiskSpillStore(tmp_path, max_bytes=1)
        store.put("a", StoredArtifact(value=np.ones(16)))
        assert store.get("a") is not None  # reload from disk
        snapshot = store.stats()
        assert snapshot["spill_writes"] >= 1
        assert snapshot["spill_loads"] == 1
        assert snapshot["evictions"] >= 1
        assert "in_memory_bytes" in snapshot

    def test_clear_resets_every_counter(self, tmp_path):
        store = DiskSpillStore(tmp_path, max_bytes=1)
        store.put("a", StoredArtifact(value=np.ones(16)))
        store.record_hit("stage")
        store.clear()
        snapshot = store.stats()
        assert snapshot == {
            "entries": 0, "hits": 0, "misses": 0, "evictions": 0,
            "per_stage": {}, "spill_writes": 0, "spill_loads": 0,
            "integrity_failures": 0, "in_memory_bytes": 0,
        }
        assert not list(tmp_path.glob("*.npz"))
        assert not list(tmp_path.glob("*.npz.quarantined"))
