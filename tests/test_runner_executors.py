"""Seeded serial-vs-process equivalence of the evaluation entry points.

The runtime's determinism contract, exercised end to end at smoke scale:
``executor="process"`` must produce **bit-for-bit** the same results as the
default serial loop — the metrics the entry points return, and (via the
work-item records) the canonical communication-ledger transcripts, the
secure-comparison accountant totals and the final RNG state of every arm.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import default_config_for
from repro.engine import ArtifactStore
from repro.eval.runner import (
    ExperimentScale,
    run_ablation,
    run_epsilon_sweep,
)
from repro.runtime import (
    GraphSpec,
    LumosItem,
    ProcessExecutor,
    SerialExecutor,
    WorkPlan,
)

SCALE = ExperimentScale(num_nodes=40, epochs=3, mcmc_iterations=10, seed=0)
EPSILONS = [0.5, 2.0]


def _config(epsilon):
    return (
        default_config_for("facebook")
        .with_mcmc_iterations(SCALE.mcmc_iterations)
        .with_epochs(SCALE.epochs)
        .with_epsilon(epsilon)
        .with_seed(SCALE.seed)
    )


class TestRunnerEquivalence:
    def test_epsilon_sweep_supervised(self):
        serial = run_epsilon_sweep(
            "facebook", epsilons=EPSILONS, scale=SCALE, store=ArtifactStore()
        )
        process = run_epsilon_sweep(
            "facebook", epsilons=EPSILONS, scale=SCALE,
            executor="process", max_workers=2,
        )
        assert serial == process
        assert list(process) == EPSILONS  # merge preserves request order

    def test_epsilon_sweep_unsupervised(self):
        serial = run_epsilon_sweep(
            "facebook", task="unsupervised", epsilons=EPSILONS, scale=SCALE,
            store=ArtifactStore(),
        )
        process = run_epsilon_sweep(
            "facebook", task="unsupervised", epsilons=EPSILONS, scale=SCALE,
            executor="process", max_workers=2,
        )
        assert serial == process

    def test_ablation(self):
        serial = run_ablation("facebook", scale=SCALE, store=ArtifactStore())
        process = run_ablation(
            "facebook", scale=SCALE, executor="process", max_workers=2
        )
        assert serial == process
        assert list(process) == ["lumos", "lumos_wo_vn", "lumos_wo_tt"]

    def test_executor_instance_is_honoured_and_reusable(self, tmp_path):
        executor = ProcessExecutor(max_workers=2, spill_dir=str(tmp_path))
        first = run_epsilon_sweep(
            "facebook", epsilons=EPSILONS, scale=SCALE, executor=executor
        )
        # The pinned spill directory now holds the shared prefix + results;
        # a second call reuses the same executor (and warm artifacts).
        assert any(tmp_path.glob("*.npz"))
        second = run_epsilon_sweep(
            "facebook", epsilons=EPSILONS, scale=SCALE, executor=executor
        )
        assert first == second


class TestRecordEquivalence:
    def test_transcripts_accountant_and_rng_state_match_bit_for_bit(self):
        spec = GraphSpec(dataset="facebook", seed=0, num_nodes=40)
        plan = WorkPlan()
        for epsilon in EPSILONS:
            plan.add(
                LumosItem(
                    graph_spec=spec, config=_config(epsilon), task="supervised",
                    split_seed=SCALE.seed, keep_transcript=True,
                    label=f"eps={epsilon}",
                )
            )
        serial = SerialExecutor().execute(plan)
        process = ProcessExecutor(max_workers=2).execute(plan)
        assert set(serial.records) == set(process.records)
        for key in plan.requests:
            a, b = serial.records[key], process.records[key]
            assert a.value == b.value
            assert a.ledger_summary == b.ledger_summary
            assert a.transcript_digest == b.transcript_digest
            assert a.ledger_records == b.ledger_records
            assert a.ledger_records is not None and len(a.ledger_records) > 0
            assert a.accountant == b.accountant
            assert a.rng_state == b.rng_state

    def test_workload_arrays_match(self):
        spec = GraphSpec(dataset="facebook", seed=0, num_nodes=40)
        item = LumosItem(
            graph_spec=spec, config=_config(2.0), task="workload", split_seed=0
        )
        plan = WorkPlan([item])
        serial = SerialExecutor().execute(plan)
        process = ProcessExecutor(max_workers=1).execute(plan)
        assert np.array_equal(
            serial.records[item.key()].value, process.records[item.key()].value
        )

    def test_process_pool_reports_warmup_and_store_stats(self):
        spec = GraphSpec(dataset="facebook", seed=0, num_nodes=40)
        plan = WorkPlan(
            [
                LumosItem(
                    graph_spec=spec, config=_config(epsilon), task="supervised",
                    split_seed=0, label=f"eps={epsilon}",
                )
                for epsilon in (0.5, 1.0, 2.0)
            ]
        )
        report = ProcessExecutor(max_workers=2).execute(plan)
        assert report.stats["warmup_runs"] == 1  # shared prefix computed once
        store = report.stats["store"]
        assert store["spill_writes"] > 0  # prefix + results published on disk
        assert store["misses"] > 0
