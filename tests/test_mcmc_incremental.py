"""Equivalence tests pinning the incremental MCMC kernel to the reference loop.

The incremental kernel replaces the from-scratch Alg. 2/3 evaluation with
array-backed delta updates; these tests assert that this is purely an
implementation change: identical assignments, objective history, acceptance
count, secure-comparison accounting, ledger transcript (canonical form) and
RNG stream consumption, in both clear and secure modes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    Assignment,
    MCMCBalancer,
    TreeConstructor,
    TreeConstructorConfig,
    greedy_initialization,
)
from repro.federation import FederatedEnvironment
from repro.graph import (
    generate_facebook_like,
    generate_small_world,
    generate_star,
)


def _balanced(graph, *, kernel: str, seed: int = 0, iterations: int = 200,
              secure: bool = False):
    environment = FederatedEnvironment.from_graph(graph, seed=0)
    initial = greedy_initialization(environment, rng=np.random.default_rng(seed))
    balancer = MCMCBalancer(
        environment,
        iterations=iterations,
        rng=np.random.default_rng(seed + 7),
        secure=secure,
        kernel=kernel,
    )
    result = balancer.run(initial)
    return result, environment, balancer.accountant


def _assert_equivalent(graph, *, seed: int = 0, iterations: int = 200,
                       secure: bool = False):
    fast, fast_env, fast_acc = _balanced(
        graph, kernel="auto", seed=seed, iterations=iterations, secure=secure
    )
    slow, slow_env, slow_acc = _balanced(
        graph, kernel="reference", seed=seed, iterations=iterations, secure=secure
    )
    assert fast.assignment.as_lists() == slow.assignment.as_lists()
    assert fast.objective_history == slow.objective_history
    assert fast.accepted_transitions == slow.accepted_transitions
    assert fast.iterations == slow.iterations
    # Transcript accounting is bit-identical.
    assert fast_acc.comparisons == slow_acc.comparisons
    assert fast_acc.ot_invocations == slow_acc.ot_invocations
    assert fast_acc.messages == slow_acc.messages
    assert fast_acc.bits == slow_acc.bits
    # The ledgers carry the same traffic (canonical per-round multiset: the
    # kernel logs columnar bulk events, the reference loop individual
    # messages).
    assert fast_env.ledger.message_records() == slow_env.ledger.message_records()
    assert fast_env.ledger.summary(fast_env.num_devices) == slow_env.ledger.summary(
        slow_env.num_devices
    )
    np.testing.assert_array_equal(
        fast_env.ledger.per_device_message_counts(fast_env.num_devices),
        slow_env.ledger.per_device_message_counts(slow_env.num_devices),
    )
    # Both loops leave every RNG stream in the same state.
    assert (
        fast_env.server.rng.bit_generator.state
        == slow_env.server.rng.bit_generator.state
    )


class TestKernelEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_facebook_like_clear(self, seed):
        graph = generate_facebook_like(seed=3, num_nodes=120)
        _assert_equivalent(graph, seed=seed)

    def test_small_world_clear(self):
        graph = generate_small_world(num_nodes=60, k=4, seed=5)
        _assert_equivalent(graph, seed=1)

    def test_star_clear(self):
        # Degenerate degree skew: the hub sheds everything early.
        _assert_equivalent(generate_star(num_leaves=8, seed=2), seed=0)

    def test_edgeless_graph_clear(self):
        # Every device has an empty selection, so every iteration takes the
        # skip branch — which must not advance the round counter (the
        # reference loop `continue`s past next_round() too).
        from repro.graph import Graph

        graph = Graph(
            num_nodes=5,
            edges=np.zeros((0, 2), dtype=np.int64),
            features=np.random.default_rng(0).random((5, 4)),
        )
        _assert_equivalent(graph, seed=0, iterations=10)

    def test_secure_mode(self):
        # Secure "auto" now routes through the incremental kernel's batched
        # protocol path; it must stay indistinguishable from the secure
        # reference loop (deeper sweeps live in tests/test_secure_batched.py).
        graph = generate_small_world(num_nodes=30, k=4, seed=9)
        _assert_equivalent(graph, seed=0, iterations=15, secure=True)

    def test_constructor_level_equivalence(self, social_graph):
        results = {}
        for kernel in ("incremental", "reference"):
            environment = FederatedEnvironment.from_graph(social_graph, seed=0)
            constructor = TreeConstructor(
                TreeConstructorConfig(mcmc_iterations=60),
                rng=np.random.default_rng(0),
                mcmc_kernel=kernel,
            )
            results[kernel] = constructor.construct(environment)
        fast, slow = results["incremental"], results["reference"]
        assert fast.assignment.as_lists() == slow.assignment.as_lists()
        assert (
            fast.mcmc_result.objective_history == slow.mcmc_result.objective_history
        )
        assert fast.transcript.bits == slow.transcript.bits

    def test_kernel_validation(self, social_graph):
        environment = FederatedEnvironment.from_graph(social_graph, seed=0)
        with pytest.raises(ValueError):
            MCMCBalancer(environment, iterations=1, kernel="warp-drive")

    def test_incremental_kernel_requires_contiguous_ids(self):
        from repro.graph.ego import EgoNetwork

        rng = np.random.default_rng(0)
        partition = {
            2: EgoNetwork(center=2, neighbors=np.array([5]), feature=rng.random(4)),
            5: EgoNetwork(center=5, neighbors=np.array([2]), feature=rng.random(4)),
        }
        environment = FederatedEnvironment.from_partition(partition, seed=0)
        balancer = MCMCBalancer(environment, iterations=1, kernel="incremental")
        initial = greedy_initialization(environment, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            balancer.run(initial)

    def test_secure_incremental_kernel_is_allowed(self, social_graph):
        environment = FederatedEnvironment.from_graph(social_graph, seed=0)
        initial = greedy_initialization(environment, rng=np.random.default_rng(0))
        balancer = MCMCBalancer(
            environment, iterations=3, secure=True, kernel="incremental",
            rng=np.random.default_rng(1),
        )
        result = balancer.run(initial)
        assert result.iterations == 3
        # The batched secure path executed real protocol runs.
        assert balancer.accountant.comparisons > 0
        assert balancer.accountant._log


class TestTransferDeltas:
    def test_apply_then_undo_restores_everything(self, social_graph):
        assignment = Assignment.full(social_graph)
        baseline = assignment.as_lists()
        vector = assignment.workload_vector(social_graph.num_nodes)
        baseline_vector = vector.copy()
        source = int(np.argmax(baseline_vector))
        targets = sorted(assignment.selected[source])[:3]

        record = assignment.apply_transfer(source, targets)
        assert assignment.workload(source) == baseline_vector[source] - len(targets)
        np.testing.assert_array_equal(
            vector, assignment.workload_array()[: vector.shape[0]]
        )
        assignment.undo_transfer(source, record)
        assert assignment.as_lists() == baseline
        np.testing.assert_array_equal(vector, baseline_vector)

    def test_transfer_matches_apply_transfer(self, social_graph):
        base = Assignment.full(social_graph)
        source = 0
        targets = sorted(base.selected[source])[:2]
        fresh = base.transfer(source, targets)
        mutated = base.copy()
        mutated.apply_transfer(source, targets)
        assert fresh.as_lists() == mutated.as_lists()
        # The original is untouched by transfer().
        assert base.as_lists() == Assignment.full(social_graph).as_lists()

    def test_invalid_target_rejected(self, social_graph):
        assignment = Assignment.full(social_graph)
        not_selected = next(
            v for v in range(social_graph.num_nodes)
            if v not in assignment.selected[0] and v != 0
        )
        with pytest.raises(ValueError):
            assignment.apply_transfer(0, [not_selected])

    def test_workload_vector_is_maintained_not_rebuilt(self, social_graph):
        assignment = Assignment.full(social_graph)
        vector = assignment.workload_vector(social_graph.num_nodes)
        assert vector is assignment.workload_vector(social_graph.num_nodes)
        copied = assignment.copy()
        assert copied.workload_vector(social_graph.num_nodes) is not vector


class TestBulkMessageEvents:
    def test_kernel_transcript_is_columnar(self):
        graph = generate_facebook_like(seed=3, num_nodes=80)
        _, environment, _ = _balanced(graph, kernel="incremental", iterations=50)
        ledger = environment.ledger
        descriptions = {event.description for event in ledger.bulk_message_events}
        assert "alg3-candidate-announcements" in descriptions
        assert "alg3-comparisons" in descriptions
        # Expansion agrees with the columnar counters.
        for event in ledger.bulk_message_events:
            expanded = event.expand()
            assert len(expanded) == event.count
            assert sum(m.size_bytes for m in expanded) == event.total_bytes
            assert (
                sum(1 for m in expanded if m.is_device_to_device)
                == event.device_to_device_count
            )

    def test_summary_accounts_for_bulk_messages(self):
        graph = generate_facebook_like(seed=3, num_nodes=80)
        _, environment, _ = _balanced(graph, kernel="incremental", iterations=50)
        ledger = environment.ledger
        eager = len(ledger.messages)
        bulk = sum(event.count for event in ledger.bulk_message_events)
        assert bulk > 0
        assert ledger.total_messages() == eager + bulk
        assert ledger.summary()["total_messages"] == float(eager + bulk)
