"""Pin a kernel's RNG-stream consumption (the block-draw contract).

Every batched kernel in this codebase documents exactly what it consumes
from the shared ``np.random.Generator`` — either *nothing* (the secure
comparison kernels: simulated table OTs need no masking randomness) or an
explicit block draw that is bit-for-bit the scalar loop's consumption (the
batched 1-out-of-2 OT draws ``2 * n`` pad values).  Prose contracts rot;
:func:`assert_stream_contract` turns them into executable assertions.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

import numpy as np

#: A replay of the documented draw pattern on a twin generator.
DrawReplay = Callable[[np.random.Generator], None]


def clone_generator(rng: np.random.Generator) -> np.random.Generator:
    """Return an independent generator positioned at ``rng``'s exact state."""
    twin = np.random.Generator(type(rng.bit_generator)())
    twin.bit_generator.state = rng.bit_generator.state
    return twin


def drain_churn_block(
    rng: np.random.Generator, num_devices: int, num_rounds: int
) -> None:
    """Replay ``FaultPlan.compile``'s documented churn draws and discard them.

    The churn block is one ``(num_devices,)`` uniform draw for the stationary
    initial state plus one ``(num_rounds - 1, num_devices)`` block for the
    Markov transitions (skipped when ``num_rounds <= 1``) — *independent of
    the probability values*, including the 0.0/1.0 boundaries.  Positioning a
    twin generator past this block lets a test derive the sibling blocks
    (dropout, stragglers, loss) exactly as a churn-free compile would, which
    is what pins "churn never shifts its siblings" as an executable contract.
    """
    rng.random(num_devices)
    if num_rounds > 1:
        rng.random((num_rounds - 1, num_devices))


def assert_stream_contract(
    fn: Callable[[np.random.Generator], object],
    rng: np.random.Generator,
    n_draws: Union[int, DrawReplay, None] = 0,
    draw: Optional[Callable[[np.random.Generator, int], None]] = None,
):
    """Run ``fn(rng)`` and assert it consumed exactly the documented draws.

    ``n_draws`` pins the contract:

    * ``0`` / ``None`` — ``fn`` must leave the stream untouched (the
      contract of every secure-comparison kernel);
    * an ``int`` with ``draw`` — ``draw(twin, n_draws)`` replays the
      documented block-draw pattern (e.g. ``lambda g, n: g.integers(m,
      size=n)``) on a twin generator seeded with the pre-call state;
    * a callable — invoked as ``n_draws(twin)`` to replay an arbitrary
      documented pattern.

    The assertion compares full bit-generator states, so both *how many*
    values and *how* they were drawn are pinned — a kernel that consumes the
    right count through a different draw shape still fails.  Returns
    ``fn``'s result so equivalence tests can chain on it.
    """
    twin = clone_generator(rng)
    result = fn(rng)
    if callable(n_draws):
        n_draws(twin)
    elif n_draws:
        if draw is None:
            raise TypeError(
                "an integer n_draws needs the draw=(generator, n) replay callable"
            )
        draw(twin, n_draws)
    assert rng.bit_generator.state == twin.bit_generator.state, (
        "RNG stream contract violated: the kernel consumed draws that the "
        "documented replay does not reproduce"
    )
    return result
