"""Tests for the pluggable compute backend (kernel parity, registry)."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.gnn.gat import GATLayer
from repro.gnn.gcn import GCNLayer
from repro.gnn.models import EncoderConfig, GNNEncoder, GraphInput
from repro.nn import functional as F
from repro.nn.backend import (
    OpsBackend,
    PreparedMatrix,
    available_backends,
    get_backend,
    register_backend,
    set_backend,
    use_backend,
)
from repro.nn.tensor import Tensor

BACKENDS = ("numpy", "reference", "dense")


def _random_csr(rng, rows=12, cols=12, density=0.3):
    mask = rng.random((rows, cols)) < density
    values = rng.random((rows, cols)) * mask
    return sp.csr_matrix(values)


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert set(BACKENDS).issubset(set(available_backends()))

    def test_use_backend_restores_previous(self):
        before = get_backend()
        with use_backend("reference") as backend:
            assert get_backend() is backend
            assert backend.name == "reference"
        assert get_backend() is before

    def test_set_backend_unknown_name(self):
        with pytest.raises(KeyError):
            set_backend("no-such-backend")

    def test_register_custom_backend(self):
        class Custom(OpsBackend):
            name = "custom-test"

        register_backend("custom-test", Custom)
        with use_backend("custom-test") as backend:
            assert isinstance(backend, Custom)

    def test_allow_fused_flags(self):
        with use_backend("reference") as backend:
            assert backend.allow_fused is False
        with use_backend("numpy") as backend:
            assert backend.allow_fused is True


class TestKernelParity:
    @pytest.mark.parametrize("name", BACKENDS)
    def test_spmm_and_adjoint(self, name):
        rng = np.random.default_rng(0)
        matrix = _random_csr(rng)
        dense = rng.random((12, 7))
        reference_out = matrix @ dense
        reference_adjoint = matrix.T @ dense
        with use_backend(name) as backend:
            np.testing.assert_allclose(backend.spmm(matrix, dense), reference_out, atol=1e-12)
            np.testing.assert_allclose(
                backend.spmm_t(matrix, dense), reference_adjoint, atol=1e-12
            )

    @pytest.mark.parametrize("name", BACKENDS)
    @pytest.mark.parametrize("trailing", [(), (5,), (3, 4)])
    def test_scatter_and_segment_ops(self, name, trailing):
        rng = np.random.default_rng(1)
        index = rng.integers(0, 6, size=40)
        values = rng.random((40,) + trailing)
        expected = np.zeros((6,) + trailing)
        np.add.at(expected, index, values)
        counts = np.bincount(index, minlength=6).astype(np.float64)
        with use_backend(name) as backend:
            np.testing.assert_allclose(
                backend.segment_sum(values, index, 6), expected, atol=1e-12
            )
            np.testing.assert_allclose(
                backend.scatter_rows(values, index, 6), expected, atol=1e-12
            )
            np.testing.assert_allclose(backend.segment_counts(index, 6), counts)
            np.testing.assert_array_equal(backend.take_rows(values, index[:5]), values[index[:5]])

    @pytest.mark.parametrize("name", BACKENDS)
    def test_empty_segments(self, name):
        values = np.zeros((0, 3))
        index = np.zeros(0, dtype=np.int64)
        with use_backend(name) as backend:
            out = backend.segment_sum(values, index, 4)
            assert out.shape == (4, 3)
            assert not out.any()


class TestAutogradParity:
    def _gcn_loss_and_grads(self, backend_name):
        rng = np.random.default_rng(3)
        adjacency = _random_csr(rng, 10, 10)
        features = Tensor(rng.random((10, 6)))
        with use_backend(backend_name):
            layer = GCNLayer(6, 4, rng=np.random.default_rng(7))
            out = layer(features, adjacency)
            loss = (out * out).sum()
            loss.backward()
            return (
                out.data.copy(),
                loss.item(),
                layer.weight.grad.copy(),
                layer.bias.grad.copy(),
            )

    def test_gcn_dense_vs_sparse_parity(self):
        out_ref, loss_ref, w_ref, b_ref = self._gcn_loss_and_grads("reference")
        for name in ("numpy", "dense"):
            out, loss, w_grad, b_grad = self._gcn_loss_and_grads(name)
            np.testing.assert_allclose(out, out_ref, atol=1e-9)
            assert abs(loss - loss_ref) < 1e-9
            np.testing.assert_allclose(w_grad, w_ref, atol=1e-9)
            np.testing.assert_allclose(b_grad, b_ref, atol=1e-9)

    def _gat_outputs(self, backend_name):
        rng = np.random.default_rng(4)
        edge_index = np.stack(
            [rng.integers(0, 8, size=30), rng.integers(0, 8, size=30)]
        )
        features = Tensor(rng.random((8, 5)), requires_grad=True)
        with use_backend(backend_name):
            layer = GATLayer(5, 3, num_heads=2, rng=np.random.default_rng(9))
            out = layer(features, edge_index)
            loss = (out * out).sum()
            loss.backward()
            return out.data.copy(), features.grad.copy(), layer.weight.grad.copy()

    def test_gat_backend_parity(self):
        out_ref, f_ref, w_ref = self._gat_outputs("reference")
        for name in ("numpy", "dense"):
            out, f_grad, w_grad = self._gat_outputs(name)
            np.testing.assert_allclose(out, out_ref, atol=1e-9)
            np.testing.assert_allclose(f_grad, f_ref, atol=1e-9)
            np.testing.assert_allclose(w_grad, w_ref, atol=1e-9)

    def test_fused_edge_attention_matches_composite(self):
        # The fused GAT kernel must reproduce the unfused composite graph
        # (gather + add + leaky-relu + segment softmax) in both the forward
        # values and the gradients, on the same backend.
        rng = np.random.default_rng(12)
        num_nodes, num_edges, heads = 9, 40, 3
        src = rng.integers(0, num_nodes, size=num_edges)
        dst = rng.integers(0, num_nodes, size=num_edges)
        scores = rng.standard_normal((num_nodes, heads))
        weights = rng.standard_normal((num_edges, heads))
        results = {}
        with use_backend("numpy"):
            for mode in ("fused", "composite"):
                src_scores = Tensor(scores.copy(), requires_grad=True)
                dst_scores = Tensor(scores.copy() * 0.5, requires_grad=True)
                if mode == "fused":
                    attention = F.edge_attention_softmax(
                        src_scores, dst_scores, src, dst, num_nodes, 0.2
                    )
                else:
                    logits = F.gather(src_scores, src) + F.gather(dst_scores, dst)
                    attention = F.segment_softmax(
                        logits.leaky_relu(0.2), dst, num_nodes
                    )
                (attention * Tensor(weights)).sum().backward()
                results[mode] = (
                    attention.data.copy(),
                    src_scores.grad.copy(),
                    dst_scores.grad.copy(),
                )
        for fused_part, composite_part in zip(results["fused"], results["composite"]):
            np.testing.assert_allclose(fused_part, composite_part, atol=1e-12)
        # Per-destination attention sums to one wherever edges land.
        totals = np.zeros((num_nodes, heads))
        np.add.at(totals, dst, results["fused"][0])
        landed = np.unique(dst)
        np.testing.assert_allclose(totals[landed], 1.0, atol=1e-9)

    def test_gat_fused_gate_follows_allow_fused(self):
        # The reference backend must execute the unfused graph; the fast
        # backend takes the fused kernel — outputs agree either way (see
        # test_gat_backend_parity), here we pin the gate itself.
        from repro.nn.backend import get_backend as _get
        with use_backend("reference"):
            assert _get().allow_fused is False
        with use_backend("numpy"):
            assert _get().allow_fused is True

    def test_encoder_parity_across_backends(self):
        rng = np.random.default_rng(5)
        adjacency = _random_csr(rng, 9, 9)
        graph_input = GraphInput.from_adjacency(adjacency)
        features_data = rng.random((9, 4))
        outputs = {}
        for name in BACKENDS:
            with use_backend(name):
                encoder = GNNEncoder(
                    4, EncoderConfig(num_layers=2, hidden_dim=6, output_dim=3, dropout=0.0),
                    rng=np.random.default_rng(21),
                )
                outputs[name] = encoder(Tensor(features_data), graph_input).data
        np.testing.assert_allclose(outputs["numpy"], outputs["reference"], atol=1e-9)
        np.testing.assert_allclose(outputs["dense"], outputs["reference"], atol=1e-9)

    def test_gather_scatter_gradients(self):
        rng = np.random.default_rng(6)
        index = rng.integers(0, 5, size=12)
        grads = {}
        for name in BACKENDS:
            with use_backend(name):
                source = Tensor(rng.random((5, 3)), requires_grad=True)
                # Use a fixed data array per backend by re-seeding the values.
                source.data[:] = np.arange(15, dtype=np.float64).reshape(5, 3)
                gathered = F.gather(source, index)
                pooled = F.scatter_add(gathered, index % 4, 4)
                (pooled * pooled).sum().backward()
                grads[name] = source.grad.copy()
        np.testing.assert_allclose(grads["numpy"], grads["reference"], atol=1e-9)
        np.testing.assert_allclose(grads["dense"], grads["reference"], atol=1e-9)


class TestPreparedMatrices:
    def test_sparse_matmul_rejects_dense_input(self):
        with pytest.raises(TypeError):
            F.sparse_matmul(np.eye(3), Tensor(np.ones((3, 2))))

    def test_prepare_matrix_is_cached_by_identity(self):
        matrix = _random_csr(np.random.default_rng(8))
        with use_backend("numpy") as backend:
            first = backend.prepare_matrix(matrix)
            second = backend.prepare_matrix(matrix)
            assert first is second
            assert isinstance(first, PreparedMatrix)
            # a PreparedMatrix passes through untouched
            assert backend.prepare_matrix(first) is first

    def test_sparse_matmul_accepts_prepared_matrix(self):
        rng = np.random.default_rng(9)
        matrix = _random_csr(rng)
        prepared = PreparedMatrix(matrix)
        tensor = Tensor(rng.random((12, 4)), requires_grad=True)
        out = F.sparse_matmul(prepared, tensor)
        np.testing.assert_allclose(out.data, matrix @ tensor.data, atol=1e-12)
        out.sum().backward()
        np.testing.assert_allclose(
            tensor.grad, matrix.T @ np.ones((12, 4)), atol=1e-12
        )


class TestParameterRebindInvariant:
    """The fused GCN memos key on `Parameter.data` object identity, which is
    sound only while every weight update REBINDS the array instead of
    mutating it in place.  These tests enforce that contract on all current
    update paths so a future in-place optimizer cannot silently serve stale
    cached activations."""

    def test_optimizers_rebind_parameter_data(self):
        from repro.nn.module import Parameter
        from repro.nn.optim import SGD, Adam

        for make_optimizer in (
            lambda params: Adam(params, lr=0.1),
            lambda params: SGD(params, lr=0.1),
        ):
            parameter = Parameter(np.ones((3, 2)))
            parameter.grad = np.ones((3, 2))
            optimizer = make_optimizer([parameter])
            before = parameter.data
            optimizer.step()
            assert parameter.data is not before
            np.testing.assert_array_equal(before, np.ones((3, 2)))

    def test_load_state_dict_rebinds_parameter_data(self):
        rng = np.random.default_rng(0)
        layer = GCNLayer(4, 3, rng=rng)
        state = layer.state_dict()
        before = layer.weight.data
        layer.load_state_dict(state)
        assert layer.weight.data is not before

    def test_stale_cache_detected_after_rebind(self):
        # After any rebind, the fused forward must recompute, not reuse.
        rng = np.random.default_rng(2)
        adjacency = _random_csr(rng, 8, 8)
        features = Tensor(rng.random((8, 4)))
        with use_backend("numpy"):
            layer = GCNLayer(4, 3, rng=np.random.default_rng(3))
            first = layer(features, adjacency).data
            layer.weight.data = layer.weight.data + 1.0  # rebind
            second = layer(features, adjacency).data
            assert not np.allclose(first, second)


class TestBatchedKernels:
    """spmm_many / spmm_t_many / fold_chain and the batched autograd ops."""

    @pytest.mark.parametrize("name", BACKENDS)
    def test_spmm_many_matches_per_slice_oracle(self, name):
        rng = np.random.default_rng(30)
        matrix = _random_csr(rng, 14, 14)
        stack = rng.standard_normal((4, 14, 6))
        with use_backend(name) as backend:
            collapsed = backend.spmm_many(matrix, stack)
            collapsed_t = backend.spmm_t_many(matrix, stack)
            # The base-class default executes the per-slice definition with
            # this backend's own spmm: the bit-for-bit oracle for the
            # collapsed kernel.
            oracle = OpsBackend.spmm_many(backend, matrix, stack)
            oracle_t = OpsBackend.spmm_t_many(backend, matrix, stack)
        assert collapsed.shape == (4, 14, 6)
        np.testing.assert_array_equal(collapsed, oracle)
        np.testing.assert_array_equal(collapsed_t, oracle_t)

    @pytest.mark.parametrize("name", BACKENDS)
    def test_fold_chain_matches_sequential_application(self, name):
        rng = np.random.default_rng(31)
        pool = _random_csr(rng, 5, 14, density=0.4)
        adjacency = _random_csr(rng, 14, 14)
        dense = rng.standard_normal((14, 3))
        with use_backend(name) as backend:
            folded = backend.fold_chain([pool, adjacency])
            out = backend.spmm(folded, dense)
            expected = backend.spmm(pool, backend.spmm(adjacency, dense))
        np.testing.assert_allclose(out, expected, atol=1e-12)

    def test_fold_chain_single_and_empty(self):
        rng = np.random.default_rng(32)
        matrix = _random_csr(rng, 6, 6)
        with use_backend("numpy") as backend:
            dense = rng.standard_normal((6, 2))
            np.testing.assert_allclose(
                backend.spmm(backend.fold_chain([matrix]), dense),
                matrix @ dense,
                atol=1e-12,
            )
            with pytest.raises(ValueError):
                backend.fold_chain([])

    def test_sparse_matmul_many_gradients_match_per_slice(self):
        rng = np.random.default_rng(33)
        matrix = _random_csr(rng, 10, 10)
        stack_data = rng.standard_normal((3, 10, 4))
        upstream = rng.standard_normal((3, 10, 4))
        with use_backend("numpy"):
            stacked = Tensor(stack_data.copy(), requires_grad=True)
            out = F.sparse_matmul_many(matrix, stacked)
            (out * Tensor(upstream)).sum().backward()
            per_slice_out, per_slice_grad = [], []
            for k in range(3):
                single = Tensor(stack_data[k].copy(), requires_grad=True)
                slice_out = F.sparse_matmul(matrix, single)
                (slice_out * Tensor(upstream[k])).sum().backward()
                per_slice_out.append(slice_out.data)
                per_slice_grad.append(single.grad)
        np.testing.assert_array_equal(out.data, np.stack(per_slice_out))
        np.testing.assert_array_equal(stacked.grad, np.stack(per_slice_grad))

    def test_batched_matmul_gradients_match_per_slice(self):
        # (K, N, d) @ (d, o) and (K, N, d) @ (K, d, o): the backward pass
        # must swap the *last two* axes, not transpose the whole stack.
        rng = np.random.default_rng(34)
        stack_data = rng.standard_normal((3, 7, 5))
        shared_data = rng.standard_normal((5, 2))
        batched_data = rng.standard_normal((3, 5, 2))
        upstream = rng.standard_normal((3, 7, 2))
        for rhs_data in (shared_data, batched_data):
            lhs = Tensor(stack_data.copy(), requires_grad=True)
            rhs = Tensor(rhs_data.copy(), requires_grad=True)
            ((lhs @ rhs) * Tensor(upstream)).sum().backward()
            lhs_expected = np.zeros_like(stack_data)
            rhs_expected = np.zeros_like(rhs_data)
            for k in range(3):
                rhs_slice = rhs_data if rhs_data.ndim == 2 else rhs_data[k]
                lhs_expected[k] = upstream[k] @ rhs_slice.T
                if rhs_data.ndim == 2:
                    rhs_expected += stack_data[k].T @ upstream[k]
                else:
                    rhs_expected[k] = stack_data[k].T @ upstream[k]
            np.testing.assert_allclose(lhs.grad, lhs_expected, atol=1e-12)
            np.testing.assert_allclose(rhs.grad, rhs_expected, atol=1e-12)


class TestFusedLayerParity:
    """Fused single-node layers vs the composite graphs they replace.

    Randomised float64 shapes; forward values AND every gradient must agree.
    """

    def _composite_gcn(self, features, matrix, weight, bias, activation):
        out = F.sparse_matmul(matrix, features @ weight)
        if bias is not None:
            out = out + bias
        if activation == "relu":
            out = out.relu()
        return out

    @pytest.mark.parametrize("activation", [None, "relu"])
    @pytest.mark.parametrize("with_bias", [True, False])
    def test_fused_gcn_layer_matches_composite(self, activation, with_bias):
        rng = np.random.default_rng(40)
        nodes, d_in, d_out = int(rng.integers(8, 20)), int(rng.integers(3, 9)), int(rng.integers(2, 7))
        matrix = _random_csr(rng, nodes, nodes)
        features_data = rng.standard_normal((nodes, d_in))
        weight_data = rng.standard_normal((d_in, d_out))
        bias_data = rng.standard_normal(d_out) if with_bias else None
        upstream = rng.standard_normal((nodes, d_out))
        results = {}
        with use_backend("numpy"):
            for mode in ("fused", "composite"):
                features = Tensor(features_data.copy(), requires_grad=True)
                weight = Tensor(weight_data.copy(), requires_grad=True)
                bias = Tensor(bias_data.copy(), requires_grad=True) if with_bias else None
                if mode == "fused":
                    out = F.fused_gcn_layer(features, matrix, weight, bias, activation)
                else:
                    out = self._composite_gcn(features, matrix, weight, bias, activation)
                (out * Tensor(upstream)).sum().backward()
                results[mode] = (
                    out.data,
                    features.grad,
                    weight.grad,
                    bias.grad if with_bias else np.zeros(1),
                )
        for fused_part, composite_part in zip(results["fused"], results["composite"]):
            np.testing.assert_allclose(fused_part, composite_part, atol=1e-12)

    def test_fused_gcn_layer_folded_bias_operator(self):
        # M = fold(P, A) with bias entering as (P @ 1) ⊗ b must equal the
        # unfolded P @ (A (X W) + 1 bᵀ) — same math, reassociated.
        rng = np.random.default_rng(41)
        pool = _random_csr(rng, 6, 15, density=0.4)
        adjacency = _random_csr(rng, 15, 15)
        features_data = rng.standard_normal((15, 5))
        weight_data = rng.standard_normal((5, 4))
        bias_data = rng.standard_normal(4)
        upstream = rng.standard_normal((6, 4))
        with use_backend("numpy") as backend:
            folded = backend.fold_chain([pool, adjacency])
            row_sums = np.asarray(pool.sum(axis=1)).ravel()

            features = Tensor(features_data.copy(), requires_grad=True)
            weight = Tensor(weight_data.copy(), requires_grad=True)
            bias = Tensor(bias_data.copy(), requires_grad=True)
            fused = F.fused_gcn_layer(
                features, folded, weight, bias, bias_operator=row_sums
            )
            (fused * Tensor(upstream)).sum().backward()

            features_u = Tensor(features_data.copy(), requires_grad=True)
            weight_u = Tensor(weight_data.copy(), requires_grad=True)
            bias_u = Tensor(bias_data.copy(), requires_grad=True)
            unfolded = F.sparse_matmul(
                pool, F.sparse_matmul(adjacency, features_u @ weight_u) + bias_u
            )
            (unfolded * Tensor(upstream)).sum().backward()
        np.testing.assert_allclose(fused.data, unfolded.data, atol=1e-10)
        np.testing.assert_allclose(features.grad, features_u.grad, atol=1e-10)
        np.testing.assert_allclose(weight.grad, weight_u.grad, atol=1e-10)
        np.testing.assert_allclose(bias.grad, bias_u.grad, atol=1e-10)

    def test_fused_pool_head_matches_composite(self):
        rng = np.random.default_rng(42)
        pool = _random_csr(rng, 5, 12, density=0.5)
        embeddings_data = rng.standard_normal((12, 6))
        weight_data = rng.standard_normal((6, 3))
        bias_data = rng.standard_normal(3)
        upstream = rng.standard_normal((5, 3))
        with use_backend("numpy"):
            embeddings = Tensor(embeddings_data.copy(), requires_grad=True)
            weight = Tensor(weight_data.copy(), requires_grad=True)
            bias = Tensor(bias_data.copy(), requires_grad=True)
            fused = F.fused_pool_head(embeddings, pool, weight, bias)
            (fused * Tensor(upstream)).sum().backward()

            embeddings_c = Tensor(embeddings_data.copy(), requires_grad=True)
            weight_c = Tensor(weight_data.copy(), requires_grad=True)
            bias_c = Tensor(bias_data.copy(), requires_grad=True)
            composite = F.sparse_matmul(pool, embeddings_c) @ weight_c + bias_c
            (composite * Tensor(upstream)).sum().backward()
        np.testing.assert_allclose(fused.data, composite.data, atol=1e-12)
        np.testing.assert_allclose(embeddings.grad, embeddings_c.grad, atol=1e-12)
        np.testing.assert_allclose(weight.grad, weight_c.grad, atol=1e-12)
        np.testing.assert_allclose(bias.grad, bias_c.grad, atol=1e-12)

    @pytest.mark.parametrize("concat_heads", [True, False])
    def test_fused_gat_layer_matches_composite(self, concat_heads):
        # Same layer parameters, fused (allow_fused=True) vs the composite
        # graph forced via the allow_fused=False escape hatch on the SAME
        # fast backend — so any drift is the fusion, not the kernels.
        from repro.nn.backend import FastNumpyBackend

        rng = np.random.default_rng(43)
        nodes, edges = int(rng.integers(8, 16)), int(rng.integers(25, 50))
        edge_index = np.stack(
            [rng.integers(0, nodes, size=edges), rng.integers(0, nodes, size=edges)]
        )
        features_data = rng.standard_normal((nodes, 5))
        layer = GATLayer(5, 3, num_heads=2, concat_heads=concat_heads,
                         rng=np.random.default_rng(44))
        out_dim = layer.output_dim
        upstream = rng.standard_normal((nodes, out_dim))
        hatch = FastNumpyBackend()
        hatch.allow_fused = False
        results = {}
        for mode, backend in (("fused", "numpy"), ("composite", hatch)):
            layer.zero_grad()
            with use_backend(backend):
                features = Tensor(features_data.copy(), requires_grad=True)
                out = layer(features, edge_index, activation="relu")
                (out * Tensor(upstream)).sum().backward()
            results[mode] = (
                out.data,
                features.grad,
                layer.weight.grad.copy(),
                layer.attention_src.grad.copy(),
                layer.attention_dst.grad.copy(),
                layer.bias.grad.copy(),
            )
        for fused_part, composite_part in zip(results["fused"], results["composite"]):
            np.testing.assert_allclose(fused_part, composite_part, atol=1e-10)

    def test_fused_folded_head_matches_unfolded_chain(self):
        # (M (H W_f) + s ⊗ b_f) W_h + b_h with the weight products collapsed
        # must match the unfolded fused_gcn_layer -> pool_head pair.
        rng = np.random.default_rng(47)
        pool = _random_csr(rng, 6, 14, density=0.4)
        adjacency = _random_csr(rng, 14, 14)
        hidden_data = rng.standard_normal((14, 5))
        layer_weight_data = rng.standard_normal((5, 4))
        layer_bias_data = rng.standard_normal(4)
        head_weight_data = rng.standard_normal((4, 3))
        head_bias_data = rng.standard_normal(3)
        upstream = rng.standard_normal((6, 3))
        with use_backend("numpy") as backend:
            folded = backend.fold_chain([pool, adjacency])
            row_sums = np.asarray(pool.sum(axis=1)).ravel()

            hidden = Tensor(hidden_data.copy(), requires_grad=True)
            layer_weight = Tensor(layer_weight_data.copy(), requires_grad=True)
            layer_bias = Tensor(layer_bias_data.copy(), requires_grad=True)
            head_weight = Tensor(head_weight_data.copy(), requires_grad=True)
            head_bias = Tensor(head_bias_data.copy(), requires_grad=True)
            fused = F.fused_folded_head(
                hidden, folded, layer_weight, layer_bias,
                head_weight, head_bias, row_sums,
            )
            (fused * Tensor(upstream)).sum().backward()

            hidden_u = Tensor(hidden_data.copy(), requires_grad=True)
            layer_weight_u = Tensor(layer_weight_data.copy(), requires_grad=True)
            layer_bias_u = Tensor(layer_bias_data.copy(), requires_grad=True)
            head_weight_u = Tensor(head_weight_data.copy(), requires_grad=True)
            head_bias_u = Tensor(head_bias_data.copy(), requires_grad=True)
            pooled = F.fused_gcn_layer(
                hidden_u, folded, layer_weight_u, layer_bias_u,
                bias_operator=row_sums,
            )
            unfolded = pooled @ head_weight_u + head_bias_u
            (unfolded * Tensor(upstream)).sum().backward()
        np.testing.assert_allclose(fused.data, unfolded.data, atol=1e-10)
        np.testing.assert_allclose(hidden.grad, hidden_u.grad, atol=1e-10)
        np.testing.assert_allclose(layer_weight.grad, layer_weight_u.grad, atol=1e-10)
        np.testing.assert_allclose(layer_bias.grad, layer_bias_u.grad, atol=1e-10)
        np.testing.assert_allclose(head_weight.grad, head_weight_u.grad, atol=1e-10)
        np.testing.assert_allclose(head_bias.grad, head_bias_u.grad, atol=1e-10)

    def test_fused_masked_cross_entropy_matches_composite_bitwise(self):
        rng = np.random.default_rng(48)
        nodes, classes = 17, 4
        logits_data = rng.standard_normal((nodes, classes))
        targets = rng.integers(0, classes, size=nodes)
        mask = rng.random(nodes) < 0.5
        weights = mask.astype(np.float64)
        total = max(weights.sum(), 1.0)
        with use_backend("numpy"):
            logits = Tensor(logits_data.copy(), requires_grad=True)
            fused = F.fused_masked_cross_entropy(logits, targets, weights, total)
            fused.backward()

            logits_c = Tensor(logits_data.copy(), requires_grad=True)
            picked = F.gather_rows_columns(
                F.log_softmax(logits_c, axis=-1), targets
            )
            composite = -(picked * Tensor(weights)).sum() / total
            composite.backward()
        # The fused forward replays the composite chain op for op: bitwise.
        assert fused.data == composite.data
        np.testing.assert_allclose(logits.grad, logits_c.grad, atol=1e-12)

    def test_fused_masked_cross_entropy_stacked_matches_per_slice(self):
        rng = np.random.default_rng(49)
        stack, nodes, classes = 3, 11, 5
        logits_data = rng.standard_normal((stack, nodes, classes))
        targets = rng.integers(0, classes, size=nodes)
        weights = (rng.random(nodes) < 0.6).astype(np.float64)
        total = max(weights.sum(), 1.0)
        upstream = rng.standard_normal(stack)
        with use_backend("numpy"):
            logits = Tensor(logits_data.copy(), requires_grad=True)
            losses = F.fused_masked_cross_entropy(logits, targets, weights, total)
            (losses * Tensor(upstream)).sum().backward()
            per_slice = []
            slice_grads = []
            for k in range(stack):
                slice_logits = Tensor(logits_data[k].copy(), requires_grad=True)
                loss = F.fused_masked_cross_entropy(
                    slice_logits, targets, weights, total
                )
                (loss * Tensor(upstream[k])).backward()
                per_slice.append(loss.data)
                slice_grads.append(slice_logits.grad)
        # Each stacked slice must be bit-identical to the 2-D call on it.
        assert losses.data.shape == (stack,)
        np.testing.assert_array_equal(losses.data, np.asarray(per_slice))
        np.testing.assert_allclose(
            logits.grad, np.stack(slice_grads), atol=1e-12
        )

    def test_allow_fused_escape_hatch_on_gcn(self):
        from repro.nn.backend import FastNumpyBackend

        rng = np.random.default_rng(45)
        adjacency = _random_csr(rng, 9, 9)
        features_data = rng.standard_normal((9, 4))
        layer = GCNLayer(4, 3, rng=np.random.default_rng(46))
        hatch = FastNumpyBackend()
        hatch.allow_fused = False
        results = {}
        for mode, backend in (("fused", "numpy"), ("composite", hatch)):
            layer.zero_grad()
            with use_backend(backend):
                features = Tensor(features_data.copy(), requires_grad=True)
                out = layer(features, adjacency, activation="relu")
                (out * out).sum().backward()
            results[mode] = (out.data, features.grad, layer.weight.grad.copy(),
                             layer.bias.grad.copy())
        for fused_part, composite_part in zip(results["fused"], results["composite"]):
            np.testing.assert_allclose(fused_part, composite_part, atol=1e-10)


class TestUseBackendExceptionSafety:
    def test_restored_after_body_raises(self):
        before = get_backend()
        with pytest.raises(RuntimeError, match="boom"):
            with use_backend("reference"):
                assert get_backend().name == "reference"
                raise RuntimeError("boom")
        assert get_backend() is before

    def test_restored_after_failed_switch(self):
        before = get_backend()
        with pytest.raises(KeyError):
            with use_backend("no-such-backend"):
                pragma = "unreachable"  # noqa: F841
        assert get_backend() is before

    def test_nested_contexts_unwind_in_order(self):
        before = get_backend()
        with use_backend("dense") as outer:
            with pytest.raises(ValueError):
                with use_backend("reference"):
                    assert get_backend().name == "reference"
                    raise ValueError("inner")
            assert get_backend() is outer
        assert get_backend() is before


class TestDenseBackendCacheBudget:
    def _matrices(self, count, size=10):
        rng = np.random.default_rng(50)
        return [_random_csr(rng, size, size, density=0.5) for _ in range(count)]

    def test_eviction_respects_byte_budget(self):
        from repro.nn.backend import DenseBackend

        # One densified 10x10 float64 operator is 800 bytes; a 2000-byte
        # budget holds two.
        backend = DenseBackend(cache_budget_bytes=2000)
        matrices = self._matrices(3)
        dense = np.ones((10, 4))
        for matrix in matrices:
            backend.spmm(matrix, dense)
        assert len(backend._dense_cache) == 2
        assert backend._dense_cache_bytes <= 2000
        # The oldest entry was evicted; using it again still computes
        # correctly (and re-caches, evicting the next-oldest).
        out = backend.spmm(matrices[0], dense)
        np.testing.assert_allclose(out, matrices[0] @ dense, atol=1e-12)
        assert id(matrices[0]) in backend._dense_cache

    def test_newest_entry_survives_tiny_budget(self):
        from repro.nn.backend import DenseBackend

        backend = DenseBackend(cache_budget_bytes=1)
        matrices = self._matrices(2)
        dense = np.ones((10, 2))
        for matrix in matrices:
            out = backend.spmm(matrix, dense)
            np.testing.assert_allclose(out, matrix @ dense, atol=1e-12)
            assert len(backend._dense_cache) == 1

    def test_recent_use_protects_from_eviction(self):
        from repro.nn.backend import DenseBackend

        backend = DenseBackend(cache_budget_bytes=2000)
        matrices = self._matrices(3)
        dense = np.ones((10, 2))
        backend.spmm(matrices[0], dense)
        backend.spmm(matrices[1], dense)
        backend.spmm(matrices[0], dense)  # refresh 0 -> 1 is now LRU
        backend.spmm(matrices[2], dense)
        assert id(matrices[0]) in backend._dense_cache
        assert id(matrices[1]) not in backend._dense_cache
        assert id(matrices[2]) in backend._dense_cache

    def test_budget_validation(self):
        from repro.nn.backend import DenseBackend

        with pytest.raises(ValueError):
            DenseBackend(cache_budget_bytes=0)


_torch_missing = __import__("importlib.util", fromlist=["util"]).find_spec("torch") is None


class TestTorchBackend:
    def test_registration_tracks_importability(self):
        assert ("torch" in available_backends()) == (not _torch_missing)

    @pytest.mark.skipif(_torch_missing, reason="torch not installed")
    def test_torch_kernels_match_numpy(self):
        rng = np.random.default_rng(60)
        matrix = _random_csr(rng, 12, 12)
        dense = rng.standard_normal((12, 5))
        stack = rng.standard_normal((3, 12, 5))
        with use_backend("numpy") as fast:
            expected = fast.spmm(matrix, dense)
            expected_t = fast.spmm_t(matrix, dense)
            expected_many = fast.spmm_many(matrix, stack)
        with use_backend("torch") as backend:
            np.testing.assert_allclose(backend.spmm(matrix, dense), expected, atol=1e-9)
            np.testing.assert_allclose(backend.spmm_t(matrix, dense), expected_t, atol=1e-9)
            np.testing.assert_allclose(
                backend.spmm_many(matrix, stack), expected_many, atol=1e-9
            )

    @pytest.mark.skipif(_torch_missing, reason="torch not installed")
    def test_torch_end_to_end_gcn_parity(self):
        rng = np.random.default_rng(61)
        adjacency = _random_csr(rng, 10, 10)
        features_data = rng.standard_normal((10, 4))
        outputs = {}
        for name in ("numpy", "torch"):
            with use_backend(name):
                layer = GCNLayer(4, 3, rng=np.random.default_rng(62))
                out = layer(Tensor(features_data.copy()), adjacency, activation="relu")
                outputs[name] = out.data
        np.testing.assert_allclose(outputs["torch"], outputs["numpy"], atol=1e-9)
