"""Tests for the pluggable compute backend (kernel parity, registry)."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.gnn.gat import GATLayer
from repro.gnn.gcn import GCNLayer
from repro.gnn.models import EncoderConfig, GNNEncoder, GraphInput
from repro.nn import functional as F
from repro.nn.backend import (
    OpsBackend,
    PreparedMatrix,
    available_backends,
    get_backend,
    register_backend,
    set_backend,
    use_backend,
)
from repro.nn.tensor import Tensor

BACKENDS = ("numpy", "reference", "dense")


def _random_csr(rng, rows=12, cols=12, density=0.3):
    mask = rng.random((rows, cols)) < density
    values = rng.random((rows, cols)) * mask
    return sp.csr_matrix(values)


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert set(BACKENDS).issubset(set(available_backends()))

    def test_use_backend_restores_previous(self):
        before = get_backend()
        with use_backend("reference") as backend:
            assert get_backend() is backend
            assert backend.name == "reference"
        assert get_backend() is before

    def test_set_backend_unknown_name(self):
        with pytest.raises(KeyError):
            set_backend("no-such-backend")

    def test_register_custom_backend(self):
        class Custom(OpsBackend):
            name = "custom-test"

        register_backend("custom-test", Custom)
        with use_backend("custom-test") as backend:
            assert isinstance(backend, Custom)

    def test_allow_fused_flags(self):
        with use_backend("reference") as backend:
            assert backend.allow_fused is False
        with use_backend("numpy") as backend:
            assert backend.allow_fused is True


class TestKernelParity:
    @pytest.mark.parametrize("name", BACKENDS)
    def test_spmm_and_adjoint(self, name):
        rng = np.random.default_rng(0)
        matrix = _random_csr(rng)
        dense = rng.random((12, 7))
        reference_out = matrix @ dense
        reference_adjoint = matrix.T @ dense
        with use_backend(name) as backend:
            np.testing.assert_allclose(backend.spmm(matrix, dense), reference_out, atol=1e-12)
            np.testing.assert_allclose(
                backend.spmm_t(matrix, dense), reference_adjoint, atol=1e-12
            )

    @pytest.mark.parametrize("name", BACKENDS)
    @pytest.mark.parametrize("trailing", [(), (5,), (3, 4)])
    def test_scatter_and_segment_ops(self, name, trailing):
        rng = np.random.default_rng(1)
        index = rng.integers(0, 6, size=40)
        values = rng.random((40,) + trailing)
        expected = np.zeros((6,) + trailing)
        np.add.at(expected, index, values)
        counts = np.bincount(index, minlength=6).astype(np.float64)
        with use_backend(name) as backend:
            np.testing.assert_allclose(
                backend.segment_sum(values, index, 6), expected, atol=1e-12
            )
            np.testing.assert_allclose(
                backend.scatter_rows(values, index, 6), expected, atol=1e-12
            )
            np.testing.assert_allclose(backend.segment_counts(index, 6), counts)
            np.testing.assert_array_equal(backend.take_rows(values, index[:5]), values[index[:5]])

    @pytest.mark.parametrize("name", BACKENDS)
    def test_empty_segments(self, name):
        values = np.zeros((0, 3))
        index = np.zeros(0, dtype=np.int64)
        with use_backend(name) as backend:
            out = backend.segment_sum(values, index, 4)
            assert out.shape == (4, 3)
            assert not out.any()


class TestAutogradParity:
    def _gcn_loss_and_grads(self, backend_name):
        rng = np.random.default_rng(3)
        adjacency = _random_csr(rng, 10, 10)
        features = Tensor(rng.random((10, 6)))
        with use_backend(backend_name):
            layer = GCNLayer(6, 4, rng=np.random.default_rng(7))
            out = layer(features, adjacency)
            loss = (out * out).sum()
            loss.backward()
            return (
                out.data.copy(),
                loss.item(),
                layer.weight.grad.copy(),
                layer.bias.grad.copy(),
            )

    def test_gcn_dense_vs_sparse_parity(self):
        out_ref, loss_ref, w_ref, b_ref = self._gcn_loss_and_grads("reference")
        for name in ("numpy", "dense"):
            out, loss, w_grad, b_grad = self._gcn_loss_and_grads(name)
            np.testing.assert_allclose(out, out_ref, atol=1e-9)
            assert abs(loss - loss_ref) < 1e-9
            np.testing.assert_allclose(w_grad, w_ref, atol=1e-9)
            np.testing.assert_allclose(b_grad, b_ref, atol=1e-9)

    def _gat_outputs(self, backend_name):
        rng = np.random.default_rng(4)
        edge_index = np.stack(
            [rng.integers(0, 8, size=30), rng.integers(0, 8, size=30)]
        )
        features = Tensor(rng.random((8, 5)), requires_grad=True)
        with use_backend(backend_name):
            layer = GATLayer(5, 3, num_heads=2, rng=np.random.default_rng(9))
            out = layer(features, edge_index)
            loss = (out * out).sum()
            loss.backward()
            return out.data.copy(), features.grad.copy(), layer.weight.grad.copy()

    def test_gat_backend_parity(self):
        out_ref, f_ref, w_ref = self._gat_outputs("reference")
        for name in ("numpy", "dense"):
            out, f_grad, w_grad = self._gat_outputs(name)
            np.testing.assert_allclose(out, out_ref, atol=1e-9)
            np.testing.assert_allclose(f_grad, f_ref, atol=1e-9)
            np.testing.assert_allclose(w_grad, w_ref, atol=1e-9)

    def test_fused_edge_attention_matches_composite(self):
        # The fused GAT kernel must reproduce the unfused composite graph
        # (gather + add + leaky-relu + segment softmax) in both the forward
        # values and the gradients, on the same backend.
        rng = np.random.default_rng(12)
        num_nodes, num_edges, heads = 9, 40, 3
        src = rng.integers(0, num_nodes, size=num_edges)
        dst = rng.integers(0, num_nodes, size=num_edges)
        scores = rng.standard_normal((num_nodes, heads))
        weights = rng.standard_normal((num_edges, heads))
        results = {}
        with use_backend("numpy"):
            for mode in ("fused", "composite"):
                src_scores = Tensor(scores.copy(), requires_grad=True)
                dst_scores = Tensor(scores.copy() * 0.5, requires_grad=True)
                if mode == "fused":
                    attention = F.edge_attention_softmax(
                        src_scores, dst_scores, src, dst, num_nodes, 0.2
                    )
                else:
                    logits = F.gather(src_scores, src) + F.gather(dst_scores, dst)
                    attention = F.segment_softmax(
                        logits.leaky_relu(0.2), dst, num_nodes
                    )
                (attention * Tensor(weights)).sum().backward()
                results[mode] = (
                    attention.data.copy(),
                    src_scores.grad.copy(),
                    dst_scores.grad.copy(),
                )
        for fused_part, composite_part in zip(results["fused"], results["composite"]):
            np.testing.assert_allclose(fused_part, composite_part, atol=1e-12)
        # Per-destination attention sums to one wherever edges land.
        totals = np.zeros((num_nodes, heads))
        np.add.at(totals, dst, results["fused"][0])
        landed = np.unique(dst)
        np.testing.assert_allclose(totals[landed], 1.0, atol=1e-9)

    def test_gat_fused_gate_follows_allow_fused(self):
        # The reference backend must execute the unfused graph; the fast
        # backend takes the fused kernel — outputs agree either way (see
        # test_gat_backend_parity), here we pin the gate itself.
        from repro.nn.backend import get_backend as _get
        with use_backend("reference"):
            assert _get().allow_fused is False
        with use_backend("numpy"):
            assert _get().allow_fused is True

    def test_encoder_parity_across_backends(self):
        rng = np.random.default_rng(5)
        adjacency = _random_csr(rng, 9, 9)
        graph_input = GraphInput.from_adjacency(adjacency)
        features_data = rng.random((9, 4))
        outputs = {}
        for name in BACKENDS:
            with use_backend(name):
                encoder = GNNEncoder(
                    4, EncoderConfig(num_layers=2, hidden_dim=6, output_dim=3, dropout=0.0),
                    rng=np.random.default_rng(21),
                )
                outputs[name] = encoder(Tensor(features_data), graph_input).data
        np.testing.assert_allclose(outputs["numpy"], outputs["reference"], atol=1e-9)
        np.testing.assert_allclose(outputs["dense"], outputs["reference"], atol=1e-9)

    def test_gather_scatter_gradients(self):
        rng = np.random.default_rng(6)
        index = rng.integers(0, 5, size=12)
        grads = {}
        for name in BACKENDS:
            with use_backend(name):
                source = Tensor(rng.random((5, 3)), requires_grad=True)
                # Use a fixed data array per backend by re-seeding the values.
                source.data[:] = np.arange(15, dtype=np.float64).reshape(5, 3)
                gathered = F.gather(source, index)
                pooled = F.scatter_add(gathered, index % 4, 4)
                (pooled * pooled).sum().backward()
                grads[name] = source.grad.copy()
        np.testing.assert_allclose(grads["numpy"], grads["reference"], atol=1e-9)
        np.testing.assert_allclose(grads["dense"], grads["reference"], atol=1e-9)


class TestPreparedMatrices:
    def test_sparse_matmul_rejects_dense_input(self):
        with pytest.raises(TypeError):
            F.sparse_matmul(np.eye(3), Tensor(np.ones((3, 2))))

    def test_prepare_matrix_is_cached_by_identity(self):
        matrix = _random_csr(np.random.default_rng(8))
        with use_backend("numpy") as backend:
            first = backend.prepare_matrix(matrix)
            second = backend.prepare_matrix(matrix)
            assert first is second
            assert isinstance(first, PreparedMatrix)
            # a PreparedMatrix passes through untouched
            assert backend.prepare_matrix(first) is first

    def test_sparse_matmul_accepts_prepared_matrix(self):
        rng = np.random.default_rng(9)
        matrix = _random_csr(rng)
        prepared = PreparedMatrix(matrix)
        tensor = Tensor(rng.random((12, 4)), requires_grad=True)
        out = F.sparse_matmul(prepared, tensor)
        np.testing.assert_allclose(out.data, matrix @ tensor.data, atol=1e-12)
        out.sum().backward()
        np.testing.assert_allclose(
            tensor.grad, matrix.T @ np.ones((12, 4)), atol=1e-12
        )


class TestParameterRebindInvariant:
    """The fused GCN memos key on `Parameter.data` object identity, which is
    sound only while every weight update REBINDS the array instead of
    mutating it in place.  These tests enforce that contract on all current
    update paths so a future in-place optimizer cannot silently serve stale
    cached activations."""

    def test_optimizers_rebind_parameter_data(self):
        from repro.nn.module import Parameter
        from repro.nn.optim import SGD, Adam

        for make_optimizer in (
            lambda params: Adam(params, lr=0.1),
            lambda params: SGD(params, lr=0.1),
        ):
            parameter = Parameter(np.ones((3, 2)))
            parameter.grad = np.ones((3, 2))
            optimizer = make_optimizer([parameter])
            before = parameter.data
            optimizer.step()
            assert parameter.data is not before
            np.testing.assert_array_equal(before, np.ones((3, 2)))

    def test_load_state_dict_rebinds_parameter_data(self):
        rng = np.random.default_rng(0)
        layer = GCNLayer(4, 3, rng=rng)
        state = layer.state_dict()
        before = layer.weight.data
        layer.load_state_dict(state)
        assert layer.weight.data is not before

    def test_stale_cache_detected_after_rebind(self):
        # After any rebind, the fused forward must recompute, not reuse.
        rng = np.random.default_rng(2)
        adjacency = _random_csr(rng, 8, 8)
        features = Tensor(rng.random((8, 4)))
        with use_backend("numpy"):
            layer = GCNLayer(4, 3, rng=np.random.default_rng(3))
            first = layer(features, adjacency).data
            layer.weight.data = layer.weight.data + 1.0  # rebind
            second = layer(features, adjacency).data
            assert not np.allclose(first, second)
