"""Two-party secure execution over a real transport: the equivalence harness.

The ``transport_smoke``-marked tests are the bounded tier-1 surface (CI runs
them explicitly as the two-process smoke): a real party process per session,
small operand counts, every receive deadline-bounded.  The ``slow``-marked
sweep widens the same equivalence checks across all operand widths for the
nightly job.

Contracts pinned here:

* **bit-for-bit equivalence** — a :class:`RemoteParty` session produces the
  same results, accountant counters + capped log, canonical ledger
  transcript, and final RNG state as the in-process simulation
  (``SecureComparator.compare_batch(execute=True)`` /
  ``ObliviousTransfer.transfer_batch``);
* **measured == analytic** — protocol frame payloads reconcile exactly
  against ``comparison_cost()`` / ``ot_payload_bytes()``, and tampered
  accounting raises :class:`MeasuredCostMismatch` instead of passing silently;
* **typed failure surfaces** — CRC/length/kind violations, timeouts, closed
  pipes, and chaos-killed peers all raise typed errors, never hang, and a
  kill inside a runtime worker surfaces as a ``FailedAttempt``.
"""

from __future__ import annotations

import zlib

import numpy as np
import pytest

from helpers.rng_contract import assert_stream_contract

from repro.crypto import (
    MeasuredCostMismatch,
    ObliviousTransfer,
    RemoteParty,
    RemotePartyError,
    SecureComparator,
    TranscriptAccountant,
    comparison_cost,
)
from repro.crypto.transport import charge_comparison_ledger, ot_payload_bytes
from repro.federation import CommunicationLedger, TransportFrame
from repro.runtime import (
    CallableItem,
    ChannelClosed,
    ChannelError,
    ChannelTimeout,
    ChaosConfig,
    FrameCorruption,
    FrameKind,
    PartyChannel,
    ProcessExecutor,
    WorkItemFailure,
    WorkPlan,
    chaos_action,
    channel_pair,
)
from repro.runtime.channel import FRAME_OVERHEAD_BYTES, HEADER, MAX_FRAME_BYTES

#: Generous bound for same-host sessions; the point is boundedness, not speed.
TIMEOUT = 20.0


def _operands(bit_width: int, count: int, seed: int):
    """Random operand pairs plus the protocol edge values (0, equal, max)."""
    rng = np.random.default_rng(seed)
    top = (1 << bit_width) - 1
    left = list(rng.integers(0, min(top, (1 << 62) - 1), size=count, endpoint=True))
    right = list(rng.integers(0, min(top, (1 << 62) - 1), size=count, endpoint=True))
    left += [0, top, top, 0]
    right += [top, 0, top, 0]
    if bit_width == 64:
        left = [int(v) for v in left] + [(1 << 64) - 1, (1 << 64) - 2]
        right = [int(v) for v in right] + [(1 << 64) - 2, (1 << 64) - 1]
    return left, right


def _ot_messages(message_bits: int, count: int, seed: int):
    rng = np.random.default_rng(seed)
    top = (1 << message_bits) - 1
    zero = rng.integers(0, top, size=count, dtype=np.uint64, endpoint=True)
    one = rng.integers(0, top, size=count, dtype=np.uint64, endpoint=True)
    choices = rng.integers(0, 2, size=count)
    if message_bits == 64:
        zero[:2] = [(1 << 64) - 1, 0]
        one[:2] = [0, (1 << 64) - 1]
    if message_bits < 64:
        return zero.astype(np.int64), one.astype(np.int64), choices
    return zero, one, choices


# --------------------------------------------------------------------------- #
# Channel unit tests (both endpoints in-process; no subprocess needed)
# --------------------------------------------------------------------------- #
class TestPartyChannel:
    def test_roundtrip_and_stats(self):
        driver, party = channel_pair(timeout=TIMEOUT)
        sent = driver.send(FrameKind.OT_REQUEST, b"abcde")
        assert sent == 5
        driver.send(FrameKind.CONTROL)  # empty payload is legal
        kind, payload = party.recv(expected=(FrameKind.OT_REQUEST,))
        assert kind is FrameKind.OT_REQUEST and payload == b"abcde"
        kind, payload = party.recv()
        assert kind is FrameKind.CONTROL and payload == b""

        assert driver.stats.frames_sent == 2
        assert driver.stats.payload_bytes_sent == 5
        assert driver.stats.by_kind_sent == {"OT_REQUEST": 5, "CONTROL": 0}
        assert driver.stats.wire_bytes_sent == 5 + 2 * FRAME_OVERHEAD_BYTES
        assert party.stats.frames_received == 2
        assert party.stats.payload_bytes_received == 5
        assert party.stats.by_kind_received == {"OT_REQUEST": 5, "CONTROL": 0}
        assert party.stats.wire_bytes_received == 5 + 2 * FRAME_OVERHEAD_BYTES
        snapshot = driver.stats.snapshot()
        assert snapshot["frames_sent"] == 2
        assert snapshot["wire_bytes_sent"] == driver.stats.wire_bytes_sent
        driver.close()
        party.close()

    def test_duplex_both_directions(self):
        driver, party = channel_pair(timeout=TIMEOUT)
        driver.send(FrameKind.CMP_CHOICES, b"\x01\x02")
        party.recv(expected=(FrameKind.CMP_CHOICES,))
        party.send(FrameKind.CMP_RESPONSE, b"\xff")
        kind, payload = driver.recv(expected=(FrameKind.CMP_RESPONSE,))
        assert payload == b"\xff"
        driver.close()
        party.close()

    def test_crc_corruption_is_detected(self):
        driver, party = channel_pair(timeout=TIMEOUT)
        body = b"payload"
        header = HEADER.pack(len(body), zlib.crc32(body) ^ 0xDEADBEEF, 0)
        driver._connection.send_bytes(header + body)
        with pytest.raises(FrameCorruption, match="CRC mismatch"):
            party.recv()
        driver.close()
        party.close()

    def test_length_field_mismatch_is_detected(self):
        driver, party = channel_pair(timeout=TIMEOUT)
        body = b"payload"
        header = HEADER.pack(len(body) + 3, zlib.crc32(body), 0)
        driver._connection.send_bytes(header + body)
        with pytest.raises(FrameCorruption, match="length field"):
            party.recv()
        driver.close()
        party.close()

    def test_unknown_kind_tag_is_detected(self):
        driver, party = channel_pair(timeout=TIMEOUT)
        body = b"x"
        header = HEADER.pack(len(body), zlib.crc32(body), 250)
        driver._connection.send_bytes(header + body)
        with pytest.raises(FrameCorruption, match="unknown frame kind"):
            party.recv()
        driver.close()
        party.close()

    def test_truncated_frame_is_detected(self):
        driver, party = channel_pair(timeout=TIMEOUT)
        driver._connection.send_bytes(b"\x00\x01")  # shorter than the header
        with pytest.raises(FrameCorruption, match="truncated"):
            party.recv()
        driver.close()
        party.close()

    def test_unexpected_kind_mid_protocol_is_detected(self):
        driver, party = channel_pair(timeout=TIMEOUT)
        driver.send(FrameKind.CONTROL, b"hello")
        with pytest.raises(FrameCorruption, match="expected OT_REQUEST"):
            party.recv(expected=(FrameKind.OT_REQUEST,))
        driver.close()
        party.close()

    def test_error_frame_reraises_the_peers_failure_text(self):
        driver, party = channel_pair(timeout=TIMEOUT)
        party.send(FrameKind.ERROR, b"ValueError: bad operand")
        with pytest.raises(ChannelError, match="ValueError: bad operand"):
            driver.recv(expected=(FrameKind.CONTROL,))
        driver.close()
        party.close()

    def test_recv_is_deadline_bounded(self):
        driver, party = channel_pair(timeout=TIMEOUT)
        with pytest.raises(ChannelTimeout):
            driver.recv(timeout=0.05)
        driver.close()
        party.close()

    def test_closed_endpoint_raises_on_use(self):
        driver, party = channel_pair(timeout=TIMEOUT)
        driver.close()
        with pytest.raises(ChannelClosed):
            driver.send(FrameKind.CONTROL, b"")
        with pytest.raises(ChannelClosed):
            driver.recv()
        party.close()

    def test_peer_hangup_surfaces_as_channel_closed(self):
        driver, party = channel_pair(timeout=TIMEOUT)
        party.close()
        with pytest.raises(ChannelClosed, match="peer hung up"):
            driver.recv(timeout=1.0)
        driver.close()

    def test_oversized_payload_is_rejected_before_sending(self):
        driver, party = channel_pair(timeout=TIMEOUT)
        with pytest.raises(ValueError, match="exceeds cap"):
            driver.send(FrameKind.CONTROL, bytes(MAX_FRAME_BYTES + 1))
        driver.close()
        party.close()

    def test_timeout_must_be_positive(self):
        with pytest.raises(ValueError):
            channel_pair(timeout=0.0)


# --------------------------------------------------------------------------- #
# Two-party equivalence: comparison sessions
# --------------------------------------------------------------------------- #
@pytest.mark.transport_smoke
class TestRemoteComparisonEquivalence:
    def test_matches_in_process_simulation_bit_for_bit(self):
        bit_width = 16
        left, right = _operands(bit_width, count=19, seed=3)
        count = len(left)

        remote_acc = TranscriptAccountant()
        remote_ledger = CommunicationLedger()
        rng = np.random.default_rng(11)
        driver = RemoteParty(
            bit_width=bit_width, accountant=remote_acc, rng=rng,
            timeout=TIMEOUT, ledger=remote_ledger,
        )
        # RNG contract: a remote comparison draws nothing (table OTs need no
        # masking randomness) — same as the in-process kernel.
        outcome = assert_stream_contract(
            lambda _generator: driver.compare_batch(left, right), rng, 0
        )

        local_acc = TranscriptAccountant()
        comparator = SecureComparator(
            bit_width=bit_width, accountant=local_acc, rng=np.random.default_rng(11)
        )
        batch = comparator.compare_batch(left, right, execute=True)

        assert np.array_equal(outcome.left_ge_right, batch.left_ge_right)
        assert remote_acc.snapshot() == local_acc.snapshot()
        assert remote_acc._log == local_acc._log

        # Canonical ledger transcript: identical to the factored in-process
        # charge; the physical frames live only on the transport side-list.
        twin_ledger = CommunicationLedger()
        charge_comparison_ledger(twin_ledger, count, outcome.cost, 0, 1)
        assert remote_ledger.message_records() == twin_ledger.message_records()
        assert not twin_ledger.transport_frames
        assert remote_ledger.transport_frames

        # Measured == analytic, exactly.
        cost = comparison_cost(bit_width, block_bits=SecureComparator.BLOCK_BITS)
        assert outcome.report.analytic_payload_bytes == count * cost.bits // 8
        assert outcome.report.protocol_payload_bytes == outcome.report.analytic_payload_bytes
        assert outcome.report.wire_bytes == (
            outcome.report.protocol_payload_bytes
            + outcome.report.control_payload_bytes
            + FRAME_OVERHEAD_BYTES * outcome.report.frames
        )
        assert set(outcome.report.by_kind) >= {"CMP_CHOICES", "CMP_RESPONSE", "CMP_AND"}

        # Every frame of the session is attributed on the ledger side-list.
        assert remote_ledger.total_transport_frames() == outcome.report.frames
        assert remote_ledger.total_transport_wire_bytes() == outcome.report.wire_bytes
        summary = remote_ledger.summary()
        assert summary["transport_frames"] == outcome.report.frames
        assert summary["transport_wire_bytes"] == outcome.report.wire_bytes
        assert "transport_frames" not in twin_ledger.summary()

    def test_empty_ot_batch_short_circuits(self):
        driver = RemoteParty(timeout=TIMEOUT)
        outcome = driver.transfer_batch([], [], [])
        assert outcome.chosen_messages.shape == (0,)
        assert outcome.report.frames == 0

    def test_operand_validation_mirrors_the_in_process_kernel(self):
        driver = RemoteParty(bit_width=8, timeout=TIMEOUT)
        with pytest.raises(ValueError):
            driver.compare_batch([1, 2], [3])
        with pytest.raises(ValueError):
            driver.compare_batch([300], [1])
        with pytest.raises(ValueError):
            driver.transfer_batch([1], [2], [5])
        with pytest.raises(ValueError):
            RemoteParty(bit_width=0)
        with pytest.raises(ValueError):
            # Remote OT moves whole bytes on the wire.
            driver.transfer_batch([1], [2], [1], message_bits=12)


# --------------------------------------------------------------------------- #
# Two-party equivalence: OT sessions (including the 64-bit pad fix)
# --------------------------------------------------------------------------- #
@pytest.mark.transport_smoke
class TestRemoteOTEquivalence:
    @pytest.mark.parametrize("message_bits", (32, 64))
    def test_matches_in_process_transfer_batch(self, message_bits):
        count = 17
        zero, one, choices = _ot_messages(message_bits, count, seed=5)

        remote_acc = TranscriptAccountant()
        rng = np.random.default_rng(7)
        driver = RemoteParty(accountant=remote_acc, rng=rng, timeout=TIMEOUT)
        if message_bits >= 64:
            replay = lambda g, n: g.integers(
                0, (1 << 64) - 1, size=(n // 2, 2), dtype=np.uint64, endpoint=True
            )
        else:
            replay = lambda g, n: g.integers(1 << message_bits, size=(n // 2, 2))
        outcome = assert_stream_contract(
            lambda _generator: driver.transfer_batch(
                zero, one, choices, message_bits=message_bits
            ),
            rng, 2 * count, draw=replay,
        )

        local_acc = TranscriptAccountant()
        local = ObliviousTransfer(local_acc, np.random.default_rng(7)).transfer_batch(
            zero, one, choices, message_bits=message_bits
        )
        assert np.array_equal(outcome.chosen_messages, local)
        assert outcome.chosen_messages.dtype == local.dtype
        assert remote_acc.snapshot() == local_acc.snapshot()
        assert remote_acc._log == local_acc._log
        assert outcome.report.protocol_payload_bytes == count * ot_payload_bytes(
            message_bits
        )
        assert outcome.report.protocol_payload_bytes == outcome.report.analytic_payload_bytes

    def test_precomputed_pads_keep_the_stream_and_results_identical(self):
        message_bits, count = 32, 12
        zero, one, choices = _ot_messages(message_bits, count, seed=9)
        partial = 5  # pool smaller than the batch: pool rows + live remainder

        rng = np.random.default_rng(13)
        driver = RemoteParty(rng=rng, timeout=TIMEOUT)
        pooled = assert_stream_contract(
            lambda _generator: driver.precompute_pads(partial, message_bits),
            rng, 2 * partial,
            draw=lambda g, n: g.integers(1 << message_bits, size=(n // 2, 2)),
        )
        assert pooled == partial
        outcome = assert_stream_contract(
            lambda _generator: driver.transfer_batch(
                zero, one, choices, message_bits=message_bits
            ),
            rng, 2 * (count - partial),
            draw=lambda g, n: g.integers(1 << message_bits, size=(n // 2, 2)),
        )

        pool_free = ObliviousTransfer(
            TranscriptAccountant(), np.random.default_rng(13)
        ).transfer_batch(zero, one, choices, message_bits=message_bits)
        assert np.array_equal(outcome.chosen_messages, pool_free)


# --------------------------------------------------------------------------- #
# Measured-vs-analytic: divergence fails loudly
# --------------------------------------------------------------------------- #
@pytest.mark.transport_smoke
class TestMeasuredCostContract:
    def test_tampered_accounting_raises_measured_cost_mismatch(self, monkeypatch):
        original = PartyChannel.send

        def inflated(self, kind, payload=b""):
            size = original(self, kind, payload)
            if FrameKind(kind) is FrameKind.CMP_CHOICES:
                # Phantom byte: the accounting claims more than crossed the
                # wire, exactly the divergence the reconciliation must catch.
                self.stats.payload_bytes_sent += 1
                name = FrameKind.CMP_CHOICES.name
                self.stats.by_kind_sent[name] = self.stats.by_kind_sent.get(name, 0) + 1
            return size

        monkeypatch.setattr(PartyChannel, "send", inflated)
        driver = RemoteParty(bit_width=8, timeout=TIMEOUT)
        with pytest.raises(MeasuredCostMismatch) as excinfo:
            driver.compare_batch([3], [5], session_key="tampered")
        assert isinstance(excinfo.value, RemotePartyError)
        assert "!= analytic" in str(excinfo.value)


# --------------------------------------------------------------------------- #
# Failure model: chaos-killed peers are typed errors, never hangs
# --------------------------------------------------------------------------- #
@pytest.mark.transport_smoke
class TestChaosPeerDeath:
    def test_party_killed_before_first_frame_is_a_typed_error(self):
        driver = RemoteParty(
            bit_width=8, timeout=5.0, chaos=ChaosConfig(seed=0, crash_rate=1.0)
        )
        with pytest.raises(RemotePartyError) as excinfo:
            driver.compare_batch([1, 2], [2, 1], session_key="chaos-kill")
        assert "exit code 86" in str(excinfo.value)

    def test_party_killed_mid_ot_session_is_a_typed_error(self):
        # Pick a seed whose schedule survives the first two party sends
        # (ready, OT_REQUEST) and kills the third (the result reveal) — a
        # genuine mid-protocol death with frames already on the wire.
        session_key = "chaos-mid-ot"
        seed = next(
            s for s in range(1000)
            if chaos_action(ChaosConfig(seed=s, crash_rate=0.5), f"{session_key}/step-1", 1) is None
            and chaos_action(ChaosConfig(seed=s, crash_rate=0.5), f"{session_key}/step-2", 1) is None
            and chaos_action(ChaosConfig(seed=s, crash_rate=0.5), f"{session_key}/step-3", 1) == "crash"
        )
        driver = RemoteParty(
            timeout=5.0, chaos=ChaosConfig(seed=seed, crash_rate=0.5)
        )
        with pytest.raises(RemotePartyError, match="exit code 86"):
            driver.transfer_batch([1, 2], [3, 4], [0, 1], session_key=session_key)

    def test_killed_party_inside_a_worker_surfaces_as_failed_attempt(self):
        # The full runtime path: a worker dispatches a real two-party session,
        # chaos hard-kills the party, and the driver's typed error must come
        # back as FailedAttempt provenance — never a hang (every receive is
        # deadline-bounded).
        plan = WorkPlan()
        plan.add(
            CallableItem(
                target="repro.crypto.transport:chaos_comparison_probe",
                kwargs=(
                    ("bit_width", 8), ("count", 4), ("crash_rate", 1.0),
                    ("seed", 0), ("timeout", 5.0),
                ),
                label="chaos-probe", timeout=60.0,
            )
        )
        executor = ProcessExecutor(max_workers=1, retries=0, backoff_base=0.0)
        with pytest.raises(WorkItemFailure) as excinfo:
            executor.execute(plan)
        [key] = plan.requests
        attempts = excinfo.value.failure_attempts[key]
        assert [failed.kind for failed in attempts] == ["error"]
        assert "RemotePartyError" in attempts[0].reason

    def test_probe_without_chaos_completes_inside_a_worker(self):
        # Control arm: the same nested-process path succeeds when the chaos
        # schedule injects nothing (this also exercises spawning a party from
        # a daemonic pool worker).
        plan = WorkPlan()
        plan.add(
            CallableItem(
                target="repro.crypto.transport:chaos_comparison_probe",
                kwargs=(
                    ("bit_width", 8), ("count", 6), ("crash_rate", 0.0),
                    ("seed", 1), ("timeout", 10.0),
                ),
                label="probe", timeout=60.0,
            )
        )
        report = ProcessExecutor(max_workers=1, retries=1, backoff_base=0.0).execute(plan)
        [key] = plan.requests
        value = report.records[key].value
        assert value["count"] == 6
        assert value["wire_bytes"] > 0
        assert 0.0 <= value["true_fraction"] <= 1.0


# --------------------------------------------------------------------------- #
# Ledger attribution of transport frames
# --------------------------------------------------------------------------- #
class TestLedgerTransportFrames:
    def test_side_list_never_touches_the_canonical_transcript(self):
        ledger = CommunicationLedger()
        before = ledger.message_records()
        frame = ledger.record_transport_frame(0, 1, "CMP_CHOICES", 40, 49)
        assert isinstance(frame, TransportFrame)
        assert ledger.message_records() == before
        assert ledger.total_transport_frames() == 1
        assert ledger.total_transport_payload_bytes() == 40
        assert ledger.total_transport_wire_bytes() == 49

    def test_summary_keys_appear_only_when_frames_exist(self):
        ledger = CommunicationLedger()
        assert "transport_frames" not in ledger.summary()
        ledger.record_transport_frame(0, 1, "CONTROL", 5, 14)
        summary = ledger.summary()
        assert summary["transport_frames"] == 1
        assert summary["transport_payload_bytes"] == 5
        assert summary["transport_wire_bytes"] == 14
        ledger.reset()
        assert not ledger.transport_frames
        assert "transport_frames" not in ledger.summary()

    def test_frame_validation(self):
        with pytest.raises(ValueError):
            TransportFrame(0, 1, "CONTROL", payload_bytes=-1, wire_bytes=0, round_index=0)
        with pytest.raises(ValueError):
            TransportFrame(0, 1, "CONTROL", payload_bytes=10, wire_bytes=9, round_index=0)


# --------------------------------------------------------------------------- #
# Nightly: the full equivalence sweep across operand widths
# --------------------------------------------------------------------------- #
@pytest.mark.slow
class TestEquivalenceSweep:
    @pytest.mark.parametrize("bit_width", (8, 16, 24, 32, 48, 64))
    def test_comparison_equivalence_across_widths(self, bit_width):
        left, right = _operands(bit_width, count=33, seed=bit_width)
        count = len(left)
        remote_acc = TranscriptAccountant()
        rng = np.random.default_rng(bit_width)
        driver = RemoteParty(
            bit_width=bit_width, accountant=remote_acc, rng=rng, timeout=TIMEOUT
        )
        outcome = assert_stream_contract(
            lambda _generator: driver.compare_batch(left, right), rng, 0
        )
        local_acc = TranscriptAccountant()
        batch = SecureComparator(
            bit_width=bit_width, accountant=local_acc,
            rng=np.random.default_rng(bit_width),
        ).compare_batch(left, right, execute=True)
        assert np.array_equal(outcome.left_ge_right, batch.left_ge_right)
        assert remote_acc.snapshot() == local_acc.snapshot()
        assert remote_acc._log == local_acc._log
        assert outcome.report.protocol_payload_bytes == count * outcome.cost.bits // 8

    @pytest.mark.parametrize("message_bits", (8, 16, 24, 32, 48, 64))
    def test_ot_equivalence_across_widths(self, message_bits):
        count = 29
        zero, one, choices = _ot_messages(message_bits, count, seed=message_bits)
        remote_acc = TranscriptAccountant()
        rng = np.random.default_rng(message_bits)
        driver = RemoteParty(accountant=remote_acc, rng=rng, timeout=TIMEOUT)
        outcome = driver.transfer_batch(zero, one, choices, message_bits=message_bits)
        local_acc = TranscriptAccountant()
        local = ObliviousTransfer(
            local_acc, np.random.default_rng(message_bits)
        ).transfer_batch(zero, one, choices, message_bits=message_bits)
        assert np.array_equal(outcome.chosen_messages, local)
        assert remote_acc.snapshot() == local_acc.snapshot()
        assert remote_acc._log == local_acc._log
        assert outcome.report.protocol_payload_bytes == count * ot_payload_bytes(
            message_bits
        )
