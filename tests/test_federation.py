"""Tests for the federated runtime: devices, server, ledger, environment."""

from __future__ import annotations

import numpy as np
import pytest

from repro.federation import (
    SERVER_ID,
    CommunicationLedger,
    Device,
    FederatedEnvironment,
    Message,
    MessageKind,
    Server,
    build_devices,
)
from repro.graph import partition_node_level


class TestMessagesAndLedger:
    def test_message_validation(self):
        with pytest.raises(ValueError):
            Message(sender=0, recipient=1, kind=MessageKind.OTHER, size_bytes=-1, round_index=0)

    def test_is_device_to_device(self):
        device_msg = Message(0, 1, MessageKind.FEATURE_EXCHANGE, 10, 0)
        server_msg = Message(0, SERVER_ID, MessageKind.SERVER_COORDINATION, 10, 0)
        assert device_msg.is_device_to_device
        assert not server_msg.is_device_to_device

    def test_ledger_counts(self):
        ledger = CommunicationLedger()
        ledger.send(0, 1, MessageKind.FEATURE_EXCHANGE, 100)
        ledger.send(1, SERVER_ID, MessageKind.SERVER_COORDINATION, 10)
        ledger.compute(0, 2.5)
        assert ledger.total_messages() == 2
        assert ledger.total_messages([MessageKind.FEATURE_EXCHANGE]) == 1
        assert ledger.total_bytes() == 110
        assert ledger.device_to_device_messages() == 1

    def test_per_device_counters(self):
        ledger = CommunicationLedger()
        ledger.send(0, 1, MessageKind.EMBEDDING_EXCHANGE, 8)
        ledger.send(0, 2, MessageKind.EMBEDDING_EXCHANGE, 8)
        ledger.send(2, 0, MessageKind.EMBEDDING_EXCHANGE, 8)
        counts = ledger.per_device_message_counts(3)
        np.testing.assert_array_equal(counts, [2, 0, 1])
        ledger.compute(1, 4.0)
        np.testing.assert_allclose(ledger.per_device_compute(3), [0, 4.0, 0])

    def test_epoch_completion_time_is_straggler_bound(self):
        ledger = CommunicationLedger()
        ledger.compute(0, 1.0)
        ledger.compute(1, 10.0)
        time = ledger.epoch_completion_time(2, compute_time_per_unit=1.0, communication_latency=0.0)
        assert time == pytest.approx(10.0)

    def test_rounds_and_reset(self):
        ledger = CommunicationLedger()
        assert ledger.next_round() == 1
        ledger.send(0, 1, MessageKind.OTHER, 1)
        ledger.reset()
        assert ledger.total_messages() == 0
        assert ledger.current_round == 0

    def test_summary_contains_kind_breakdown(self):
        ledger = CommunicationLedger()
        ledger.send(0, 1, MessageKind.FEATURE_EXCHANGE, 5)
        summary = ledger.summary(num_devices=2)
        assert summary["messages_feature_exchange"] == 1
        assert "avg_messages_per_device" in summary

    def test_compute_event_validation(self):
        ledger = CommunicationLedger()
        with pytest.raises(ValueError):
            ledger.compute(0, -1.0)


class TestDevice:
    def test_build_devices(self, small_graph):
        partition = partition_node_level(small_graph)
        devices = build_devices(partition)
        assert len(devices) == small_graph.num_nodes
        assert devices[0].device_id == 0
        assert devices[0].degree == small_graph.degree(0)

    def test_neighbor_selection_rules(self, small_graph):
        partition = partition_node_level(small_graph)
        device = Device(ego=partition[0])
        device.select_all_neighbors()
        assert device.workload == device.degree
        first_neighbor = int(partition[0].neighbors[0])
        device.select_neighbors([first_neighbor])
        assert device.selected_neighbors == [first_neighbor]
        with pytest.raises(ValueError):
            device.select_neighbors([10_000])

    def test_add_remove_selected_neighbor(self, small_graph):
        partition = partition_node_level(small_graph)
        device = Device(ego=partition[0])
        neighbor = int(partition[0].neighbors[0])
        device.add_selected_neighbor(neighbor)
        device.add_selected_neighbor(neighbor)  # idempotent
        assert device.workload == 1
        device.remove_selected_neighbor(neighbor)
        assert device.workload == 0
        with pytest.raises(ValueError):
            device.add_selected_neighbor(99_999)

    def test_training_state_reset(self, small_graph):
        partition = partition_node_level(small_graph)
        device = Device(ego=partition[0])
        device.store_received_feature(3, np.ones(4))
        device.store_received_embedding(3, np.ones(2))
        device.vertex_embedding = np.ones(2)
        device.reset_training_state()
        assert not device.received_features and not device.received_embeddings
        assert device.vertex_embedding is None


class TestServer:
    def test_candidate_collection_and_selection(self):
        server = Server(rng=np.random.default_rng(0))
        server.receive_candidate(3, True)
        server.receive_candidate(4, False)
        server.receive_candidate(5, True)
        assert server.candidate_vertex_set() == [3, 5]
        assert server.select_maximum([5]) == 5
        server.reset_candidates()
        assert server.candidate_vertex_set() == []

    def test_select_maximum_tie_break_is_among_winners(self):
        server = Server(rng=np.random.default_rng(0))
        winner = server.select_maximum([2, 7])
        assert winner in (2, 7)
        with pytest.raises(ValueError):
            server.select_maximum([])

    def test_broadcast_records_messages(self):
        server = Server()
        server.broadcast([0, 1, 2], size_bytes=16)
        assert server.ledger.total_messages() == 3
        assert server.ledger.total_bytes() == 48


class TestFederatedEnvironment:
    def test_from_graph_builds_one_device_per_vertex(self, small_graph):
        environment = FederatedEnvironment.from_graph(small_graph, seed=0)
        assert environment.num_devices == small_graph.num_nodes
        assert environment.device_ids() == list(range(small_graph.num_nodes))
        assert environment.degrees()[0] == small_graph.degree(0)

    def test_workload_tracking(self, small_graph):
        environment = FederatedEnvironment.from_graph(small_graph, seed=0)
        assert environment.max_workload() == 0
        environment.devices[0].select_all_neighbors()
        assert environment.max_workload() == small_graph.degree(0)
        assert environment.workloads()[0] == small_graph.degree(0)

    def test_exchange_validates_endpoints(self, small_graph):
        environment = FederatedEnvironment.from_graph(small_graph, seed=0)
        environment.exchange(0, 1, MessageKind.FEATURE_EXCHANGE, 10)
        with pytest.raises(KeyError):
            environment.exchange(0, 10_000, MessageKind.FEATURE_EXCHANGE, 10)
        with pytest.raises(KeyError):
            environment.charge_compute(10_000, 1.0)

    def test_assignment_roundtrip_and_coverage(self, small_graph):
        environment = FederatedEnvironment.from_graph(small_graph, seed=0)
        full = {
            device_id: [int(v) for v in device.ego.neighbors]
            for device_id, device in environment.devices.items()
        }
        environment.apply_assignment(full)
        assert environment.validate_edge_coverage()
        assert environment.assignment() == {k: sorted(v) for k, v in full.items()}
        # Dropping an edge from both sides breaks coverage.
        u, v = int(small_graph.edges[0, 0]), int(small_graph.edges[0, 1])
        broken = {k: [n for n in vs if not (k == u and n == v) and not (k == v and n == u)]
                  for k, vs in full.items()}
        environment.apply_assignment(broken)
        assert not environment.validate_edge_coverage()

    def test_directed_edges_cached_and_complete(self, small_graph):
        environment = FederatedEnvironment.from_graph(small_graph, seed=0)
        edges = environment.directed_edges()
        assert edges.shape == (2, 2 * small_graph.num_edges)
        assert environment.directed_edges() is edges

    def test_summary_keys(self, small_graph):
        environment = FederatedEnvironment.from_graph(small_graph, seed=0)
        summary = environment.summary()
        assert {"num_devices", "max_workload", "total_messages"} <= set(summary)
