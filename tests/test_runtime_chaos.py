"""Chaos-hardening of the parallel runtime: seeded kills, stalls, backoff.

The scheduler's promise under injected worker faults: every item still
completes (retries converge because injection applies only to attempts
``<= max_attempt``), the merged report is **bit-identical** to a fault-free
serial run, and the failure provenance — which attempt died, on which
worker, crash vs timeout — is recorded per item.
"""

from __future__ import annotations

import pytest

from repro.core import default_config_for
from repro.runtime import (
    ChaosConfig,
    FailedAttempt,
    GraphSpec,
    LumosItem,
    ProcessExecutor,
    SerialExecutor,
    WorkPlan,
    backoff_delay,
    chaos_action,
)

SPEC = GraphSpec(dataset="facebook", seed=0, num_nodes=40)


def _config(epsilon: float):
    return (
        default_config_for("facebook")
        .with_mcmc_iterations(10)
        .with_epochs(3)
        .with_epsilon(epsilon)
        .with_seed(0)
    )


def _plan(epsilons=(0.5, 2.0), **item_kwargs):
    plan = WorkPlan()
    for epsilon in epsilons:
        plan.add(
            LumosItem(
                graph_spec=SPEC, config=_config(epsilon), task="supervised",
                split_seed=0, keep_transcript=True, label=f"eps={epsilon}",
                **item_kwargs,
            )
        )
    return plan


def _assert_records_match(fault_free, chaotic, plan):
    assert set(fault_free.records) == set(chaotic.records)
    for key in plan.requests:
        a, b = fault_free.records[key], chaotic.records[key]
        assert a.value == b.value
        assert a.ledger_summary == b.ledger_summary
        assert a.transcript_digest == b.transcript_digest
        assert a.ledger_records == b.ledger_records
        assert a.accountant == b.accountant
        assert a.rng_state == b.rng_state


# --------------------------------------------------------------------------- #
# Unit: the deterministic injection & backoff primitives
# --------------------------------------------------------------------------- #
class TestChaosAction:
    def test_pure_function_of_seed_key_attempt(self):
        chaos = ChaosConfig(seed=3, crash_rate=0.5, stall_rate=0.5)
        actions = {chaos_action(chaos, f"item-{i}", 1) for i in range(50)}
        assert actions <= {"crash", "stall"}
        assert len(actions) == 2  # both outcomes occur across keys
        for i in range(50):
            assert chaos_action(chaos, f"item-{i}", 1) == chaos_action(
                chaos, f"item-{i}", 1
            )

    def test_injection_stops_after_max_attempt(self):
        chaos = ChaosConfig(seed=0, crash_rate=1.0, max_attempt=2)
        assert chaos_action(chaos, "item", 1) == "crash"
        assert chaos_action(chaos, "item", 2) == "crash"
        assert chaos_action(chaos, "item", 3) is None

    def test_none_config_injects_nothing(self):
        assert chaos_action(None, "item", 1) is None

    def test_rates_partition_the_unit_interval(self):
        assert chaos_action(ChaosConfig(crash_rate=1.0), "item", 1) == "crash"
        assert chaos_action(ChaosConfig(stall_rate=1.0), "item", 1) == "stall"
        assert chaos_action(ChaosConfig(), "item", 1) is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"crash_rate": 1.5},
            {"stall_rate": -0.1},
            {"crash_rate": 0.6, "stall_rate": 0.6},
            {"stall_seconds": -1.0},
            {"max_attempt": -1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ChaosConfig(**kwargs)


class TestBackoffDelay:
    def test_zero_base_disables_backoff(self):
        assert backoff_delay(0, "item", 3, 0.0) == 0.0

    def test_deterministic_and_jittered(self):
        first = backoff_delay(7, "item", 1, 0.1)
        assert first == backoff_delay(7, "item", 1, 0.1)
        assert 0.05 <= first < 0.15  # base * jitter in [0.5, 1.5)
        assert first != backoff_delay(8, "item", 1, 0.1)

    def test_exponential_growth(self):
        base = 0.1
        for attempt in (1, 2, 3):
            delay = backoff_delay(0, "item", attempt, base)
            scale = base * 2 ** (attempt - 1)
            assert 0.5 * scale <= delay < 1.5 * scale

    def test_attempt_zero_is_non_negative_and_base_scaled(self):
        # The exponent clamps at zero: attempt 0 and attempt 1 both wait one
        # jittered base interval, never a negative-exponent fraction.
        delay = backoff_delay(3, "item", 0, 0.2)
        assert 0.1 <= delay < 0.3
        assert delay == backoff_delay(3, "item", 0, 0.2)

    def test_huge_attempt_counts_never_overflow_and_hit_the_cap(self):
        from repro.runtime.executor import BACKOFF_CAP_SECONDS

        for attempt in (64, 1025, 10**9):
            assert backoff_delay(0, "item", attempt, 1.0) == BACKOFF_CAP_SECONDS
        # Even a base large enough to push the float product to infinity
        # stays total and capped rather than raising OverflowError.
        assert backoff_delay(0, "item", 2000, 1e300) == BACKOFF_CAP_SECONDS

    def test_moderate_exponents_are_capped_too(self):
        from repro.runtime.executor import BACKOFF_CAP_SECONDS

        assert backoff_delay(5, "key", 30, 1.0) == BACKOFF_CAP_SECONDS

    def test_negative_base_disables_backoff(self):
        assert backoff_delay(0, "item", 5, -1.0) == 0.0


# --------------------------------------------------------------------------- #
# Integration: chaotic pools still satisfy the determinism contract
# --------------------------------------------------------------------------- #
class TestChaoticPool:
    def test_crashed_workers_retry_and_match_fault_free_serial(self):
        plan = _plan()
        fault_free = SerialExecutor().execute(plan)
        chaos = ChaosConfig(seed=5, crash_rate=1.0, max_attempt=1)
        chaotic = ProcessExecutor(
            max_workers=2, retries=2, chaos=chaos,
            backoff_base=0.01, backoff_seed=5,
        ).execute(plan)

        _assert_records_match(fault_free, chaotic, plan)
        assert chaotic.stats["crashes"] >= len(plan)
        assert chaotic.stats["retries_used"] >= len(plan)
        assert chaotic.stats["backoff_seconds"] > 0.0

        for key in plan.requests:
            record = chaotic.records[key]
            assert record.attempts == 2
            attempts = chaotic.failure_attempts[key]
            assert len(attempts) == 1
            failed = attempts[0]
            assert isinstance(failed, FailedAttempt)
            assert failed.kind == "crash"
            assert failed.attempt == 1
            assert failed.worker is not None

    def test_stalled_workers_hit_the_deadline_and_recover(self):
        plan = _plan(epsilons=(2.0,), timeout=2.0)
        fault_free = SerialExecutor().execute(plan)
        chaos = ChaosConfig(
            seed=1, stall_rate=1.0, stall_seconds=30.0, max_attempt=1
        )
        chaotic = ProcessExecutor(
            max_workers=1, retries=1, chaos=chaos,
            backoff_base=0.01, backoff_seed=1,
        ).execute(plan)

        _assert_records_match(fault_free, chaotic, plan)
        assert chaotic.stats["timeouts"] >= 1
        [key] = plan.requests
        assert chaotic.records[key].attempts == 2
        [failed] = chaotic.failure_attempts[key]
        assert failed.kind == "timeout"
        assert failed.attempt == 1

    def test_chaos_runs_are_reproducible(self):
        plan = _plan(epsilons=(0.5,))
        chaos = ChaosConfig(seed=9, crash_rate=1.0, max_attempt=1)

        def run():
            return ProcessExecutor(
                max_workers=1, retries=1, chaos=chaos,
                backoff_base=0.0,
            ).execute(plan)

        first, second = run(), run()
        [key] = plan.requests
        assert first.records[key].value == second.records[key].value
        assert [f.kind for f in first.failure_attempts[key]] == [
            f.kind for f in second.failure_attempts[key]
        ]

    def test_exhausted_chaos_budget_reports_every_attempt(self):
        # max_attempt above the retry budget: the item can never finish and
        # the failure must carry one provenance entry per attempt.
        from repro.runtime import WorkItemFailure

        plan = _plan(epsilons=(0.5,))
        chaos = ChaosConfig(seed=2, crash_rate=1.0, max_attempt=10)
        executor = ProcessExecutor(
            max_workers=1, retries=1, chaos=chaos, backoff_base=0.0
        )
        with pytest.raises(WorkItemFailure) as excinfo:
            executor.execute(plan)
        [key] = plan.requests
        attempts = excinfo.value.failure_attempts[key]
        assert [f.attempt for f in attempts] == [1, 2]
        assert all(f.kind == "crash" for f in attempts)
        assert "crash" in str(excinfo.value)
