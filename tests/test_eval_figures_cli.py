"""Tests for the figure-reproduction entry points and their CLI."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.eval import figures
from repro.eval.runner import ExperimentScale

TINY = ExperimentScale(num_nodes=120, epochs=8, mcmc_iterations=15, seed=0)


class TestFigureFunctions:
    def test_figure7_structure(self, capsys):
        result = figures.figure7(scale=TINY, datasets=("facebook",), verbose=True)
        captured = capsys.readouterr().out
        assert "Workload CDF" in captured
        stats = result["facebook"]
        assert stats["max_with_trimming"] <= stats["max_without_trimming"]
        assert 0.0 <= max(stats["cdf_with_trimming"].values()) <= 1.0

    def test_figure8_structure(self, capsys):
        result = figures.figure8(scale=TINY, datasets=("lastfm",), verbose=True)
        assert "lastfm/supervised" in result and "lastfm/unsupervised" in result
        for values in result.values():
            assert values["rounds_with_trimming"] <= values["rounds_without_trimming"]
            assert 0.0 <= values["rounds_saving_percent"] <= 100.0

    def test_figure5_sweep_keys(self):
        result = figures.figure5(
            scale=TINY, datasets=("facebook",), epsilons=(1.0, 4.0), verbose=False
        )
        assert set(result) == {"supervised", "unsupervised"}
        assert set(result["supervised"]["facebook"]) == {1.0, 4.0}

    def test_figures_registry_is_complete(self):
        assert set(figures.FIGURES) == {
            "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "headline",
            "robustness", "maintenance",
        }

    def test_scale_from_name(self):
        assert figures._scale_from_name("small").num_nodes == 300
        assert figures._scale_from_name("paper").num_nodes is None
        with pytest.raises(KeyError):
            figures._scale_from_name("huge")


class TestFigureCLI:
    def test_main_runs_a_cheap_figure(self, capsys, monkeypatch):
        # Patch the registry entry so the CLI path is exercised without a full
        # training run; the real figure functions are covered above.
        calls = {}

        def fake_figure(scale, executor=None):
            calls["scale"] = scale
            calls["executor"] = executor
            return {"facebook": {"max_with_trimming": 3.0}}

        monkeypatch.setitem(figures.FIGURES, "fig7", fake_figure)
        exit_code = figures.main(["fig7", "--scale", "small"])
        assert exit_code == 0
        assert calls["scale"].num_nodes == 300
        assert calls["executor"] is None  # --executor serial is the default
        capsys.readouterr()  # drain output; JSON parsing is covered below

    def test_json_dump_parses(self, capsys, monkeypatch):
        monkeypatch.setitem(
            figures.FIGURES,
            "fig8",
            lambda scale, executor=None: {"x": np.float64(1.5), "y": np.array([1, 2])},
        )
        figures.main(["fig8", "--json"])
        output = capsys.readouterr().out
        start = output.index("{")
        payload = json.loads(output[start:])
        assert payload == {"fig8": {"x": 1.5, "y": [1, 2]}}
