"""Self-healing tree maintenance: journal, delta ops, replay, kill-replay.

The maintenance layer's acceptance contract is bit-identity: for any run —
uninterrupted, replayed from the journal, or recovered after a mid-write
``os._exit`` kill injected through ``ChaosConfig`` — ``state_digest()``
(assignment, adjacency, ledger transcript, secure-comparison accountant,
RNG bit-generator state, counters) must be identical.  These tests pin that
contract plus the structural invariants of the delta operations.
"""

from __future__ import annotations

import multiprocessing

import numpy as np
import pytest

from repro.engine.store import ArtifactStore, DiskSpillStore
from repro.faults.config import FaultScenarioConfig
from repro.faults.plan import FaultPlan
from repro.maintenance import (
    MaintainedTree,
    MaintenanceConfig,
    MutationJournal,
    StalenessMonitor,
    compile_churn_schedule,
    first_crash_seq,
    read_records,
    resume_schedule,
    run_schedule,
)
from repro.maintenance.churn import _constructed_tree
from repro.runtime.worker import ChaosConfig


def _assert_edges_covered(tree: MaintainedTree) -> None:
    """Adjacency is symmetric and every edge is covered by at least one side.

    (Construction uses vertex-cover semantics, so both endpoints may cover
    the same edge; the maintenance invariant is that no edge goes uncovered.)
    """
    for u, adjacent in tree.neighbors.items():
        for v in adjacent:
            assert u in tree.neighbors[v]
            covered = int(v in tree.assignment.selected.get(u, set())) + int(
                u in tree.assignment.selected.get(v, set())
            )
            assert covered >= 1, f"edge ({u}, {v}) is uncovered"


def _tree(num_nodes=30, mcmc=15, journal=None, snapshots=None, seed=0):
    lists, ego, _ = _constructed_tree("facebook", num_nodes, 0, mcmc)
    tree = MaintainedTree.from_construction(
        lists,
        ego,
        MaintenanceConfig(seed=seed),
        journal=journal,
        snapshots=snapshots,
    )
    return tree, ego


class TestJournal:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "j.lmj"
        with MutationJournal.create(path) as journal:
            journal.append({"seq": 1, "op": "remove", "device": 3})
            journal.append({"seq": 2, "op": "insert", "device": 3, "neighbors": [1]})
        records, valid = read_records(path)
        assert records == [
            {"seq": 1, "op": "remove", "device": 3},
            {"seq": 2, "op": "insert", "device": 3, "neighbors": [1]},
        ]
        assert valid == path.stat().st_size

    def test_torn_tail_is_truncated_on_recover_and_appends_extend(self, tmp_path):
        path = tmp_path / "j.lmj"
        journal = MutationJournal.create(path)
        journal.append({"seq": 1, "op": "remove", "device": 3})
        journal.append_torn({"seq": 2, "op": "remove", "device": 4})
        journal.close()

        records, valid = read_records(path)
        assert [r["seq"] for r in records] == [1]
        assert valid < path.stat().st_size  # torn bytes present on disk

        recovered, survived = MutationJournal.recover(path)
        assert [r["seq"] for r in survived] == [1]
        assert path.stat().st_size == valid  # tail gone
        recovered.append({"seq": 2, "op": "remove", "device": 4})
        recovered.close()
        records, valid = read_records(path)
        assert [r["seq"] for r in records] == [1, 2]
        assert valid == path.stat().st_size

    def test_minimal_torn_prefix_survives_recovery(self, tmp_path):
        path = tmp_path / "j.lmj"
        journal = MutationJournal.create(path)
        journal.append({"seq": 1, "op": "remove", "device": 3})
        journal.append_torn({"seq": 2, "op": "remove", "device": 4}, keep_bytes=1)
        journal.close()
        _, survived = MutationJournal.recover(path)
        assert [r["seq"] for r in survived] == [1]

    def test_corrupt_payload_stops_the_read(self, tmp_path):
        path = tmp_path / "j.lmj"
        journal = MutationJournal.create(path)
        journal.append({"seq": 1, "op": "remove", "device": 3})
        journal.append({"seq": 2, "op": "remove", "device": 4})
        journal.close()
        data = bytearray(path.read_bytes())
        data[-3] ^= 0xFF  # flip a byte inside the last frame's payload
        path.write_bytes(bytes(data))
        records, _ = read_records(path)
        assert [r["seq"] for r in records] == [1]

    def test_wrong_file_raises(self, tmp_path):
        path = tmp_path / "not-a-journal"
        path.write_bytes(b"something else entirely")
        with pytest.raises(ValueError, match="bad magic"):
            read_records(path)


class TestDeltaOperations:
    def test_construction_covers_every_edge(self):
        tree, _ = _tree()
        _assert_edges_covered(tree)

    def test_insert_covers_new_edges_and_filters_absent_neighbors(self):
        tree, _ = _tree()
        device = max(tree.present()) + 1
        neighbors = tree.present()[:3]
        applied = tree.insert_device(device, neighbors + [10_000])
        assert applied == sorted(neighbors)  # absent peer filtered out
        assert device in tree.neighbors
        _assert_edges_covered(tree)
        assert tree.counters["joins"] == 1
        assert tree.counters["edges_added"] == len(applied)
        with pytest.raises(ValueError, match="already present"):
            tree.insert_device(device, neighbors)

    def test_remove_cleans_adjacency_and_selections(self):
        tree, _ = _tree()
        victim = tree.present()[0]
        degree = len(tree.neighbors[victim])
        tree.remove_device(victim)
        assert victim not in tree.neighbors
        assert all(victim not in adj for adj in tree.neighbors.values())
        assert all(
            victim not in sel for sel in tree.assignment.selected.values()
        )
        _assert_edges_covered(tree)
        assert tree.counters["leaves"] == 1
        assert tree.counters["edges_removed"] == degree
        with pytest.raises(ValueError, match="not present"):
            tree.remove_device(victim)

    def test_update_degree_adds_and_removes_edges(self):
        tree, _ = _tree()
        device = tree.present()[0]
        existing = sorted(tree.neighbors[device])
        others = [v for v in tree.present() if v != device and v not in existing]
        added, removed = tree.update_degree(
            device, add=others[:2], remove=existing[:1]
        )
        assert added == sorted(others[:2])
        assert removed == existing[:1]
        _assert_edges_covered(tree)
        assert tree.counters["degree_updates"] == 1

    def test_rebalance_preserves_coverage_and_never_worsens_region_much(self):
        tree, _ = _tree()
        before = tree.objective()
        stats = tree.rebalance(iterations=25)
        assert set(stats) == {"accepted", "moves", "comparisons"}
        _assert_edges_covered(tree)
        assert tree.counters["rebalances"] == 1
        # Metropolis may accept slightly worse states, but a localized pass
        # must not blow the objective up.
        assert tree.objective() <= before + 2

    def test_rebuild_restores_a_constructed_assignment(self):
        tree, ego = _tree()
        # Degrade the tree first so the rebuild has something to fix.
        for device in tree.present()[:5]:
            tree.remove_device(device)
        tree.rebuild(mcmc_iterations=30)
        _assert_edges_covered(tree)
        assert tree.counters["rebuilds"] == 1

    def test_mutations_without_journal_keep_a_chain(self):
        tree, _ = _tree()
        chain0 = tree.chain
        tree.remove_device(tree.present()[0])
        assert tree.seq == 1 and tree.chain != chain0


class TestSnapshotReplay:
    def test_replay_is_bit_identical_to_live(self, tmp_path):
        journal = MutationJournal.create(tmp_path / "j.lmj")
        snapshots = ArtifactStore()
        tree, ego = _tree(journal=journal, snapshots=snapshots)
        victims = tree.present()[:4]
        for device in victims:
            tree.remove_device(device)
        tree.rebalance(iterations=10)
        for device in victims[:2]:
            tree.insert_device(device, ego[device])
        tree.snapshot()
        tree.update_degree(tree.present()[0], add=tree.present()[3:5])
        tree.rebuild(mcmc_iterations=20)
        live = tree.state_digest()
        journal.close()

        replayed = MaintainedTree.replay(journal.path, snapshots)
        assert replayed.state_digest() == live
        assert replayed.counters == tree.counters

    def test_replay_degrades_to_earlier_snapshot_when_latest_is_gone(
        self, tmp_path
    ):
        journal = MutationJournal.create(tmp_path / "j.lmj")
        snapshots = ArtifactStore()
        tree, ego = _tree(journal=journal, snapshots=snapshots)
        tree.remove_device(tree.present()[0])
        mid_key = tree.snapshot()
        tree.remove_device(tree.present()[0])
        live = tree.state_digest()
        journal.close()

        # Dropping the mid-run snapshot forces the replay back to genesis —
        # it must reach the same end state either way.
        del snapshots._entries[mid_key]
        replayed = MaintainedTree.replay(journal.path, snapshots)
        assert replayed.state_digest() == live

    def test_replay_spans_disk_spill_snapshots(self, tmp_path):
        journal = MutationJournal.create(tmp_path / "j.lmj")
        snapshots = DiskSpillStore(tmp_path / "snap", max_bytes=1)  # all on disk
        tree, ego = _tree(journal=journal, snapshots=snapshots)
        tree.remove_device(tree.present()[0])
        tree.snapshot()
        tree.rebalance(iterations=5)
        live = tree.state_digest()
        journal.close()

        fresh = DiskSpillStore(tmp_path / "snap", max_bytes=1)
        replayed = MaintainedTree.replay(journal.path, fresh)
        assert replayed.state_digest() == live

    def test_replay_rejects_a_journal_without_genesis(self, tmp_path):
        path = tmp_path / "j.lmj"
        journal = MutationJournal.create(path)
        journal.append({"seq": 1, "op": "remove", "device": 3})
        journal.close()
        with pytest.raises(ValueError, match="genesis"):
            MaintainedTree.replay(path, ArtifactStore())


_KILL_SCENARIO = dict(
    dataset="facebook",
    num_nodes=40,
    seed=0,
    scenario=FaultScenarioConfig(join_rate=0.30, leave_rate=0.10, fault_seed=13),
    rounds=5,
    mcmc_iterations=10,
    rebalance_every=3,
)


class TestKillReplay:
    def test_mid_write_kill_then_recovery_matches_uninterrupted_run(
        self, tmp_path
    ):
        kr = _KILL_SCENARIO
        _, ego, devices = _constructed_tree(
            kr["dataset"], kr["num_nodes"], kr["seed"], kr["mcmc_iterations"]
        )
        plan = FaultPlan.compile(kr["scenario"], devices, kr["rounds"])
        schedule = compile_churn_schedule(
            plan, ego, rebalance_every=kr["rebalance_every"]
        )
        assert len(schedule) > 3
        chaos = crash_seq = None
        for chaos_seed in range(64):
            candidate = ChaosConfig(seed=chaos_seed, crash_rate=0.05)
            predicted = first_crash_seq(candidate, len(schedule))
            if predicted is not None and 1 < predicted < len(schedule):
                chaos, crash_seq = candidate, predicted
                break
        assert chaos is not None, "no chaos seed crashes mid-schedule"

        clean = run_schedule(
            str(tmp_path / "clean.lmj"), str(tmp_path / "clean-snap"), **kr
        )
        context = multiprocessing.get_context("fork")
        child = context.Process(
            target=run_schedule,
            args=(str(tmp_path / "torn.lmj"), str(tmp_path / "torn-snap")),
            kwargs={**kr, "chaos": chaos},
        )
        child.start()
        child.join(timeout=120)
        assert child.exitcode == 86  # the chaos worker's os._exit code

        # The journal on disk ends in a torn frame from the mid-write kill.
        records, valid = read_records(tmp_path / "torn.lmj")
        assert (tmp_path / "torn.lmj").stat().st_size > valid
        assert [r["seq"] for r in records[1:]] == list(range(1, crash_seq))

        recovered, resumed_at = resume_schedule(
            str(tmp_path / "torn.lmj"), str(tmp_path / "torn-snap"), **kr
        )
        assert resumed_at == crash_seq - 1
        assert recovered == clean  # bit-identical state digest

    def test_uninterrupted_schedule_is_deterministic(self, tmp_path):
        kr = _KILL_SCENARIO
        first = run_schedule(
            str(tmp_path / "a.lmj"), str(tmp_path / "a-snap"), **kr
        )
        second = run_schedule(
            str(tmp_path / "b.lmj"), str(tmp_path / "b-snap"), **kr
        )
        assert first == second


class TestStalenessMonitor:
    def test_bounds_are_validated(self):
        with pytest.raises(ValueError):
            StalenessMonitor(staleness_bound=-0.1)
        with pytest.raises(ValueError):
            StalenessMonitor(staleness_bound=0.5, rebuild_bound=0.25)

    def test_fresh_tree_needs_no_action(self):
        tree, _ = _tree()
        monitor = StalenessMonitor(
            staleness_bound=5.0, rebuild_bound=10.0, reference_iterations=20
        )
        report = monitor.check(tree, round_index=0)
        assert report.action == "none"
        assert report.post_objective == report.maintained_objective
        assert monitor.summary()["rebalances"] == 0.0

    def test_imbalanced_tree_triggers_the_degradation_policy(self):
        # Pile every edge onto its smaller endpoint: a deliberately stale
        # assignment no construction would produce.
        lists, ego, _ = _constructed_tree("facebook", 30, 0, 15)
        piled = {v: [] for v in ego}
        for u, adjacent in ego.items():
            for v in adjacent:
                if u < v:
                    piled[u].append(v)
        tree = MaintainedTree.from_construction(piled, ego, MaintenanceConfig())
        monitor = StalenessMonitor(
            staleness_bound=0.0, rebuild_bound=0.0, reference_iterations=20
        )
        report = monitor.check(tree)
        assert report.staleness > 0
        assert report.action in ("rebalance", "rebuild")
        assert report.post_staleness <= report.staleness
        summary = monitor.summary()
        assert summary["checks"] == 1.0
        assert summary["rebalances"] == 1.0
        if report.action == "rebuild":
            assert tree.counters["rebuilds"] == 1

    def test_reference_objective_is_a_shadow_computation(self):
        tree, _ = _tree()
        digest = tree.state_digest()
        monitor = StalenessMonitor(reference_iterations=20)
        first = monitor.reference_objective(tree)
        second = monitor.reference_objective(tree)
        assert first == second  # chain-derived seed, no RNG consumption
        assert tree.state_digest() == digest  # tree untouched


@pytest.mark.slow
class TestChurnSoak:
    """Nightly-scale soak: heavier churn, more rounds, replay stays exact."""

    def test_long_churn_schedule_replays_bit_for_bit(self, tmp_path):
        scenario = dict(
            dataset="facebook",
            num_nodes=200,
            seed=0,
            scenario=FaultScenarioConfig(
                join_rate=0.35, leave_rate=0.20, fault_seed=29
            ),
            rounds=40,
            mcmc_iterations=25,
            rebalance_every=5,
        )
        clean = run_schedule(
            str(tmp_path / "soak.lmj"), str(tmp_path / "soak-snap"), **scenario
        )
        recovered, resumed_at = resume_schedule(
            str(tmp_path / "soak.lmj"), str(tmp_path / "soak-snap"), **scenario
        )
        assert recovered == clean
        assert resumed_at >= 0
