"""Tests of the parallel execution runtime's scheduling machinery.

Covers the plan layer (content-keyed dedupe, runtime-config fingerprint
exclusion, shared-prefix selection) and the process executor's failure
semantics: crashed workers are respawned and their items retried, timed-out
items are killed and retried, deterministic in-worker exceptions and
exhausted retries are *reported* — never silently dropped.

The bit-for-bit serial-vs-process equivalence of real experiment runs lives
in ``tests/test_runner_executors.py``.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import pytest

from repro.core import default_config_for
from repro.runtime import (
    CallableItem,
    GraphSpec,
    LumosItem,
    ProcessExecutor,
    SerialExecutor,
    WorkItemFailure,
    WorkPlan,
    resolve_executor,
    shared_prefix_plan,
)

SPEC = GraphSpec(dataset="facebook", seed=0, num_nodes=40)


def _config(epsilon=2.0):
    return (
        default_config_for("facebook")
        .with_mcmc_iterations(10)
        .with_epochs(3)
        .with_epsilon(epsilon)
    )


def _sweep_item(epsilon, **kwargs):
    return LumosItem(
        graph_spec=SPEC, config=_config(epsilon), task="supervised",
        split_seed=0, label=f"eps={epsilon}", **kwargs,
    )


# --------------------------------------------------------------------------- #
# Worker-side callables (imported by name in worker processes)
# --------------------------------------------------------------------------- #
def square(x):
    return x * x


def crash_once(sentinel, value):
    """Kill the worker hard on the first attempt, succeed on the retry."""
    path = Path(sentinel)
    if not path.exists():
        path.write_text("attempted")
        os._exit(41)
    return value


def hang_once(sentinel, value):
    """Blow the deadline on the first attempt, succeed on the retry."""
    path = Path(sentinel)
    if not path.exists():
        path.write_text("attempted")
        time.sleep(60.0)
    return value


def always_crash():
    os._exit(43)


def raise_error():
    raise ValueError("deterministic failure")


def _callable(function, *args, **kwargs):
    return CallableItem(
        target=f"{__name__}:{function.__name__}",
        args=args,
        kwargs=tuple(sorted(kwargs.items())),
        label=function.__name__,
    )


# --------------------------------------------------------------------------- #
# Plan layer
# --------------------------------------------------------------------------- #
class TestWorkPlan:
    def test_colliding_keys_dedupe_to_one_item(self):
        plan = WorkPlan()
        first = plan.add(_sweep_item(0.5))
        second = plan.add(_sweep_item(2.0))
        duplicate = plan.add(_sweep_item(0.5))
        assert duplicate == first and first != second
        assert len(plan) == 2 and plan.duplicate_requests == 1
        assert plan.requests == [first, second, first]

    def test_runtime_config_is_excluded_from_item_and_stage_keys(self):
        base = _sweep_item(0.5)
        scheduled = LumosItem(
            graph_spec=SPEC,
            config=_config(0.5).with_executor("process", max_workers=8),
            task="supervised", split_seed=0, label="scheduled",
        )
        assert base.key() == scheduled.key()
        assert base.stage_chain() == scheduled.stage_chain()

    def test_epsilon_sweep_shares_prefix_through_tree_batch(self):
        items = [_sweep_item(epsilon) for epsilon in (0.5, 1.0, 2.0)]
        runs = shared_prefix_plan(items)
        assert len(runs) == 1
        # tree_batch is keyed on the construction (not epsilon), so the
        # deepest shared invocation is the batch itself; the warm-up
        # persists the full 5-stage prefix of the representative.
        assert runs[0].through == "tree_batch"
        assert len(runs[0].persist_keys) == 5

    def test_ablation_arms_share_only_the_partition(self):
        configs = [
            _config(),
            _config().without_virtual_nodes(),
            _config().without_tree_trimming(),
        ]
        items = [
            LumosItem(graph_spec=SPEC, config=config, task="supervised", split_seed=0)
            for config in configs
        ]
        runs = shared_prefix_plan(items)
        assert [run.through for run in runs] == ["partition"]

    def test_items_without_chains_produce_no_warmups(self):
        assert shared_prefix_plan([_callable(square, 3)]) == []

    def test_resolve_executor(self):
        assert resolve_executor(None) is None
        assert resolve_executor("serial") is None
        process = resolve_executor("process", max_workers=3)
        assert isinstance(process, ProcessExecutor) and process.max_workers == 3
        assert resolve_executor(process) is process
        with pytest.raises(ValueError):
            resolve_executor("threads")

    def test_resolve_executor_consumes_runtime_config(self):
        # config.with_executor records a preference; passing config.runtime
        # to any scheduling surface expands it into the executor it names.
        recorded = _config().with_executor("process", max_workers=2).with_runtime(
            retries=3, timeout_seconds=9.0
        )
        executor = resolve_executor(recorded.runtime)
        assert isinstance(executor, ProcessExecutor)
        assert executor.max_workers == 2
        assert executor.retries == 3 and executor.timeout == 9.0
        assert resolve_executor(_config().runtime) is None  # serial default


# --------------------------------------------------------------------------- #
# Executors
# --------------------------------------------------------------------------- #
class TestExecutors:
    def test_serial_executor_runs_in_plan_order(self):
        plan = WorkPlan([_callable(square, value) for value in (2, 3, 4)])
        report = SerialExecutor().execute(plan)
        assert plan.values(report.records) == [4, 9, 16]
        assert report.stats["executor"] == "serial"

    def test_process_executor_merges_deterministically(self):
        plan = WorkPlan([_callable(square, value) for value in range(6)])
        report = ProcessExecutor(max_workers=3).execute(plan)
        assert plan.values(report.records) == [0, 1, 4, 9, 16, 25]
        assert report.stats["crashes"] == 0 and not report.failures

    def test_crashed_worker_item_is_retried(self, tmp_path):
        sentinel = tmp_path / "crash-sentinel"
        plan = WorkPlan([
            _callable(crash_once, str(sentinel), 7),
            _callable(square, 5),
        ])
        report = ProcessExecutor(max_workers=2, retries=1).execute(plan)
        assert plan.values(report.records) == [7, 25]
        assert report.stats["crashes"] >= 1
        assert report.stats["retries_used"] >= 1
        assert report.stats["respawns"] >= 1
        [crash_record] = [r for r in report.records.values() if r.label == "crash_once"]
        assert crash_record.attempts == 2

    def test_timed_out_item_is_killed_and_retried(self, tmp_path):
        sentinel = tmp_path / "hang-sentinel"
        item = CallableItem(
            target=f"{__name__}:hang_once",
            args=(str(sentinel), 11),
            label="hang_once",
            timeout=1.5,
        )
        report = ProcessExecutor(max_workers=1, retries=1).execute(WorkPlan([item]))
        assert report.records[item.key()].value == 11
        assert report.stats["timeouts"] >= 1
        assert report.records[item.key()].attempts == 2

    def test_exhausted_retries_are_reported_never_dropped(self):
        plan = WorkPlan([_callable(always_crash)])
        with pytest.raises(WorkItemFailure) as excinfo:
            ProcessExecutor(max_workers=1, retries=1).execute(plan)
        assert "always_crash" in str(excinfo.value)
        report = excinfo.value.report
        assert len(report.failures) == 1 and not report.records

        lenient = ProcessExecutor(max_workers=1, retries=0, strict=False)
        report = lenient.execute(plan)
        assert list(report.failures) == [plan.requests[0]]

    def test_in_worker_exception_is_reported_with_traceback(self):
        plan = WorkPlan([_callable(raise_error)])
        with pytest.raises(WorkItemFailure) as excinfo:
            ProcessExecutor(max_workers=1).execute(plan)
        [reason] = excinfo.value.failures.values()
        assert "deterministic failure" in reason and "ValueError" in reason
