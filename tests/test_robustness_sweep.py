"""Serial-vs-process equivalence and semantics of the robustness sweep.

``run_robustness_sweep`` fans fault scenarios through the same work-plan
machinery as the epsilon sweep, so it inherits the runtime's determinism
contract: the process executor must reproduce the serial loop bit-for-bit.
The sweep always carries an empty baseline arm so every scenario reports an
``accuracy_vs_baseline_percent`` delta.
"""

from __future__ import annotations

import pytest

from repro.engine import ArtifactStore
from repro.eval.runner import ExperimentScale, run_robustness_sweep
from repro.faults import FaultScenarioConfig

SCALE = ExperimentScale(num_nodes=40, epochs=3, mcmc_iterations=10, seed=0)

SCENARIOS = {
    "baseline": FaultScenarioConfig(),
    "dropout": FaultScenarioConfig(dropout_rate=0.3, fault_seed=11),
    "stragglers": FaultScenarioConfig(
        straggler_rate=0.3, straggler_multiplier=4.0, round_deadline=2.0,
        fault_seed=14,
    ),
}


@pytest.fixture(scope="module")
def serial_results():
    return run_robustness_sweep(
        "facebook", scenarios=SCENARIOS, scale=SCALE, store=ArtifactStore()
    )


class TestRobustnessSweep:
    def test_process_executor_matches_serial_bit_for_bit(self, serial_results):
        process = run_robustness_sweep(
            "facebook",
            scenarios=SCENARIOS,
            scale=SCALE,
            executor="process",
            max_workers=2,
        )
        assert process == serial_results

    def test_every_scenario_is_reported(self, serial_results):
        assert set(serial_results) == set(SCENARIOS)

    def test_baseline_arm_has_full_participation_and_zero_delta(
        self, serial_results
    ):
        baseline = serial_results["baseline"]
        assert baseline["mean_participation"] == 1.0
        assert baseline["offline_device_rounds"] == 0.0
        assert baseline["dropped_messages"] == 0.0
        assert baseline["accuracy_vs_baseline_percent"] == 0.0

    def test_dropout_reduces_participation(self, serial_results):
        dropout = serial_results["dropout"]
        assert dropout["mean_participation"] < 1.0
        assert dropout["offline_device_rounds"] > 0
        assert "accuracy_vs_baseline_percent" in dropout

    def test_stragglers_evict_and_slow_rounds(self, serial_results):
        stragglers = serial_results["stragglers"]
        baseline = serial_results["baseline"]
        assert stragglers["evicted_device_rounds"] > 0
        assert stragglers["mean_epoch_time"] > baseline["mean_epoch_time"]
        # evicted updates were transmitted but never delivered.
        assert stragglers["dropped_messages"] > 0

    def test_missing_baseline_arm_is_added_automatically(self):
        results = run_robustness_sweep(
            "facebook",
            scenarios={
                "dropout": FaultScenarioConfig(dropout_rate=0.3, fault_seed=11)
            },
            scale=SCALE,
            store=ArtifactStore(),
        )
        assert "baseline" in results
        assert results["baseline"]["accuracy_vs_baseline_percent"] == 0.0
