"""Serial-vs-process equivalence of the churn-maintenance entry point.

``run_churn_maintenance`` ships its whole body as a ``CallableItem`` whose
return payload contains only deterministic values (counters, objectives,
digest checks — no wall clock), so the serial executor and the process pool
must produce bit-for-bit identical dictionaries.  The payload also carries
the inline replay assertion (``replay_matches_live``), which makes every
executor run a crash-consistency check of its own journal.
"""

from __future__ import annotations

from repro.eval.runner import ExperimentScale, run_churn_maintenance
from repro.faults.config import FaultScenarioConfig

SCALE = ExperimentScale(num_nodes=40, epochs=3, mcmc_iterations=10, seed=0)


class TestChurnMaintenanceRunner:
    def test_serial_and_process_payloads_are_identical(self):
        kwargs = dict(
            scenario=FaultScenarioConfig(
                join_rate=0.30, leave_rate=0.10, fault_seed=13
            ),
            rounds=8,
            scale=SCALE,
            check_every=4,
        )
        serial = run_churn_maintenance("facebook", **kwargs)
        process = run_churn_maintenance(
            "facebook", executor="process", max_workers=2, **kwargs
        )
        assert serial == process

    def test_payload_shape_and_replay_contract(self):
        payload = run_churn_maintenance(
            "facebook",
            scenario=FaultScenarioConfig(
                join_rate=0.40, leave_rate=0.15, fault_seed=5
            ),
            rounds=6,
            scale=SCALE,
            check_every=3,
        )
        assert payload["replay_matches_live"] == 1.0
        assert payload["devices"] == float(SCALE.num_nodes)
        # Every mutation is a join, a leave, or a monitor-triggered repair.
        assert payload["mutations"] == (
            payload["joins"] + payload["leaves"]
            + payload["rebalances"] + payload["rebuilds"]
        )
        assert payload["staleness_checks"] == 2.0
        assert all(isinstance(value, float) for value in payload.values())

    def test_churn_free_scenario_yields_no_mutations(self):
        payload = run_churn_maintenance(
            "facebook",
            scenario=FaultScenarioConfig(fault_seed=1),  # no churn configured
            rounds=6,
            scale=SCALE,
            check_every=0,  # no staleness checks -> no repair mutations either
        )
        assert payload["mutations"] == 0.0
        assert payload["present_devices"] == payload["devices"]
        assert payload["replay_matches_live"] == 1.0
