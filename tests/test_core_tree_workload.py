"""Tests for tree construction and the workload-balancing problem state."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Assignment,
    LocalGraph,
    LocalNode,
    NodeRole,
    build_star,
    build_tree,
    expected_tree_size,
    workload_cdf,
)
from repro.core.tree import count_leaves
from repro.graph import generate_facebook_like, generate_star


class TestTreeConstruction:
    def test_tree_matches_paper_example(self):
        """Fig. 2: vertex 1 with neighbours {2,3,4,5} -> root, 4 parents, 8 leaves."""
        tree = build_tree(1, [2, 3, 4, 5])
        assert tree.num_nodes == 13
        assert tree.num_edges == 12
        roles = [node.role for node in tree.nodes]
        assert roles.count(NodeRole.ROOT) == 1
        assert roles.count(NodeRole.PARENT) == 4
        assert roles.count(NodeRole.CENTER_LEAF) == 4
        assert roles.count(NodeRole.NEIGHBOR_LEAF) == 4

    def test_tree_is_a_tree(self):
        tree = build_tree(0, [1, 2, 3])
        assert tree.is_tree()
        assert tree.depth() == 2

    def test_center_is_replicated_per_pair(self):
        tree = build_tree(7, [1, 2, 3])
        center_nodes = tree.nodes_for_vertex(7)
        assert len(center_nodes) == 3
        assert all(node.role is NodeRole.CENTER_LEAF for node in center_nodes)

    def test_each_neighbor_appears_once(self):
        tree = build_tree(0, [5, 9])
        assert tree.neighbor_vertices() == [5, 9]
        assert len(tree.nodes_for_vertex(5)) == 1

    def test_leaf_count_is_twice_workload(self):
        for workload in (1, 3, 7):
            tree = build_tree(0, list(range(1, workload + 1)))
            assert count_leaves(tree) == 2 * workload
            assert tree.num_nodes == expected_tree_size(workload)

    def test_empty_selection_keeps_own_leaf(self):
        tree = build_tree(4, [])
        assert tree.num_nodes == 1
        assert tree.nodes[0].vertex == 4
        assert tree.is_tree()

    def test_parent_connects_exactly_one_pair(self):
        tree = build_tree(0, [1, 2])
        adjacency = {}
        for u, v in tree.edges:
            adjacency.setdefault(u, set()).add(v)
            adjacency.setdefault(v, set()).add(u)
        for node in tree.nodes:
            if node.role is NodeRole.PARENT:
                children = adjacency[node.local_id]
                leaf_children = [c for c in children if tree.nodes[c].vertex is not None]
                assert len(leaf_children) == 2

    def test_star_variant(self):
        star = build_star(0, [1, 2, 3])
        assert star.num_nodes == 4
        assert star.num_edges == 3
        assert star.is_tree()
        assert star.depth() == 1
        assert star.nodes[0].role is NodeRole.CENTER
        assert count_leaves(star) == 3

    def test_local_graph_validation(self):
        with pytest.raises(ValueError):
            LocalGraph(owner=0, nodes=[LocalNode(1, NodeRole.ROOT, None)], edges=[])
        with pytest.raises(ValueError):
            LocalGraph(owner=0, nodes=[LocalNode(0, NodeRole.ROOT, None)], edges=[(0, 5)])
        with pytest.raises(ValueError):
            LocalGraph(owner=0, nodes=[LocalNode(0, NodeRole.ROOT, None)], edges=[(0, 0)])

    def test_expected_tree_size_validation(self):
        assert expected_tree_size(0) == 1
        with pytest.raises(ValueError):
            expected_tree_size(-1)

    @given(st.integers(0, 30))
    @settings(max_examples=25, deadline=None)
    def test_tree_size_property(self, workload):
        tree = build_tree(0, list(range(1, workload + 1)))
        assert tree.num_nodes == expected_tree_size(workload)
        assert tree.is_tree()


class TestAssignment:
    def test_full_assignment_covers_everything(self, small_graph):
        assignment = Assignment.full(small_graph)
        assert assignment.covers_all_edges(small_graph)
        assert assignment.is_consistent_with(small_graph)
        assert assignment.objective() == int(small_graph.degrees().max())
        assert assignment.total_selected_edges() == 2 * small_graph.num_edges

    def test_workload_queries(self, star_graph):
        assignment = Assignment.full(star_graph)
        assert assignment.workload(0) == 6
        assert assignment.workload(1) == 1
        array = assignment.workload_array()
        assert array[0] == 6
        assert assignment.argmax_workload() == 0

    def test_transfer_moves_edge_ownership(self, star_graph):
        assignment = Assignment.full(star_graph)
        moved = assignment.transfer(0, [1, 2])
        assert moved.workload(0) == 4
        assert 0 in moved.selected[1] and 0 in moved.selected[2]
        assert moved.covers_all_edges(star_graph)
        # The original assignment is untouched (copy semantics).
        assert assignment.workload(0) == 6

    def test_transfer_rejects_unselected_vertex(self, star_graph):
        assignment = Assignment.from_lists({0: [1], 1: [0], 2: [0], 3: [0], 4: [0], 5: [0], 6: [0]})
        with pytest.raises(ValueError):
            assignment.transfer(0, [5])

    def test_uncovered_edges_detection(self, star_graph):
        assignment = Assignment.from_lists({v: [] for v in range(star_graph.num_nodes)})
        uncovered = assignment.uncovered_edges(star_graph)
        assert len(uncovered) == star_graph.num_edges
        assert not assignment.covers_all_edges(star_graph)

    def test_consistency_check(self, star_graph):
        bad = Assignment.from_lists({0: [1], 1: [3]})  # 3 is not a neighbour of 1 in a star
        assert not bad.is_consistent_with(star_graph)

    def test_statistics_and_cdf(self):
        assignment = Assignment.from_lists({0: [1, 2, 3], 1: [0], 2: [], 3: []})
        stats = assignment.statistics()
        assert stats["max"] == 3
        values, probabilities = workload_cdf(assignment.workload_array())
        assert probabilities[-1] == pytest.approx(1.0)
        assert values[-1] == 3
        empty_values, empty_probabilities = workload_cdf(np.array([]))
        assert empty_values.size == 0 and empty_probabilities.size == 0

    def test_as_lists_sorted(self):
        assignment = Assignment.from_lists({0: [5, 2], 2: [0], 5: [0]})
        assert assignment.as_lists()[0] == [2, 5]

    def test_argmax_empty_raises(self):
        with pytest.raises(ValueError):
            Assignment(selected={}).argmax_workload()

    @given(st.integers(0, 500))
    @settings(max_examples=10, deadline=None)
    def test_full_assignment_objective_equals_max_degree(self, seed):
        graph = generate_facebook_like(seed=seed % 5, num_nodes=120)
        assignment = Assignment.full(graph)
        assert assignment.objective() == int(graph.degrees().max())
