"""Tests for oblivious transfer, secure comparison and the ZK protocols."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import (
    ComparisonResult,
    DegreeComparisonProtocol,
    ObliviousTransfer,
    SecureComparator,
    TranscriptAccountant,
    WorkloadComparisonProtocol,
    log_degree_bucket,
    secure_max_index,
    verify_zero_knowledge_transcript,
)


class TestTranscriptAccountant:
    def test_record_and_snapshot(self):
        accountant = TranscriptAccountant()
        accountant.record("ot", 64)
        accountant.record_ot(32)
        snapshot = accountant.snapshot()
        assert snapshot["messages"] == 2
        assert snapshot["bits"] == 64 + (2 * 32 + 128)
        assert snapshot["ot_invocations"] == 1

    def test_merge(self):
        a, b = TranscriptAccountant(), TranscriptAccountant()
        a.record("ot", 10)
        b.record("ot", 20)
        b.comparisons = 3
        a.merge(b)
        assert a.bits == 30
        assert a.messages == 2
        assert a.comparisons == 3


class TestObliviousTransfer:
    def test_receiver_gets_chosen_message(self):
        ot = ObliviousTransfer(rng=np.random.default_rng(0))
        result0 = ot.transfer(11, 22, choice=0)
        result1 = ot.transfer(11, 22, choice=1)
        assert result0.chosen_message == 11
        assert result1.chosen_message == 22

    def test_communication_is_accounted(self):
        accountant = TranscriptAccountant()
        ot = ObliviousTransfer(accountant=accountant, rng=np.random.default_rng(0))
        ot.transfer(1, 2, choice=0, message_bits=16)
        assert accountant.ot_invocations == 1
        assert accountant.bits == 2 * 16 + 128

    def test_validation(self):
        ot = ObliviousTransfer(rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            ot.transfer(1, 2, choice=2)
        with pytest.raises(ValueError):
            ot.transfer(2 ** 40, 2, choice=0, message_bits=32)

    def test_transfer_table(self):
        ot = ObliviousTransfer(rng=np.random.default_rng(0))
        table = tuple(range(16))
        assert ot.transfer_table(table, 7, message_bits=4) == 7
        with pytest.raises(ValueError):
            ot.transfer_table(table, 20)

    @given(st.integers(0, 2 ** 16 - 1), st.integers(0, 2 ** 16 - 1), st.integers(0, 1))
    @settings(max_examples=30, deadline=None)
    def test_transfer_correctness_property(self, m0, m1, choice):
        ot = ObliviousTransfer(rng=np.random.default_rng(m0 ^ m1))
        result = ot.transfer(m0, m1, choice, message_bits=16)
        assert result.chosen_message == (m1 if choice else m0)


class TestSecureComparator:
    def test_basic_comparisons(self):
        comparator = SecureComparator(bit_width=16, rng=np.random.default_rng(0))
        assert comparator.compare(5, 3).left_ge_right
        assert not comparator.compare(3, 5).left_ge_right
        assert comparator.compare(7, 7).left_ge_right

    def test_result_reports_costs(self):
        comparator = SecureComparator(bit_width=32, rng=np.random.default_rng(0))
        result = comparator.compare(1000, 999)
        assert isinstance(result, ComparisonResult)
        assert result.bits_exchanged > 0
        assert result.ot_invocations > 0
        assert result.left_lt_right is False

    def test_cost_grows_with_bit_width(self):
        narrow = SecureComparator(bit_width=8, rng=np.random.default_rng(0)).compare(1, 2)
        wide = SecureComparator(bit_width=48, rng=np.random.default_rng(0)).compare(1, 2)
        assert wide.bits_exchanged > narrow.bits_exchanged

    def test_compare_many(self):
        comparator = SecureComparator(bit_width=8, rng=np.random.default_rng(0))
        results = comparator.compare_many([(1, 2), (9, 4), (3, 3)])
        assert [r.left_ge_right for r in results] == [False, True, True]

    def test_argmax(self):
        comparator = SecureComparator(bit_width=16, rng=np.random.default_rng(0))
        assert comparator.argmax([3, 9, 2, 9]) == 1  # earliest index wins ties
        with pytest.raises(ValueError):
            comparator.argmax([])

    def test_validation(self):
        comparator = SecureComparator(bit_width=8, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            comparator.compare(-1, 2)
        with pytest.raises(ValueError):
            comparator.compare(2, 300)
        with pytest.raises(ValueError):
            SecureComparator(bit_width=0)
        with pytest.raises(ValueError):
            SecureComparator(bit_width=65)
        # 64-bit operands are legal since the batch kernels went uint64.
        assert SecureComparator(bit_width=64).compare(2 ** 64 - 1, 0).left_ge_right

    def test_accountant_accumulates_comparisons(self):
        accountant = TranscriptAccountant()
        comparator = SecureComparator(bit_width=16, accountant=accountant,
                                      rng=np.random.default_rng(0))
        comparator.compare(10, 20)
        comparator.compare(20, 10)
        assert accountant.comparisons == 2

    @given(st.integers(0, 2 ** 20 - 1), st.integers(0, 2 ** 20 - 1))
    @settings(max_examples=60, deadline=None)
    def test_comparison_correctness_property(self, left, right):
        comparator = SecureComparator(bit_width=20, rng=np.random.default_rng(left ^ right))
        assert comparator.compare(left, right).left_ge_right == (left >= right)

    def test_secure_max_index_helper(self):
        assert secure_max_index([4, 1, 9, 9], rng=np.random.default_rng(0)) == 2


class TestZeroKnowledgeProtocols:
    def test_log_degree_bucket(self):
        assert log_degree_bucket(0) == 0
        assert log_degree_bucket(1) == 0
        assert log_degree_bucket(3) == 1
        assert log_degree_bucket(20) == 3
        assert log_degree_bucket(150) == 5

    def test_degree_comparison_uses_buckets(self):
        protocol = DegreeComparisonProtocol(rng=np.random.default_rng(0))
        # Degrees 10 and 12 share the bucket round(ln) = 2: both >= each other.
        assert protocol.compare_degrees(10, 12).left_bucket_ge_right
        assert protocol.compare_degrees(12, 10).left_bucket_ge_right
        # Degree 100 (bucket 5) vs degree 2 (bucket 1).
        assert protocol.compare_degrees(100, 2).left_bucket_ge_right
        assert not protocol.compare_degrees(2, 100).left_bucket_ge_right

    def test_degree_comparison_accounts_bits(self):
        accountant = TranscriptAccountant()
        protocol = DegreeComparisonProtocol(accountant=accountant, rng=np.random.default_rng(0))
        outcome = protocol.compare_degrees(5, 50)
        assert outcome.bits_exchanged > 0
        assert accountant.comparisons == 1

    def test_workload_protocol_local_maximum(self):
        protocol = WorkloadComparisonProtocol(rng=np.random.default_rng(0))
        assert protocol.is_local_maximum(10, [3, 9, 10])
        assert not protocol.is_local_maximum(5, [3, 9])

    def test_workload_protocol_argmax(self):
        protocol = WorkloadComparisonProtocol(rng=np.random.default_rng(0))
        assert protocol.argmax([4, 8, 2]) == 1

    def test_objective_difference_matches_plain_subtraction(self):
        protocol = WorkloadComparisonProtocol(rng=np.random.default_rng(0))
        assert protocol.objective_difference(10, 7) == 3
        assert protocol.objective_difference(4, 9) == -5

    def test_transcript_contains_no_operand_values(self):
        accountant = TranscriptAccountant()
        protocol = WorkloadComparisonProtocol(accountant=accountant, rng=np.random.default_rng(0))
        protocol.is_local_maximum(12345, [678, 999])
        protocol.objective_difference(55, 44)
        assert verify_zero_knowledge_transcript(accountant)

    @given(st.integers(1, 300), st.integers(1, 300))
    @settings(max_examples=30, deadline=None)
    def test_degree_comparison_property(self, left, right):
        protocol = DegreeComparisonProtocol(rng=np.random.default_rng(left * 301 + right))
        expected = log_degree_bucket(left) >= log_degree_bucket(right)
        assert protocol.compare_degrees(left, right).left_bucket_ge_right == expected
