"""Unit and property-based tests for the autograd Tensor."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn.tensor import Tensor, as_tensor, concat, no_grad, ones, stack, zeros


def numerical_gradient(function, value: np.ndarray, epsilon: float = 1e-6) -> np.ndarray:
    """Central-difference numerical gradient of a scalar-valued function."""
    gradient = np.zeros_like(value, dtype=np.float64)
    flat = value.reshape(-1)
    grad_flat = gradient.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + epsilon
        upper = function(value.copy())
        flat[index] = original - epsilon
        lower = function(value.copy())
        flat[index] = original
        grad_flat[index] = (upper - lower) / (2 * epsilon)
    return gradient


small_arrays = hnp.arrays(
    dtype=np.float64,
    shape=hnp.array_shapes(min_dims=1, max_dims=2, min_side=1, max_side=4),
    elements=st.floats(-3, 3, allow_nan=False, allow_infinity=False),
)


class TestTensorBasics:
    def test_construction_from_list(self):
        tensor = Tensor([1.0, 2.0, 3.0])
        assert tensor.shape == (3,)
        assert tensor.data.dtype == np.float64

    def test_requires_grad_flag(self):
        tensor = Tensor([1.0], requires_grad=True)
        assert tensor.requires_grad
        assert Tensor([1.0]).requires_grad is False

    def test_detach_breaks_graph(self):
        tensor = Tensor([2.0], requires_grad=True)
        detached = tensor.detach()
        assert not detached.requires_grad

    def test_repr_mentions_shape(self):
        assert "shape=(2,)" in repr(Tensor([1.0, 2.0]))

    def test_item_on_scalar(self):
        assert Tensor([3.5]).item() == pytest.approx(3.5)

    def test_zero_grad_clears_gradient(self):
        tensor = Tensor([1.0, 2.0], requires_grad=True)
        (tensor.sum()).backward()
        assert tensor.grad is not None
        tensor.zero_grad()
        assert tensor.grad is None

    def test_len_and_size(self):
        tensor = Tensor(np.zeros((4, 2)))
        assert len(tensor) == 4
        assert tensor.size == 8
        assert tensor.ndim == 2

    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_requires_scalar(self):
        tensor = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            tensor.backward()

    def test_factories(self):
        assert np.all(zeros((2, 2)).data == 0)
        assert np.all(ones(3).data == 1)
        assert as_tensor([1.0]).shape == (1,)
        existing = Tensor([1.0])
        assert as_tensor(existing) is existing


class TestArithmetic:
    def test_add_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])
        np.testing.assert_allclose(b.grad, [1.0, 1.0])

    def test_add_scalar(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        out = (a + 5.0).sum()
        out.backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])
        np.testing.assert_allclose((5.0 + Tensor([1.0])).data, [6.0])

    def test_mul_backward(self):
        a = Tensor([2.0, 3.0], requires_grad=True)
        b = Tensor([4.0, 5.0], requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, [4.0, 5.0])
        np.testing.assert_allclose(b.grad, [2.0, 3.0])

    def test_sub_and_neg(self):
        a = Tensor([2.0], requires_grad=True)
        b = Tensor([7.0], requires_grad=True)
        (a - b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0])
        np.testing.assert_allclose(b.grad, [-1.0])
        c = Tensor([3.0], requires_grad=True)
        (-c).sum().backward()
        np.testing.assert_allclose(c.grad, [-1.0])
        np.testing.assert_allclose((1.0 - Tensor([0.25])).data, [0.75])

    def test_div_backward(self):
        a = Tensor([6.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        (a / b).sum().backward()
        np.testing.assert_allclose(a.grad, [0.5])
        np.testing.assert_allclose(b.grad, [-1.5])
        np.testing.assert_allclose((1.0 / Tensor([4.0])).data, [0.25])

    def test_pow_backward(self):
        a = Tensor([3.0], requires_grad=True)
        (a ** 2).sum().backward()
        np.testing.assert_allclose(a.grad, [6.0])
        with pytest.raises(TypeError):
            _ = a ** Tensor([2.0])

    def test_matmul_backward(self):
        a = Tensor(np.array([[1.0, 2.0], [3.0, 4.0]]), requires_grad=True)
        b = Tensor(np.array([[5.0, 6.0], [7.0, 8.0]]), requires_grad=True)
        (a @ b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 2)) @ b.data.T)
        np.testing.assert_allclose(b.grad, a.data.T @ np.ones((2, 2)))

    def test_broadcast_add_unbroadcasts_gradient(self):
        a = Tensor(np.ones((3, 2)), requires_grad=True)
        bias = Tensor(np.zeros(2), requires_grad=True)
        (a + bias).sum().backward()
        np.testing.assert_allclose(bias.grad, [3.0, 3.0])
        np.testing.assert_allclose(a.grad, np.ones((3, 2)))

    def test_broadcast_mul_row_vector(self):
        a = Tensor(np.arange(6, dtype=float).reshape(3, 2), requires_grad=True)
        scale = Tensor(np.array([[2.0, 3.0]]), requires_grad=True)
        (a * scale).sum().backward()
        np.testing.assert_allclose(scale.grad, [[0 + 2 + 4, 1 + 3 + 5]])

    def test_gradient_accumulates_across_uses(self):
        a = Tensor([1.0], requires_grad=True)
        out = (a * 2.0).sum() + (a * 3.0).sum()
        out.backward()
        np.testing.assert_allclose(a.grad, [5.0])


class TestShapesAndReductions:
    def test_reshape_backward(self):
        a = Tensor(np.arange(6, dtype=float), requires_grad=True)
        a.reshape(2, 3).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(6))

    def test_transpose_backward(self):
        a = Tensor(np.arange(6, dtype=float).reshape(2, 3), requires_grad=True)
        (a.T * Tensor(np.arange(6, dtype=float).reshape(3, 2))).sum().backward()
        assert a.grad.shape == (2, 3)

    def test_getitem_backward_accumulates_duplicates(self):
        a = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
        a[np.array([0, 0, 2])].sum().backward()
        np.testing.assert_allclose(a.grad, [2.0, 0.0, 1.0])

    def test_sum_axis_keepdims(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        out = a.sum(axis=1, keepdims=True)
        assert out.shape == (2, 1)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))

    def test_mean_gradient_scaling(self):
        a = Tensor(np.ones((4,)), requires_grad=True)
        a.mean().backward()
        np.testing.assert_allclose(a.grad, np.full(4, 0.25))

    def test_mean_axis(self):
        a = Tensor(np.arange(6, dtype=float).reshape(2, 3), requires_grad=True)
        a.mean(axis=1).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 3), 1 / 3))

    def test_max_reduction_gradient(self):
        a = Tensor(np.array([1.0, 5.0, 3.0]), requires_grad=True)
        a.max().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0, 0.0])

    def test_max_axis(self):
        a = Tensor(np.array([[1.0, 2.0], [5.0, 0.0]]), requires_grad=True)
        out = a.max(axis=1)
        np.testing.assert_allclose(out.data, [2.0, 5.0])
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [[0, 1], [1, 0]])

    def test_stack_and_concat(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        stacked = stack([a, b], axis=0)
        assert stacked.shape == (2, 2)
        stacked.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])
        a.zero_grad(), b.zero_grad()
        joined = concat([a, b], axis=0)
        assert joined.shape == (4,)
        (joined * Tensor([1.0, 2.0, 3.0, 4.0])).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 2.0])
        np.testing.assert_allclose(b.grad, [3.0, 4.0])


class TestNonlinearities:
    @pytest.mark.parametrize(
        "name",
        ["relu", "sigmoid", "tanh", "exp"],
    )
    def test_elementwise_gradients_match_numerical(self, name):
        rng = np.random.default_rng(0)
        value = rng.normal(size=(3, 2))
        tensor = Tensor(value.copy(), requires_grad=True)
        getattr(tensor, name)().sum().backward()

        def scalar_function(x):
            t = Tensor(x)
            return getattr(t, name)().sum().item()

        expected = numerical_gradient(scalar_function, value.copy())
        np.testing.assert_allclose(tensor.grad, expected, atol=1e-4)

    def test_log_gradient(self):
        value = np.array([0.5, 1.5, 2.5])
        tensor = Tensor(value.copy(), requires_grad=True)
        tensor.log().sum().backward()
        np.testing.assert_allclose(tensor.grad, 1.0 / value)

    def test_leaky_relu(self):
        tensor = Tensor(np.array([-2.0, 3.0]), requires_grad=True)
        out = tensor.leaky_relu(0.1)
        np.testing.assert_allclose(out.data, [-0.2, 3.0])
        out.sum().backward()
        np.testing.assert_allclose(tensor.grad, [0.1, 1.0])

    def test_clip_gradient_masks_out_of_range(self):
        tensor = Tensor(np.array([-1.0, 0.5, 2.0]), requires_grad=True)
        tensor.clip(0.0, 1.0).sum().backward()
        np.testing.assert_allclose(tensor.grad, [0.0, 1.0, 0.0])

    def test_sigmoid_saturation_is_finite(self):
        tensor = Tensor(np.array([-1000.0, 1000.0]))
        out = tensor.sigmoid().data
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out, [0.0, 1.0], atol=1e-12)


class TestNoGrad:
    def test_no_grad_disables_graph(self):
        tensor = Tensor([1.0], requires_grad=True)
        with no_grad():
            out = tensor * 2.0
        assert not out.requires_grad

    def test_no_grad_restores_state(self):
        with no_grad():
            pass
        tensor = Tensor([1.0], requires_grad=True)
        assert (tensor * 1.0).requires_grad


class TestPropertyBased:
    @given(small_arrays)
    @settings(max_examples=40, deadline=None)
    def test_sum_matches_numpy(self, array):
        assert Tensor(array).sum().item() == pytest.approx(array.sum(), rel=1e-9, abs=1e-9)

    @given(small_arrays)
    @settings(max_examples=40, deadline=None)
    def test_add_is_commutative(self, array):
        a = Tensor(array)
        b = Tensor(array * 0.5 + 1.0)
        np.testing.assert_allclose((a + b).data, (b + a).data)

    @given(small_arrays)
    @settings(max_examples=40, deadline=None)
    def test_relu_is_idempotent(self, array):
        once = Tensor(array).relu().data
        twice = Tensor(once).relu().data
        np.testing.assert_allclose(once, twice)

    @given(small_arrays)
    @settings(max_examples=30, deadline=None)
    def test_sum_gradient_is_all_ones(self, array):
        tensor = Tensor(array, requires_grad=True)
        tensor.sum().backward()
        np.testing.assert_allclose(tensor.grad, np.ones_like(array))

    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(1, 4), st.integers(1, 4)),
            elements=st.floats(-2, 2, allow_nan=False),
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_matmul_gradient_matches_numerical(self, array):
        weight = np.linspace(-1, 1, array.shape[1] * 2).reshape(array.shape[1], 2)
        tensor = Tensor(array.copy(), requires_grad=True)
        (tensor @ Tensor(weight)).sum().backward()

        def scalar_function(x):
            return (Tensor(x) @ Tensor(weight)).sum().item()

        expected = numerical_gradient(scalar_function, array.copy())
        np.testing.assert_allclose(tensor.grad, expected, atol=1e-4)
