"""Tests for Module/Parameter, layers, optimizers and losses."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (
    MLP,
    Adam,
    Dropout,
    LeakyReLU,
    Linear,
    Module,
    Parameter,
    ReLU,
    SGD,
    Sequential,
    Sigmoid,
    Tanh,
    Tensor,
    binary_cross_entropy_with_logits,
    cross_entropy,
    link_prediction_loss,
    mse_loss,
    nll_loss,
)
from repro.nn import functional as F
from repro.nn import init


class TestModuleInfrastructure:
    def test_parameters_are_registered(self):
        layer = Linear(3, 2)
        names = dict(layer.named_parameters())
        assert set(names) == {"weight", "bias"}
        assert all(isinstance(p, Parameter) for p in layer.parameters())

    def test_nested_module_parameters(self):
        model = Sequential(Linear(3, 4), ReLU(), Linear(4, 2))
        assert len(model.parameters()) == 4
        names = [name for name, _ in model.named_parameters()]
        assert "0.weight" in names and "2.bias" in names

    def test_state_dict_roundtrip(self):
        model = MLP(4, 8, 2, num_layers=2)
        state = model.state_dict()
        for parameter in model.parameters():
            parameter.data = parameter.data + 1.0
        model.load_state_dict(state)
        for name, parameter in model.named_parameters():
            np.testing.assert_allclose(parameter.data, state[name])

    def test_load_state_dict_rejects_unknown_keys(self):
        model = Linear(2, 2)
        with pytest.raises(KeyError):
            model.load_state_dict({"nope": np.zeros((2, 2))})

    def test_load_state_dict_rejects_bad_shape(self):
        model = Linear(2, 2)
        state = model.state_dict()
        state["weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_train_eval_propagates(self):
        model = Sequential(Linear(2, 2), Dropout(0.5))
        model.eval()
        assert all(not module.training for module in model.modules())
        model.train()
        assert all(module.training for module in model.modules())

    def test_zero_grad(self):
        layer = Linear(2, 1)
        out = layer(Tensor(np.ones((3, 2)))).sum()
        out.backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_num_parameters(self):
        layer = Linear(3, 2)
        assert layer.num_parameters() == 3 * 2 + 2

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(1)


class TestLayers:
    def test_linear_shapes_and_validation(self):
        layer = Linear(4, 3)
        assert layer(Tensor(np.ones((5, 4)))).shape == (5, 3)
        with pytest.raises(ValueError):
            Linear(0, 3)

    def test_linear_no_bias(self):
        layer = Linear(2, 2, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_activation_layers(self):
        x = Tensor(np.array([-1.0, 2.0]))
        np.testing.assert_allclose(ReLU()(x).data, [0.0, 2.0])
        np.testing.assert_allclose(LeakyReLU(0.5)(x).data, [-0.5, 2.0])
        assert 0 < Sigmoid()(x).data[0] < 0.5
        assert -1 < Tanh()(x).data[0] < 0

    def test_dropout_layer_respects_training_flag(self):
        layer = Dropout(0.9, rng=np.random.default_rng(0))
        layer.eval()
        x = Tensor(np.ones((4, 4)))
        np.testing.assert_allclose(layer(x).data, x.data)
        layer.train()
        assert (layer(x).data == 0).any()

    def test_dropout_validation(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_mlp_depth(self):
        mlp = MLP(4, 8, 3, num_layers=3)
        out = mlp(Tensor(np.ones((2, 4))))
        assert out.shape == (2, 3)
        with pytest.raises(ValueError):
            MLP(4, 8, 3, num_layers=0)


class TestInit:
    def test_xavier_uniform_bounds(self):
        rng = np.random.default_rng(0)
        weight = init.xavier_uniform((100, 50), rng=rng)
        bound = np.sqrt(6.0 / 150)
        assert np.abs(weight).max() <= bound + 1e-12

    def test_xavier_normal_std(self):
        rng = np.random.default_rng(0)
        weight = init.xavier_normal((2000, 100), rng=rng)
        expected_std = np.sqrt(2.0 / 2100)
        assert abs(weight.std() - expected_std) < 0.05 * expected_std

    def test_kaiming_uniform_scale_shrinks_with_fan_in(self):
        rng = np.random.default_rng(0)
        small = np.abs(init.kaiming_uniform((10, 10), rng=rng)).max()
        large = np.abs(init.kaiming_uniform((1000, 10), rng=rng)).max()
        assert large < small

    def test_zeros(self):
        np.testing.assert_allclose(init.zeros((3,)), np.zeros(3))


class TestOptimizers:
    def _quadratic_problem(self):
        target = np.array([1.0, -2.0, 3.0])
        parameter = Parameter(np.zeros(3))
        return parameter, target

    def test_sgd_converges_on_quadratic(self):
        parameter, target = self._quadratic_problem()
        optimizer = SGD([parameter], lr=0.1)
        for _ in range(200):
            loss = ((parameter - Tensor(target)) ** 2).sum()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        np.testing.assert_allclose(parameter.data, target, atol=1e-3)

    def test_sgd_momentum_converges(self):
        parameter, target = self._quadratic_problem()
        optimizer = SGD([parameter], lr=0.05, momentum=0.9)
        for _ in range(200):
            loss = ((parameter - Tensor(target)) ** 2).sum()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        np.testing.assert_allclose(parameter.data, target, atol=1e-2)

    def test_adam_converges_on_quadratic(self):
        parameter, target = self._quadratic_problem()
        optimizer = Adam([parameter], lr=0.1)
        for _ in range(300):
            loss = ((parameter - Tensor(target)) ** 2).sum()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        np.testing.assert_allclose(parameter.data, target, atol=1e-2)

    def test_weight_decay_shrinks_parameters(self):
        parameter = Parameter(np.full(4, 10.0))
        optimizer = SGD([parameter], lr=0.1, weight_decay=0.5)
        for _ in range(50):
            loss = (parameter * 0.0).sum()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        assert np.all(np.abs(parameter.data) < 10.0)

    def test_step_skips_parameters_without_grad(self):
        parameter = Parameter(np.ones(2))
        optimizer = Adam([parameter], lr=0.1)
        optimizer.step()  # no gradient yet: should be a no-op, not an error
        np.testing.assert_allclose(parameter.data, np.ones(2))

    def test_optimizer_validation(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.1)
        with pytest.raises(ValueError):
            SGD([Parameter(np.ones(1))], lr=-1.0)
        with pytest.raises(ValueError):
            SGD([Parameter(np.ones(1))], lr=0.1, momentum=1.5)
        with pytest.raises(ValueError):
            Adam([Parameter(np.ones(1))], lr=0.1, betas=(1.5, 0.9))


class TestLosses:
    def test_cross_entropy_perfect_prediction_is_small(self):
        logits = Tensor(np.array([[10.0, -10.0], [-10.0, 10.0]]))
        loss = cross_entropy(logits, np.array([0, 1]))
        assert loss.item() < 1e-4

    def test_cross_entropy_uniform_prediction(self):
        logits = Tensor(np.zeros((4, 3)))
        loss = cross_entropy(logits, np.array([0, 1, 2, 0]))
        assert loss.item() == pytest.approx(np.log(3), rel=1e-6)

    def test_cross_entropy_mask_restricts_rows(self):
        logits = Tensor(np.array([[10.0, -10.0], [-10.0, 10.0]]))
        # Second row is wrong, but masked out.
        loss = cross_entropy(logits, np.array([0, 0]), mask=np.array([True, False]))
        assert loss.item() < 1e-4

    def test_cross_entropy_validates_shapes(self):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros(3)), np.array([0]))
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros((3, 2))), np.array([0]))

    def test_cross_entropy_gradient_direction(self):
        logits = Tensor(np.zeros((1, 2)), requires_grad=True)
        cross_entropy(logits, np.array([0])).backward()
        # Increasing the correct logit should decrease the loss.
        assert logits.grad[0, 0] < 0 < logits.grad[0, 1]

    def test_nll_loss_matches_cross_entropy(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(5, 3))
        targets = np.array([0, 1, 2, 1, 0])
        ce = cross_entropy(Tensor(logits), targets).item()
        nll = nll_loss(F.log_softmax(Tensor(logits)), targets).item()
        assert ce == pytest.approx(nll, rel=1e-9)

    def test_bce_with_logits_matches_formula(self):
        logits = np.array([0.5, -1.0, 2.0])
        targets = np.array([1.0, 0.0, 1.0])
        loss = binary_cross_entropy_with_logits(Tensor(logits), targets).item()
        probabilities = 1 / (1 + np.exp(-logits))
        expected = -(targets * np.log(probabilities) + (1 - targets) * np.log(1 - probabilities)).mean()
        assert loss == pytest.approx(expected, rel=1e-6)

    def test_bce_stable_for_extreme_logits(self):
        loss = binary_cross_entropy_with_logits(
            Tensor(np.array([1000.0, -1000.0])), np.array([1.0, 0.0])
        )
        assert np.isfinite(loss.item())
        assert loss.item() < 1e-6

    def test_link_prediction_loss_prefers_aligned_pairs(self):
        source = Tensor(np.array([[1.0, 0.0]]))
        aligned = Tensor(np.array([[1.0, 0.0]]))
        opposed = Tensor(np.array([[-1.0, 0.0]]))
        good = link_prediction_loss(source, aligned, opposed).item()
        bad = link_prediction_loss(source, opposed, aligned).item()
        assert good < bad

    def test_mse_loss(self):
        loss = mse_loss(Tensor(np.array([1.0, 2.0])), np.array([1.0, 4.0]))
        assert loss.item() == pytest.approx(2.0)

    @given(st.integers(2, 6), st.integers(2, 5))
    @settings(max_examples=20, deadline=None)
    def test_cross_entropy_is_nonnegative(self, rows, classes):
        rng = np.random.default_rng(rows * 7 + classes)
        logits = Tensor(rng.normal(size=(rows, classes)))
        targets = rng.integers(classes, size=rows)
        assert cross_entropy(logits, targets).item() >= 0.0
