"""Tests for the staged execution engine (pipeline, store, stage reuse).

The engine's core contract: a cache hit is observably identical to a cold
computation — same results bit-for-bit, same RNG stream afterwards, same
communication-ledger contents.  These tests pin that contract against the
eager "seed" pipeline (manual constructor / initializer / trainer calls).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    LDPEmbeddingInitializer,
    LumosSystem,
    TreeBasedGNNTrainer,
    TreeBatch,
    TreeConstructor,
    TreeConstructorConfig,
    default_config_for,
)
from repro.crypto.ldp import FeatureBounds
from repro.engine import ArtifactStore, build_lumos_pipeline, default_store
from repro.engine.fingerprint import fingerprint_graph, fingerprint_value
from repro.engine.stages import PipelineContext
from repro.engine.store import StoredArtifact
from repro.federation import FederatedEnvironment
from repro.graph import generate_facebook_like, split_edges, split_nodes

STAGES = ("partition", "construction", "ldp_draws", "ldp_init", "tree_batch")


@pytest.fixture(scope="module")
def graph():
    return generate_facebook_like(seed=11, num_nodes=90)


@pytest.fixture(scope="module")
def config():
    return default_config_for("facebook").with_mcmc_iterations(25).with_epochs(8)


def _seed_pipeline_supervised(graph, config, split):
    """The eager pipeline exactly as the pre-engine LumosSystem ran it."""
    normalized = graph.normalized_features(0.0, 1.0)
    rng = np.random.default_rng(config.seed)
    environment = FederatedEnvironment.from_graph(normalized, seed=config.seed)
    construction = TreeConstructor(config.constructor, rng=rng).construct(environment)
    initializer = LDPEmbeddingInitializer(
        epsilon=config.trainer.epsilon, bounds=FeatureBounds(0.0, 1.0), rng=rng
    )
    initialization = initializer.run(environment, construction.assignment)
    trainer = TreeBasedGNNTrainer(
        environment, construction, initialization, config.trainer, rng=rng
    )
    _, history = trainer.train_supervised(normalized.labels, split)
    return history, environment


class TestSeededEquivalence:
    def test_engine_matches_seed_pipeline_bit_for_bit(self, graph, config):
        split = split_nodes(graph, seed=0)
        seed_history, seed_environment = _seed_pipeline_supervised(graph, config, split)

        system = LumosSystem(graph, config, store=ArtifactStore())
        result = system.run_supervised(split)

        assert result.test_accuracy == seed_history.test_accuracy
        assert result.best_val_accuracy == seed_history.best_val_accuracy
        assert result.history.losses == seed_history.losses
        assert result.history.val_accuracy == seed_history.val_accuracy
        # Ledger accounting is part of the contract too.
        assert result.ledger_summary == seed_environment.ledger.summary(
            seed_environment.num_devices
        )

    def test_warm_store_reproduces_cold_run_exactly(self, graph, config):
        split = split_nodes(graph, seed=0)
        store = ArtifactStore()
        cold = LumosSystem(graph, config, store=store).run_supervised(split)
        warm = LumosSystem(graph, config, store=store).run_supervised(split)

        assert warm.test_accuracy == cold.test_accuracy
        assert warm.history.losses == cold.history.losses
        assert warm.ledger_summary == cold.ledger_summary
        for stage in STAGES:
            assert store.hit_count(stage) == 1, stage
            assert store.miss_count(stage) == 1, stage

    def test_warm_store_reproduces_cold_run_unsupervised(self, graph, config):
        edge_split = split_edges(graph, seed=0)
        store = ArtifactStore()
        cold = LumosSystem(graph, config, store=store).run_unsupervised(edge_split)
        warm = LumosSystem(graph, config, store=store).run_unsupervised(edge_split)
        assert warm.test_auc == cold.test_auc
        assert warm.history.losses == cold.history.losses


class TestSweepReuse:
    def test_epsilon_sweep_runs_construction_exactly_once(self, graph, config):
        split = split_nodes(graph, seed=0)
        store = ArtifactStore()
        epsilons = [0.5, 1.0, 2.0, 3.0, 4.0]
        sweep = {}
        for epsilon in epsilons:
            system = LumosSystem(graph, config.with_epsilon(epsilon), store=store)
            sweep[epsilon] = system.run_supervised(split).test_accuracy

        assert store.miss_count("construction") == 1
        assert store.hit_count("construction") == len(epsilons) - 1
        assert store.miss_count("partition") == 1
        # the draws and the batch structure are epsilon-independent: computed
        # once, hit on every later sweep point
        assert store.miss_count("ldp_draws") == 1
        assert store.hit_count("ldp_draws") == len(epsilons) - 1
        assert store.miss_count("tree_batch") == 1
        assert store.hit_count("tree_batch") == len(epsilons) - 1
        # epsilon changes the thresholding, so ldp_init recomputes per point
        assert store.miss_count("ldp_init") == len(epsilons)

        # Reused stages must not leak state between points: every point equals
        # an isolated cold run.
        for epsilon in (epsilons[0], epsilons[-1]):
            isolated = LumosSystem(
                graph, config.with_epsilon(epsilon), store=ArtifactStore()
            ).run_supervised(split)
            assert isolated.test_accuracy == sweep[epsilon]

    def test_backbone_sweep_reuses_everything_up_to_training(self, graph, config):
        split = split_nodes(graph, seed=0)
        store = ArtifactStore()
        for backbone in ("gcn", "gat"):
            LumosSystem(graph, config.with_backbone(backbone), store=store).run_supervised(split)
        for stage in STAGES:
            assert store.miss_count(stage) == 1, stage
            assert store.hit_count(stage) == 1, stage


class TestTreeBatchVectorized:
    @pytest.mark.parametrize("virtual_nodes", [True, False])
    def test_matches_generic_builder(self, graph, virtual_nodes):
        normalized = graph.normalized_features(0.0, 1.0)
        environment = FederatedEnvironment.from_graph(normalized, seed=0)
        constructor = TreeConstructor(
            TreeConstructorConfig(mcmc_iterations=15, use_virtual_nodes=virtual_nodes),
            rng=np.random.default_rng(0),
        )
        construction = constructor.construct(environment)
        initializer = LDPEmbeddingInitializer(epsilon=2.0, rng=np.random.default_rng(1))
        initialization = initializer.run(environment, construction.assignment)

        fast = TreeBatch._build_vectorized(
            environment, construction, initialization, normalized.num_features
        )
        generic = TreeBatch._build_generic(
            environment, construction, initialization, normalized.num_features
        )
        assert fast is not None
        assert fast.num_nodes == generic.num_nodes
        assert fast.num_vertices == generic.num_vertices
        assert fast.device_slices == generic.device_slices
        np.testing.assert_array_equal(fast.leaf_rows, generic.leaf_rows)
        np.testing.assert_array_equal(fast.leaf_vertices, generic.leaf_vertices)
        np.testing.assert_array_equal(fast.edge_index, generic.edge_index)
        np.testing.assert_array_equal(fast.features, generic.features)
        assert (fast.adjacency != generic.adjacency).nnz == 0

    def test_isolated_vertices_get_single_center_leaf(self):
        # Vertex 3 has no edges at all; its tree is a single centre leaf.
        graph_edges = np.array([[0, 1], [1, 2]])
        from repro.graph import Graph

        graph = Graph(
            num_nodes=4,
            edges=graph_edges,
            features=np.random.default_rng(0).random((4, 5)),
        )
        environment = FederatedEnvironment.from_graph(graph, seed=0)
        construction = TreeConstructor(
            TreeConstructorConfig(mcmc_iterations=5), rng=np.random.default_rng(0)
        ).construct(environment)
        initialization = LDPEmbeddingInitializer(
            epsilon=2.0, rng=np.random.default_rng(1)
        ).run(environment, construction.assignment)
        fast = TreeBatch._build_vectorized(environment, construction, initialization, 5)
        generic = TreeBatch._build_generic(environment, construction, initialization, 5)
        np.testing.assert_array_equal(fast.features, generic.features)
        np.testing.assert_array_equal(fast.leaf_rows, generic.leaf_rows)
        np.testing.assert_array_equal(fast.leaf_vertices, generic.leaf_vertices)
        assert fast.device_slices == generic.device_slices


class TestArtifactStore:
    def test_lru_eviction(self):
        store = ArtifactStore(max_entries=2)
        store.put("a", StoredArtifact(value=1))
        store.put("b", StoredArtifact(value=2))
        assert store.get("a") is not None  # refresh "a"
        store.put("c", StoredArtifact(value=3))
        assert "b" not in store
        assert "a" in store and "c" in store
        assert len(store) == 2

    def test_counters_and_clear(self):
        store = ArtifactStore()
        store.record_miss("x")
        store.record_hit("x")
        store.record_hit("x")
        assert store.hit_count("x") == 2
        assert store.miss_count("x") == 1
        assert store.summary() == {"x": {"hits": 2, "misses": 1}}
        store.clear()
        assert store.summary() == {}
        assert len(store) == 0

    def test_default_store_is_shared(self):
        assert default_store() is default_store()

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            ArtifactStore(max_entries=0)


class TestFingerprints:
    def test_graph_fingerprint_distinguishes_content(self, graph):
        other = generate_facebook_like(seed=12, num_nodes=90)
        assert fingerprint_graph(graph) == fingerprint_graph(graph)
        assert fingerprint_graph(graph) != fingerprint_graph(other)

    def test_config_fingerprint_changes_with_fields(self):
        base = default_config_for("facebook")
        assert fingerprint_value(base.constructor) == fingerprint_value(base.constructor)
        assert fingerprint_value(base.constructor) != fingerprint_value(
            base.without_tree_trimming().constructor
        )

    def test_unknown_pipeline_stage_rejected(self, graph, config):
        system = LumosSystem(graph, config, store=ArtifactStore())
        with pytest.raises(KeyError):
            system.pipeline.run(system._context, through="no-such-stage")


class TestRngRestoration:
    def test_rng_state_identical_after_hit_and_miss(self, graph, config):
        store = ArtifactStore()
        cold = LumosSystem(graph, config, store=store)
        cold.initialize_embeddings()
        cold_state = cold.rng.bit_generator.state

        warm = LumosSystem(graph, config, store=store)
        warm.initialize_embeddings()
        warm_state = warm.rng.bit_generator.state
        assert cold_state == warm_state
