"""Tests for the sweep-aware engine stages and the disk-spill store.

Covers the three reuse mechanisms this layer adds:

* the ``ldp_draws`` stage — epsilon-independent randomness drawn once per
  construction and re-thresholded per sweep point;
* the epsilon-free ``tree_batch`` key — the cached structure re-bound to the
  current point's LDP exchange on replay;
* :class:`~repro.engine.store.DiskSpillStore` — byte-budgeted memory with
  ``.npz`` spill files that another process (or store instance) can reload.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    LDPEmbeddingInitializer,
    LumosSystem,
    TreeBatch,
    TreeConstructor,
    TreeConstructorConfig,
    default_config_for,
)
from repro.crypto.ldp import FeatureBounds
from repro.engine import ArtifactStore, DiskSpillStore
from repro.engine.store import StoredArtifact
from repro.federation import FederatedEnvironment
from repro.graph import generate_facebook_like, split_nodes


@pytest.fixture(scope="module")
def graph():
    return generate_facebook_like(seed=11, num_nodes=80)


@pytest.fixture(scope="module")
def config():
    return default_config_for("facebook").with_mcmc_iterations(20).with_epochs(6)


def _constructed(graph, seed=0):
    normalized = graph.normalized_features(0.0, 1.0)
    environment = FederatedEnvironment.from_graph(normalized, seed=0)
    construction = TreeConstructor(
        TreeConstructorConfig(mcmc_iterations=15), rng=np.random.default_rng(seed)
    ).construct(environment)
    return normalized, environment, construction


class TestDrawThresholdSplit:
    def test_run_equals_draw_then_threshold(self, graph):
        normalized, env_a, construction_a = _constructed(graph)
        _, env_b, construction_b = _constructed(graph)
        assert construction_a.assignment.as_lists() == construction_b.assignment.as_lists()

        eager = LDPEmbeddingInitializer(
            epsilon=2.0, bounds=FeatureBounds(0.0, 1.0), rng=np.random.default_rng(5)
        ).run(env_a, construction_a.assignment)

        split_initializer = LDPEmbeddingInitializer(
            epsilon=2.0, bounds=FeatureBounds(0.0, 1.0), rng=np.random.default_rng(5)
        )
        draws = split_initializer.draw(env_b, construction_b.assignment)
        split = split_initializer.threshold(env_b, draws)

        assert eager.messages_sent == split.messages_sent
        assert eager.bytes_sent == split.bytes_sent
        for receiver, per_sender in eager.received_features.items():
            for sender, feature in per_sender.items():
                np.testing.assert_array_equal(
                    feature, split.received_features[receiver][sender]
                )
        assert env_a.ledger.message_records() == env_b.ledger.message_records()

    def test_draws_are_epsilon_independent(self, graph):
        _, environment, construction = _constructed(graph)
        draws_low = LDPEmbeddingInitializer(
            epsilon=0.5, rng=np.random.default_rng(3)
        ).draw(environment, construction.assignment)
        draws_high = LDPEmbeddingInitializer(
            epsilon=4.0, rng=np.random.default_rng(3)
        ).draw(environment, construction.assignment)
        assert draws_low.per_sender.keys() == draws_high.per_sender.keys()
        for sender in draws_low.per_sender:
            low, high = draws_low.per_sender[sender], draws_high.per_sender[sender]
            assert low.receivers == high.receivers
            np.testing.assert_array_equal(low.bin_assignment, high.bin_assignment)
            np.testing.assert_array_equal(low.uniforms, high.uniforms)

    def test_threshold_consumes_no_randomness(self, graph):
        _, environment, construction = _constructed(graph)
        initializer = LDPEmbeddingInitializer(epsilon=2.0, rng=np.random.default_rng(4))
        draws = initializer.draw(environment, construction.assignment)
        state = initializer.rng.bit_generator.state
        initializer.threshold(environment, draws)
        assert initializer.rng.bit_generator.state == state


class TestTreeBatchRebind:
    def test_with_initialization_matches_fresh_build(self, graph):
        _, environment, construction = _constructed(graph)
        shared_rng = np.random.default_rng(6)
        initializer = LDPEmbeddingInitializer(epsilon=1.0, rng=shared_rng)
        draws = initializer.draw(environment, construction.assignment)
        first = initializer.threshold(environment, draws)
        second = LDPEmbeddingInitializer(
            epsilon=3.0, rng=np.random.default_rng(0)
        ).threshold(environment, draws)

        dim = graph.num_features
        batch = TreeBatch.build(environment, construction, first, dim)
        rebound = batch.with_initialization(second)
        fresh = TreeBatch.build(environment, construction, second, dim)

        np.testing.assert_array_equal(rebound.features, fresh.features)
        # Structure is shared, not copied.
        assert rebound.adjacency is batch.adjacency
        assert rebound.edge_index is batch.edge_index
        np.testing.assert_array_equal(rebound.leaf_rows, fresh.leaf_rows)

    def test_generic_builder_also_carries_recipe(self, graph):
        _, environment, construction = _constructed(graph)
        initialization = LDPEmbeddingInitializer(
            epsilon=2.0, rng=np.random.default_rng(7)
        ).run(environment, construction.assignment)
        generic = TreeBatch._build_generic(
            environment, construction, initialization, graph.num_features
        )
        vectorized = TreeBatch._build_vectorized(
            environment, construction, initialization, graph.num_features
        )
        np.testing.assert_array_equal(generic.neighbor_rows, vectorized.neighbor_rows)
        np.testing.assert_array_equal(
            generic.neighbor_receivers, vectorized.neighbor_receivers
        )
        np.testing.assert_array_equal(
            generic.neighbor_senders, vectorized.neighbor_senders
        )


class TestDiskSpillStore:
    def test_spills_over_byte_budget_and_reloads(self, tmp_path):
        store = DiskSpillStore(tmp_path, max_bytes=4096)
        payloads = {
            f"key-{i}": StoredArtifact(value=np.arange(512, dtype=np.float64))
            for i in range(8)
        }
        for key, artifact in payloads.items():
            store.put(key, artifact)
        assert store.spill_writes > 0
        assert store.in_memory_bytes <= 4096 or len(store) == 1
        for key, artifact in payloads.items():
            loaded = store.get(key)
            assert loaded is not None
            np.testing.assert_array_equal(loaded.value, artifact.value)
        assert store.spill_loads > 0

    def test_contains_covers_disk(self, tmp_path):
        store = DiskSpillStore(tmp_path, max_bytes=1024)
        store.put("a", StoredArtifact(value=np.zeros(1024)))
        store.put("b", StoredArtifact(value=np.zeros(1024)))
        assert "a" in store and "b" in store

    def test_count_eviction_spills_instead_of_dropping(self, tmp_path):
        store = DiskSpillStore(tmp_path, max_bytes=1 << 30, max_entries=2)
        for i in range(4):
            store.put(f"key-{i}", StoredArtifact(value=i))
        for i in range(4):
            assert store.get(f"key-{i}") is not None, i

    def test_cross_process_reuse_via_directory(self, graph, config, tmp_path):
        split = split_nodes(graph, seed=0)
        first_store = DiskSpillStore(tmp_path, max_bytes=1)  # spill everything
        cold = LumosSystem(graph, config, store=first_store).run_supervised(split)
        assert first_store.spill_writes > 0

        # A fresh store instance (a new process in real deployments) finds the
        # artifacts on disk: every stage hits, results are bit-identical.
        second_store = DiskSpillStore(tmp_path, max_bytes=1)
        warm = LumosSystem(graph, config, store=second_store).run_supervised(split)
        assert warm.test_accuracy == cold.test_accuracy
        assert warm.history.losses == cold.history.losses
        assert warm.ledger_summary == cold.ledger_summary
        for stage in ("partition", "construction", "ldp_draws", "ldp_init", "tree_batch"):
            assert second_store.hit_count(stage) == 1, stage
            assert second_store.miss_count(stage) == 0, stage
        assert second_store.spill_loads > 0

    def test_matches_in_memory_store_results(self, graph, config):
        split = split_nodes(graph, seed=0)
        memory = LumosSystem(graph, config, store=ArtifactStore()).run_supervised(split)
        import tempfile

        with tempfile.TemporaryDirectory() as directory:
            spilled = LumosSystem(
                graph, config, store=DiskSpillStore(directory, max_bytes=1)
            ).run_supervised(split)
        assert spilled.test_accuracy == memory.test_accuracy
        assert spilled.history.losses == memory.history.losses

    def test_clear_removes_spill_files(self, tmp_path):
        store = DiskSpillStore(tmp_path, max_bytes=1)
        store.put("a", StoredArtifact(value=np.zeros(64)))
        assert store.spill_writes > 0 and "a" in store
        store.clear()
        assert "a" not in store
        assert store.get("a") is None
        assert list(tmp_path.glob("*.npz")) == []

    def test_corrupt_spill_file_degrades_to_miss(self, tmp_path):
        store = DiskSpillStore(tmp_path, max_bytes=1)
        store.put("a", StoredArtifact(value=np.arange(64)))
        path = store._path_for("a")
        assert path.exists()
        payload = path.read_bytes()
        path.write_bytes(payload[: len(payload) // 2])  # truncated archive
        assert store.get("a") is None
        assert not path.exists()  # unreadable file dropped for repair
        # A later eviction of the same key can re-publish it.
        store.put("a", StoredArtifact(value=np.arange(64)))
        loaded = store.get("a")
        assert loaded is not None
        np.testing.assert_array_equal(loaded.value, np.arange(64))

    def test_stale_format_version_degrades_to_miss(self, tmp_path):
        import io

        store = DiskSpillStore(tmp_path, max_bytes=1)
        store.put("a", StoredArtifact(value=np.arange(8)))
        path = store._path_for("a")
        # Rewrite the spill file with a foreign format version.
        buffer = io.BytesIO()
        np.savez(
            buffer,
            version=np.int64(999),
            key=np.frombuffer(b"a", dtype=np.uint8),
            payload=np.zeros(4, dtype=np.uint8),
        )
        path.write_bytes(buffer.getvalue())
        assert store.get("a") is None
        assert not path.exists()  # stale file dropped, key can re-spill

    def test_budget_validation(self, tmp_path):
        with pytest.raises(ValueError):
            DiskSpillStore(tmp_path, max_bytes=0)
