"""Tests for the graph-oriented functional primitives."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import functional as F
from repro.nn.tensor import Tensor


class TestSparseMatmul:
    def test_forward_matches_dense(self):
        matrix = sp.csr_matrix(np.array([[1.0, 0.0], [2.0, 3.0]]))
        dense = Tensor(np.array([[1.0, 1.0], [2.0, 0.5]]))
        out = F.sparse_matmul(matrix, dense)
        np.testing.assert_allclose(out.data, matrix.toarray() @ dense.data)

    def test_backward_uses_transpose(self):
        matrix = sp.csr_matrix(np.array([[1.0, 2.0], [0.0, 1.0]]))
        dense = Tensor(np.array([[1.0], [2.0]]), requires_grad=True)
        F.sparse_matmul(matrix, dense).sum().backward()
        np.testing.assert_allclose(dense.grad, matrix.toarray().T @ np.ones((2, 1)))

    def test_rejects_dense_matrix(self):
        with pytest.raises(TypeError):
            F.sparse_matmul(np.eye(2), Tensor(np.ones((2, 1))))


class TestGatherScatter:
    def test_gather_forward_backward(self):
        tensor = Tensor(np.arange(6, dtype=float).reshape(3, 2), requires_grad=True)
        index = np.array([2, 0, 2])
        out = F.gather(tensor, index)
        np.testing.assert_allclose(out.data, tensor.data[index])
        out.sum().backward()
        np.testing.assert_allclose(tensor.grad, [[1, 1], [0, 0], [2, 2]])

    def test_scatter_add_forward(self):
        tensor = Tensor(np.array([[1.0], [2.0], [3.0]]))
        out = F.scatter_add(tensor, np.array([0, 1, 0]), num_segments=2)
        np.testing.assert_allclose(out.data, [[4.0], [2.0]])

    def test_scatter_add_backward_copies_gradient(self):
        tensor = Tensor(np.ones((3, 2)), requires_grad=True)
        out = F.scatter_add(tensor, np.array([1, 1, 0]), num_segments=2)
        (out * Tensor(np.array([[1.0, 1.0], [5.0, 5.0]]))).sum().backward()
        np.testing.assert_allclose(tensor.grad, [[5, 5], [5, 5], [1, 1]])

    def test_gather_then_scatter_roundtrip(self):
        tensor = Tensor(np.arange(8, dtype=float).reshape(4, 2))
        index = np.arange(4)
        out = F.scatter_add(F.gather(tensor, index), index, num_segments=4)
        np.testing.assert_allclose(out.data, tensor.data)

    def test_gather_rows_columns(self):
        tensor = Tensor(np.arange(6, dtype=float).reshape(3, 2), requires_grad=True)
        out = F.gather_rows_columns(tensor, np.array([1, 0, 1]))
        np.testing.assert_allclose(out.data, [1.0, 2.0, 5.0])
        out.sum().backward()
        np.testing.assert_allclose(tensor.grad, [[0, 1], [1, 0], [0, 1]])


class TestSegmentSoftmax:
    def test_sums_to_one_per_segment(self):
        values = Tensor(np.array([1.0, 2.0, 0.5, 3.0, -1.0]))
        segment_ids = np.array([0, 0, 1, 1, 1])
        out = F.segment_softmax(values, segment_ids, num_segments=2)
        assert out.data[:2].sum() == pytest.approx(1.0)
        assert out.data[2:].sum() == pytest.approx(1.0)

    def test_matches_plain_softmax_within_single_segment(self):
        values = np.array([0.1, 2.0, -1.0])
        out = F.segment_softmax(Tensor(values), np.zeros(3, dtype=int), 1)
        expected = np.exp(values - values.max())
        expected /= expected.sum()
        np.testing.assert_allclose(out.data, expected, atol=1e-12)

    def test_multihead_shape(self):
        values = Tensor(np.random.default_rng(0).normal(size=(6, 4)))
        out = F.segment_softmax(values, np.array([0, 0, 1, 1, 2, 2]), 3)
        assert out.data.shape == (6, 4)
        np.testing.assert_allclose(out.data.reshape(3, 2, 4).sum(axis=1), np.ones((3, 4)))

    def test_gradient_is_finite(self):
        values = Tensor(np.array([100.0, -100.0, 50.0]), requires_grad=True)
        out = F.segment_softmax(values, np.array([0, 0, 0]), 1)
        out.sum().backward()
        assert np.all(np.isfinite(values.grad))


class TestSoftmaxFamily:
    def test_softmax_rows_sum_to_one(self):
        logits = Tensor(np.random.default_rng(1).normal(size=(5, 3)))
        out = F.softmax(logits)
        np.testing.assert_allclose(out.data.sum(axis=1), np.ones(5))

    def test_log_softmax_is_log_of_softmax(self):
        logits = Tensor(np.random.default_rng(2).normal(size=(4, 3)))
        np.testing.assert_allclose(
            F.log_softmax(logits).data, np.log(F.softmax(logits).data), atol=1e-10
        )

    def test_log_softmax_stable_for_large_logits(self):
        logits = Tensor(np.array([[1000.0, 0.0], [0.0, -1000.0]]))
        out = F.log_softmax(logits).data
        assert np.all(np.isfinite(out))

    @given(st.integers(2, 6), st.integers(2, 5))
    @settings(max_examples=20, deadline=None)
    def test_softmax_invariant_to_shift(self, rows, cols):
        rng = np.random.default_rng(rows * 10 + cols)
        logits = rng.normal(size=(rows, cols))
        base = F.softmax(Tensor(logits)).data
        shifted = F.softmax(Tensor(logits + 7.5)).data
        np.testing.assert_allclose(base, shifted, atol=1e-10)


class TestDropoutAndLinear:
    def test_dropout_eval_mode_is_identity(self):
        tensor = Tensor(np.ones((10, 10)))
        out = F.dropout(tensor, 0.5, training=False)
        np.testing.assert_allclose(out.data, tensor.data)

    def test_dropout_scales_surviving_entries(self):
        rng = np.random.default_rng(0)
        tensor = Tensor(np.ones((200, 50)))
        out = F.dropout(tensor, 0.4, training=True, rng=rng)
        surviving = out.data[out.data > 0]
        np.testing.assert_allclose(surviving, 1.0 / 0.6)
        assert abs((out.data == 0).mean() - 0.4) < 0.05

    def test_dropout_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(3)), 1.5, training=True)

    def test_linear_with_bias(self):
        x = Tensor(np.ones((2, 3)))
        weight = Tensor(np.eye(3))
        bias = Tensor(np.array([1.0, 2.0, 3.0]))
        out = F.linear(x, weight, bias)
        np.testing.assert_allclose(out.data, [[2, 3, 4], [2, 3, 4]])

    def test_embedding_mean_groups(self):
        tensor = Tensor(np.array([[2.0], [4.0], [6.0]]))
        out = F.embedding_mean(tensor, np.array([0, 0, 1]))
        np.testing.assert_allclose(out.data, [[3.0], [6.0]])
