"""Equivalence tests for the batched secure-mode construction kernels.

The batched secure kernels (vectorised OT simulation,
``SecureComparator.compare_batch(execute=True)``, the secure greedy kernel
and the incremental balancer's secure Alg. 3 path) must be *bit-for-bit*
indistinguishable from the per-comparison reference loops in every recorded
observable: outcomes / selected sets / assignments, accountant counters and
capped transcript log, canonical ledger transcript, and final RNG state.
The RNG block-draw contract of every kernel is pinned through
``helpers.rng_contract.assert_stream_contract``.

The randomized property sweeps run a bounded number of cases in tier-1; the
``slow``-marked variants widen them for local runs (``pytest -m slow``).
"""

from __future__ import annotations

import numpy as np
import pytest

from helpers.rng_contract import assert_stream_contract, clone_generator

from repro.core import (
    MCMCBalancer,
    TreeConstructor,
    TreeConstructorConfig,
    greedy_initialization,
)
from repro.crypto import (
    ObliviousTransfer,
    SecureComparator,
    TranscriptAccountant,
    WorkloadComparisonProtocol,
    verify_zero_knowledge_transcript,
)
from repro.federation import FederatedEnvironment
from repro.graph import generate_facebook_like, generate_small_world, generate_star
from repro.graph.ego import EgoNetwork

BIT_WIDTHS = (8, 16, 32, 64)


def _edge_and_random_operands(bit_width: int, seed: int, count: int = 40):
    """Random operand pairs plus the protocol's edge values (0, equal, max)."""
    rng = np.random.default_rng(seed)
    top = (1 << bit_width) - 1
    draw_top = min(top, (1 << 62) - 1)
    left = [int(rng.integers(0, draw_top + 1)) for _ in range(count)]
    right = [int(rng.integers(0, draw_top + 1)) for _ in range(count)]
    equal = int(rng.integers(0, draw_top + 1))
    left += [0, top, top, 0, equal, top]
    right += [top, 0, top, 0, equal, top]
    return left, right


def _compare_looped(bit_width, left, right):
    accountant = TranscriptAccountant()
    comparator = SecureComparator(bit_width=bit_width, accountant=accountant)
    outcomes = [comparator.compare(l, r).left_ge_right for l, r in zip(left, right)]
    return outcomes, accountant


def _compare_batched(bit_width, left, right, execute):
    accountant = TranscriptAccountant()
    comparator = SecureComparator(bit_width=bit_width, accountant=accountant)
    rng = np.random.default_rng(99)
    batch = assert_stream_contract(
        lambda _: comparator.compare_batch(left, right, execute=execute), rng, 0
    )
    return [bool(v) for v in batch.left_ge_right], accountant


class TestCompareBatchEquivalence:
    """`compare_batch` (executed protocol) vs the looped scalar protocol."""

    @pytest.mark.parametrize("bit_width", BIT_WIDTHS)
    @pytest.mark.parametrize("seed", [0, 1])
    def test_executed_batch_matches_loop(self, bit_width, seed):
        left, right = _edge_and_random_operands(bit_width, seed)
        loop_outcomes, loop_acc = _compare_looped(bit_width, left, right)
        batch_outcomes, batch_acc = _compare_batched(bit_width, left, right, True)
        assert batch_outcomes == loop_outcomes
        assert batch_acc.snapshot() == loop_acc.snapshot()
        assert batch_acc._log == loop_acc._log
        assert verify_zero_knowledge_transcript(batch_acc)

    @pytest.mark.parametrize("bit_width", BIT_WIDTHS)
    def test_analytic_and_executed_paths_agree(self, bit_width):
        left, right = _edge_and_random_operands(bit_width, 3)
        analytic = _compare_batched(bit_width, left, right, False)
        executed = _compare_batched(bit_width, left, right, True)
        assert analytic[0] == executed[0]
        assert analytic[1].snapshot() == executed[1].snapshot()
        assert analytic[1]._log == executed[1]._log

    @pytest.mark.slow
    @pytest.mark.parametrize("bit_width", BIT_WIDTHS)
    @pytest.mark.parametrize("seed", range(2, 12))
    def test_executed_batch_matches_loop_wide(self, bit_width, seed):
        left, right = _edge_and_random_operands(bit_width, seed, count=300)
        loop_outcomes, loop_acc = _compare_looped(bit_width, left, right)
        batch_outcomes, batch_acc = _compare_batched(bit_width, left, right, True)
        assert batch_outcomes == loop_outcomes
        assert batch_acc.snapshot() == loop_acc.snapshot()
        assert batch_acc._log == loop_acc._log

    def test_workload_protocol_batch_executes(self):
        accountant = TranscriptAccountant()
        protocol = WorkloadComparisonProtocol(bit_width=24, accountant=accountant)
        batch = protocol.compare_workloads_many([5, 3, 7], [5, 9, 1])
        assert list(batch.left_ge_right) == [True, False, True]
        assert accountant.comparisons == 3


class TestOTBatchContracts:
    """Batched OT kernels: equivalence plus the RNG block-draw contract."""

    def test_transfer_batch_draws_exactly_two_per_position(self):
        message_bits = 16
        modulus = 1 << message_bits
        count = 25
        rng_values = np.random.default_rng(5)
        m0 = rng_values.integers(0, modulus, size=count)
        m1 = rng_values.integers(0, modulus, size=count)
        choices = rng_values.integers(0, 2, size=count)

        batch_acc = TranscriptAccountant()
        rng = np.random.default_rng(7)
        chosen = assert_stream_contract(
            lambda generator: ObliviousTransfer(batch_acc, generator).transfer_batch(
                m0, m1, choices, message_bits=message_bits
            ),
            rng,
            # Documented contract: one (n, 2) block draw == 2n scalar draws.
            2 * count,
            draw=lambda generator, n: generator.integers(modulus, size=(n // 2, 2)),
        )

        loop_acc = TranscriptAccountant()
        loop_ot = ObliviousTransfer(loop_acc, np.random.default_rng(7))
        expected = [
            loop_ot.transfer(int(a), int(b), int(c), message_bits=message_bits).chosen_message
            for a, b, c in zip(m0, m1, choices)
        ]
        assert list(chosen) == expected
        assert batch_acc.snapshot() == loop_acc.snapshot()
        assert batch_acc._log == loop_acc._log

    def test_transfer_table_batch_draws_nothing(self):
        tables = np.arange(32).reshape(2, 16)
        rng = np.random.default_rng(11)
        accountant = TranscriptAccountant()
        got = assert_stream_contract(
            lambda generator: ObliviousTransfer(accountant, generator).transfer_table_batch(
                tables, np.array([3, 9]), message_bits=4
            ),
            rng,
            0,
        )
        assert list(got) == [3, 16 + 9]
        # charge=True matches two scalar transfer_table calls.
        loop_acc = TranscriptAccountant()
        loop_ot = ObliviousTransfer(loop_acc, np.random.default_rng(11))
        loop_ot.transfer_table(tuple(range(16)), 3, message_bits=4)
        loop_ot.transfer_table(tuple(range(16, 32)), 9, message_bits=4)
        assert accountant.snapshot() == loop_acc.snapshot()
        assert accountant._log == loop_acc._log

    def test_transfer_batch_validation(self):
        ot = ObliviousTransfer(rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            ot.transfer_batch([1], [2], [3])
        with pytest.raises(ValueError):
            ot.transfer_batch([1 << 40], [2], [0], message_bits=32)
        with pytest.raises(ValueError):
            ot.transfer_table_batch(np.zeros((2, 4)), np.array([0, 4]))
        assert ot.transfer_batch([], [], []).shape == (0,)

    def test_clear_batched_kernels_draw_nothing(self, social_graph):
        """The clear kernels' prose 'draws nothing' contract, now executable."""
        environment = FederatedEnvironment.from_graph(social_graph, seed=0)
        assert_stream_contract(
            lambda generator: greedy_initialization(
                environment, rng=generator, kernel="batched"
            ),
            np.random.default_rng(0),
            0,
        )
        comparator = SecureComparator(bit_width=8)
        assert_stream_contract(
            lambda _: comparator.compare_batch([1, 2], [2, 1]),
            np.random.default_rng(1),
            0,
        )


class TestWideOT:
    """64-bit operands: ``modulus = 2**64`` no longer fits numpy's default
    int64 bounded draw, so wide widths take an explicit uint64 pad path."""

    TOP = (1 << 64) - 1

    def test_scalar_transfer_at_the_64_bit_edge(self):
        ot = ObliviousTransfer(rng=np.random.default_rng(0))
        assert ot.transfer(self.TOP, 0, 0, message_bits=64).chosen_message == self.TOP
        assert ot.transfer(0, self.TOP, 1, message_bits=64).chosen_message == self.TOP
        assert ot.transfer(self.TOP, self.TOP, 1, message_bits=64).chosen_message == self.TOP

    def test_batch_matches_scalar_loop_at_64_bits(self):
        m0 = np.array([self.TOP, 0, self.TOP - 1, 12345], dtype=np.uint64)
        m1 = np.array([0, self.TOP, 1, self.TOP], dtype=np.uint64)
        choices = np.array([0, 1, 1, 0])
        batch_acc = TranscriptAccountant()
        rng = np.random.default_rng(3)
        chosen = assert_stream_contract(
            lambda generator: ObliviousTransfer(batch_acc, generator).transfer_batch(
                m0, m1, choices, message_bits=64
            ),
            rng,
            2 * 4,
            draw=lambda g, n: g.integers(
                0, (1 << 64) - 1, size=(n // 2, 2), dtype=np.uint64, endpoint=True
            ),
        )
        assert chosen.dtype == np.uint64
        loop_acc = TranscriptAccountant()
        loop_ot = ObliviousTransfer(loop_acc, np.random.default_rng(3))
        expected = [
            loop_ot.transfer(int(a), int(b), int(c), message_bits=64).chosen_message
            for a, b, c in zip(m0, m1, choices)
        ]
        assert [int(value) for value in chosen] == expected
        assert batch_acc.snapshot() == loop_acc.snapshot()
        assert batch_acc._log == loop_acc._log

    def test_63_bit_batches_stay_on_the_historical_stream(self):
        # The widest narrow width: its modulus (2**63) is still a legal int64
        # exclusive bound, so streams pinned before the uint64 fix must not
        # shift.
        chosen = assert_stream_contract(
            lambda generator: ObliviousTransfer(
                TranscriptAccountant(), generator
            ).transfer_batch([5, 1], [9, 2], [1, 0], message_bits=63),
            np.random.default_rng(1),
            2 * 2,
            draw=lambda g, n: g.integers(1 << 63, size=(n // 2, 2)),
        )
        assert chosen.dtype == np.int64
        assert list(chosen) == [9, 1]

    def test_out_of_range_64_bit_operands_are_rejected(self):
        ot = ObliviousTransfer(rng=np.random.default_rng(0))
        with pytest.raises((ValueError, OverflowError)):
            ot.transfer_batch([1 << 64], [0], [0], message_bits=64)
        with pytest.raises(ValueError):
            ot.transfer_batch([-1], [0], [0], message_bits=64)
        with pytest.raises(ValueError):
            ot.transfer(1 << 64, 0, 0, message_bits=64)

    def test_precomputed_pool_matches_pool_free_at_64_bits(self):
        m0 = np.array([self.TOP, 7, 0], dtype=np.uint64)
        m1 = np.array([0, self.TOP, self.TOP], dtype=np.uint64)
        choices = np.array([1, 0, 1])
        pooled_ot = ObliviousTransfer(rng=np.random.default_rng(4))
        assert pooled_ot.precompute_pads(3, 64) == 3
        assert pooled_ot.pooled_pads(64) == 3
        pooled = pooled_ot.transfer_batch(m0, m1, choices, message_bits=64)
        assert pooled_ot.pooled_pads(64) == 0
        live_ot = ObliviousTransfer(rng=np.random.default_rng(4))
        live = live_ot.transfer_batch(m0, m1, choices, message_bits=64)
        assert np.array_equal(pooled, live)
        assert (
            pooled_ot._rng.bit_generator.state == live_ot._rng.bit_generator.state
        )


def _noncontiguous_environment(seed: int = 0) -> FederatedEnvironment:
    adjacency = {
        50: [3, 7, 9, 11],
        3: [50, 7],
        7: [50, 3, 9],
        9: [50, 7],
        11: [50],
        42: [],
    }
    rng = np.random.default_rng(seed)
    partition = {
        center: EgoNetwork(
            center=center,
            neighbors=np.asarray(neighbors, dtype=np.int64),
            feature=rng.random(4),
        )
        for center, neighbors in adjacency.items()
    }
    return FederatedEnvironment.from_partition(partition, seed=seed)


def _run_secure_greedy(make_environment, kernel, seed=0):
    environment = make_environment()
    accountant = TranscriptAccountant()
    rng = np.random.default_rng(seed)
    assignment = assert_stream_contract(
        lambda generator: greedy_initialization(
            environment, accountant=accountant, rng=generator,
            kernel=kernel, secure=True,
        ),
        rng,
        0,  # greedy is RNG-transparent under every kernel, secure included
    )
    return assignment, environment, accountant


class TestSecureGreedyEquivalence:
    @pytest.mark.parametrize(
        "make_environment",
        [
            lambda: FederatedEnvironment.from_graph(
                generate_facebook_like(seed=3, num_nodes=80), seed=0
            ),
            lambda: FederatedEnvironment.from_graph(
                generate_star(num_leaves=8, seed=2), seed=0
            ),
            _noncontiguous_environment,
        ],
        ids=["facebook", "star", "noncontiguous"],
    )
    def test_secure_batched_matches_reference(self, make_environment):
        fast, fast_env, fast_acc = _run_secure_greedy(make_environment, "batched")
        slow, slow_env, slow_acc = _run_secure_greedy(make_environment, "reference")
        assert fast.as_lists() == slow.as_lists()
        assert fast_acc.snapshot() == slow_acc.snapshot()
        assert fast_acc._log == slow_acc._log
        assert fast_env.ledger.message_records() == slow_env.ledger.message_records()
        assert fast_env.ledger.summary(fast_env.num_devices) == slow_env.ledger.summary(
            slow_env.num_devices
        )


def _run_secure_balancer(graph, kernel, seed=0, iterations=25):
    environment = FederatedEnvironment.from_graph(graph, seed=0)
    initial = greedy_initialization(environment, rng=np.random.default_rng(seed))
    balancer = MCMCBalancer(
        environment,
        iterations=iterations,
        rng=np.random.default_rng(seed + 7),
        secure=True,
        kernel=kernel,
    )
    result = balancer.run(initial)
    return result, environment, balancer.accountant


def _assert_secure_balancing_equivalent(graph, seed=0, iterations=25):
    fast, fast_env, fast_acc = _run_secure_balancer(
        graph, "incremental", seed, iterations
    )
    slow, slow_env, slow_acc = _run_secure_balancer(
        graph, "reference", seed, iterations
    )
    assert fast.assignment.as_lists() == slow.assignment.as_lists()
    assert fast.objective_history == slow.objective_history
    assert fast.accepted_transitions == slow.accepted_transitions
    assert fast_acc.snapshot() == slow_acc.snapshot()
    assert fast_acc._log == slow_acc._log
    assert fast_env.ledger.message_records() == slow_env.ledger.message_records()
    assert fast_env.ledger.summary(fast_env.num_devices) == slow_env.ledger.summary(
        slow_env.num_devices
    )
    np.testing.assert_array_equal(
        fast_env.ledger.per_device_message_counts(fast_env.num_devices),
        slow_env.ledger.per_device_message_counts(slow_env.num_devices),
    )
    assert (
        fast_env.server.rng.bit_generator.state
        == slow_env.server.rng.bit_generator.state
    )


class TestSecureBalancingEquivalence:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_facebook_like(self, seed):
        graph = generate_facebook_like(seed=3, num_nodes=60)
        _assert_secure_balancing_equivalent(graph, seed=seed)

    def test_small_world(self):
        graph = generate_small_world(num_nodes=40, k=4, seed=5)
        _assert_secure_balancing_equivalent(graph, seed=1)

    def test_star(self):
        _assert_secure_balancing_equivalent(generate_star(num_leaves=8, seed=2))

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", range(2, 8))
    def test_facebook_like_wide(self, seed):
        graph = generate_facebook_like(seed=seed, num_nodes=100)
        _assert_secure_balancing_equivalent(graph, seed=seed, iterations=60)

    def test_secure_transcript_is_zero_knowledge(self):
        graph = generate_small_world(num_nodes=30, k=4, seed=9)
        _, _, accountant = _run_secure_balancer(graph, "incremental")
        assert verify_zero_knowledge_transcript(accountant)


class TestSecureConstructorEquivalence:
    def test_constructor_level_secure_equivalence(self):
        graph = generate_facebook_like(seed=3, num_nodes=60)
        results = {}
        rng_states = {}
        for secure_kernel in ("batched", "reference"):
            environment = FederatedEnvironment.from_graph(graph, seed=0)
            rng = np.random.default_rng(0)
            constructor = TreeConstructor(
                TreeConstructorConfig(mcmc_iterations=30, secure_kernel=secure_kernel),
                rng=rng,
                secure=True,
            )
            results[secure_kernel] = constructor.construct(environment)
            rng_states[secure_kernel] = rng.bit_generator.state
        fast, slow = results["batched"], results["reference"]
        assert fast.assignment.as_lists() == slow.assignment.as_lists()
        assert fast.greedy_assignment.as_lists() == slow.greedy_assignment.as_lists()
        assert fast.mcmc_result.objective_history == slow.mcmc_result.objective_history
        assert fast.transcript.snapshot() == slow.transcript.snapshot()
        assert fast.transcript._log == slow.transcript._log
        assert rng_states["batched"] == rng_states["reference"]


class TestAccountantCapSemantics:
    """`record_pattern` LOG_CAP boundaries and `merge` of capped accountants."""

    def _reference_log(self, pattern, count, cap):
        accountant = TranscriptAccountant()
        accountant.LOG_CAP = cap
        for _ in range(count):
            for description, bits in pattern:
                accountant.record(description, bits)
        return accountant

    @pytest.mark.parametrize("count", [4, 5, 6])  # one below / at / above cap
    def test_single_entry_pattern_around_the_cap(self, count):
        pattern = [("ot-n", 144)]
        cap = 5
        bulk = TranscriptAccountant()
        bulk.LOG_CAP = cap
        bulk.record_pattern(pattern, count)
        reference = self._reference_log(pattern, count, cap)
        assert bulk._log == reference._log
        assert bulk.snapshot() == reference.snapshot()
        assert len(bulk._log) == min(count, cap)

    @pytest.mark.parametrize("count", [1, 2, 3, 4])
    def test_multi_entry_pattern_straddles_the_cap(self, count):
        # A 3-entry pattern against a cap of 7: repetitions 2 and 3 are cut
        # mid-pattern, so the log ends on a partial repetition exactly where
        # the looped recording would stop.
        pattern = [("ot-n", 144), ("ot-n", 144), ("and-gate", 8)]
        cap = 7
        bulk = TranscriptAccountant()
        bulk.LOG_CAP = cap
        bulk.record_pattern(pattern, count)
        reference = self._reference_log(pattern, count, cap)
        assert bulk._log == reference._log
        assert bulk.snapshot() == reference.snapshot()

    def test_record_pattern_on_an_already_full_log(self):
        accountant = TranscriptAccountant()
        accountant.LOG_CAP = 3
        accountant.record_pattern([("ot", 1)], 3)
        accountant.record_pattern([("ot-n", 2)], 5)
        assert accountant._log == ["ot:1", "ot:1", "ot:1"]
        assert accountant.messages == 8  # counters keep accumulating

    def test_merge_of_capped_accountants(self):
        first = TranscriptAccountant()
        first.LOG_CAP = 4
        first.record_pattern([("ot", 1)], 3)
        second = TranscriptAccountant()
        second.LOG_CAP = 4
        second.record_pattern([("and-gate", 2)], 4)
        second.comparisons = 2
        first.merge(second)
        # Counters add; the log absorbs the other's entries up to the cap.
        assert first.messages == 7
        assert first.bits == 3 * 1 + 4 * 2
        assert first.comparisons == 2
        assert first._log == ["ot:1", "ot:1", "ot:1", "and-gate:2"]

    def test_merge_into_a_full_log_keeps_it_capped(self):
        first = TranscriptAccountant()
        first.LOG_CAP = 2
        first.record_pattern([("ot", 1)], 2)
        second = TranscriptAccountant()
        second.record("and-gate", 2)
        first.merge(second)
        assert first._log == ["ot:1", "ot:1"]
        assert first.messages == 3


class TestSecureModeRNGContract:
    def test_secure_balancer_consumes_stream_like_reference(self):
        """Transition sampling is the only consumer; kernels draw nothing."""
        graph = generate_small_world(num_nodes=30, k=4, seed=9)
        states = {}
        for kernel in ("incremental", "reference"):
            environment = FederatedEnvironment.from_graph(graph, seed=0)
            initial = greedy_initialization(environment, rng=np.random.default_rng(0))
            rng = np.random.default_rng(7)
            MCMCBalancer(
                environment, iterations=20, rng=rng, secure=True, kernel=kernel
            ).run(initial)
            states[kernel] = rng.bit_generator.state
        assert states["incremental"] == states["reference"]

    def test_clone_generator_is_independent(self):
        rng = np.random.default_rng(0)
        twin = clone_generator(rng)
        assert rng.integers(1000) == twin.integers(1000)
        rng.integers(1000)
        assert rng.bit_generator.state != twin.bit_generator.state
