"""Tests for the synthetic graph generators and the dataset registry."""

from __future__ import annotations

import json
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    FACEBOOK_SPEC,
    LASTFM_SPEC,
    available_datasets,
    generate_facebook_like,
    generate_lastfm_like,
    generate_small_world,
    generate_social_graph,
    generate_star,
    load_dataset,
)
from repro.graph.datasets import load_musae_style
from repro.graph.generators import power_law_degree_sequence


class TestDegreeSequence:
    def test_mean_close_to_target(self):
        rng = np.random.default_rng(0)
        degrees = power_law_degree_sequence(2000, average_degree=12.0, exponent=2.3, rng=rng)
        assert abs(degrees.mean() - 12.0) < 3.0

    def test_sum_is_even(self):
        rng = np.random.default_rng(1)
        degrees = power_law_degree_sequence(501, average_degree=7.0, exponent=2.1, rng=rng)
        assert degrees.sum() % 2 == 0

    def test_minimum_degree_enforced(self):
        rng = np.random.default_rng(2)
        degrees = power_law_degree_sequence(300, average_degree=5.0, exponent=2.5, rng=rng)
        assert degrees.min() >= 1

    def test_heavy_tail_exists(self):
        rng = np.random.default_rng(3)
        degrees = power_law_degree_sequence(3000, average_degree=10.0, exponent=2.1, rng=rng)
        assert degrees.max() > 4 * degrees.mean()

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            power_law_degree_sequence(0, 5.0, 2.3, np.random.default_rng(0))


class TestSocialGenerators:
    def test_facebook_like_shape(self):
        graph = generate_facebook_like(seed=0, num_nodes=300)
        assert graph.num_nodes == 300
        assert graph.num_features == FACEBOOK_SPEC.num_features
        assert graph.num_classes == FACEBOOK_SPEC.num_classes
        assert graph.num_edges > 300

    def test_lastfm_like_shape(self):
        graph = generate_lastfm_like(seed=0, num_nodes=300)
        assert graph.num_classes == LASTFM_SPEC.num_classes
        assert graph.name == "synthetic-lastfm"

    def test_no_isolated_vertices(self):
        graph = generate_facebook_like(seed=1, num_nodes=250)
        assert graph.degrees().min() >= 1

    def test_degree_distribution_is_skewed(self):
        graph = generate_facebook_like(seed=2, num_nodes=500)
        degrees = graph.degrees()
        assert degrees.max() > 3 * degrees.mean()

    def test_label_homophily_above_random(self):
        graph = generate_facebook_like(seed=3, num_nodes=400)
        labels = graph.labels
        same = np.mean([labels[u] == labels[v] for u, v in graph.edges])
        # Random assignment over 4 classes gives ~0.25 agreement.
        assert same > 0.5

    def test_features_correlate_with_labels(self):
        graph = generate_facebook_like(seed=4, num_nodes=400)
        centroids = np.stack(
            [graph.features[graph.labels == c].mean(axis=0) for c in range(graph.num_classes)]
        )
        # Assigning each node to the closest class centroid should beat chance.
        assignments = np.argmin(
            np.linalg.norm(graph.features[:, None, :] - centroids[None], axis=2), axis=1
        )
        assert (assignments == graph.labels).mean() > 0.5

    def test_deterministic_given_seed(self):
        a = generate_facebook_like(seed=9, num_nodes=150)
        b = generate_facebook_like(seed=9, num_nodes=150)
        np.testing.assert_array_equal(a.edges, b.edges)
        np.testing.assert_allclose(a.features, b.features)

    def test_different_seeds_differ(self):
        a = generate_facebook_like(seed=1, num_nodes=150)
        b = generate_facebook_like(seed=2, num_nodes=150)
        assert a.num_edges != b.num_edges or not np.array_equal(a.edges, b.edges)

    def test_generate_social_graph_validation(self):
        with pytest.raises(ValueError):
            generate_social_graph(LASTFM_SPEC, num_nodes=5)

    def test_small_world_and_star(self):
        small = generate_small_world(num_nodes=30, seed=0)
        assert small.num_nodes == 30
        assert small.degrees().min() >= 1
        star = generate_star(num_leaves=5)
        assert star.num_nodes == 6
        assert star.degree(0) == 5
        assert all(star.degree(v) == 1 for v in range(1, 6))

    @given(st.integers(0, 1000))
    @settings(max_examples=10, deadline=None)
    def test_generator_always_produces_valid_graph(self, seed):
        graph = generate_lastfm_like(seed=seed, num_nodes=120)
        assert graph.num_nodes == 120
        assert graph.edges[:, 0].max() < 120
        assert graph.degrees().min() >= 1


class TestDatasetRegistry:
    def test_load_by_canonical_names(self):
        for name in ("facebook", "lastfm", "small-world", "star"):
            graph = load_dataset(name, seed=0, num_nodes=60 if name != "star" else 7)
            assert graph.num_nodes > 0

    def test_load_by_synonyms(self):
        graph = load_dataset("synthetic_facebook", seed=0, num_nodes=80)
        assert graph.name == "synthetic-facebook"

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            load_dataset("cora")

    def test_available_datasets_lists_all(self):
        datasets = available_datasets()
        assert {"facebook", "lastfm", "small-world", "star"} <= set(datasets)

    def test_musae_loader_reads_raw_files(self, tmp_path):
        directory = tmp_path / "facebook"
        directory.mkdir()
        (directory / "edges.csv").write_text("id_1,id_2\n0,1\n1,2\n")
        (directory / "features.json").write_text(json.dumps({"0": [0, 2], "1": [1], "2": []}))
        (directory / "target.csv").write_text("id,page_type\n0,politician\n1,company\n2,politician\n")
        graph = load_musae_style(str(directory), "facebook")
        assert graph.num_nodes == 3
        assert graph.num_edges == 2
        assert graph.num_features == 3
        assert graph.labels[0] == graph.labels[2] != graph.labels[1]

    def test_musae_loader_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_musae_style(str(tmp_path), "facebook")

    def test_real_files_take_priority(self, tmp_path, monkeypatch):
        directory = tmp_path / "lastfm"
        directory.mkdir()
        (directory / "edges.csv").write_text("id_1,id_2\n0,1\n")
        (directory / "features.json").write_text(json.dumps({"0": [0], "1": [1]}))
        (directory / "target.csv").write_text("id,target\n0,0\n1,1\n")
        monkeypatch.setenv("REPRO_DATA_ROOT", str(tmp_path))
        graph = load_dataset("lastfm")
        assert graph.num_nodes == 2
        assert graph.name == "lastfm"
