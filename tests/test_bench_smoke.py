"""Tier-1 smoke coverage of the perf-benchmark harness.

``benchmarks/bench_engine.py`` is only executed by hand between perf PRs, so
its code would silently rot; the ``--smoke`` mode runs every section at a
tiny scale without touching ``BENCH_engine.json`` or the regression gate,
and this test keeps it in the tier-1 flow.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]


def _load_bench_engine():
    spec = importlib.util.spec_from_file_location(
        "bench_engine_smoke", REPO_ROOT / "benchmarks" / "bench_engine.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_smoke_mode_runs_all_sections_without_writing(tmp_path):
    bench_engine = _load_bench_engine()
    bench_json = REPO_ROOT / "BENCH_engine.json"
    before = bench_json.read_bytes() if bench_json.exists() else None

    assert bench_engine.main(["--smoke"]) == 0

    after = bench_json.read_bytes() if bench_json.exists() else None
    assert before == after, "--smoke must never rewrite BENCH_engine.json"


def test_tracked_speedups_include_all_perf_sections():
    bench_engine = _load_bench_engine()
    assert set(bench_engine.TRACKED_SPEEDUPS) == {
        "treebatch_assembly",
        "training_epoch",
        "training_overhaul",
        "mcmc_balancing",
        "greedy_initialization",
        "secure_construction",
        "epsilon_sweep",
        "parallel_sweep",
        "robustness_sweep",
        "tree_maintenance",
    }


def test_secure_construction_section_is_gate_tracked_and_equivalent(capsys):
    """The regression gate must see the secure_construction speedup."""
    bench_engine = _load_bench_engine()
    assert "secure_construction" in bench_engine.TRACKED_SPEEDUPS

    from repro.graph import load_dataset

    class Args:
        mcmc = 10
        repeat = 1

    graph = load_dataset("facebook", seed=0, num_nodes=30)
    section = bench_engine.bench_secure_construction(graph, Args())
    # The section internally asserts batched == reference (assignments and
    # transcript) before reporting; a finite speedup means both paths ran.
    assert section["devices"] == 30
    assert section["comparisons"] > 0
    assert section["speedup"] > 0
