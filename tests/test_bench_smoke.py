"""Tier-1 smoke coverage of the perf-benchmark harness.

``benchmarks/bench_engine.py`` is only executed by hand between perf PRs, so
its code would silently rot; the ``--smoke`` mode runs every section at a
tiny scale without touching ``BENCH_engine.json`` or the regression gate,
and this test keeps it in the tier-1 flow.
"""

from __future__ import annotations

import importlib.util
import json
import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]


def _load_bench_engine():
    spec = importlib.util.spec_from_file_location(
        "bench_engine_smoke", REPO_ROOT / "benchmarks" / "bench_engine.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_smoke_mode_runs_all_sections_without_writing(tmp_path):
    bench_engine = _load_bench_engine()
    bench_json = REPO_ROOT / "BENCH_engine.json"
    before = bench_json.read_bytes() if bench_json.exists() else None

    assert bench_engine.main(["--smoke"]) == 0

    after = bench_json.read_bytes() if bench_json.exists() else None
    assert before == after, "--smoke must never rewrite BENCH_engine.json"


def test_tracked_speedups_include_all_perf_sections():
    bench_engine = _load_bench_engine()
    assert set(bench_engine.TRACKED_SPEEDUPS) == {
        "treebatch_assembly",
        "training_epoch",
        "training_overhaul",
        "mcmc_balancing",
        "greedy_initialization",
        "secure_construction",
        "secure_transport",
        "epsilon_sweep",
        "parallel_sweep",
        "robustness_sweep",
        "tree_maintenance",
    }


def test_gate_skips_cpu_bound_sections_recorded_on_another_box(tmp_path, capsys):
    """A cpu_count-stamped speedup from a different machine class must be
    skipped by the regression gate, not compared apples-to-oranges."""
    bench_engine = _load_bench_engine()
    scale = {"nodes": 10}
    path = tmp_path / "BENCH_engine.json"
    other_box = (os.cpu_count() or 1) + 7

    previous = {"scale": scale, "parallel_sweep": {"speedup": 50.0, "cpu_count": other_box}}
    payload = {"scale": scale, "parallel_sweep": {"speedup": 0.1, "cpu_count": other_box}}
    path.write_text(json.dumps(previous))
    assert bench_engine.check_trajectory(payload, path) == []
    assert "cpu_count differs" in capsys.readouterr().err

    # One-sided stamps are just as incomparable (e.g. a stale --only merge).
    payload["parallel_sweep"].pop("cpu_count")
    assert bench_engine.check_trajectory(payload, path) == []

    # Control: the same regression measured on the current box still fails.
    previous["parallel_sweep"]["cpu_count"] = os.cpu_count()
    payload["parallel_sweep"]["cpu_count"] = os.cpu_count()
    path.write_text(json.dumps(previous))
    regressions = bench_engine.check_trajectory(payload, path)
    assert len(regressions) == 1 and "parallel_sweep" in regressions[0]

    # Sections that never record a cpu_count keep the plain comparison.
    previous = {"scale": scale, "training_epoch": {"speedup": 50.0}}
    payload = {"scale": scale, "training_epoch": {"speedup": 0.1}}
    path.write_text(json.dumps(previous))
    assert len(bench_engine.check_trajectory(payload, path)) == 1
    capsys.readouterr()


def test_secure_construction_section_is_gate_tracked_and_equivalent(capsys):
    """The regression gate must see the secure_construction speedup."""
    bench_engine = _load_bench_engine()
    assert "secure_construction" in bench_engine.TRACKED_SPEEDUPS

    from repro.graph import load_dataset

    class Args:
        mcmc = 10
        repeat = 1

    graph = load_dataset("facebook", seed=0, num_nodes=30)
    section = bench_engine.bench_secure_construction(graph, Args())
    # The section internally asserts batched == reference (assignments and
    # transcript) before reporting; a finite speedup means both paths ran.
    assert section["devices"] == 30
    assert section["comparisons"] > 0
    assert section["speedup"] > 0
