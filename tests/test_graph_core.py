"""Tests for the Graph data structure, sparse helpers, ego partition and splits."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    EgoNetwork,
    Graph,
    from_edge_list,
    from_networkx,
    partition_node_level,
    sample_negative_edges,
    split_edges,
    split_nodes,
    validate_partition,
)
from repro.graph.sparse import (
    add_self_loops,
    laplacian,
    row_normalize,
    symmetric_normalize,
)


def triangle_graph() -> Graph:
    features = np.arange(6, dtype=float).reshape(3, 2)
    return Graph(num_nodes=3, edges=np.array([[0, 1], [1, 2], [0, 2]]), features=features,
                 labels=np.array([0, 1, 0]))


class TestGraph:
    def test_basic_properties(self):
        graph = triangle_graph()
        assert graph.num_nodes == 3
        assert graph.num_edges == 3
        assert graph.num_features == 2
        assert graph.num_classes == 2
        np.testing.assert_array_equal(graph.degrees(), [2, 2, 2])

    def test_edges_are_canonicalised_and_deduplicated(self):
        graph = Graph(
            num_nodes=3,
            edges=np.array([[1, 0], [0, 1], [2, 1]]),
            features=np.zeros((3, 1)),
        )
        assert graph.num_edges == 2
        assert np.all(graph.edges[:, 0] < graph.edges[:, 1])

    def test_rejects_self_loops(self):
        with pytest.raises(ValueError):
            Graph(num_nodes=2, edges=np.array([[0, 0]]), features=np.zeros((2, 1)))

    def test_rejects_out_of_range_edges(self):
        with pytest.raises(ValueError):
            Graph(num_nodes=2, edges=np.array([[0, 5]]), features=np.zeros((2, 1)))

    def test_rejects_bad_feature_shape(self):
        with pytest.raises(ValueError):
            Graph(num_nodes=3, edges=np.array([[0, 1]]), features=np.zeros((2, 1)))

    def test_rejects_bad_label_shape(self):
        with pytest.raises(ValueError):
            Graph(num_nodes=2, edges=np.array([[0, 1]]), features=np.zeros((2, 1)),
                  labels=np.array([0]))

    def test_neighbors_and_degree(self):
        graph = triangle_graph()
        np.testing.assert_array_equal(graph.neighbors(0), [1, 2])
        assert graph.degree(1) == 2
        with pytest.raises(ValueError):
            graph.neighbors(99)

    def test_has_edge_and_edge_set(self):
        graph = triangle_graph()
        assert graph.has_edge(0, 1)
        assert graph.has_edge(1, 0)
        assert (0, 2) in graph.edge_set()

    def test_adjacency_symmetry_and_self_loops(self):
        graph = triangle_graph()
        adjacency = graph.adjacency()
        assert (adjacency != adjacency.T).nnz == 0
        with_loops = graph.adjacency(add_self_loops=True)
        np.testing.assert_allclose(with_loops.diagonal(), np.ones(3))

    def test_directed_edge_index(self):
        graph = triangle_graph()
        index = graph.directed_edge_index()
        assert index.shape == (2, 6)
        index_loops = graph.directed_edge_index(add_self_loops=True)
        assert index_loops.shape == (2, 9)

    def test_with_edges_keeps_features(self):
        graph = triangle_graph()
        smaller = graph.with_edges(np.array([[0, 1]]))
        assert smaller.num_edges == 1
        np.testing.assert_allclose(smaller.features, graph.features)

    def test_subgraph_relabels(self):
        graph = triangle_graph()
        sub = graph.subgraph([1, 2])
        assert sub.num_nodes == 2
        assert sub.num_edges == 1
        np.testing.assert_allclose(sub.features, graph.features[[1, 2]])

    def test_normalized_features_bounds(self):
        graph = Graph(num_nodes=2, edges=np.array([[0, 1]]),
                      features=np.array([[10.0, -5.0], [20.0, 5.0]]))
        scaled = graph.normalized_features(0.0, 1.0)
        assert scaled.features.min() == pytest.approx(0.0)
        assert scaled.features.max() == pytest.approx(1.0)

    def test_normalized_features_handles_constant_column(self):
        graph = Graph(num_nodes=2, edges=np.array([[0, 1]]),
                      features=np.array([[3.0], [3.0]]))
        scaled = graph.normalized_features()
        assert np.all(np.isfinite(scaled.features))

    def test_summary_keys(self):
        summary = triangle_graph().summary()
        assert {"num_nodes", "num_edges", "avg_degree", "max_degree"} <= set(summary)

    def test_empty_graph(self):
        graph = Graph(num_nodes=3, edges=np.zeros((0, 2)), features=np.zeros((3, 1)))
        assert graph.num_edges == 0
        np.testing.assert_array_equal(graph.degrees(), [0, 0, 0])
        assert graph.neighbors(0).size == 0

    def test_from_edge_list_and_networkx(self):
        graph = from_edge_list(3, [(0, 1), (1, 2)])
        assert graph.num_edges == 2
        import networkx as nx

        nx_graph = nx.path_graph(4)
        converted = from_networkx(nx_graph)
        assert converted.num_nodes == 4
        assert converted.num_edges == 3


class TestSparseHelpers:
    def test_symmetric_normalize_row_sums(self):
        graph = triangle_graph()
        normalized = symmetric_normalize(graph.adjacency())
        # For a regular graph with self loops, rows sum to 1.
        np.testing.assert_allclose(np.asarray(normalized.sum(axis=1)).ravel(), np.ones(3))

    def test_symmetric_normalize_handles_isolated_nodes(self):
        adjacency = sp.csr_matrix((3, 3))
        normalized = symmetric_normalize(adjacency, self_loops=False)
        assert np.all(np.isfinite(normalized.toarray()))

    def test_row_normalize_is_stochastic(self):
        graph = triangle_graph()
        normalized = row_normalize(graph.adjacency(), self_loops=True)
        np.testing.assert_allclose(np.asarray(normalized.sum(axis=1)).ravel(), np.ones(3))

    def test_add_self_loops(self):
        adjacency = triangle_graph().adjacency()
        looped = add_self_loops(adjacency)
        np.testing.assert_allclose(looped.diagonal(), np.ones(3))

    def test_laplacian_eigenvalues_nonnegative(self):
        graph = triangle_graph()
        lap = laplacian(graph.adjacency()).toarray()
        eigenvalues = np.linalg.eigvalsh(lap)
        assert eigenvalues.min() > -1e-10


class TestEgoPartition:
    def test_partition_covers_all_vertices_and_edges(self, small_graph):
        partition = partition_node_level(small_graph)
        assert len(partition) == small_graph.num_nodes
        validate_partition(small_graph, partition)

    def test_ego_network_contents(self, small_graph):
        partition = partition_node_level(small_graph)
        ego = partition[0]
        assert ego.center == 0
        np.testing.assert_array_equal(ego.neighbors, small_graph.neighbors(0))
        np.testing.assert_allclose(ego.feature, small_graph.features[0])
        assert ego.label == int(small_graph.labels[0])
        assert ego.degree == small_graph.degree(0)

    def test_ego_network_rejects_self_neighbour(self):
        with pytest.raises(ValueError):
            EgoNetwork(center=1, neighbors=[1, 2], feature=np.zeros(2))

    def test_validate_partition_detects_tampering(self, small_graph):
        partition = partition_node_level(small_graph)
        tampered = dict(partition)
        ego = tampered[0]
        tampered[0] = EgoNetwork(
            center=0, neighbors=ego.neighbors[:-1], feature=ego.feature, label=ego.label
        )
        with pytest.raises(ValueError):
            validate_partition(small_graph, tampered)

    def test_edge_tuples_are_canonical(self):
        ego = EgoNetwork(center=5, neighbors=[2, 7], feature=np.zeros(1))
        assert ego.edge_tuples() == [(2, 5), (5, 7)]
        assert ego.has_neighbor(2) and not ego.has_neighbor(3)


class TestSplits:
    def test_node_split_proportions(self, small_graph):
        split = split_nodes(small_graph, seed=1)
        n = small_graph.num_nodes
        assert split.train_mask.sum() == pytest.approx(0.5 * n, abs=1)
        assert split.val_mask.sum() == pytest.approx(0.25 * n, abs=1)
        assert (split.train_mask | split.val_mask | split.test_mask).all()

    def test_node_split_masks_are_disjoint(self, small_graph):
        split = split_nodes(small_graph, seed=2)
        assert not (split.train_mask & split.val_mask).any()
        assert not (split.train_mask & split.test_mask).any()
        assert not (split.val_mask & split.test_mask).any()

    def test_node_split_is_seeded(self, small_graph):
        first = split_nodes(small_graph, seed=3)
        second = split_nodes(small_graph, seed=3)
        np.testing.assert_array_equal(first.train_mask, second.train_mask)

    def test_node_split_validation(self, small_graph):
        with pytest.raises(ValueError):
            split_nodes(small_graph, train_fraction=0.9, val_fraction=0.2)
        with pytest.raises(ValueError):
            split_nodes(small_graph, train_fraction=0.0)

    def test_edge_split_partition(self, small_graph):
        split = split_edges(small_graph, seed=0)
        total = len(split.train_edges) + len(split.val_edges) + len(split.test_edges)
        assert total == small_graph.num_edges
        assert len(split.val_negatives) == len(split.val_edges)
        assert len(split.test_negatives) == len(split.test_edges)

    def test_edge_split_negatives_are_not_edges(self, small_graph):
        split = split_edges(small_graph, seed=0)
        edge_set = small_graph.edge_set()
        for u, v in np.concatenate([split.val_negatives, split.test_negatives]):
            assert (min(u, v), max(u, v)) not in edge_set

    def test_training_graph_excludes_heldout_edges(self, small_graph):
        split = split_edges(small_graph, seed=0)
        train_graph = split.training_graph(small_graph)
        train_set = train_graph.edge_set()
        for u, v in split.test_edges:
            assert (min(u, v), max(u, v)) not in train_set

    def test_sample_negative_edges_rejects_dense_request(self):
        graph = triangle_graph()  # complete graph on 3 nodes — no negatives exist
        with pytest.raises(RuntimeError):
            sample_negative_edges(graph, 5, np.random.default_rng(0))

    def test_edge_split_requires_enough_edges(self):
        with pytest.raises(ValueError):
            split_edges(triangle_graph(), seed=0)

    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_node_split_property_all_assigned_once(self, seed):
        from repro.graph import generate_small_world

        graph = generate_small_world(num_nodes=40, seed=seed % 17)
        split = split_nodes(graph, seed=seed)
        counts = (
            split.train_mask.astype(int) + split.val_mask.astype(int) + split.test_mask.astype(int)
        )
        assert np.all(counts == 1)
