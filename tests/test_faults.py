"""Fault-injection subsystem: plans, fingerprints, masks, degradation.

Three contracts under test:

1. **Schedules are deterministic** — a :class:`FaultPlan` is a pure function
   of ``(config, num_devices, num_rounds)``, its RNG blocks are drawn in a
   fixed order so enabling one mechanism never shifts another's schedule,
   and the replay is bit-for-bit identical in a worker process.
2. **Empty scenarios are invisible** — the default config and any empty
   scenario (whatever its ``fault_seed``) produce the *same* work-item key
   and byte-identical payloads (metrics, canonical ledger transcript,
   accountant, RNG state), while non-empty scenarios get distinct keys but
   identical stage chains (the pipeline prefix stays shared).
3. **The federation degrades gracefully** — availability masks suppress or
   drop messages with the right charging semantics, and the trainer
   survives rounds with zero participants.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import default_config_for
from repro.engine import ArtifactStore
from repro.faults import (
    FaultPlan,
    FaultScenarioConfig,
    default_robustness_scenarios,
    schedule_digest,
)
from repro.federation import SERVER_ID, FederatedEnvironment, MessageKind
from repro.graph import load_dataset, split_edges, split_nodes
from repro.runtime import (
    CallableItem,
    GraphSpec,
    LumosItem,
    ProcessExecutor,
    WorkPlan,
)

SPEC = GraphSpec(dataset="facebook", seed=0, num_nodes=40)


def _config(faults=None):
    config = (
        default_config_for("facebook")
        .with_mcmc_iterations(10)
        .with_epochs(3)
        .with_seed(0)
    )
    return config.with_faults(faults) if faults is not None else config


def _item(faults=None, task="supervised"):
    return LumosItem(
        graph_spec=SPEC, config=_config(faults), task=task, keep_transcript=True
    )


# --------------------------------------------------------------------------- #
# Scenario config
# --------------------------------------------------------------------------- #
class TestScenarioConfig:
    def test_default_is_empty(self):
        assert FaultScenarioConfig().is_empty()

    def test_fault_seed_does_not_make_a_scenario_nonempty(self):
        assert FaultScenarioConfig(fault_seed=99).is_empty()

    def test_join_only_churn_is_empty(self):
        # join without leave can never take a device offline.
        assert FaultScenarioConfig(join_rate=0.5).is_empty()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"dropout_rate": 0.1},
            {"leave_rate": 0.1},
            {"straggler_rate": 0.1},
            {"message_loss_rate": 0.1},
        ],
    )
    def test_each_mechanism_makes_it_nonempty(self, kwargs):
        assert not FaultScenarioConfig(**kwargs).is_empty()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"dropout_rate": 1.5},
            {"leave_rate": -0.1},
            {"straggler_multiplier": 0.5},
            {"round_deadline": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FaultScenarioConfig(**kwargs)

    def test_default_scenarios_include_exactly_one_empty_baseline(self):
        scenarios = default_robustness_scenarios()
        empty = [name for name, cfg in scenarios.items() if cfg.is_empty()]
        assert empty == ["baseline"]
        assert len(scenarios) >= 5


# --------------------------------------------------------------------------- #
# Plan compilation
# --------------------------------------------------------------------------- #
class TestFaultPlan:
    def test_compile_is_deterministic(self):
        config = FaultScenarioConfig(
            dropout_rate=0.2, straggler_rate=0.3, round_deadline=2.0, fault_seed=7
        )
        first = FaultPlan.compile(config, 23, 11)
        second = FaultPlan.compile(config, 23, 11)
        assert first.schedule_digest() == second.schedule_digest()
        assert first.schedule_digest() == schedule_digest(config, 23, 11)
        np.testing.assert_array_equal(first.online, second.online)
        np.testing.assert_array_equal(first.latency, second.latency)

    def test_block_draws_are_independent(self):
        # Enabling message loss must not shift the dropout schedule: the
        # loss block is drawn after (and independently of) the dropout
        # block, so ``online`` is bitwise identical across the two plans.
        base = FaultPlan.compile(
            FaultScenarioConfig(dropout_rate=0.3, fault_seed=5), 31, 9
        )
        lossy = FaultPlan.compile(
            FaultScenarioConfig(
                dropout_rate=0.3, message_loss_rate=0.5, fault_seed=5
            ),
            31,
            9,
        )
        np.testing.assert_array_equal(base.online, lossy.online)
        assert lossy.lost.sum() > 0
        assert not np.any(base.lost)

    def test_total_dropout_leaves_nobody_online(self):
        plan = FaultPlan.compile(FaultScenarioConfig(dropout_rate=1.0), 10, 4)
        assert not plan.online.any()
        assert not plan.participating.any()
        assert plan.summary()["mean_participation"] == 0.0
        np.testing.assert_array_equal(
            plan.participation_fraction(), np.zeros(4)
        )

    def test_eviction_requires_deadline_and_online(self):
        config = FaultScenarioConfig(
            straggler_rate=0.5, straggler_multiplier=4.0, round_deadline=2.0,
            dropout_rate=0.3, fault_seed=3,
        )
        plan = FaultPlan.compile(config, 40, 8)
        assert plan.evicted.any()
        # evicted ⊆ online ∧ (latency > deadline); never both evicted & lost.
        assert np.all(plan.online[plan.evicted])
        assert np.all(plan.latency[plan.evicted] > 2.0)
        assert not np.any(plan.evicted & plan.lost)
        no_deadline = FaultPlan.compile(
            FaultScenarioConfig(
                straggler_rate=0.5, straggler_multiplier=4.0, fault_seed=3
            ),
            40,
            8,
        )
        assert not no_deadline.evicted.any()

    def test_latency_bounded_by_multiplier(self):
        plan = FaultPlan.compile(
            FaultScenarioConfig(straggler_rate=1.0, straggler_multiplier=3.0), 20, 5
        )
        assert plan.latency.min() >= 1.0
        assert plan.latency.max() <= 3.0
        assert plan.latency.max() > 1.0

    def test_empty_plan_is_full_participation(self):
        plan = FaultPlan.compile(FaultScenarioConfig(), 12, 6)
        assert plan.is_empty()
        assert plan.online.all() and plan.participating.all()
        assert plan.summary()["mean_participation"] == 1.0

    def test_distinct_scenarios_have_distinct_fingerprints(self):
        plans = [
            FaultPlan.compile(config, 10, 4)
            for config in default_robustness_scenarios().values()
        ]
        fingerprints = [plan.fingerprint() for plan in plans]
        assert len(set(fingerprints)) == len(fingerprints)

    def test_replay_is_bit_identical_across_processes(self):
        config = FaultScenarioConfig(
            dropout_rate=0.15, join_rate=0.3, leave_rate=0.1,
            straggler_rate=0.2, round_deadline=2.5, message_loss_rate=0.05,
            fault_seed=16,
        )
        item = CallableItem(
            target="repro.faults.plan:schedule_digest",
            args=(config, 29, 7),
            label="schedule-digest",
        )
        report = ProcessExecutor(max_workers=1).execute(WorkPlan([item]))
        assert report.records[item.key()].value == schedule_digest(config, 29, 7)


# --------------------------------------------------------------------------- #
# Churn boundary probabilities
# --------------------------------------------------------------------------- #
class TestChurnBoundaries:
    """p = 0.0 / 1.0 churn chains: valid masks, no sibling stream shift.

    Uniform draws live in ``[0, 1)``, so the comparisons in the Markov chain
    are exact at both boundaries: ``u < 1.0`` always holds and ``u < 0.0``
    never does.  These tests pin the resulting all-online / all-offline /
    alternating schedules, and — via ``drain_churn_block`` on a twin
    generator — that the churn block consumes exactly its documented draws
    whatever the probabilities, so the dropout schedule never shifts.
    """

    def test_certain_join_never_leave_is_all_present(self):
        plan = FaultPlan.compile(
            FaultScenarioConfig(join_rate=1.0, leave_rate=0.0, fault_seed=3), 17, 9
        )
        assert plan.present.all() and plan.online.all()
        assert all(
            joins == [] and leaves == []
            for _, joins, leaves in plan.churn_events()
        )

    def test_never_join_certain_leave_is_all_absent(self):
        plan = FaultPlan.compile(
            FaultScenarioConfig(join_rate=0.0, leave_rate=1.0, fault_seed=3), 17, 9
        )
        assert not plan.present.any()
        assert not plan.online.any()
        # Everyone leaves in round 0 (the tree starts all-present) and never
        # returns.
        events = list(plan.churn_events())
        assert events[0][2] == list(range(17))
        assert all(
            joins == [] and leaves == [] for _, joins, leaves in events[1:]
        )

    def test_certain_join_and_leave_alternates_deterministically(self):
        plan = FaultPlan.compile(
            FaultScenarioConfig(join_rate=1.0, leave_rate=1.0, fault_seed=3), 17, 9
        )
        # After the stationary round-0 draw, every present device leaves and
        # every absent device joins — strict alternation, device by device.
        for r in range(1, plan.num_rounds):
            np.testing.assert_array_equal(
                plan.present[r], ~plan.present[r - 1]
            )
        for round_index, joins, leaves in plan.churn_events():
            assert not set(joins) & set(leaves)

    @pytest.mark.parametrize(
        "join_rate,leave_rate",
        [(1.0, 0.0), (0.0, 1.0), (1.0, 1.0), (0.5, 0.5)],
    )
    def test_churn_block_never_shifts_the_dropout_schedule(
        self, join_rate, leave_rate
    ):
        # Derive the expected dropout mask by draining the documented churn
        # block on a twin generator; the compiled plan's ``online`` must be
        # exactly ``present & ~expected_dropped`` for every churn setting.
        from helpers.rng_contract import drain_churn_block

        num_devices, num_rounds, seed = 23, 7, 11
        plan = FaultPlan.compile(
            FaultScenarioConfig(
                join_rate=join_rate,
                leave_rate=leave_rate,
                dropout_rate=0.3,
                fault_seed=seed,
            ),
            num_devices,
            num_rounds,
        )
        twin = np.random.default_rng(seed)
        drain_churn_block(twin, num_devices, num_rounds)
        expected_dropped = twin.random((num_rounds, num_devices)) < 0.3
        np.testing.assert_array_equal(
            plan.online, plan.present & ~expected_dropped
        )

    def test_present_matrix_is_excluded_from_schedule_digest(self):
        # ``present`` is a pure function of the same draws as ``online``;
        # hashing it would break every digest recorded before the
        # maintenance layer existed, so it is deliberately excluded.
        import dataclasses

        plan = FaultPlan.compile(
            FaultScenarioConfig(
                join_rate=0.5, leave_rate=0.5, dropout_rate=0.2, fault_seed=4
            ),
            13,
            6,
        )
        tampered = dataclasses.replace(
            plan, present=np.zeros_like(plan.present)
        )
        assert tampered.schedule_digest() == plan.schedule_digest()


# --------------------------------------------------------------------------- #
# Cache-key / fingerprint integration
# --------------------------------------------------------------------------- #
class TestFaultKeys:
    def test_empty_scenario_reproduces_the_fault_free_key(self):
        # An empty scenario must be the *same work item* as the default
        # config — including when its fault_seed differs — so pre-PR cache
        # keys (which had no fault component at all) stay valid.
        default = _item()
        explicit = _item(FaultScenarioConfig())
        reseeded = _item(FaultScenarioConfig(fault_seed=99))
        assert default.key() == explicit.key() == reseeded.key()
        assert "faults=" not in default.key()

    def test_distinct_scenarios_get_distinct_keys(self):
        keys = {
            _item(config).key()
            for config in default_robustness_scenarios().values()
        }
        keys.add(_item().key())
        # all non-empty scenarios distinct; baseline collapses onto default.
        scenarios = default_robustness_scenarios()
        nonempty = sum(1 for cfg in scenarios.values() if not cfg.is_empty())
        assert len(keys) == nonempty + 1

    def test_fault_seed_distinguishes_nonempty_scenarios(self):
        a = _item(FaultScenarioConfig(dropout_rate=0.3, fault_seed=1))
        b = _item(FaultScenarioConfig(dropout_rate=0.3, fault_seed=2))
        assert a.key() != b.key()

    def test_stage_chain_is_fault_invariant(self):
        # Scenarios only change the training loop, never the pipeline
        # prefix — so every scenario shares the cached construction stages.
        hostile = FaultScenarioConfig(dropout_rate=0.3, fault_seed=11)
        assert _item().stage_chain() == _item(hostile).stage_chain()

    def test_empty_scenario_payload_is_bit_identical(self):
        # The acceptance criterion: metrics, canonical ledger transcript,
        # accountant totals and RNG state all byte-equal.
        baseline = _item().execute(ArtifactStore())
        reseeded = _item(FaultScenarioConfig(fault_seed=99)).execute(ArtifactStore())
        assert baseline == reseeded


# --------------------------------------------------------------------------- #
# Environment availability semantics
# --------------------------------------------------------------------------- #
class TestAvailability:
    @pytest.fixture()
    def environment(self):
        graph = load_dataset("facebook", seed=0, num_nodes=12)
        return FederatedEnvironment.from_graph(graph)

    def test_no_mask_is_the_fast_path(self, environment):
        environment.exchange(0, 1, MessageKind.FEATURE_EXCHANGE, 10)
        assert environment.ledger.total_messages() == 1
        assert environment.ledger.total_dropped_messages() == 0
        assert "dropped_messages" not in environment.ledger.summary()

    def test_offline_sender_is_suppressed_and_uncharged(self, environment):
        mask = np.ones(environment.num_devices, dtype=bool)
        mask[0] = False
        environment.set_availability(mask)
        environment.exchange(0, 1, MessageKind.FEATURE_EXCHANGE, 10)
        assert environment.ledger.total_messages() == 0
        assert environment.ledger.total_bytes() == 0
        assert environment.ledger.total_dropped_messages() == 1
        assert environment.ledger.total_dropped_bytes() == 10

    def test_offline_recipient_is_charged_but_undelivered(self, environment):
        mask = np.ones(environment.num_devices, dtype=bool)
        mask[1] = False
        environment.set_availability(mask)
        environment.exchange(0, 1, MessageKind.FEATURE_EXCHANGE, 10)
        assert environment.ledger.total_messages() == 1
        assert environment.ledger.total_bytes() == 10
        assert environment.ledger.total_dropped_messages() == 1
        summary = environment.ledger.summary()
        assert summary["dropped_messages"] == 1
        assert summary["dropped_bytes"] == 10

    def test_server_is_always_available(self, environment):
        environment.set_availability(np.zeros(environment.num_devices, dtype=bool))
        assert environment.is_available(SERVER_ID)

    def test_clearing_the_mask_restores_full_availability(self, environment):
        environment.set_availability(np.zeros(environment.num_devices, dtype=bool))
        assert not environment.is_available(0)
        environment.set_availability(None)
        assert environment.is_available(0)

    def test_mask_shape_is_validated(self, environment):
        with pytest.raises(ValueError):
            environment.set_availability(np.ones(3, dtype=bool))

    def test_reset_clears_drop_records(self, environment):
        environment.set_availability(np.zeros(environment.num_devices, dtype=bool))
        environment.exchange(0, 1, MessageKind.FEATURE_EXCHANGE, 10)
        assert environment.ledger.total_dropped_messages() == 1
        environment.ledger.reset()
        assert environment.ledger.total_dropped_messages() == 0


# --------------------------------------------------------------------------- #
# Graceful-degradation training
# --------------------------------------------------------------------------- #
class TestGracefulDegradation:
    def test_faulted_run_reports_a_fault_summary(self):
        record = _item(
            FaultScenarioConfig(dropout_rate=0.4, fault_seed=11), task="robustness"
        ).execute(ArtifactStore())
        value = record["value"]
        assert 0.0 < value["mean_participation"] < 1.0
        assert value["offline_device_rounds"] > 0
        assert 0.0 <= value["test_accuracy"] <= 1.0

    def test_total_dropout_skips_every_update_but_still_evaluates(self):
        record = _item(
            FaultScenarioConfig(dropout_rate=1.0), task="robustness"
        ).execute(ArtifactStore())
        value = record["value"]
        assert value["mean_participation"] == 0.0
        assert value["skipped_updates"] == 3  # one per epoch
        assert 0.0 <= value["test_accuracy"] <= 1.0

    def test_faulted_run_is_deterministic(self):
        config = FaultScenarioConfig(
            dropout_rate=0.2, straggler_rate=0.2, round_deadline=2.0,
            message_loss_rate=0.1, fault_seed=4,
        )
        first = _item(config, task="robustness").execute(ArtifactStore())
        second = _item(config, task="robustness").execute(ArtifactStore())
        assert first == second

    def test_unsupervised_training_rejects_fault_scenarios(self):
        from repro.core import LumosSystem

        graph = load_dataset("facebook", seed=0, num_nodes=40)
        system = LumosSystem(
            graph,
            _config(FaultScenarioConfig(dropout_rate=0.3)),
            store=ArtifactStore(),
        )
        with pytest.raises(ValueError, match="unsupervised"):
            system.run_unsupervised(split_edges(graph, seed=0))
