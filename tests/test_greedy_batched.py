"""Equivalence tests pinning the batched greedy kernel to the reference loop.

The batched kernel replaces the per-edge secure-comparison protocol loop of
Alg. 1 with one vectorised comparison block and one columnar ledger event;
these tests assert that this is purely an implementation change: identical
selected sets / assignments, accountant totals *and* capped transcript log,
canonical ledger transcript, and RNG stream consumption (the greedy phase
draws nothing from the shared stream under either kernel), on both
contiguous and non-contiguous device ids.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    TreeConstructor,
    TreeConstructorConfig,
    greedy_initialization,
)
from repro.crypto import (
    DegreeComparisonProtocol,
    SecureComparator,
    TranscriptAccountant,
    comparison_cost,
    log_degree_bucket,
    log_degree_buckets,
    verify_zero_knowledge_transcript,
)
from repro.engine.fingerprint import fingerprint_value
from repro.federation import FederatedEnvironment
from repro.graph import generate_facebook_like, generate_small_world, generate_star
from repro.graph.ego import EgoNetwork


def _noncontiguous_environment(seed: int = 0) -> FederatedEnvironment:
    """A hand-built partition with gappy, unsorted-insertion device ids."""
    adjacency = {
        50: [3, 7, 9, 11, 13, 15, 17, 19],
        3: [50, 7],
        7: [50, 3, 9],
        9: [50, 7],
        11: [50, 13],
        13: [50, 11],
        15: [50],
        17: [50],
        19: [50],
        42: [],  # isolated device
    }
    rng = np.random.default_rng(seed)
    partition = {
        center: EgoNetwork(
            center=center,
            neighbors=np.asarray(neighbors, dtype=np.int64),
            feature=rng.random(4),
        )
        for center, neighbors in adjacency.items()
    }
    return FederatedEnvironment.from_partition(partition, seed=seed)


def _run(make_environment, kernel: str, seed: int = 0):
    environment = make_environment()
    accountant = TranscriptAccountant()
    rng = np.random.default_rng(seed)
    assignment = greedy_initialization(
        environment, accountant=accountant, rng=rng, kernel=kernel
    )
    return assignment, environment, accountant, rng


def _assert_equivalent(make_environment, seed: int = 0):
    fast, fast_env, fast_acc, fast_rng = _run(make_environment, "batched", seed)
    slow, slow_env, slow_acc, slow_rng = _run(make_environment, "reference", seed)
    # Selected sets / installed assignment.
    assert fast.as_lists() == slow.as_lists()
    assert fast_env.workloads() == slow_env.workloads()
    # Accountant totals AND the capped transcript log are bit-identical.
    assert fast_acc.snapshot() == slow_acc.snapshot()
    assert fast_acc._log == slow_acc._log
    # Ledger: canonical multiset (the batched kernel logs one columnar
    # event, the reference loop individual messages), summaries, per-device
    # counts aligned to the actual (possibly non-contiguous) id set.
    assert fast_env.ledger.message_records() == slow_env.ledger.message_records()
    assert fast_env.ledger.summary(fast_env.num_devices) == slow_env.ledger.summary(
        slow_env.num_devices
    )
    device_ids = np.asarray(fast_env.device_ids(), dtype=np.int64)
    np.testing.assert_array_equal(
        fast_env.ledger.per_device_message_counts(
            fast_env.num_devices, device_ids=device_ids
        ),
        slow_env.ledger.per_device_message_counts(
            slow_env.num_devices, device_ids=device_ids
        ),
    )
    # RNG stream contract: neither kernel draws from the shared stream.
    untouched = np.random.default_rng(seed)
    assert fast_rng.bit_generator.state == untouched.bit_generator.state
    assert slow_rng.bit_generator.state == untouched.bit_generator.state


class TestKernelEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_facebook_like(self, seed):
        graph = generate_facebook_like(seed=3, num_nodes=120)
        _assert_equivalent(lambda: FederatedEnvironment.from_graph(graph, seed=0), seed)

    def test_small_world(self):
        graph = generate_small_world(num_nodes=60, k=4, seed=5)
        _assert_equivalent(lambda: FederatedEnvironment.from_graph(graph, seed=0))

    def test_star(self):
        graph = generate_star(num_leaves=8, seed=2)
        _assert_equivalent(lambda: FederatedEnvironment.from_graph(graph, seed=0))

    def test_noncontiguous_device_ids(self):
        _assert_equivalent(_noncontiguous_environment)

    def test_edgeless_graph(self):
        from repro.graph import Graph

        graph = Graph(
            num_nodes=5,
            edges=np.zeros((0, 2), dtype=np.int64),
            features=np.random.default_rng(0).random((5, 4)),
        )
        _assert_equivalent(lambda: FederatedEnvironment.from_graph(graph, seed=0))

    def test_auto_resolves_to_batched(self, social_graph):
        environment = FederatedEnvironment.from_graph(social_graph, seed=0)
        greedy_initialization(environment, rng=np.random.default_rng(0))
        descriptions = {e.description for e in environment.ledger.bulk_message_events}
        assert "greedy-degree-comparison" in descriptions

    def test_kernel_validation(self, social_graph):
        environment = FederatedEnvironment.from_graph(social_graph, seed=0)
        with pytest.raises(ValueError):
            greedy_initialization(environment, kernel="warp-drive")

    @pytest.mark.parametrize("kernel", ["batched", "reference"])
    def test_dangling_neighbour_id_fails_loudly(self, kernel):
        # An ego network referencing a vertex with no device must raise under
        # both kernels (the batched id join must not silently alias it onto
        # the nearest existing device).
        rng = np.random.default_rng(0)
        partition = {
            2: EgoNetwork(center=2, neighbors=np.array([5, 3]), feature=rng.random(4)),
            5: EgoNetwork(center=5, neighbors=np.array([2]), feature=rng.random(4)),
        }
        environment = FederatedEnvironment.from_partition(partition, seed=0)
        with pytest.raises(KeyError):
            greedy_initialization(environment, kernel=kernel)

    def test_batched_transcript_is_zero_knowledge(self, social_graph):
        environment = FederatedEnvironment.from_graph(social_graph, seed=0)
        accountant = TranscriptAccountant()
        greedy_initialization(
            environment, accountant=accountant, kernel="batched",
            rng=np.random.default_rng(0),
        )
        assert verify_zero_knowledge_transcript(accountant)


class TestConstructorAndEngineKeys:
    def test_constructor_level_equivalence(self, social_graph):
        results = {}
        for kernel in ("batched", "reference"):
            environment = FederatedEnvironment.from_graph(social_graph, seed=0)
            constructor = TreeConstructor(
                TreeConstructorConfig(mcmc_iterations=40, greedy_kernel=kernel),
                rng=np.random.default_rng(0),
            )
            results[kernel] = constructor.construct(environment)
        fast, slow = results["batched"], results["reference"]
        assert fast.assignment.as_lists() == slow.assignment.as_lists()
        assert fast.greedy_assignment.as_lists() == slow.greedy_assignment.as_lists()
        assert fast.mcmc_result.objective_history == slow.mcmc_result.objective_history
        assert fast.transcript.snapshot() == slow.transcript.snapshot()

    def test_secure_constructor_resolves_secure_kernel(self, social_graph):
        # Secure "auto" now resolves to the batched vectorized-OT kernels;
        # "reference" pins the per-comparison protocol loops.
        batched = TreeConstructor(
            TreeConstructorConfig(greedy_kernel="reference"), secure=True
        )
        assert batched._resolve_greedy_kernel() == "batched"
        assert batched._resolve_mcmc_kernel() == "auto"
        pinned = TreeConstructor(
            TreeConstructorConfig(secure_kernel="reference"), secure=True
        )
        assert pinned._resolve_greedy_kernel() == "reference"
        assert pinned._resolve_mcmc_kernel() == "reference"

    def test_config_rejects_unknown_kernel(self):
        with pytest.raises(ValueError):
            TreeConstructorConfig(greedy_kernel="warp-drive")
        with pytest.raises(ValueError):
            TreeConstructorConfig(secure_kernel="warp-drive")

    def test_engine_cache_keys_distinguish_kernels(self):
        fingerprints = {
            fingerprint_value(TreeConstructorConfig(greedy_kernel=kernel))
            for kernel in ("auto", "batched", "reference")
        }
        assert len(fingerprints) == 3

    def test_engine_cache_keys_distinguish_secure_kernels(self):
        fingerprints = {
            fingerprint_value(TreeConstructorConfig(secure_kernel=kernel))
            for kernel in ("auto", "batched", "reference")
        }
        assert len(fingerprints) == 3


class TestBatchedComparatorParity:
    def test_compare_batch_matches_loop(self):
        rng = np.random.default_rng(11)
        left = rng.integers(0, 200, size=400)
        right = rng.integers(0, 200, size=400)

        loop_acc = TranscriptAccountant()
        loop = SecureComparator(bit_width=8, accountant=loop_acc)
        loop_outcomes = [loop.compare(int(l), int(r)).left_ge_right
                         for l, r in zip(left, right)]

        batch_acc = TranscriptAccountant()
        batch = SecureComparator(bit_width=8, accountant=batch_acc).compare_batch(
            left, right
        )
        np.testing.assert_array_equal(batch.left_ge_right, np.asarray(loop_outcomes))
        assert batch_acc.snapshot() == loop_acc.snapshot()
        assert batch_acc._log == loop_acc._log

    def test_compare_many_is_vectorised_but_identical(self):
        pairs = [(1, 2), (9, 4), (3, 3), (255, 0)]
        loop_acc = TranscriptAccountant()
        loop = SecureComparator(bit_width=8, accountant=loop_acc)
        expected = [loop.compare(l, r) for l, r in pairs]

        many_acc = TranscriptAccountant()
        results = SecureComparator(bit_width=8, accountant=many_acc).compare_many(pairs)
        assert [r.left_ge_right for r in results] == [r.left_ge_right for r in expected]
        assert [r.bits_exchanged for r in results] == [r.bits_exchanged for r in expected]
        assert [r.ot_invocations for r in results] == [r.ot_invocations for r in expected]
        assert many_acc.snapshot() == loop_acc.snapshot()
        assert SecureComparator(bit_width=8).compare_many([]) == []

    def test_compare_batch_validates_bounds(self):
        comparator = SecureComparator(bit_width=8)
        with pytest.raises(ValueError):
            comparator.compare_batch(np.array([-1]), np.array([0]))
        with pytest.raises(ValueError):
            comparator.compare_batch(np.array([0]), np.array([256]))
        with pytest.raises(ValueError):
            comparator.compare_batch(np.array([[0]]), np.array([[0]]))

    def test_comparison_cost_matches_executed_protocol(self):
        for bit_width in (4, 8, 24, 32):
            accountant = TranscriptAccountant()
            comparator = SecureComparator(bit_width=bit_width, accountant=accountant)
            result = comparator.compare(3, 2)
            cost = comparison_cost(bit_width)
            assert result.bits_exchanged == cost.bits
            assert result.ot_invocations == cost.ot_invocations
            assert accountant.messages == cost.messages
            assert accountant.bits == cost.bits
            assert accountant._log == [f"{d}:{b}" for d, b in cost.pattern]

    def test_log_degree_buckets_matches_scalar(self):
        degrees = np.arange(0, 5000)
        expected = np.asarray([log_degree_bucket(int(d)) for d in degrees])
        np.testing.assert_array_equal(log_degree_buckets(degrees), expected)

    def test_compare_degrees_many_matches_scalar(self):
        rng = np.random.default_rng(5)
        left = rng.integers(0, 500, size=100)
        right = rng.integers(0, 500, size=100)
        scalar_acc = TranscriptAccountant()
        scalar = DegreeComparisonProtocol(accountant=scalar_acc)
        scalar_outcomes = [
            scalar.compare_degrees(int(l), int(r)).left_bucket_ge_right
            for l, r in zip(left, right)
        ]
        batch_acc = TranscriptAccountant()
        batch = DegreeComparisonProtocol(accountant=batch_acc).compare_degrees_many(
            left, right
        )
        np.testing.assert_array_equal(batch.left_ge_right, np.asarray(scalar_outcomes))
        assert batch_acc.snapshot() == scalar_acc.snapshot()


class TestRecordPattern:
    def test_counters_and_log_match_repeated_record(self):
        pattern = [("ot-n", 144), ("and-gate", 8)]
        reference = TranscriptAccountant()
        for _ in range(7):
            for description, bits in pattern:
                reference.record(description, bits)
        bulk = TranscriptAccountant()
        bulk.record_pattern(pattern, 7)
        assert bulk.snapshot() == reference.snapshot()
        assert bulk._log == reference._log

    def test_log_cap_is_respected_exactly(self):
        pattern = [("ot-n", 144)] * 3
        count = TranscriptAccountant.LOG_CAP  # 3 * count entries >> cap
        reference = TranscriptAccountant()
        for _ in range(count):
            for description, bits in pattern:
                reference.record(description, bits)
        bulk = TranscriptAccountant()
        bulk.record_pattern(pattern, count)
        assert len(bulk._log) == TranscriptAccountant.LOG_CAP
        assert bulk._log == reference._log
        assert bulk.snapshot() == reference.snapshot()

    def test_zero_count_and_empty_pattern_are_noops(self):
        accountant = TranscriptAccountant()
        accountant.record_pattern([], 5)
        accountant.record_pattern([("ot", 1)], 0)
        assert accountant.snapshot() == TranscriptAccountant().snapshot()
        assert accountant._log == []
