"""LPGNN baseline (Sajadmanesh & Gatica-Perez, CCS 2021).

LPGNN ("Locally Private Graph Neural Networks") assumes the *server owns the
graph structure* and protects only node features and labels:

* features are released with a multi-bit LDP encoder under budget ``eps_x``
  (we reuse the 1-bit mechanism applied to every element, which is the m=1
  multi-bit special case) and denoised on the server with **KProp** — a
  k-hop mean aggregation over the known graph that averages out the injected
  noise;
* labels are released through randomized response under budget ``eps_y`` and
  the model is trained on the noisy training labels (we include the label
  correction step of Drop: training on the KProp-smoothed label distribution).

The paper's experiments use ``eps_x = 2`` and ``eps_y = 1``; LPGNN is only
evaluated on the supervised task (its design is label-centric), matching
Section VIII-C of the Lumos paper.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np
import scipy.sparse as sp

from ..crypto.ldp import FeatureBounds, OneBitMechanism, RandomizedResponse
from ..gnn.models import EncoderConfig, GraphInput, NodeClassifier
from ..graph.graph import Graph
from ..graph.sparse import row_normalize
from ..graph.splits import NodeSplit
from ..nn.loss import cross_entropy
from ..nn.optim import Adam
from ..nn.tensor import Tensor, no_grad
from .centralized import CentralizedResult


@dataclass(frozen=True)
class LPGNNConfig:
    """Privacy and denoising parameters of the LPGNN baseline."""

    feature_epsilon: float = 2.0
    label_epsilon: float = 1.0
    kprop_steps: int = 2
    label_kprop_steps: int = 1

    def __post_init__(self) -> None:
        if self.feature_epsilon <= 0 or self.label_epsilon <= 0:
            raise ValueError("privacy budgets must be positive")
        if self.kprop_steps < 0 or self.label_kprop_steps < 0:
            raise ValueError("KProp step counts must be non-negative")


def _kprop(values: np.ndarray, propagation: sp.csr_matrix, steps: int) -> np.ndarray:
    """k-step mean aggregation used by LPGNN to denoise LDP features."""
    result = values
    for _ in range(steps):
        result = propagation @ result
    return result


def encode_features_lpgnn(
    graph: Graph, config: LPGNNConfig, rng: np.random.Generator
) -> np.ndarray:
    """LDP-encode every feature element and denoise with KProp."""
    graph = graph.normalized_features(0.0, 1.0)
    mechanism = OneBitMechanism(config.feature_epsilon, FeatureBounds(0.0, 1.0))
    dimension = graph.num_features
    # The multi-bit encoder spreads eps_x across all d elements: per-element
    # budget eps_x / d, i.e. workload=1 in the OneBitMechanism parametrisation.
    encoded = np.empty_like(graph.features)
    for vertex in range(graph.num_nodes):
        encoded[vertex] = mechanism.encode_and_recover(
            graph.features[vertex], workload=1, dimension=dimension, rng=rng
        )
    propagation = row_normalize(graph.adjacency(), self_loops=True)
    return _kprop(encoded, propagation, config.kprop_steps)


def encode_labels_lpgnn(
    graph: Graph, split: NodeSplit, config: LPGNNConfig, rng: np.random.Generator
) -> np.ndarray:
    """Randomized-response the training labels (val/test labels stay local)."""
    if graph.labels is None:
        raise ValueError("LPGNN requires labels")
    mechanism = RandomizedResponse(config.label_epsilon, num_categories=graph.num_classes)
    noisy = graph.labels.copy()
    train_indices = np.where(split.train_mask)[0]
    noisy[train_indices] = mechanism.randomize(graph.labels[train_indices], rng=rng)
    return noisy


def train_lpgnn_supervised(
    graph: Graph,
    split: NodeSplit,
    backbone: str = "gcn",
    epochs: int = 300,
    learning_rate: float = 0.01,
    config: LPGNNConfig = LPGNNConfig(),
    hidden_dim: int = 16,
    output_dim: int = 16,
    dropout: float = 0.01,
    num_heads: int = 4,
    seed: int = 0,
) -> CentralizedResult:
    """Train the LPGNN baseline and report test accuracy against true labels."""
    if graph.labels is None:
        raise ValueError("supervised training requires labels")
    rng = np.random.default_rng(seed)
    denoised_features = encode_features_lpgnn(graph, config, rng)
    noisy_labels = encode_labels_lpgnn(graph, split, config, rng)

    graph_input = GraphInput.from_graph(graph)  # LPGNN's server knows the true structure
    model = NodeClassifier(
        graph.num_features,
        graph.num_classes,
        EncoderConfig(backbone=backbone, hidden_dim=hidden_dim, output_dim=output_dim,
                      dropout=dropout, num_heads=num_heads),
        rng=rng,
    )
    optimizer = Adam(model.parameters(), lr=learning_rate)
    features = Tensor(denoised_features)
    true_labels = graph.labels
    result = CentralizedResult()
    best_state = None
    start = time.perf_counter()

    for _ in range(epochs):
        model.train()
        logits = model(features, graph_input)
        loss = cross_entropy(logits, noisy_labels, mask=split.train_mask)
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
        result.losses.append(loss.item())

        with no_grad():
            model.eval()
            predictions = np.argmax(model(features, graph_input).data, axis=1)
        val_accuracy = float(
            (predictions[split.val_mask] == true_labels[split.val_mask]).mean()
        )
        if val_accuracy >= result.best_val_metric:
            result.best_val_metric = val_accuracy
            best_state = model.state_dict()

    if best_state is not None:
        model.load_state_dict(best_state)
    with no_grad():
        model.eval()
        predictions = np.argmax(model(features, graph_input).data, axis=1)
    result.test_accuracy = float(
        (predictions[split.test_mask] == true_labels[split.test_mask]).mean()
    )
    result.wall_clock_seconds = time.perf_counter() - start
    return result
