"""Naive federated GNN baseline (paper Section VIII-C).

Every device noises *all* its local graph statistics so the server can train
a GNN on the perturbed data:

* node features — Gaussian mechanism;
* adjacency rows (the device's edges) — binary randomized response: every
  potential edge bit is flipped with probability ``1 - p_keep``;
* labels — randomized response over the label alphabet.

The server then reconstructs a (very noisy) global graph from the uploads and
trains a standard GCN / GAT on it.  This is the "Naive FedGNN" bar of Fig. 3
and Fig. 4 that Lumos beats by 30-75% relative accuracy.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..crypto.ldp import GaussianMechanism, RandomizedResponse
from ..gnn.models import EncoderConfig, GraphInput, LinkPredictor, NodeClassifier
from ..graph.graph import Graph
from ..graph.splits import EdgeSplit, NodeSplit
from ..nn import functional as F
from ..nn.loss import cross_entropy, link_prediction_loss
from ..nn.optim import Adam
from ..nn.tensor import Tensor, no_grad
from ..eval.metrics import roc_auc_score
from .centralized import CentralizedResult, _pair_auc, _sample_negatives


@dataclass(frozen=True)
class NaiveFedGNNConfig:
    """Privacy parameters of the naive baseline."""

    feature_epsilon: float = 2.0
    feature_delta: float = 1e-5
    edge_epsilon: float = 2.0
    label_epsilon: float = 1.0
    max_noisy_edges_per_node: float = 1.0
    """Cap (as a multiple of the average true degree) on spurious edges kept
    per node, so the perturbed graph stays sparse enough to train on.  The
    randomized-response output over all :math:`O(n^2)` pairs would otherwise
    be almost complete; a real deployment would subsample it the same way."""


def perturb_graph(
    graph: Graph, config: NaiveFedGNNConfig, rng: np.random.Generator
) -> Tuple[Graph, np.ndarray]:
    """Return the noised graph the server reconstructs, plus the noised labels."""
    graph = graph.normalized_features(0.0, 1.0)
    gaussian = GaussianMechanism(config.feature_epsilon, config.feature_delta, sensitivity=1.0)
    noisy_features = gaussian.randomize(graph.features, rng=rng)

    edge_rr = RandomizedResponse(config.edge_epsilon, num_categories=2)
    keep_probability = edge_rr.keep_probability
    flip_probability = 1.0 - keep_probability

    # True edges: each survives with probability p_keep.
    survived = graph.edges[rng.random(graph.num_edges) < keep_probability]

    # Non-edges: each of the ~n^2/2 pairs flips to 1 with probability
    # flip_probability.  Materialising them all would swamp the server, so we
    # sample the number of spurious edges from the exact Binomial and then cap
    # it (documented substitution; see NaiveFedGNNConfig.max_noisy_edges_per_node).
    num_pairs = graph.num_nodes * (graph.num_nodes - 1) // 2
    expected_spurious = int(rng.binomial(max(num_pairs - graph.num_edges, 0), flip_probability))
    cap = int(config.max_noisy_edges_per_node * graph.degrees().mean() * graph.num_nodes)
    num_spurious = min(expected_spurious, cap)
    existing = graph.edge_set()
    spurious = []
    attempts = 0
    while len(spurious) < num_spurious and attempts < num_spurious * 10 + 100:
        attempts += 1
        u = int(rng.integers(graph.num_nodes))
        v = int(rng.integers(graph.num_nodes))
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if key in existing:
            continue
        spurious.append(key)
    noisy_edges = (
        np.concatenate([survived.reshape(-1, 2), np.asarray(spurious, dtype=np.int64).reshape(-1, 2)])
        if spurious
        else survived.reshape(-1, 2)
    )

    noisy_labels = graph.labels
    if graph.labels is not None:
        label_rr = RandomizedResponse(config.label_epsilon, num_categories=graph.num_classes)
        noisy_labels = label_rr.randomize(graph.labels, rng=rng)

    noisy_graph = Graph(
        num_nodes=graph.num_nodes,
        edges=noisy_edges,
        features=noisy_features,
        labels=graph.labels,
        name=f"{graph.name}-noised",
    )
    return noisy_graph, noisy_labels


def train_naive_fedgnn_supervised(
    graph: Graph,
    split: NodeSplit,
    backbone: str = "gcn",
    epochs: int = 300,
    learning_rate: float = 0.01,
    config: NaiveFedGNNConfig = NaiveFedGNNConfig(),
    hidden_dim: int = 16,
    output_dim: int = 16,
    dropout: float = 0.01,
    num_heads: int = 4,
    seed: int = 0,
) -> CentralizedResult:
    """Train the naive baseline for node classification.

    The server trains on noised features, a noised edge set and noised
    *training* labels; evaluation uses the true labels of the val/test sets
    (the devices evaluate locally against their own ground truth).
    """
    if graph.labels is None:
        raise ValueError("supervised training requires labels")
    rng = np.random.default_rng(seed)
    noisy_graph, noisy_labels = perturb_graph(graph, config, rng)
    graph_input = GraphInput.from_graph(noisy_graph)
    model = NodeClassifier(
        noisy_graph.num_features,
        graph.num_classes,
        EncoderConfig(backbone=backbone, hidden_dim=hidden_dim, output_dim=output_dim,
                      dropout=dropout, num_heads=num_heads),
        rng=rng,
    )
    optimizer = Adam(model.parameters(), lr=learning_rate)
    features = Tensor(noisy_graph.features)
    true_labels = graph.labels
    result = CentralizedResult()
    best_state = None
    start = time.perf_counter()

    for _ in range(epochs):
        model.train()
        logits = model(features, graph_input)
        loss = cross_entropy(logits, noisy_labels, mask=split.train_mask)
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
        result.losses.append(loss.item())

        with no_grad():
            model.eval()
            predictions = np.argmax(model(features, graph_input).data, axis=1)
        val_accuracy = float(
            (predictions[split.val_mask] == true_labels[split.val_mask]).mean()
        )
        if val_accuracy >= result.best_val_metric:
            result.best_val_metric = val_accuracy
            best_state = model.state_dict()

    if best_state is not None:
        model.load_state_dict(best_state)
    with no_grad():
        model.eval()
        predictions = np.argmax(model(features, graph_input).data, axis=1)
    result.test_accuracy = float(
        (predictions[split.test_mask] == true_labels[split.test_mask]).mean()
    )
    result.wall_clock_seconds = time.perf_counter() - start
    return result


def train_naive_fedgnn_unsupervised(
    graph: Graph,
    edge_split: EdgeSplit,
    backbone: str = "gcn",
    epochs: int = 300,
    learning_rate: float = 0.01,
    config: NaiveFedGNNConfig = NaiveFedGNNConfig(),
    hidden_dim: int = 16,
    output_dim: int = 16,
    dropout: float = 0.01,
    num_heads: int = 4,
    seed: int = 0,
) -> CentralizedResult:
    """Train the naive baseline for link prediction (AUC evaluated on true edges)."""
    rng = np.random.default_rng(seed)
    training_graph = edge_split.training_graph(graph)
    noisy_graph, _ = perturb_graph(training_graph, config, rng)
    graph_input = GraphInput.from_graph(noisy_graph)
    model = LinkPredictor(
        noisy_graph.num_features,
        EncoderConfig(backbone=backbone, hidden_dim=hidden_dim, output_dim=output_dim,
                      dropout=dropout, num_heads=num_heads),
        rng=rng,
    )
    optimizer = Adam(model.parameters(), lr=learning_rate)
    features = Tensor(noisy_graph.features)
    # The server only sees the noised edges, so it supervises on them.
    train_pairs = noisy_graph.edges if noisy_graph.num_edges else edge_split.train_edges
    train_pairs = np.asarray(train_pairs, dtype=np.int64)
    existing = {tuple(sorted((int(u), int(v)))) for u, v in train_pairs}
    result = CentralizedResult()
    best_state = None
    start = time.perf_counter()

    for _ in range(epochs):
        model.train()
        embeddings = model(features, graph_input)
        negatives = _sample_negatives(train_pairs, existing, graph.num_nodes, rng)
        loss = link_prediction_loss(
            F.gather(embeddings, train_pairs[:, 0]),
            F.gather(embeddings, train_pairs[:, 1]),
            F.gather(embeddings, negatives[:, 1]),
        )
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
        result.losses.append(loss.item())

        with no_grad():
            model.eval()
            eval_embeddings = model(features, graph_input).data
        val_auc = _pair_auc(eval_embeddings, edge_split.val_edges, edge_split.val_negatives)
        if val_auc >= result.best_val_metric:
            result.best_val_metric = val_auc
            best_state = model.state_dict()

    if best_state is not None:
        model.load_state_dict(best_state)
    with no_grad():
        model.eval()
        final_embeddings = model(features, graph_input).data
    result.test_auc = _pair_auc(final_embeddings, edge_split.test_edges, edge_split.test_negatives)
    result.wall_clock_seconds = time.perf_counter() - start
    return result
