"""Comparison methods of the paper's evaluation (Section VIII-C)."""

from .centralized import (
    CentralizedResult,
    train_centralized_supervised,
    train_centralized_unsupervised,
)
from .lpgnn import LPGNNConfig, train_lpgnn_supervised
from .naive_fedgnn import (
    NaiveFedGNNConfig,
    perturb_graph,
    train_naive_fedgnn_supervised,
    train_naive_fedgnn_unsupervised,
)

__all__ = [
    "CentralizedResult",
    "train_centralized_supervised",
    "train_centralized_unsupervised",
    "LPGNNConfig",
    "train_lpgnn_supervised",
    "NaiveFedGNNConfig",
    "perturb_graph",
    "train_naive_fedgnn_supervised",
    "train_naive_fedgnn_unsupervised",
]
