"""Centralized GNN baseline (upper bound).

The server holds the entire graph — edges, features and labels — and trains a
standard 2-layer GCN or GAT.  This is the non-private reference Lumos is
compared against in Fig. 3 and Fig. 4.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..gnn.models import EncoderConfig, GraphInput, LinkPredictor, NodeClassifier
from ..graph.graph import Graph
from ..graph.splits import EdgeSplit, NodeSplit
from ..nn.loss import cross_entropy, link_prediction_loss
from ..nn import functional as F
from ..nn.optim import Adam
from ..nn.tensor import Tensor, no_grad
from ..eval.metrics import roc_auc_score


@dataclass
class CentralizedResult:
    """Outcome of a centralized training run."""

    test_accuracy: float = 0.0
    test_auc: float = 0.0
    best_val_metric: float = 0.0
    losses: List[float] = field(default_factory=list)
    wall_clock_seconds: float = 0.0


def _encoder_config(backbone: str, hidden_dim: int, output_dim: int, dropout: float, num_heads: int) -> EncoderConfig:
    return EncoderConfig(
        backbone=backbone,
        num_layers=2,
        hidden_dim=hidden_dim,
        output_dim=output_dim,
        dropout=dropout,
        num_heads=num_heads,
    )


def train_centralized_supervised(
    graph: Graph,
    split: NodeSplit,
    backbone: str = "gcn",
    epochs: int = 300,
    learning_rate: float = 0.01,
    hidden_dim: int = 16,
    output_dim: int = 16,
    dropout: float = 0.01,
    num_heads: int = 4,
    seed: int = 0,
) -> CentralizedResult:
    """Train a centralized node classifier and report test accuracy."""
    if graph.labels is None:
        raise ValueError("supervised training requires labels")
    rng = np.random.default_rng(seed)
    graph = graph.normalized_features(0.0, 1.0)
    graph_input = GraphInput.from_graph(graph)
    model = NodeClassifier(
        graph.num_features,
        graph.num_classes,
        _encoder_config(backbone, hidden_dim, output_dim, dropout, num_heads),
        rng=rng,
    )
    optimizer = Adam(model.parameters(), lr=learning_rate)
    features = Tensor(graph.features)
    labels = graph.labels
    result = CentralizedResult()
    best_state = None
    start = time.perf_counter()

    for _ in range(epochs):
        model.train()
        logits = model(features, graph_input)
        loss = cross_entropy(logits, labels, mask=split.train_mask)
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
        result.losses.append(loss.item())

        with no_grad():
            model.eval()
            predictions = np.argmax(model(features, graph_input).data, axis=1)
        val_accuracy = float((predictions[split.val_mask] == labels[split.val_mask]).mean())
        if val_accuracy >= result.best_val_metric:
            result.best_val_metric = val_accuracy
            best_state = model.state_dict()

    if best_state is not None:
        model.load_state_dict(best_state)
    with no_grad():
        model.eval()
        predictions = np.argmax(model(features, graph_input).data, axis=1)
    result.test_accuracy = float((predictions[split.test_mask] == labels[split.test_mask]).mean())
    result.wall_clock_seconds = time.perf_counter() - start
    return result


def train_centralized_unsupervised(
    graph: Graph,
    edge_split: EdgeSplit,
    backbone: str = "gcn",
    epochs: int = 300,
    learning_rate: float = 0.01,
    hidden_dim: int = 16,
    output_dim: int = 16,
    dropout: float = 0.01,
    num_heads: int = 4,
    seed: int = 0,
) -> CentralizedResult:
    """Train a centralized link predictor and report test ROC-AUC."""
    rng = np.random.default_rng(seed)
    graph = graph.normalized_features(0.0, 1.0)
    training_graph = edge_split.training_graph(graph)
    graph_input = GraphInput.from_graph(training_graph)
    model = LinkPredictor(
        graph.num_features,
        _encoder_config(backbone, hidden_dim, output_dim, dropout, num_heads),
        rng=rng,
    )
    optimizer = Adam(model.parameters(), lr=learning_rate)
    features = Tensor(graph.features)
    train_pairs = np.asarray(edge_split.train_edges, dtype=np.int64)
    existing = {tuple(sorted((int(u), int(v)))) for u, v in train_pairs}
    result = CentralizedResult()
    best_state = None
    start = time.perf_counter()

    for _ in range(epochs):
        model.train()
        embeddings = model(features, graph_input)
        negatives = _sample_negatives(train_pairs, existing, graph.num_nodes, rng)
        loss = link_prediction_loss(
            F.gather(embeddings, train_pairs[:, 0]),
            F.gather(embeddings, train_pairs[:, 1]),
            F.gather(embeddings, negatives[:, 1]),
        )
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
        result.losses.append(loss.item())

        with no_grad():
            model.eval()
            eval_embeddings = model(features, graph_input).data
        val_auc = _pair_auc(eval_embeddings, edge_split.val_edges, edge_split.val_negatives)
        if val_auc >= result.best_val_metric:
            result.best_val_metric = val_auc
            best_state = model.state_dict()

    if best_state is not None:
        model.load_state_dict(best_state)
    with no_grad():
        model.eval()
        final_embeddings = model(features, graph_input).data
    result.test_auc = _pair_auc(final_embeddings, edge_split.test_edges, edge_split.test_negatives)
    result.wall_clock_seconds = time.perf_counter() - start
    return result


def _sample_negatives(
    positive_pairs: np.ndarray, existing: set, num_nodes: int, rng: np.random.Generator
) -> np.ndarray:
    negatives = np.empty_like(positive_pairs)
    for index, (u, _) in enumerate(positive_pairs):
        candidate = int(rng.integers(num_nodes))
        for _ in range(20):
            if candidate != int(u) and tuple(sorted((int(u), candidate))) not in existing:
                break
            candidate = int(rng.integers(num_nodes))
        negatives[index] = (int(u), candidate)
    return negatives


def _pair_auc(embeddings: np.ndarray, positives: np.ndarray, negatives: np.ndarray) -> float:
    positives = np.asarray(positives, dtype=np.int64)
    negatives = np.asarray(negatives, dtype=np.int64)
    positive_scores = np.sum(embeddings[positives[:, 0]] * embeddings[positives[:, 1]], axis=1)
    negative_scores = np.sum(embeddings[negatives[:, 0]] * embeddings[negatives[:, 1]], axis=1)
    scores = np.concatenate([positive_scores, negative_scores])
    targets = np.concatenate([np.ones(len(positive_scores)), np.zeros(len(negative_scores))])
    return roc_auc_score(targets, scores)
