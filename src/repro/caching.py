"""Identity-keyed memoisation shared by the fast paths.

Several hot paths cache derived objects against an *immutable-by-convention*
anchor object (a sparse matrix, an index array, a graph): prepared CSR
matrices, segment-aggregation matrices, graph fingerprints, normalized
graphs.  They all need the same subtle bookkeeping — key on ``id(anchor)``,
guard against id reuse with a weak reference, evict when the anchor is
collected — so the pattern lives here exactly once.

``None`` is not a cacheable value (it is the miss sentinel); no current user
caches ``None``.
"""

from __future__ import annotations

import weakref
from typing import Any, Dict, Hashable, Optional, Tuple


class IdentityCache:
    """Cache keyed by anchor-object identity (plus an optional extra key).

    Entries hold a weak reference to their anchor: a lookup only hits when
    the weakly referenced object *is* the anchor passed in (so a recycled
    ``id()`` can never alias), and entries are evicted automatically when
    the anchor is garbage collected.  Anchors that do not support weak
    references are kept alive by the cache instead (rare; e.g. exotic
    array subclasses).
    """

    __slots__ = ("_entries",)

    def __init__(self) -> None:
        self._entries: Dict[Tuple[int, Hashable], Tuple[Any, Any]] = {}

    def get(self, anchor: Any, extra: Hashable = None) -> Optional[Any]:
        """Return the cached value for ``anchor`` (and ``extra``) or None."""
        key = (id(anchor), extra)
        entry = self._entries.get(key)
        if entry is not None and entry[0]() is anchor:
            return entry[1]
        return None

    def put(self, anchor: Any, value: Any, extra: Hashable = None) -> Any:
        """Store ``value`` under ``anchor`` (and ``extra``); returns ``value``."""
        key = (id(anchor), extra)
        try:
            ref = weakref.ref(anchor, lambda _ref, _key=key: self._entries.pop(_key, None))
        except TypeError:
            ref = _strong_ref(anchor)
        self._entries[key] = (ref, value)
        return value

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()


def _strong_ref(anchor: Any):
    """A callable mimicking ``weakref.ref`` that pins ``anchor`` alive."""
    return lambda: anchor
