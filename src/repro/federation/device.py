"""Device abstraction for the node-level federated setting.

A :class:`Device` wraps one :class:`~repro.graph.ego.EgoNetwork` and owns all
state that the paper keeps on the client side: the (trimmed) neighbour set
``N_u``, the constructed tree, the encoded features received from neighbours,
and the locally computed embeddings.  Devices never read each other's private
attributes directly — all cross-device state movement goes through the
simulator / ledger so communication is accounted for and the privacy boundary
stays auditable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..graph.ego import EgoNetwork


@dataclass
class Device:
    """One federated client (one vertex of the global graph)."""

    ego: EgoNetwork
    # --- tree-constructor state -------------------------------------------------
    selected_neighbors: List[int] = field(default_factory=list)
    # --- trainer state ----------------------------------------------------------
    received_features: Dict[int, np.ndarray] = field(default_factory=dict)
    received_embeddings: Dict[int, np.ndarray] = field(default_factory=dict)
    vertex_embedding: Optional[np.ndarray] = None

    @property
    def device_id(self) -> int:
        """Global vertex id of this device."""
        return self.ego.center

    @property
    def degree(self) -> int:
        """Private degree of the device (never shared in clear)."""
        return self.ego.degree

    @property
    def workload(self) -> int:
        """Current workload ``wl(u)`` = number of selected neighbours."""
        return len(self.selected_neighbors)

    def reset_training_state(self) -> None:
        """Drop all per-epoch state (received features / embeddings)."""
        self.received_features.clear()
        self.received_embeddings.clear()
        self.vertex_embedding = None

    def select_all_neighbors(self) -> None:
        """Initialise the selection with the full neighbour set (no trimming)."""
        self.selected_neighbors = [int(v) for v in self.ego.neighbors]

    def select_neighbors(self, neighbors: List[int]) -> None:
        """Replace the selected-neighbour set.

        Every selected neighbour must actually be a neighbour in the ego
        network — a device can only ever keep edges it already owns.
        """
        allowed = set(int(v) for v in self.ego.neighbors)
        cleaned = []
        for vertex in neighbors:
            vertex = int(vertex)
            if vertex not in allowed:
                raise ValueError(
                    f"device {self.device_id} cannot select non-neighbour {vertex}"
                )
            cleaned.append(vertex)
        self.selected_neighbors = sorted(set(cleaned))

    def add_selected_neighbor(self, vertex: int) -> None:
        """Add one neighbour to the selection (MCMC transition, Eq. 16/17)."""
        vertex = int(vertex)
        if not self.ego.has_neighbor(vertex):
            raise ValueError(f"device {self.device_id} has no neighbour {vertex}")
        if vertex not in self.selected_neighbors:
            self.selected_neighbors = sorted(self.selected_neighbors + [vertex])

    def remove_selected_neighbor(self, vertex: int) -> None:
        """Remove one neighbour from the selection (MCMC transition)."""
        vertex = int(vertex)
        if vertex in self.selected_neighbors:
            self.selected_neighbors = [v for v in self.selected_neighbors if v != vertex]

    def store_received_feature(self, sender: int, feature: np.ndarray) -> None:
        """Store an encoded/recovered feature received from a neighbour."""
        self.received_features[int(sender)] = np.asarray(feature, dtype=np.float64)

    def store_received_embedding(self, sender: int, embedding: np.ndarray) -> None:
        """Store a leaf embedding received from a neighbouring device."""
        self.received_embeddings[int(sender)] = np.asarray(embedding, dtype=np.float64)


def build_devices(partition: Dict[int, EgoNetwork]) -> Dict[int, Device]:
    """Wrap every ego network of a node-level partition into a :class:`Device`."""
    return {vertex: Device(ego=ego) for vertex, ego in partition.items()}
