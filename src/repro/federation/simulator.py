"""Synchronous federated simulation environment.

:class:`FederatedEnvironment` ties together the devices, the server and the
communication ledger.  Lumos' tree constructor and GNN trainer operate on an
environment instance rather than on raw graphs, which keeps the privacy
boundary explicit: any cross-device data movement must go through
:meth:`FederatedEnvironment.exchange`, which records it.

The environment also owns the simulated clock: per-device compute is charged
through :meth:`charge_compute`, and an epoch's wall-clock estimate is the
straggler-aware maximum over devices (see
:meth:`repro.federation.network.CommunicationLedger.epoch_completion_time`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

import numpy as np

from ..graph.ego import EgoNetwork, partition_node_level
from ..graph.graph import Graph
from .device import Device, build_devices
from .events import SERVER_ID, MessageKind
from .network import CommunicationLedger
from .server import Server


@dataclass
class FederatedEnvironment:
    """All parties of one federated deployment plus shared accounting."""

    devices: Dict[int, Device]
    server: Server
    ledger: CommunicationLedger
    rng: np.random.Generator
    _directed_edges_cache: Optional[np.ndarray] = field(
        default=None, repr=False, compare=False
    )
    _adjacency_csr_cache: Optional[tuple] = field(
        default=None, repr=False, compare=False
    )
    #: Current-round availability, aligned to ``sorted(device_ids)``.
    #: ``None`` (the default) means fully available — the fault-free fast
    #: path through :meth:`exchange` is a single ``is None`` check.
    _availability: Optional[np.ndarray] = field(
        default=None, repr=False, compare=False
    )
    _sorted_ids_cache: Optional[np.ndarray] = field(
        default=None, repr=False, compare=False
    )

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_graph(cls, graph: Graph, seed: int = 0) -> "FederatedEnvironment":
        """Split ``graph`` node-level and instantiate one device per vertex."""
        partition = partition_node_level(graph)
        return cls.from_partition(partition, seed=seed)

    @classmethod
    def from_partition(
        cls, partition: Dict[int, EgoNetwork], seed: int = 0
    ) -> "FederatedEnvironment":
        """Instantiate the environment from an existing ego-network partition."""
        ledger = CommunicationLedger()
        rng = np.random.default_rng(seed)
        server = Server(ledger=ledger, rng=np.random.default_rng(seed + 1))
        devices = build_devices(partition)
        return cls(devices=devices, server=server, ledger=ledger, rng=rng)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def num_devices(self) -> int:
        return len(self.devices)

    def device_ids(self) -> List[int]:
        """Sorted list of device ids."""
        return sorted(self.devices)

    def has_contiguous_ids(self) -> bool:
        """Whether device ids are the contiguous ``0..n-1`` of a node-level
        partition — the precondition of :meth:`adjacency_csr` and of the
        vectorised balancing/greedy fast paths."""
        ids = self.device_ids()
        return not ids or (ids[0] == 0 and ids[-1] == len(ids) - 1)

    def workloads(self) -> Dict[int, int]:
        """Current workload of every device (selected-neighbour counts)."""
        return {device_id: device.workload for device_id, device in self.devices.items()}

    def workload_array(self) -> np.ndarray:
        """Workloads as an array indexed by device id."""
        array = np.zeros(self.num_devices, dtype=np.int64)
        for device_id, device in self.devices.items():
            array[device_id] = device.workload
        return array

    def max_workload(self) -> int:
        """The objective value f(X) = max_u wl(u) of the current assignment."""
        return int(self.workload_array().max()) if self.devices else 0

    def degrees(self) -> Dict[int, int]:
        """Private degrees (only used by tests / oracles, never by protocols)."""
        return {device_id: device.degree for device_id, device in self.devices.items()}

    def directed_edges(self) -> np.ndarray:
        """Directed ``(2, 2E)`` edge index of the union of all ego networks.

        Cached in an explicit attribute after the first call (and invalidated
        by :meth:`apply_assignment`); used by the vectorised fast path of the
        MCMC balancer.
        """
        if self._directed_edges_cache is not None:
            return self._directed_edges_cache
        source_blocks: List[np.ndarray] = []
        destination_blocks: List[np.ndarray] = []
        for device_id, device in self.devices.items():
            neighbors = device.ego.neighbors
            source_blocks.append(np.full(neighbors.shape[0], device_id, dtype=np.int64))
            destination_blocks.append(neighbors.astype(np.int64, copy=False))
        if source_blocks:
            edges = np.stack(
                [np.concatenate(source_blocks), np.concatenate(destination_blocks)]
            )
        else:
            edges = np.zeros((2, 0), dtype=np.int64)
        self._directed_edges_cache = edges
        return edges

    def adjacency_csr(self) -> tuple:
        """``(indptr, indices)`` CSR view of :meth:`directed_edges`.

        Device ids must be the contiguous ``0..n-1`` of a node-level
        partition (the same precondition as the vectorised balancing paths).
        Cached alongside the directed-edge cache and invalidated with it.
        """
        if self._adjacency_csr_cache is not None:
            return self._adjacency_csr_cache
        sources, destinations = self.directed_edges()
        counts = np.bincount(sources, minlength=self.num_devices)
        indptr = np.zeros(self.num_devices + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        order = np.argsort(sources, kind="stable")
        indices = destinations[order]
        self._adjacency_csr_cache = (indptr, indices)
        return self._adjacency_csr_cache

    # ------------------------------------------------------------------ #
    # Availability (fault injection)
    # ------------------------------------------------------------------ #
    def set_availability(self, mask: Optional[np.ndarray]) -> None:
        """Install the current round's availability mask (or clear it).

        ``mask`` is boolean, aligned to ``sorted(device_ids)`` — the same
        positional convention as the trainer's device index and
        :class:`repro.faults.plan.FaultPlan` rows.  ``None`` restores full
        availability; the server is always available.
        """
        if mask is None:
            self._availability = None
            return
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self.num_devices,):
            raise ValueError(
                f"availability mask must have shape ({self.num_devices},), "
                f"got {mask.shape}"
            )
        self._availability = mask.copy()

    def is_available(self, party_id: int) -> bool:
        """Whether ``party_id`` participates in the current round."""
        if self._availability is None or party_id == SERVER_ID:
            return True
        if self._sorted_ids_cache is None or self._sorted_ids_cache.shape[0] != self.num_devices:
            self._sorted_ids_cache = np.asarray(self.device_ids(), dtype=np.int64)
        position = int(np.searchsorted(self._sorted_ids_cache, party_id))
        if (
            position >= self._sorted_ids_cache.shape[0]
            or self._sorted_ids_cache[position] != party_id
        ):
            raise KeyError(f"unknown device {party_id}")
        return bool(self._availability[position])

    # ------------------------------------------------------------------ #
    # Communication and compute accounting
    # ------------------------------------------------------------------ #
    def exchange(
        self,
        sender: int,
        recipient: int,
        kind: MessageKind,
        size_bytes: int,
        description: str = "",
    ) -> None:
        """Record a device-to-device (or device-server) message.

        Under an availability mask, a message from an offline sender is
        suppressed — nothing is transmitted or charged, only a drop record
        is kept — while a message to an offline recipient is transmitted
        (the sender cannot know) and therefore charged normally *plus*
        logged as undelivered.
        """
        if sender != SERVER_ID and sender not in self.devices:
            raise KeyError(f"unknown sender device {sender}")
        if recipient != SERVER_ID and recipient not in self.devices:
            raise KeyError(f"unknown recipient device {recipient}")
        if self._availability is not None:
            if not self.is_available(sender):
                self.ledger.drop(sender, recipient, kind, size_bytes, description)
                return
            if not self.is_available(recipient):
                self.ledger.send(sender, recipient, kind, size_bytes, description)
                self.ledger.drop(sender, recipient, kind, size_bytes, description)
                return
        self.ledger.send(sender, recipient, kind, size_bytes, description)

    def charge_compute(self, device_id: int, cost: float, description: str = "") -> None:
        """Charge ``cost`` units of computation to ``device_id``."""
        if device_id not in self.devices:
            raise KeyError(f"unknown device {device_id}")
        self.ledger.compute(device_id, cost, description)

    def next_round(self) -> int:
        """Advance the global synchronous round."""
        return self.ledger.next_round()

    # ------------------------------------------------------------------ #
    # Assignment helpers used by the tree constructor
    # ------------------------------------------------------------------ #
    def assignment(self) -> Dict[int, List[int]]:
        """Current neighbour selection ``(N_1, ..., N_|V|)`` per device."""
        return {
            device_id: list(device.selected_neighbors)
            for device_id, device in self.devices.items()
        }

    def apply_assignment(self, assignment: Dict[int, Iterable[int]]) -> None:
        """Install a neighbour selection produced by the tree constructor."""
        # The selection does not alter the ego-network edge structure, but a
        # changed assignment is the one event after which stale derived state
        # would be dangerous — drop the caches defensively.
        self._directed_edges_cache = None
        self._adjacency_csr_cache = None
        for device_id, neighbors in assignment.items():
            self.devices[device_id].select_neighbors(list(neighbors))

    def validate_edge_coverage(self) -> bool:
        """Check the constraint of Eq. 10: every edge is kept by >= 1 endpoint."""
        for device_id, device in self.devices.items():
            for neighbor in device.ego.neighbors:
                neighbor = int(neighbor)
                kept_here = neighbor in device.selected_neighbors
                kept_there = device_id in self.devices[neighbor].selected_neighbors
                if not (kept_here or kept_there):
                    return False
        return True

    def summary(self) -> Dict[str, float]:
        """Headline counters of the environment."""
        workloads = self.workload_array()
        result = {
            "num_devices": float(self.num_devices),
            "max_workload": float(workloads.max()) if self.num_devices else 0.0,
            "mean_workload": float(workloads.mean()) if self.num_devices else 0.0,
        }
        result.update(self.ledger.summary(self.num_devices))
        return result
