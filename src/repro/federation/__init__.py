"""Federated runtime simulator: devices, server, communication accounting."""

from .device import Device, build_devices
from .events import (
    SERVER_ID,
    BulkComputeEvent,
    BulkMessageEvent,
    ComputeEvent,
    Message,
    MessageKind,
    TransportFrame,
)
from .network import CommunicationLedger
from .server import Server
from .simulator import FederatedEnvironment

__all__ = [
    "Device",
    "build_devices",
    "Server",
    "BulkComputeEvent",
    "BulkMessageEvent",
    "Message",
    "ComputeEvent",
    "MessageKind",
    "SERVER_ID",
    "TransportFrame",
    "CommunicationLedger",
    "FederatedEnvironment",
]
