"""Message and event records for the federated runtime simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Optional

import numpy as np


class MessageKind(Enum):
    """Categories of inter-party traffic tracked by the simulator.

    The categories mirror the communication the paper accounts for:
    feature exchange and embedding exchange dominate the per-epoch
    inter-device rounds (Fig. 8a), while the secure-comparison and server
    coordination traffic belongs to the one-off tree-construction phase.
    """

    FEATURE_EXCHANGE = "feature_exchange"
    EMBEDDING_EXCHANGE = "embedding_exchange"
    LOSS_EXCHANGE = "loss_exchange"
    SECURE_COMPARISON = "secure_comparison"
    SERVER_COORDINATION = "server_coordination"
    MODEL_SYNC = "model_sync"
    OTHER = "other"


SERVER_ID = -1
"""Pseudo device id used for the central server in message records."""


@dataclass(frozen=True, slots=True)
class Message:
    """A single directed message between two parties."""

    sender: int
    recipient: int
    kind: MessageKind
    size_bytes: int
    round_index: int
    description: str = ""

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError("message size must be non-negative")

    @property
    def is_device_to_device(self) -> bool:
        """True when neither endpoint is the server."""
        return self.sender != SERVER_ID and self.recipient != SERVER_ID


@dataclass(frozen=True, slots=True)
class TransportFrame:
    """A physical frame observed on a two-party secure-transport channel.

    Unlike :class:`Message` — the *logical* protocol traffic the paper's
    communication model counts — a transport frame is what actually crossed
    the wire when a secure session ran over a real
    :class:`~repro.runtime.channel.PartyChannel`: ``payload_bytes`` of
    protocol data plus channel framing overhead, totalling ``wire_bytes``.
    Frames are kept out of the canonical message transcript so measured
    transport never perturbs the modeled accounting; they live in their own
    ledger side-list for attribution and reconciliation.
    """

    sender: int
    recipient: int
    kind: str
    payload_bytes: int
    wire_bytes: int
    round_index: int
    description: str = ""

    def __post_init__(self) -> None:
        if self.payload_bytes < 0:
            raise ValueError("frame payload size must be non-negative")
        if self.wire_bytes < self.payload_bytes:
            raise ValueError("wire size must include the payload")


@dataclass(slots=True)
class ComputeEvent:
    """A unit of simulated local computation on one device."""

    device: int
    cost: float
    round_index: int
    description: str = ""

    def __post_init__(self) -> None:
        if self.cost < 0:
            raise ValueError("compute cost must be non-negative")


@dataclass(slots=True)
class BulkComputeEvent:
    """One round's local computation over many devices, stored columnar.

    Semantically equivalent to one :class:`ComputeEvent` per ``(device,
    cost)`` pair; used by the per-epoch trainer accounting where creating
    hundreds of event objects per epoch is measurable overhead.  The arrays
    are treated as immutable once recorded.
    """

    devices: "np.ndarray"
    costs: "np.ndarray"
    round_index: int
    description: str = ""

    @property
    def total_cost(self) -> float:
        return float(self.costs.sum())


@dataclass(slots=True)
class BulkMessageEvent:
    """Many directed messages of one kind/description, stored columnar.

    Semantically equivalent to one :class:`Message` per position; used by the
    MCMC balancing kernel, whose thousands of iterations would otherwise
    allocate one message object per protocol step.  ``senders``,
    ``recipients``, ``sizes`` and ``round_indices`` are parallel ``int64``
    arrays (a scalar field of the logical messages is simply a constant
    array).  The arrays are treated as immutable once recorded.
    """

    senders: "np.ndarray"
    recipients: "np.ndarray"
    kind: MessageKind
    sizes: "np.ndarray"
    round_indices: "np.ndarray"
    description: str = ""

    def __post_init__(self) -> None:
        shape = self.senders.shape
        if (
            self.recipients.shape != shape
            or self.sizes.shape != shape
            or self.round_indices.shape != shape
        ):
            raise ValueError("bulk message columns must have matching shapes")

    @property
    def count(self) -> int:
        return int(self.senders.shape[0])

    @property
    def total_bytes(self) -> int:
        return int(self.sizes.sum())

    @property
    def device_to_device_count(self) -> int:
        return int(((self.senders != SERVER_ID) & (self.recipients != SERVER_ID)).sum())

    def expand(self) -> list:
        """Materialise the logical :class:`Message` objects (tests/debugging)."""
        return [
            Message(
                sender=int(sender),
                recipient=int(recipient),
                kind=self.kind,
                size_bytes=int(size),
                round_index=int(round_index),
                description=self.description,
            )
            for sender, recipient, size, round_index in zip(
                self.senders, self.recipients, self.sizes, self.round_indices
            )
        ]
