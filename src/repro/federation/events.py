"""Message and event records for the federated runtime simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Optional

import numpy as np


class MessageKind(Enum):
    """Categories of inter-party traffic tracked by the simulator.

    The categories mirror the communication the paper accounts for:
    feature exchange and embedding exchange dominate the per-epoch
    inter-device rounds (Fig. 8a), while the secure-comparison and server
    coordination traffic belongs to the one-off tree-construction phase.
    """

    FEATURE_EXCHANGE = "feature_exchange"
    EMBEDDING_EXCHANGE = "embedding_exchange"
    LOSS_EXCHANGE = "loss_exchange"
    SECURE_COMPARISON = "secure_comparison"
    SERVER_COORDINATION = "server_coordination"
    MODEL_SYNC = "model_sync"
    OTHER = "other"


SERVER_ID = -1
"""Pseudo device id used for the central server in message records."""


@dataclass(frozen=True, slots=True)
class Message:
    """A single directed message between two parties."""

    sender: int
    recipient: int
    kind: MessageKind
    size_bytes: int
    round_index: int
    description: str = ""

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError("message size must be non-negative")

    @property
    def is_device_to_device(self) -> bool:
        """True when neither endpoint is the server."""
        return self.sender != SERVER_ID and self.recipient != SERVER_ID


@dataclass(slots=True)
class ComputeEvent:
    """A unit of simulated local computation on one device."""

    device: int
    cost: float
    round_index: int
    description: str = ""

    def __post_init__(self) -> None:
        if self.cost < 0:
            raise ValueError("compute cost must be non-negative")


@dataclass(slots=True)
class BulkComputeEvent:
    """One round's local computation over many devices, stored columnar.

    Semantically equivalent to one :class:`ComputeEvent` per ``(device,
    cost)`` pair; used by the per-epoch trainer accounting where creating
    hundreds of event objects per epoch is measurable overhead.  The arrays
    are treated as immutable once recorded.
    """

    devices: "np.ndarray"
    costs: "np.ndarray"
    round_index: int
    description: str = ""

    @property
    def total_cost(self) -> float:
        return float(self.costs.sum())
