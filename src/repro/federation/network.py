"""Communication and computation accounting for the federated simulation.

The paper reports two system metrics (Fig. 8): the average number of
inter-device communication rounds per device per epoch, and the training time
per epoch.  Neither requires real networking — both are deterministic
functions of *what* the protocol sends and *how much* each device computes.
:class:`CommunicationLedger` records every message and compute event so the
evaluation harness can reproduce those metrics, and the straggler model of
:meth:`CommunicationLedger.epoch_completion_time` captures why workload
imbalance slows the synchronous system down (the epoch ends only when the
slowest device finishes).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

import numpy as np

from .events import (
    SERVER_ID,
    BulkComputeEvent,
    BulkMessageEvent,
    ComputeEvent,
    Message,
    MessageKind,
    TransportFrame,
)


@dataclass
class CommunicationLedger:
    """Append-only log of messages and compute events with summary queries.

    Messages exist in two equivalent representations: individual
    :class:`Message` objects (``messages``) and columnar
    :class:`BulkMessageEvent` blocks (``bulk_message_events``, written by hot
    protocol loops).  Every summary query accounts for both, so callers never
    need to know which representation a phase used.
    """

    messages: List[Message] = field(default_factory=list)
    compute_events: List[ComputeEvent] = field(default_factory=list)
    bulk_compute_events: List[BulkComputeEvent] = field(default_factory=list)
    bulk_message_events: List[BulkMessageEvent] = field(default_factory=list)
    #: Messages that never reached their recipient (offline endpoint, lost
    #: in transit, or evicted past the round deadline).  Kept out of
    #: ``messages`` so every existing traffic summary and the canonical
    #: :meth:`message_records` transcript are untouched by fault injection.
    dropped: List[Message] = field(default_factory=list)
    #: Physical frames observed when a secure session ran over a real
    #: transport channel (:mod:`repro.crypto.transport`).  Like ``dropped``,
    #: this is a side-list: the canonical :meth:`message_records` transcript
    #: and every modeled traffic summary are untouched by it, so a run that
    #: executes its comparisons over the wire stays transcript-identical to
    #: the in-process simulation while still attributing measured bytes.
    transport_frames: List[TransportFrame] = field(default_factory=list)
    current_round: int = 0

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def send(
        self,
        sender: int,
        recipient: int,
        kind: MessageKind,
        size_bytes: int,
        description: str = "",
    ) -> Message:
        """Record a directed message in the current round."""
        message = Message(
            sender=sender,
            recipient=recipient,
            kind=kind,
            size_bytes=int(size_bytes),
            round_index=self.current_round,
            description=description,
        )
        self.messages.append(message)
        return message

    def send_many(
        self,
        senders,
        recipients,
        kind: MessageKind,
        sizes,
        round_indices,
        description: str = "",
    ) -> BulkMessageEvent:
        """Record many directed messages of one kind/description, columnar.

        Semantically identical to calling :meth:`send` per position (with the
        recorded per-position round), but stores one
        :class:`BulkMessageEvent`; used by the MCMC balancing kernel where
        allocating one message object per protocol step is measurable
        overhead.
        """
        event = BulkMessageEvent(
            senders=np.asarray(senders, dtype=np.int64),
            recipients=np.asarray(recipients, dtype=np.int64),
            kind=kind,
            sizes=np.asarray(sizes, dtype=np.int64),
            round_indices=np.asarray(round_indices, dtype=np.int64),
            description=description,
        )
        self.bulk_message_events.append(event)
        return event

    def drop(
        self,
        sender: int,
        recipient: int,
        kind: MessageKind,
        size_bytes: int,
        description: str = "",
    ) -> Message:
        """Record a message that never reached its recipient.

        Whether the sender's bandwidth was also charged is the caller's
        decision: a suppressed send (offline sender) records *only* a drop,
        while an undelivered send (offline recipient, loss in transit,
        deadline eviction) pairs a normal :meth:`send` with a drop record.
        """
        message = Message(
            sender=sender,
            recipient=recipient,
            kind=kind,
            size_bytes=int(size_bytes),
            round_index=self.current_round,
            description=description,
        )
        self.dropped.append(message)
        return message

    def record_transport_frame(
        self,
        sender: int,
        recipient: int,
        kind: str,
        payload_bytes: int,
        wire_bytes: int,
        description: str = "",
    ) -> TransportFrame:
        """Attribute one measured transport frame to its party endpoints.

        ``kind`` is the transport-level frame tag (a
        :class:`~repro.runtime.channel.FrameKind` name), not a
        :class:`MessageKind` — the frame is physical evidence alongside the
        modeled traffic, never part of it.
        """
        frame = TransportFrame(
            sender=sender,
            recipient=recipient,
            kind=str(kind),
            payload_bytes=int(payload_bytes),
            wire_bytes=int(wire_bytes),
            round_index=self.current_round,
            description=description,
        )
        self.transport_frames.append(frame)
        return frame

    def compute(self, device: int, cost: float, description: str = "") -> ComputeEvent:
        """Record ``cost`` units of local computation on ``device``."""
        event = ComputeEvent(
            device=device, cost=float(cost), round_index=self.current_round, description=description
        )
        self.compute_events.append(event)
        return event

    def compute_many(self, devices, costs, description: str = "") -> BulkComputeEvent:
        """Record one round of computation over many devices at once.

        Semantically identical to calling :meth:`compute` per ``(device,
        cost)`` pair, but stored columnar (one :class:`BulkComputeEvent`);
        used by the trainer's per-epoch accounting where creating hundreds of
        event objects per epoch is measurable overhead.
        """
        event = BulkComputeEvent(
            devices=np.asarray(devices, dtype=np.int64),
            costs=np.asarray(costs, dtype=np.float64),
            round_index=self.current_round,
            description=description,
        )
        if event.devices.shape != event.costs.shape:
            raise ValueError("devices and costs must have matching shapes")
        self.bulk_compute_events.append(event)
        return event

    def next_round(self) -> int:
        """Advance the synchronous round counter."""
        self.current_round += 1
        return self.current_round

    def reset(self) -> None:
        """Clear all recorded events."""
        self.messages.clear()
        self.compute_events.clear()
        self.bulk_compute_events.clear()
        self.bulk_message_events.clear()
        self.dropped.clear()
        self.transport_frames.clear()
        self.current_round = 0

    # ------------------------------------------------------------------ #
    # Summaries
    # ------------------------------------------------------------------ #
    def total_messages(self, kinds: Optional[Iterable[MessageKind]] = None) -> int:
        """Number of messages, optionally restricted to some kinds."""
        if kinds is None:
            return len(self.messages) + sum(
                event.count for event in self.bulk_message_events
            )
        wanted = set(kinds)
        return sum(1 for message in self.messages if message.kind in wanted) + sum(
            event.count for event in self.bulk_message_events if event.kind in wanted
        )

    def total_bytes(self, kinds: Optional[Iterable[MessageKind]] = None) -> int:
        """Bytes transferred, optionally restricted to some kinds."""
        wanted = set(kinds) if kinds is not None else None
        return sum(
            message.size_bytes
            for message in self.messages
            if wanted is None or message.kind in wanted
        ) + sum(
            event.total_bytes
            for event in self.bulk_message_events
            if wanted is None or event.kind in wanted
        )

    def total_transport_frames(self) -> int:
        """Number of physical frames attributed from transport channels."""
        return len(self.transport_frames)

    def total_transport_payload_bytes(self) -> int:
        """Measured protocol payload bytes that crossed real channels."""
        return sum(frame.payload_bytes for frame in self.transport_frames)

    def total_transport_wire_bytes(self) -> int:
        """Measured bytes on the wire, including channel framing overhead."""
        return sum(frame.wire_bytes for frame in self.transport_frames)

    def total_dropped_messages(self) -> int:
        """Number of messages that never reached their recipient."""
        return len(self.dropped)

    def total_dropped_bytes(self) -> int:
        """Undelivered payload bytes (see :meth:`drop` for charging rules)."""
        return sum(message.size_bytes for message in self.dropped)

    def device_to_device_messages(self) -> int:
        """Messages where neither endpoint is the server."""
        return sum(1 for message in self.messages if message.is_device_to_device) + sum(
            event.device_to_device_count for event in self.bulk_message_events
        )

    def message_records(self) -> List[tuple]:
        """Canonical multiset of all logged traffic, sorted.

        Expands both representations into ``(round, sender, recipient, kind,
        size, description)`` tuples and sorts them — within one synchronous
        round the protocol imposes no message order, so this is the form two
        transcripts are compared in (tests, debugging).
        """
        records = [
            (
                message.round_index,
                message.sender,
                message.recipient,
                message.kind.value,
                message.size_bytes,
                message.description,
            )
            for message in self.messages
        ]
        for event in self.bulk_message_events:
            records.extend(
                (
                    message.round_index,
                    message.sender,
                    message.recipient,
                    message.kind.value,
                    message.size_bytes,
                    message.description,
                )
                for message in event.expand()
            )
        return sorted(records)

    @staticmethod
    def _positions(device_ids: np.ndarray, devices: np.ndarray):
        """Map device ids onto positions in the sorted ``device_ids`` array."""
        positions = np.searchsorted(device_ids, devices)
        positions = np.minimum(positions, device_ids.shape[0] - 1)
        valid = device_ids[positions] == devices
        return positions, valid

    def per_device_message_counts(
        self, num_devices: int, device_ids: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Array of message counts charged to each device (as the sender).

        Positional by id ``0..num_devices-1`` by default; deployments with
        non-contiguous device ids pass the sorted ``device_ids`` array to get
        counts aligned to it (no id is dropped).
        """
        sender_blocks = [
            np.asarray(
                [m.sender for m in self.messages if m.sender != SERVER_ID],
                dtype=np.int64,
            )
        ]
        sender_blocks.extend(
            event.senders[event.senders != SERVER_ID]
            for event in self.bulk_message_events
        )
        senders = np.concatenate(sender_blocks)
        if device_ids is not None:
            device_ids = np.asarray(device_ids, dtype=np.int64)
            counts = np.zeros(device_ids.shape[0], dtype=np.int64)
            if senders.size and device_ids.size:
                positions, valid = self._positions(device_ids, senders)
                counts += np.bincount(
                    positions[valid], minlength=device_ids.shape[0]
                ).astype(np.int64)
            return counts
        counts = np.zeros(num_devices, dtype=np.int64)
        senders = senders[(senders >= 0) & (senders < num_devices)]
        if senders.size:
            counts += np.bincount(senders, minlength=num_devices).astype(np.int64)
        return counts

    def per_device_compute(
        self, num_devices: int, device_ids: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Total compute cost charged to each device.

        Positional by id ``0..num_devices-1`` by default; deployments with
        non-contiguous device ids pass the sorted ``device_ids`` array to get
        costs aligned to it (no id is dropped).
        """
        if device_ids is not None:
            device_ids = np.asarray(device_ids, dtype=np.int64)
            costs = np.zeros(device_ids.shape[0], dtype=np.float64)
            if device_ids.size:
                for event in self.compute_events:
                    position = int(np.searchsorted(device_ids, event.device))
                    if position < device_ids.shape[0] and device_ids[position] == event.device:
                        costs[position] += event.cost
                for bulk in self.bulk_compute_events:
                    positions, valid = self._positions(device_ids, bulk.devices)
                    np.add.at(costs, positions[valid], bulk.costs[valid])
            return costs
        costs = np.zeros(num_devices, dtype=np.float64)
        for event in self.compute_events:
            if 0 <= event.device < num_devices:
                costs[event.device] += event.cost
        for bulk in self.bulk_compute_events:
            in_range = (bulk.devices >= 0) & (bulk.devices < num_devices)
            np.add.at(costs, bulk.devices[in_range], bulk.costs[in_range])
        return costs

    def epoch_completion_time(
        self,
        num_devices: int,
        compute_time_per_unit: float = 1.0,
        communication_latency: float = 0.05,
        device_ids: Optional[np.ndarray] = None,
    ) -> float:
        """Simulated wall-clock time of one synchronous epoch.

        The synchronous protocol finishes when the *slowest* device has
        completed its local computation and sent its messages — this is the
        straggler effect the tree trimmer mitigates.  Pass ``device_ids``
        when ids are not contiguous so no device's cost is dropped.
        """
        compute = self.per_device_compute(num_devices, device_ids=device_ids)
        compute = compute * compute_time_per_unit
        message_counts = self.per_device_message_counts(
            num_devices, device_ids=device_ids
        ).astype(np.float64)
        per_device_time = compute + message_counts * communication_latency
        return float(per_device_time.max()) if per_device_time.size else 0.0

    def summary(self, num_devices: Optional[int] = None) -> Dict[str, float]:
        """Return the headline counters as a dictionary."""
        result: Dict[str, float] = {
            "total_messages": float(self.total_messages()),
            "total_bytes": float(self.total_bytes()),
            "device_to_device_messages": float(self.device_to_device_messages()),
            "rounds": float(self.current_round),
            "total_compute": float(
                sum(event.cost for event in self.compute_events)
                + sum(event.total_cost for event in self.bulk_compute_events)
            ),
        }
        if num_devices:
            result["avg_messages_per_device"] = result["device_to_device_messages"] / num_devices
        # Drop counters appear only when something was actually dropped, so
        # fault-free summaries stay byte-identical to the pre-fault layout.
        if self.dropped:
            result["dropped_messages"] = float(self.total_dropped_messages())
            result["dropped_bytes"] = float(self.total_dropped_bytes())
        # Transport counters likewise appear only when a secure session
        # actually ran over a real channel, so simulation-only summaries
        # keep their historical layout.
        if self.transport_frames:
            result["transport_frames"] = float(self.total_transport_frames())
            result["transport_payload_bytes"] = float(
                self.total_transport_payload_bytes()
            )
            result["transport_wire_bytes"] = float(self.total_transport_wire_bytes())
        by_kind: Dict[str, int] = defaultdict(int)
        for message in self.messages:
            by_kind[message.kind.value] += 1
        for event in self.bulk_message_events:
            by_kind[event.kind.value] += event.count
        for kind, count in by_kind.items():
            result[f"messages_{kind}"] = float(count)
        return result
