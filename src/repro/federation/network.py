"""Communication and computation accounting for the federated simulation.

The paper reports two system metrics (Fig. 8): the average number of
inter-device communication rounds per device per epoch, and the training time
per epoch.  Neither requires real networking — both are deterministic
functions of *what* the protocol sends and *how much* each device computes.
:class:`CommunicationLedger` records every message and compute event so the
evaluation harness can reproduce those metrics, and the straggler model of
:meth:`CommunicationLedger.epoch_completion_time` captures why workload
imbalance slows the synchronous system down (the epoch ends only when the
slowest device finishes).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

import numpy as np

from .events import SERVER_ID, ComputeEvent, Message, MessageKind


@dataclass
class CommunicationLedger:
    """Append-only log of messages and compute events with summary queries."""

    messages: List[Message] = field(default_factory=list)
    compute_events: List[ComputeEvent] = field(default_factory=list)
    current_round: int = 0

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def send(
        self,
        sender: int,
        recipient: int,
        kind: MessageKind,
        size_bytes: int,
        description: str = "",
    ) -> Message:
        """Record a directed message in the current round."""
        message = Message(
            sender=sender,
            recipient=recipient,
            kind=kind,
            size_bytes=int(size_bytes),
            round_index=self.current_round,
            description=description,
        )
        self.messages.append(message)
        return message

    def compute(self, device: int, cost: float, description: str = "") -> ComputeEvent:
        """Record ``cost`` units of local computation on ``device``."""
        event = ComputeEvent(
            device=device, cost=float(cost), round_index=self.current_round, description=description
        )
        self.compute_events.append(event)
        return event

    def next_round(self) -> int:
        """Advance the synchronous round counter."""
        self.current_round += 1
        return self.current_round

    def reset(self) -> None:
        """Clear all recorded events."""
        self.messages.clear()
        self.compute_events.clear()
        self.current_round = 0

    # ------------------------------------------------------------------ #
    # Summaries
    # ------------------------------------------------------------------ #
    def total_messages(self, kinds: Optional[Iterable[MessageKind]] = None) -> int:
        """Number of messages, optionally restricted to some kinds."""
        if kinds is None:
            return len(self.messages)
        wanted = set(kinds)
        return sum(1 for message in self.messages if message.kind in wanted)

    def total_bytes(self, kinds: Optional[Iterable[MessageKind]] = None) -> int:
        """Bytes transferred, optionally restricted to some kinds."""
        wanted = set(kinds) if kinds is not None else None
        return sum(
            message.size_bytes
            for message in self.messages
            if wanted is None or message.kind in wanted
        )

    def device_to_device_messages(self) -> int:
        """Messages where neither endpoint is the server."""
        return sum(1 for message in self.messages if message.is_device_to_device)

    def per_device_message_counts(self, num_devices: int) -> np.ndarray:
        """Array of message counts charged to each device (as the sender)."""
        counts = np.zeros(num_devices, dtype=np.int64)
        for message in self.messages:
            if message.sender != SERVER_ID and message.sender < num_devices:
                counts[message.sender] += 1
        return counts

    def per_device_compute(self, num_devices: int) -> np.ndarray:
        """Total compute cost charged to each device."""
        costs = np.zeros(num_devices, dtype=np.float64)
        for event in self.compute_events:
            if 0 <= event.device < num_devices:
                costs[event.device] += event.cost
        return costs

    def epoch_completion_time(
        self,
        num_devices: int,
        compute_time_per_unit: float = 1.0,
        communication_latency: float = 0.05,
    ) -> float:
        """Simulated wall-clock time of one synchronous epoch.

        The synchronous protocol finishes when the *slowest* device has
        completed its local computation and sent its messages — this is the
        straggler effect the tree trimmer mitigates.
        """
        compute = self.per_device_compute(num_devices) * compute_time_per_unit
        message_counts = self.per_device_message_counts(num_devices).astype(np.float64)
        per_device_time = compute + message_counts * communication_latency
        return float(per_device_time.max()) if num_devices else 0.0

    def summary(self, num_devices: Optional[int] = None) -> Dict[str, float]:
        """Return the headline counters as a dictionary."""
        result: Dict[str, float] = {
            "total_messages": float(len(self.messages)),
            "total_bytes": float(self.total_bytes()),
            "device_to_device_messages": float(self.device_to_device_messages()),
            "rounds": float(self.current_round),
            "total_compute": float(sum(event.cost for event in self.compute_events)),
        }
        if num_devices:
            result["avg_messages_per_device"] = result["device_to_device_messages"] / num_devices
        by_kind: Dict[str, int] = defaultdict(int)
        for message in self.messages:
            by_kind[message.kind.value] += 1
        for kind, count in by_kind.items():
            result[f"messages_{kind}"] = float(count)
        return result
