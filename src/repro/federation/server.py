"""The central server of the federated system.

In Lumos the server's role is intentionally minimal: it coordinates the MCMC
iterations of the tree constructor (collecting candidate-vertex announcements
and selecting among the candidates, Alg. 3) and synchronises training rounds.
It never sees raw features, labels, degrees or workloads — only protocol
control messages — and the :class:`Server` class enforces that by storing
nothing beyond opaque candidate ids and round counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from .events import SERVER_ID, MessageKind
from .network import CommunicationLedger


@dataclass
class Server:
    """Minimal coordinator for the synchronous federated protocol."""

    ledger: CommunicationLedger = field(default_factory=CommunicationLedger)
    rng: np.random.Generator = field(default_factory=np.random.default_rng)
    _candidates: List[int] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # Alg. 3 coordination
    # ------------------------------------------------------------------ #
    def receive_candidate(self, device_id: int, is_candidate: bool) -> None:
        """Record a device's candidate announcement (Alg. 3, lines 14-16)."""
        self.ledger.send(
            sender=device_id,
            recipient=SERVER_ID,
            kind=MessageKind.SERVER_COORDINATION,
            size_bytes=1,
            description="candidate-announcement",
        )
        if is_candidate:
            self._candidates.append(int(device_id))

    def candidate_vertex_set(self) -> List[int]:
        """Return the collected candidate vertex set (CVS)."""
        return list(self._candidates)

    def select_maximum(self, winners: List[int]) -> int:
        """Pick the final maximum-workload device.

        ``winners`` are the devices reporting that they hold the largest
        workload among the CVS; if several report (ties), the server selects
        one uniformly at random, exactly as footnote 5 of the paper states.
        """
        if not winners:
            raise ValueError("no device reported a maximal workload")
        for device_id in winners:
            self.ledger.send(
                sender=device_id,
                recipient=SERVER_ID,
                kind=MessageKind.SERVER_COORDINATION,
                size_bytes=1,
                description="maximum-announcement",
            )
        if len(winners) == 1:
            return int(winners[0])
        return int(self.rng.choice(winners))

    def pick_maximum(self, winners: List[int]) -> int:
        """Tie-break among ``winners`` without per-winner ledger messages.

        Same selection semantics (and RNG consumption) as
        :meth:`select_maximum`; used by the aggregated clear-mode balancing
        path, which logs the winner announcements as a single coordination
        message of ``len(winners)`` bytes instead of one message per winner.
        ``Generator.choice`` without weights reduces to one bounded
        ``integers`` draw, so the direct draw below consumes the stream
        bit-identically while skipping ``choice``'s array conversion.
        """
        if not winners:
            raise ValueError("no device reported a maximal workload")
        if len(winners) == 1:
            return int(winners[0])
        return int(winners[int(self.rng.integers(0, len(winners)))])

    def reset_candidates(self) -> None:
        """Clear the candidate set before a new Alg. 3 invocation."""
        self._candidates.clear()

    # ------------------------------------------------------------------ #
    # Round synchronisation
    # ------------------------------------------------------------------ #
    def broadcast(self, device_ids: List[int], size_bytes: int, description: str = "") -> None:
        """Record a broadcast from the server to the listed devices."""
        for device_id in device_ids:
            self.ledger.send(
                sender=SERVER_ID,
                recipient=device_id,
                kind=MessageKind.SERVER_COORDINATION,
                size_bytes=size_bytes,
                description=description,
            )

    def advance_round(self) -> int:
        """Move the whole system to the next synchronous round."""
        return self.ledger.next_round()
