"""The merged, whole-run view: one trace across scheduler and workers.

A :class:`RunTrace` is a flat, ordered list of process snapshots — the main
process first, then every worker snapshot in the deterministic order the
scheduler attached them (plan-request order).  It is the unit the exporters
in :mod:`repro.obs.export` consume and the object the ``--trace`` CLI knobs
hand to them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from .metrics import MetricsRegistry
from .tracer import Tracer

__all__ = ["RunTrace"]


@dataclass
class RunTrace:
    """Ordered process snapshots of one run (main first, workers after)."""

    snapshots: List[Dict[str, Any]] = field(default_factory=list)

    @classmethod
    def from_tracer(cls, tracer: Tracer) -> "RunTrace":
        """Fold a tracer and its attached worker snapshots into one trace."""
        return cls(snapshots=[tracer.snapshot()] + list(tracer.remote_snapshots))

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #
    def processes(self) -> List[str]:
        """Distinct process names in first-appearance order."""
        seen: List[str] = []
        for snapshot in self.snapshots:
            name = snapshot.get("process", "main")
            if name not in seen:
                seen.append(name)
        return seen

    def spans(self) -> List[Dict[str, Any]]:
        """Every span of every snapshot, tagged with its process name."""
        collected: List[Dict[str, Any]] = []
        for snapshot in self.snapshots:
            process = snapshot.get("process", "main")
            for span in snapshot.get("spans", ()):
                collected.append({**span, "process": process})
        return collected

    def merged_metrics(self) -> Dict[str, dict]:
        """One metrics snapshot over all processes (counters/histograms sum,
        gauges take the last process's value in snapshot order)."""
        registry = MetricsRegistry()
        for snapshot in self.snapshots:
            registry.merge(snapshot.get("metrics"))
        return registry.snapshot()
