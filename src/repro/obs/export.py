"""Trace exporters: JSON-lines spans, Chrome trace events, summary table.

Three consumers of a :class:`~repro.obs.runtrace.RunTrace`:

* :func:`write_spans_jsonl` — one JSON object per span per line; greppable,
  streamable, and the format most log pipelines ingest directly.
* :func:`chrome_trace_events` / :func:`write_chrome_trace` — the Chrome
  trace-event JSON object format (``{"traceEvents": [...]}``), loadable in
  ``chrome://tracing`` and Perfetto (https://ui.perfetto.dev).  One thread
  track per process of the run — the scheduler on the first track, each
  worker on its own — with complete (``ph: "X"``) events whose wall
  durations are the span lengths and whose args carry the CPU time and the
  span attributes.
* :func:`summary_table` — a human-readable roll-up (per-span-name call
  counts and total wall/CPU, then the merged counters) for terminals.

Everything here is stdlib-only and pure (no clock reads, no I/O except the
two ``write_*`` helpers), so exports are reproducible from a stored trace.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List

from .runtrace import RunTrace

__all__ = [
    "chrome_trace_events",
    "summary_table",
    "write_chrome_trace",
    "write_spans_jsonl",
]

#: Single logical process id of the whole run in the Chrome export; tracks
#: are separated by tid (one per repro process), which is what puts the
#: scheduler and every worker side by side under one timeline.
_CHROME_PID = 1


def write_spans_jsonl(trace: RunTrace, path) -> Path:
    """Write every span as one JSON line; returns the path written."""
    path = Path(path)
    with open(path, "w", encoding="utf-8") as handle:
        for span in trace.spans():
            handle.write(json.dumps(span, sort_keys=True) + "\n")
    return path


def chrome_trace_events(trace: RunTrace) -> Dict[str, Any]:
    """The trace as a Chrome trace-event JSON object (Perfetto-loadable)."""
    tids: Dict[str, int] = {}
    for process in trace.processes():
        tids[process] = len(tids) + 1
    events: List[Dict[str, Any]] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": _CHROME_PID,
            "tid": 0,
            "args": {"name": "repro"},
        }
    ]
    for process, tid in tids.items():
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": _CHROME_PID,
                "tid": tid,
                "args": {"name": process},
            }
        )
    for span in trace.spans():
        events.append(
            {
                "ph": "X",
                "cat": "repro",
                "name": span["name"],
                "pid": _CHROME_PID,
                "tid": tids[span["process"]],
                # Trace-event timestamps/durations are microseconds.
                "ts": span["start"] * 1e6,
                "dur": span.get("wall", 0.0) * 1e6,
                "args": {
                    **span.get("attributes", {}),
                    "cpu_seconds": span.get("cpu", 0.0),
                },
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(trace: RunTrace, path) -> Path:
    """Write the Chrome trace-event JSON to ``path``; returns the path."""
    path = Path(path)
    payload = chrome_trace_events(trace)
    # allow_nan=False: a NaN would render the file unloadable in Perfetto —
    # fail at export time instead of at view time.
    path.write_text(json.dumps(payload, sort_keys=True, allow_nan=False) + "\n")
    return path


def summary_table(trace: RunTrace) -> str:
    """Human-readable roll-up: spans by name, then the merged counters."""
    by_name: Dict[str, Dict[str, float]] = {}
    for span in trace.spans():
        entry = by_name.setdefault(
            span["name"], {"calls": 0.0, "wall": 0.0, "cpu": 0.0}
        )
        entry["calls"] += 1.0
        entry["wall"] += span.get("wall", 0.0)
        entry["cpu"] += span.get("cpu", 0.0)
    lines = [
        f"trace: {len(trace.spans())} spans across "
        f"{len(trace.processes())} process(es): "
        + ", ".join(trace.processes())
    ]
    if by_name:
        width = max(len(name) for name in by_name)
        lines.append(f"{'span':<{width}}  {'calls':>6}  {'wall s':>10}  {'cpu s':>10}")
        for name, entry in sorted(
            by_name.items(), key=lambda item: -item[1]["wall"]
        ):
            lines.append(
                f"{name:<{width}}  {int(entry['calls']):>6}  "
                f"{entry['wall']:>10.4f}  {entry['cpu']:>10.4f}"
            )
    metrics = trace.merged_metrics()
    counters = metrics.get("counters", {})
    if counters:
        lines.append("counters:")
        width = max(len(name) for name in counters)
        for name, value in counters.items():
            rendered = f"{int(value)}" if value == int(value) else f"{value:.6g}"
            lines.append(f"  {name:<{width}}  {rendered}")
    gauges = metrics.get("gauges", {})
    if gauges:
        lines.append("gauges:")
        width = max(len(name) for name in gauges)
        for name, value in gauges.items():
            lines.append(f"  {name:<{width}}  {value:.6g}")
    histograms = metrics.get("histograms", {})
    if histograms:
        lines.append("histograms (count/sum/min/max):")
        for name, summary in histograms.items():
            lines.append(
                f"  {name}  {int(summary['count'])} / {summary['sum']:.6g} / "
                f"{summary['min']:.6g} / {summary['max']:.6g}"
            )
    return "\n".join(lines)
