"""Hierarchical span tracer with wall + CPU time and attached metrics.

A :class:`Tracer` records *spans* — named, nested intervals with wall-clock
and process-CPU durations plus free-form attributes — and owns one
:class:`~repro.obs.metrics.MetricsRegistry`.  Spans open and close through
the context manager returned by :meth:`Tracer.span`; nesting is tracked by a
per-tracer stack, so the span tree mirrors the call tree without any
thread-local machinery (the repro runs one logical task per process).

Timestamps are *epoch-anchored monotonics*: the tracer captures
``time.time() - time.perf_counter()`` once at construction and every span
start is ``anchor + perf_counter()``.  Durations therefore come from the
monotonic clock (immune to NTP jumps) while start times from two processes
of one run land on a shared absolute axis — which is what lets the Chrome
trace export lay worker tracks next to the scheduler's.

Everything a tracer accumulates is plain dicts of str/float, so
:meth:`snapshot` is picklable and travels through the runtime's existing
result-payload channel; :meth:`attach_remote` is how the scheduler folds
worker snapshots back in (in plan-request order — see
:class:`~repro.obs.runtrace.RunTrace`).

The tracer is an *observer only*: it never draws RNG, never touches a
fingerprint or cache key, and no compute path reads its state.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, List, Optional

from .metrics import MetricsRegistry

__all__ = ["Tracer"]


class Tracer:
    """Collects spans and metrics for one process's share of a run."""

    def __init__(self, process: str = "main") -> None:
        self.process = process
        self.metrics = MetricsRegistry()
        #: Finished spans (completion order), each a plain dict with keys
        #: ``id`` / ``parent`` / ``name`` / ``start`` (epoch seconds) /
        #: ``wall`` / ``cpu`` (seconds) / ``attributes``.
        self.spans: List[Dict[str, Any]] = []
        #: Snapshots attached from other processes (scheduler-side merge).
        self.remote_snapshots: List[Dict[str, Any]] = []
        self._stack: List[int] = []  # open span ids, innermost last
        self._next_id = 0
        # Epoch anchor: absolute timestamps from the monotonic clock.
        self._anchor = time.time() - time.perf_counter()

    # ------------------------------------------------------------------ #
    # Spans
    # ------------------------------------------------------------------ #
    @contextmanager
    def span(self, name: str, **attributes):
        """Open a span; yields a dict whose ``attributes`` may be extended."""
        span_id = self._next_id
        self._next_id += 1
        record: Dict[str, Any] = {
            "id": span_id,
            "parent": self._stack[-1] if self._stack else None,
            "name": name,
            "attributes": dict(attributes),
        }
        self._stack.append(span_id)
        wall_start = time.perf_counter()
        cpu_start = time.process_time()
        record["start"] = self._anchor + wall_start
        try:
            yield record
        finally:
            record["wall"] = time.perf_counter() - wall_start
            record["cpu"] = time.process_time() - cpu_start
            self._stack.pop()
            self.spans.append(record)

    # ------------------------------------------------------------------ #
    # Cross-process aggregation
    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, Any]:
        """This process's spans and metrics as one picklable dictionary."""
        return {
            "process": self.process,
            "spans": list(self.spans),
            "metrics": self.metrics.snapshot(),
        }

    def attach_remote(self, snapshot: Optional[Dict[str, Any]]) -> None:
        """Adopt another process's :meth:`snapshot` (scheduler-side).

        Call order defines the merged trace's process order, so the caller
        is responsible for a deterministic order (the process executor
        attaches in plan-request order).
        """
        if snapshot:
            self.remote_snapshots.append(snapshot)
