"""Deterministic counters, gauges and histograms for the tracing layer.

A :class:`MetricsRegistry` is the numeric half of a
:class:`~repro.obs.tracer.Tracer`: instrumentation hooks in the hot layers
(engine stages, stores, the runtime scheduler, the trainer, the crypto
accountant, tree maintenance) feed it through the ambient helpers in
:mod:`repro.obs`.  Everything is plain python floats in plain dictionaries:

* zero dependencies, picklable, JSON-serialisable as-is;
* :meth:`snapshot` returns sorted-key dictionaries, so two registries fed
  the same events in the same order serialise byte-identically;
* :meth:`merge` folds a snapshot back in (the scheduler merging worker
  snapshots), summing counters and histograms and taking the later gauge.

The registry records *observations about* a run — it must never feed back
into one.  Nothing here draws RNG, enters a fingerprint, or is consulted by
any compute path; see the invisibility contract in :mod:`repro.obs`.
"""

from __future__ import annotations

from typing import Dict, Optional

__all__ = ["MetricsRegistry"]


class MetricsRegistry:
    """Counters (monotonic sums), gauges (last value), histograms (count/
    sum/min/max summaries — enough for latency attribution without buckets)."""

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Dict[str, float]] = {}

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def add_counter(self, name: str, value: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + float(value)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        value = float(value)
        histogram = self.histograms.get(name)
        if histogram is None:
            self.histograms[name] = {
                "count": 1.0, "sum": value, "min": value, "max": value,
            }
            return
        histogram["count"] += 1.0
        histogram["sum"] += value
        histogram["min"] = min(histogram["min"], value)
        histogram["max"] = max(histogram["max"], value)

    # ------------------------------------------------------------------ #
    # Aggregation
    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, dict]:
        """Plain, sorted, picklable view of every metric."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                name: dict(summary)
                for name, summary in sorted(self.histograms.items())
            },
        }

    def merge(self, snapshot: Optional[Dict[str, dict]]) -> None:
        """Fold a :meth:`snapshot` (e.g. shipped back by a worker) into this
        registry: counters and histograms accumulate, gauges last-write-win."""
        if not snapshot:
            return
        for name, value in snapshot.get("counters", {}).items():
            self.add_counter(name, value)
        for name, value in snapshot.get("gauges", {}).items():
            self.set_gauge(name, value)
        for name, summary in snapshot.get("histograms", {}).items():
            histogram = self.histograms.get(name)
            if histogram is None:
                self.histograms[name] = dict(summary)
                continue
            histogram["count"] += summary["count"]
            histogram["sum"] += summary["sum"]
            histogram["min"] = min(histogram["min"], summary["min"])
            histogram["max"] = max(histogram["max"], summary["max"])

    def __bool__(self) -> bool:
        return bool(self.counters or self.gauges or self.histograms)
