"""Zero-dependency tracing + metrics for the whole system (``repro.obs``).

The subsystem has two halves:

* the data model — :class:`Tracer` (hierarchical spans with wall + CPU
  time), :class:`MetricsRegistry` (counters/gauges/histograms),
  :class:`RunTrace` (the deterministic cross-process merge) and the
  exporters in :mod:`repro.obs.export` (JSON-lines spans, Chrome
  trace-event JSON for Perfetto, a summary table);
* the *ambient* instrumentation API below — module-level helpers the hot
  layers call unconditionally.  One process has at most one active tracer
  (installed by :func:`tracing` or :func:`set_tracer`); when none is
  active every helper is a near-free no-op.

The invisibility contract (hard invariant, asserted by
``tests/test_observability.py``)
---------------------------------------------------------------------------
Instrumentation must be *bit-for-bit invisible* to the system it observes:

1. it never draws from any RNG and never advances any RNG stream;
2. nothing it records enters a fingerprint, content key, ledger, or
   accountant — observability data flows out of the run, never back in;
3. a run with tracing disabled is byte-identical to a never-instrumented
   build: result payloads (metrics, canonical ledger transcript,
   accountant totals, RNG state) carry no observability fields at all, so
   equality checks over payloads — e.g. the ``faults`` empty-scenario
   contract — are unaffected.  With tracing *enabled*, payloads may grow
   an ``obs`` side-channel entry, but every contract-covered field stays
   identical to the untraced run.

Typical use::

    from repro import obs
    from repro.obs import RunTrace, write_chrome_trace

    with obs.tracing() as tracer:
        run_epsilon_sweep("facebook", executor="process")
    write_chrome_trace(RunTrace.from_tracer(tracer), "sweep-trace.json")
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional

from .export import (
    chrome_trace_events,
    summary_table,
    write_chrome_trace,
    write_spans_jsonl,
)
from .metrics import MetricsRegistry
from .runtrace import RunTrace
from .tracer import Tracer

__all__ = [
    "MetricsRegistry",
    "RunTrace",
    "Tracer",
    "add_counter",
    "chrome_trace_events",
    "current_tracer",
    "observe",
    "set_gauge",
    "set_tracer",
    "span",
    "summary_table",
    "tracing",
    "write_chrome_trace",
    "write_spans_jsonl",
]

#: The process-wide active tracer; ``None`` means tracing is disabled and
#: every ambient helper below short-circuits.
_tracer: Optional[Tracer] = None


class _NullSpan:
    """Stateless, reusable no-op context manager for the disabled path.

    Mimics the span-record dict enough for call sites that annotate spans
    (``with obs.span(...) as s: s["attributes"][...] = ...``) to run
    unchanged; writes go nowhere.
    """

    __slots__ = ()

    def __enter__(self):
        return {"attributes": {}}

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SPAN = _NullSpan()


def current_tracer() -> Optional[Tracer]:
    """The active tracer, or ``None`` when tracing is disabled."""
    return _tracer


def set_tracer(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Install (or, with ``None``, disable) the process-wide tracer.

    Returns the previously active tracer so callers can restore it; prefer
    the :func:`tracing` context manager, which does that automatically.
    """
    global _tracer
    previous = _tracer
    _tracer = tracer
    return previous


@contextmanager
def tracing(process: str = "main", tracer: Optional[Tracer] = None):
    """Activate a tracer for the duration of the block; yields it.

    A fresh :class:`Tracer` is created unless one is passed in.  The
    previously active tracer (usually ``None``) is restored on exit, so
    nested/temporary tracing cannot leak into unrelated code.
    """
    active = tracer if tracer is not None else Tracer(process=process)
    previous = set_tracer(active)
    try:
        yield active
    finally:
        set_tracer(previous)


def span(name: str, **attributes):
    """Context manager for one span on the active tracer (no-op when off)."""
    if _tracer is None:
        return _NULL_SPAN
    return _tracer.span(name, **attributes)


def add_counter(name: str, value: float = 1.0) -> None:
    """Increment a counter on the active tracer's metrics (no-op when off)."""
    if _tracer is not None:
        _tracer.metrics.add_counter(name, value)


def set_gauge(name: str, value: float) -> None:
    """Set a gauge on the active tracer's metrics (no-op when off)."""
    if _tracer is not None:
        _tracer.metrics.set_gauge(name, value)


def observe(name: str, value: float) -> None:
    """Record one histogram observation (no-op when off)."""
    if _tracer is not None:
        _tracer.metrics.observe(name, value)
