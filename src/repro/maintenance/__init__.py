"""Self-healing tree maintenance under churn.

The maintenance layer turns the fault layer's compiled churn schedules into
*real tree mutations* — journalled delta operations on a constructed tree —
instead of availability masks, with crash-safe recovery and bounded
staleness:

* :mod:`~repro.maintenance.journal` — append-only, fsync'd, checksummed
  :class:`MutationJournal` with torn-tail-tolerant recovery;
* :mod:`~repro.maintenance.tree` — :class:`MaintainedTree` delta operations
  (``insert_device`` / ``remove_device`` / ``update_degree`` /
  ``rebalance`` / ``rebuild``) with write-ahead journaling and atomic
  versioned snapshots through the artifact store;
* :mod:`~repro.maintenance.monitor` — :class:`StalenessMonitor` comparing
  the maintained tree against a from-scratch reconstruction and triggering
  localized rebalance or a full rebuild past configured bounds;
* :mod:`~repro.maintenance.churn` — schedule compilation from
  :class:`~repro.faults.FaultPlan`, the deterministic metrics entry point
  behind ``run_churn_maintenance``, and the chaos kill-replay harness.
"""

from .churn import (
    apply_schedule,
    churn_maintenance_metrics,
    compile_churn_schedule,
    first_crash_seq,
    resume_schedule,
    run_schedule,
)
from .journal import MutationJournal, read_records
from .monitor import StalenessMonitor, StalenessReport
from .tree import MaintainedTree, MaintenanceConfig, fresh_assignment

__all__ = [
    "MutationJournal",
    "read_records",
    "MaintainedTree",
    "MaintenanceConfig",
    "fresh_assignment",
    "StalenessMonitor",
    "StalenessReport",
    "compile_churn_schedule",
    "apply_schedule",
    "churn_maintenance_metrics",
    "run_schedule",
    "resume_schedule",
    "first_crash_seq",
]
