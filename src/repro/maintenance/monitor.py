"""Staleness monitoring: delta-maintained tree vs from-scratch reconstruction.

Under sustained churn the delta operations keep the tree *valid* (every edge
covered) but not necessarily *balanced*: the insert heuristic and localized
rebalances drift away from what a full construction would produce.  The
:class:`StalenessMonitor` quantifies that drift — relative objective excess
and simulated epoch-time ratio against a shadow reconstruction — and applies
the degradation policy:

1. within ``staleness_bound``: do nothing (the delta path is winning);
2. above it: a localized :meth:`~MaintainedTree.rebalance` around the
   heaviest device;
3. still above ``rebuild_bound`` afterwards: a full
   :meth:`~MaintainedTree.rebuild` — the last-resort degradation, journalled
   like every other mutation.

The reference construction's seed derives from the tree's mutation chain,
so monitoring is bit-reproducible across live, replayed and recovered runs
without consuming the maintained RNG stream.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from .. import obs
from ..core.trainer import EpochCostModel
from ..core.workload import Assignment
from .tree import MaintainedTree, fresh_assignment

__all__ = ["StalenessMonitor", "StalenessReport"]


@dataclass(frozen=True)
class StalenessReport:
    """Outcome of one staleness check (all fields deterministic)."""

    round_index: Optional[int]
    maintained_objective: int
    rebuilt_objective: int
    staleness: float
    epoch_time_ratio: float
    action: str  # "none" | "rebalance" | "rebuild"
    post_objective: int
    post_staleness: float


def _staleness(maintained: int, rebuilt: int) -> float:
    """Relative objective excess of the maintained tree over the rebuild."""
    return (maintained - rebuilt) / max(rebuilt, 1)


class StalenessMonitor:
    """Compares a maintained tree against a shadow reconstruction."""

    def __init__(
        self,
        staleness_bound: float = 0.25,
        rebuild_bound: float = 1.0,
        reference_iterations: int = 80,
        rebalance_iterations: Optional[int] = None,
        cost_model: Optional[EpochCostModel] = None,
    ) -> None:
        if staleness_bound < 0 or rebuild_bound < staleness_bound:
            raise ValueError(
                "need 0 <= staleness_bound <= rebuild_bound, got "
                f"{staleness_bound!r} / {rebuild_bound!r}"
            )
        self.staleness_bound = staleness_bound
        self.rebuild_bound = rebuild_bound
        self.reference_iterations = reference_iterations
        self.rebalance_iterations = rebalance_iterations
        self.cost_model = cost_model if cost_model is not None else EpochCostModel()
        self.reports: List[StalenessReport] = []

    def reference_objective(self, tree: MaintainedTree) -> int:
        """Objective of a from-scratch construction over the present devices.

        A *shadow* computation: it consumes neither the tree's RNG nor its
        ledger/accountant (the server estimates, it does not transact), and
        its seed is a pure function of the mutation chain, so every replica
        of the tree prices staleness identically.
        """
        seed = int.from_bytes(
            hashlib.sha256(f"staleness:{tree.chain}".encode("utf-8")).digest()[:4],
            "little",
        )
        lists, _ = fresh_assignment(
            tree.neighbors, self.reference_iterations, seed
        )
        return Assignment.from_lists(lists).objective() if lists else 0

    def check(
        self, tree: MaintainedTree, round_index: Optional[int] = None
    ) -> StalenessReport:
        """Measure staleness and apply the rebalance/rebuild policy."""
        rebuilt = self.reference_objective(tree)
        maintained = tree.objective()
        staleness = _staleness(maintained, rebuilt)
        maintained_workloads = np.array(
            sorted(tree.workloads().values()), dtype=np.float64
        )
        maintained_time = self.cost_model.steady_state_epoch_time(maintained_workloads)
        rebuilt_time = self.cost_model.steady_state_epoch_time(
            np.array([rebuilt], dtype=np.float64)
        )
        epoch_time_ratio = maintained_time / rebuilt_time if rebuilt_time else 1.0

        action = "none"
        post_objective, post_staleness = maintained, staleness
        if staleness > self.staleness_bound and tree.num_devices:
            tree.rebalance(iterations=self.rebalance_iterations)
            action = "rebalance"
            post_objective = tree.objective()
            post_staleness = _staleness(post_objective, rebuilt)
            if post_staleness > self.rebuild_bound:
                tree.rebuild()
                action = "rebuild"
                post_objective = tree.objective()
                post_staleness = _staleness(post_objective, rebuilt)
        report = StalenessReport(
            round_index=round_index,
            maintained_objective=maintained,
            rebuilt_objective=rebuilt,
            staleness=staleness,
            epoch_time_ratio=epoch_time_ratio,
            action=action,
            post_objective=post_objective,
            post_staleness=post_staleness,
        )
        self.reports.append(report)
        obs.add_counter(f"maintenance.escalations.{action}")
        obs.set_gauge("maintenance.staleness", float(post_staleness))
        return report

    def summary(self) -> Dict[str, float]:
        """Deterministic aggregates over every check so far."""
        if not self.reports:
            return {
                "checks": 0.0,
                "max_staleness": 0.0,
                "mean_staleness": 0.0,
                "rebalances": 0.0,
                "rebuilds": 0.0,
                "final_staleness": 0.0,
            }
        staleness = [report.staleness for report in self.reports]
        return {
            "checks": float(len(self.reports)),
            "max_staleness": float(max(staleness)),
            "mean_staleness": float(sum(staleness) / len(staleness)),
            "rebalances": float(
                sum(1 for r in self.reports if r.action in ("rebalance", "rebuild"))
            ),
            "rebuilds": float(sum(1 for r in self.reports if r.action == "rebuild")),
            "final_staleness": float(self.reports[-1].post_staleness),
        }
