"""Crash-safe, append-only mutation journal.

The journal is the durability primitive of tree maintenance: every mutation
of a :class:`~repro.maintenance.tree.MaintainedTree` is written here *before*
it is applied (write-ahead order), so a process killed at any instant —
including mid-``write`` via the runtime's :class:`ChaosConfig` — leaves a
file from which :meth:`MaintainedTree.replay` reconstructs the exact
pre-kill tree.

File format (all integers little-endian)::

    MAGIC                        -- 11-byte file signature incl. version
    repeat:
        length  : uint32         -- byte length of the JSON payload
        crc32   : uint32         -- zlib.crc32 of the payload bytes
        payload : length bytes   -- canonical JSON record (sorted keys)

Records are canonical JSON (``sort_keys=True``, compact separators) so the
byte stream — and therefore the hash chain the tree derives from it — is
identical across processes and platforms.  Each append is flushed and
``fsync``'d before the mutation is applied.

A *torn tail* (partial frame from a mid-write kill) is expected, not an
error: :func:`read_records` stops at the first incomplete or checksum-failing
frame and reports how many bytes were valid; :meth:`MutationJournal.recover`
truncates the torn bytes so subsequent appends extend a well-formed file
(appending after garbage would orphan every later record).
"""

from __future__ import annotations

import json
import os
import struct
import time
import zlib
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from .. import obs

__all__ = ["MutationJournal", "read_records"]

#: File signature; bump the digit to break compatibility explicitly.
MAGIC = b"LUMOSJRNL1\n"

_PREFIX = struct.Struct("<II")  # (payload length, crc32)


def _encode(record: Dict[str, Any]) -> bytes:
    """Canonical JSON bytes of one record (the hashed/checksummed form)."""
    return json.dumps(record, sort_keys=True, separators=(",", ":")).encode("utf-8")


def _frame(record: Dict[str, Any]) -> bytes:
    payload = _encode(record)
    return _PREFIX.pack(len(payload), zlib.crc32(payload)) + payload


def read_records(path) -> Tuple[List[Dict[str, Any]], int]:
    """Parse ``path`` and return ``(records, valid_bytes)``.

    ``valid_bytes`` is the offset of the first torn/corrupt frame (== file
    size for a clean journal).  A missing or wrong ``MAGIC`` raises — that is
    a wrong *file*, not a crash artifact.
    """
    data = Path(path).read_bytes()
    if not data.startswith(MAGIC):
        raise ValueError(f"{path} is not a mutation journal (bad magic)")
    records: List[Dict[str, Any]] = []
    offset = len(MAGIC)
    while offset + _PREFIX.size <= len(data):
        length, checksum = _PREFIX.unpack_from(data, offset)
        start = offset + _PREFIX.size
        end = start + length
        if end > len(data):
            break  # torn tail: frame announced more bytes than were written
        payload = data[start:end]
        if zlib.crc32(payload) != checksum:
            break  # torn or corrupted payload — everything after is suspect
        try:
            record = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            break
        records.append(record)
        offset = end
    return records, offset


class MutationJournal:
    """Append-only journal with checksummed, fsync'd frames."""

    def __init__(self, path, _file=None) -> None:
        self.path = Path(path)
        if _file is None:
            raise TypeError(
                "use MutationJournal.create() or MutationJournal.recover()"
            )
        self._file = _file

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def create(cls, path) -> "MutationJournal":
        """Start a fresh journal at ``path`` (truncating any existing file)."""
        file = open(path, "wb")
        file.write(MAGIC)
        file.flush()
        os.fsync(file.fileno())
        return cls(path, _file=file)

    @classmethod
    def recover(cls, path) -> Tuple["MutationJournal", List[Dict[str, Any]]]:
        """Reopen ``path`` for append, truncating any torn tail.

        Returns the journal plus the records that survived.  Truncation is
        what makes post-recovery appends safe: the next frame starts exactly
        where the last complete frame ended.
        """
        records, valid_bytes = read_records(path)
        file = open(path, "r+b")
        file.truncate(valid_bytes)
        file.seek(valid_bytes)
        file.flush()
        os.fsync(file.fileno())
        return cls(path, _file=file), records

    # ------------------------------------------------------------------ #
    # Appending
    # ------------------------------------------------------------------ #
    def append(self, record: Dict[str, Any]) -> None:
        """Durably append one record (write + flush + fsync)."""
        frame = _frame(record)
        if obs.current_tracer() is None:
            self._file.write(frame)
            self._file.flush()
            os.fsync(self._file.fileno())
            return
        started = time.perf_counter()
        self._file.write(frame)
        self._file.flush()
        os.fsync(self._file.fileno())
        obs.add_counter("maintenance.journal_appends")
        obs.add_counter("maintenance.journal_bytes", len(frame))
        obs.observe("maintenance.fsync_seconds", time.perf_counter() - started)

    def append_torn(self, record: Dict[str, Any], keep_bytes: Optional[int] = None) -> None:
        """Write a deliberately *incomplete* frame (crash injection).

        Flushes a strict prefix of the frame — by default the length prefix
        plus half the payload — exactly what a kill between ``write`` and
        completion leaves behind.  The caller is expected to die right after
        (``os._exit``); :meth:`recover` then truncates these bytes.
        """
        frame = _frame(record)
        if keep_bytes is None:
            keep_bytes = _PREFIX.size + (len(frame) - _PREFIX.size) // 2
        keep_bytes = max(1, min(int(keep_bytes), len(frame) - 1))
        self._file.write(frame[:keep_bytes])
        self._file.flush()
        os.fsync(self._file.fileno())

    def close(self) -> None:
        if not self._file.closed:
            self._file.flush()
            os.fsync(self._file.fileno())
            self._file.close()

    def __enter__(self) -> "MutationJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
