"""Delta operations on a constructed tree, with write-ahead journaling.

A :class:`MaintainedTree` is the mutable, served form of a
:class:`~repro.core.constructor.TreeConstructionResult`: the federation's
adjacency plus the workload-balancing :class:`~repro.core.workload.Assignment`
it was constructed with, kept consistent under churn by O(degree) delta
operations instead of from-scratch reconstruction:

* :meth:`insert_device` — a joining device's edges are assigned to the
  lighter endpoint (smaller id on ties), one secure comparison per edge;
* :meth:`remove_device` — a leaving device's edges (and both endpoints'
  selections of them) vanish;
* :meth:`update_degree` — edge additions/removals for a present device;
* :meth:`rebalance` — a localized Alg. 2 pass over a region, built on the
  incremental kernel's ``apply_transfer``/``undo_transfer`` deltas;
* :meth:`rebuild` — last-resort degradation: a fresh construction over the
  present devices, with a seed derived from the mutation chain.

Every mutation is serialised into the :class:`MutationJournal` *before* it
is applied (write-ahead), and the tree maintains a rolling SHA-256 ``chain``
over the canonical record bytes — the O(1) version witness snapshots and
replays verify against.  The full determinism contract is
``MaintainedTree.replay(journal, snapshots).state_digest() ==
live.state_digest()`` where the digest covers the adjacency, the selection,
the RNG bit-generator state, the canonical ledger transcript and the
secure-comparison accountant — bit for bit, including after a mid-write
``os._exit`` kill injected through :class:`~repro.runtime.ChaosConfig`.

Snapshots are atomic versioned artifacts: the full state is published
through an :class:`~repro.engine.store.ArtifactStore` (its fingerprint
machinery keys them by ``(seq, chain)``; the disk-spill variant publishes
via atomic rename), and the journal records only the key + state digest.
"""

from __future__ import annotations

import copy
import hashlib
import json
import os
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from ..core.mcmc import _charge_analytic_comparisons, localized_rebalance
from ..core.workload import Assignment
from ..crypto.oblivious_transfer import TranscriptAccountant
from ..engine.fingerprint import stage_key
from ..engine.store import ArtifactStore, DiskSpillStore, StoredArtifact
from ..federation.events import SERVER_ID, MessageKind
from ..federation.network import CommunicationLedger
from ..runtime.items import _transcript_digest
from ..runtime.worker import ChaosConfig, chaos_action
from .journal import MutationJournal, _encode, read_records

__all__ = ["MaintenanceConfig", "MaintainedTree", "fresh_assignment"]

#: Counter keys, in reporting order.
_COUNTER_KEYS = (
    "joins",
    "leaves",
    "degree_updates",
    "rebalances",
    "rebuilds",
    "edges_added",
    "edges_removed",
    "rebalance_moves",
)


@dataclass(frozen=True)
class MaintenanceConfig:
    """Knobs of the maintenance layer (fingerprintable, journalled at genesis)."""

    seed: int = 0
    rebalance_iterations: int = 40
    rebuild_mcmc_iterations: int = 120
    comparison_bits: int = 24

    def __post_init__(self) -> None:
        if self.rebalance_iterations < 0 or self.rebuild_mcmc_iterations < 0:
            raise ValueError("iteration counts must be non-negative")


def fresh_assignment(
    neighbors: Mapping[int, Iterable[int]],
    mcmc_iterations: int,
    seed: int,
) -> Tuple[Dict[int, List[int]], TranscriptAccountant]:
    """From-scratch construction over an arbitrary adjacency.

    Renumbers the present devices to contiguous ``0..m-1`` (the incremental
    MCMC kernel and the batched greedy initialisation require contiguous
    ids), runs the full :class:`~repro.core.constructor.TreeConstructor`
    pipeline on a synthetic feature-free graph, and maps the balanced
    selection back to the original ids.  Pure function of
    ``(adjacency, mcmc_iterations, seed)`` — both the staleness reference
    and the journalled rebuild op rely on that.
    """
    from ..core.config import TreeConstructorConfig
    from ..core.constructor import TreeConstructor
    from ..federation.simulator import FederatedEnvironment
    from ..graph.graph import Graph

    present = sorted(int(v) for v in neighbors)
    if not present:
        return {}, TranscriptAccountant()
    index = {vertex: i for i, vertex in enumerate(present)}
    edges = [
        [index[u], index[int(v)]]
        for u in present
        for v in neighbors[u]
        if u < int(v) and int(v) in index
    ]
    graph = Graph(
        num_nodes=len(present),
        edges=np.asarray(edges, dtype=np.int64).reshape(-1, 2),
        features=np.zeros((len(present), 1), dtype=np.float64),
        name="maintenance-rebuild",
    )
    environment = FederatedEnvironment.from_graph(graph, seed=0)
    constructor = TreeConstructor(
        TreeConstructorConfig(mcmc_iterations=mcmc_iterations),
        rng=np.random.default_rng(seed),
    )
    result = constructor.construct(environment)
    lists = {
        present[vertex]: sorted(present[v] for v in selected)
        for vertex, selected in result.assignment.as_lists().items()
    }
    return lists, result.transcript


class MaintainedTree:
    """A constructed tree kept live under churn via journalled delta ops."""

    def __init__(
        self,
        neighbors: Dict[int, Set[int]],
        assignment: Assignment,
        config: MaintenanceConfig,
        *,
        rng: np.random.Generator,
        ledger: CommunicationLedger,
        accountant: TranscriptAccountant,
        seq: int,
        chain: str,
        counters: Optional[Dict[str, int]] = None,
        journal: Optional[MutationJournal] = None,
        snapshots: Optional[ArtifactStore] = None,
        chaos: Optional[ChaosConfig] = None,
        chaos_attempt: int = 1,
    ) -> None:
        self.neighbors = neighbors
        self.assignment = assignment
        self.config = config
        self.rng = rng
        self.ledger = ledger
        self.accountant = accountant
        self.seq = seq
        self.chain = chain
        self.counters = {key: 0 for key in _COUNTER_KEYS}
        if counters:
            self.counters.update(counters)
        self.journal = journal
        self.snapshots = snapshots
        self.chaos = chaos
        self.chaos_attempt = chaos_attempt

    # ------------------------------------------------------------------ #
    # Construction / restoration
    # ------------------------------------------------------------------ #
    @classmethod
    def from_construction(
        cls,
        assignment_lists: Mapping[int, Iterable[int]],
        adjacency: Mapping[int, Iterable[int]],
        config: MaintenanceConfig = MaintenanceConfig(),
        *,
        journal: Optional[MutationJournal] = None,
        snapshots: Optional[ArtifactStore] = None,
        chaos: Optional[ChaosConfig] = None,
    ) -> "MaintainedTree":
        """Wrap a construction result; journal a genesis snapshot if enabled."""
        if journal is not None and snapshots is None:
            raise ValueError("journaling requires a snapshot store (genesis state)")
        neighbors = {
            int(v): {int(u) for u in adjacent} for v, adjacent in adjacency.items()
        }
        assignment = Assignment.from_lists(assignment_lists)
        for vertex in neighbors:
            assignment.selected.setdefault(vertex, set())
        genesis = hashlib.sha256(b"lumos-maintenance-genesis").hexdigest()
        tree = cls(
            neighbors,
            assignment,
            config,
            rng=np.random.default_rng(config.seed),
            ledger=CommunicationLedger(),
            accountant=TranscriptAccountant(),
            seq=0,
            chain=genesis,
            journal=journal,
            snapshots=snapshots,
            chaos=chaos,
        )
        if journal is not None:
            key, digest = tree._publish_snapshot()
            journal.append(
                {"seq": 0, "op": "genesis", "key": key, "state_digest": digest}
            )
        return tree

    @classmethod
    def _from_state(
        cls,
        state: Dict[str, Any],
        *,
        journal: Optional[MutationJournal] = None,
        snapshots: Optional[ArtifactStore] = None,
        chaos: Optional[ChaosConfig] = None,
        chaos_attempt: int = 1,
    ) -> "MaintainedTree":
        rng = np.random.default_rng(0)
        rng.bit_generator.state = state["rng_state"]
        return cls(
            {int(v): set(adj) for v, adj in state["neighbors"].items()},
            Assignment.from_lists(state["selected"]),
            state["config"],
            rng=rng,
            # Copy again: the same stored artifact may seed several replays.
            ledger=copy.deepcopy(state["ledger"]),
            accountant=copy.deepcopy(state["accountant"]),
            seq=int(state["seq"]),
            chain=state["chain"],
            counters=dict(state["counters"]),
            journal=journal,
            snapshots=snapshots,
            chaos=chaos,
            chaos_attempt=chaos_attempt,
        )

    @classmethod
    def replay(
        cls,
        journal_path,
        snapshots: ArtifactStore,
        *,
        records: Optional[List[Dict[str, Any]]] = None,
        journal: Optional[MutationJournal] = None,
        chaos: Optional[ChaosConfig] = None,
        chaos_attempt: int = 1,
    ) -> "MaintainedTree":
        """Reconstruct the live tree from the journal + snapshot store.

        Restores the most recent snapshot whose artifact still loads (a
        quarantined/evicted snapshot silently degrades to an earlier one)
        and re-executes every mutation record after it.  State digests
        recorded at snapshot points are verified along the way.
        """
        if records is None:
            records, _ = read_records(journal_path)
        if not records or records[0].get("op") != "genesis":
            raise ValueError(f"{journal_path}: missing genesis record")
        start, state = None, None
        for i in reversed(range(len(records))):
            record = records[i]
            if record["op"] in ("genesis", "snapshot"):
                artifact = snapshots.get(record["key"])
                if artifact is not None:
                    start, state = i, artifact.value
                    break
        if state is None:
            raise RuntimeError(
                f"{journal_path}: no snapshot (not even genesis) could be loaded"
            )
        tree = cls._from_state(
            state,
            journal=journal,
            snapshots=snapshots,
            chaos=chaos,
            chaos_attempt=chaos_attempt,
        )
        if tree.state_digest() != records[start]["state_digest"]:
            raise RuntimeError(
                f"{journal_path}: snapshot at seq {tree.seq} fails digest check"
            )
        for record in records[start + 1 :]:
            if record["op"] == "snapshot":
                if tree.state_digest() != record["state_digest"]:
                    raise RuntimeError(
                        f"{journal_path}: replay diverged at seq {record['seq']}"
                    )
                continue
            tree._apply_record(record)
        return tree

    @classmethod
    def recover(
        cls,
        journal_path,
        snapshots: ArtifactStore,
        *,
        chaos: Optional[ChaosConfig] = None,
    ) -> "MaintainedTree":
        """Crash recovery: truncate the torn journal tail, replay, reattach.

        The returned tree keeps appending to the *same* journal, so the
        replay contract keeps holding after recovery.  Chaos injection (if
        any) continues at attempt 2 — beyond the default ``max_attempt`` —
        mirroring the runtime's retries-converge guarantee.
        """
        journal, records = MutationJournal.recover(journal_path)
        return cls.replay(
            journal_path,
            snapshots,
            records=records,
            journal=journal,
            chaos=chaos,
            chaos_attempt=2,
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def num_devices(self) -> int:
        return len(self.neighbors)

    def present(self) -> List[int]:
        return sorted(self.neighbors)

    def objective(self) -> int:
        return self.assignment.objective()

    def workloads(self) -> Dict[int, int]:
        return self.assignment.workloads()

    def state_digest(self) -> str:
        """SHA-256 over the complete maintained state (the replay witness)."""
        hasher = hashlib.sha256()
        hasher.update(f"seq={self.seq};chain={self.chain}".encode("utf-8"))
        for vertex in self.present():
            hasher.update(
                f"adj:{vertex}:{sorted(self.neighbors[vertex])}".encode("utf-8")
            )
        for vertex, selected in sorted(self.assignment.selected.items()):
            hasher.update(f"sel:{vertex}:{sorted(selected)}".encode("utf-8"))
        hasher.update(repr(self.rng.bit_generator.state).encode("utf-8"))
        hasher.update(_transcript_digest(self.ledger.message_records()).encode("utf-8"))
        hasher.update(
            f"rounds={self.ledger.current_round};"
            f"dropped={self.ledger.total_dropped_messages()}".encode("utf-8")
        )
        hasher.update(
            json.dumps(self.accountant.snapshot(), sort_keys=True).encode("utf-8")
        )
        hasher.update(json.dumps(self.counters, sort_keys=True).encode("utf-8"))
        return hasher.hexdigest()

    # ------------------------------------------------------------------ #
    # Snapshots
    # ------------------------------------------------------------------ #
    def _state_dict(self) -> Dict[str, Any]:
        return {
            "neighbors": {v: sorted(adj) for v, adj in self.neighbors.items()},
            "selected": self.assignment.as_lists(),
            "config": self.config,
            "seq": self.seq,
            "chain": self.chain,
            "rng_state": self.rng.bit_generator.state,
            # Deep copies: with an in-memory snapshot store the artifact
            # would otherwise alias the live objects, and a later replay
            # would mutate the very ledger it is compared against.
            "ledger": copy.deepcopy(self.ledger),
            "accountant": copy.deepcopy(self.accountant),
            "counters": dict(self.counters),
        }

    def _publish_snapshot(self) -> Tuple[str, str]:
        key = stage_key(
            "maintenance-snapshot", f"seq={self.seq}", f"chain={self.chain}"
        )
        self.snapshots.put(key, StoredArtifact(value=self._state_dict()))
        if isinstance(self.snapshots, DiskSpillStore):
            self.snapshots.persist(key)
        return key, self.state_digest()

    def snapshot(self) -> str:
        """Publish an atomic versioned snapshot and journal its key/digest."""
        if self.snapshots is None:
            raise ValueError("tree has no snapshot store")
        key, digest = self._publish_snapshot()
        if self.journal is not None:
            self.journal.append(
                {"seq": self.seq, "op": "snapshot", "key": key, "state_digest": digest}
            )
        return key

    # ------------------------------------------------------------------ #
    # Mutations (public wrappers: validate -> journal -> apply)
    # ------------------------------------------------------------------ #
    def insert_device(self, device: int, neighbors: Iterable[int]) -> List[int]:
        """Join ``device`` with edges to every *present* requested neighbour."""
        device = int(device)
        if device in self.neighbors:
            raise ValueError(f"device {device} is already present")
        applied = sorted(
            {int(v) for v in neighbors} & set(self.neighbors) - {device}
        )
        self._commit(
            {"seq": self.seq + 1, "op": "insert", "device": device, "neighbors": applied}
        )
        return applied

    def remove_device(self, device: int) -> None:
        """Leave: drop ``device`` and every edge (and selection) touching it."""
        device = int(device)
        if device not in self.neighbors:
            raise ValueError(f"device {device} is not present")
        self._commit({"seq": self.seq + 1, "op": "remove", "device": device})

    def update_degree(
        self,
        device: int,
        add: Iterable[int] = (),
        remove: Iterable[int] = (),
    ) -> Tuple[List[int], List[int]]:
        """Change a present device's edge set (adds filtered to present peers)."""
        device = int(device)
        if device not in self.neighbors:
            raise ValueError(f"device {device} is not present")
        current = self.neighbors[device]
        applied_add = sorted(
            ({int(v) for v in add} & set(self.neighbors)) - current - {device}
        )
        applied_remove = sorted({int(v) for v in remove} & current)
        self._commit(
            {
                "seq": self.seq + 1,
                "op": "update_degree",
                "device": device,
                "add": applied_add,
                "remove": applied_remove,
            }
        )
        return applied_add, applied_remove

    def rebalance(
        self,
        region: Optional[Sequence[int]] = None,
        iterations: Optional[int] = None,
    ) -> Dict[str, int]:
        """Localized Alg. 2 pass; default region = heaviest device + its hood."""
        if region is None:
            if not self.neighbors:
                return {"accepted": 0, "moves": 0, "comparisons": 0}
            heaviest = self.assignment.argmax_workload()
            region = sorted({heaviest} | self.neighbors.get(heaviest, set()))
        iterations = (
            self.config.rebalance_iterations if iterations is None else int(iterations)
        )
        record = {
            "seq": self.seq + 1,
            "op": "rebalance",
            "region": sorted(int(v) for v in region),
            "iterations": iterations,
        }
        return self._commit(record)

    def rebuild(self, mcmc_iterations: Optional[int] = None) -> None:
        """Full reconstruction over the present devices (last-resort path).

        The construction seed is a pure function of the mutation chain, so
        an uninterrupted run and a replayed/recovered run derive the same
        seed without consuming the maintained RNG stream.
        """
        iterations = (
            self.config.rebuild_mcmc_iterations
            if mcmc_iterations is None
            else int(mcmc_iterations)
        )
        seed = int.from_bytes(
            hashlib.sha256(f"rebuild:{self.chain}".encode("utf-8")).digest()[:4],
            "little",
        )
        self._commit(
            {
                "seq": self.seq + 1,
                "op": "rebuild",
                "iterations": iterations,
                "seed": seed,
            }
        )

    # ------------------------------------------------------------------ #
    # Journal + apply machinery
    # ------------------------------------------------------------------ #
    def _commit(self, record: Dict[str, Any]):
        """Write-ahead: durably journal ``record``, then apply it."""
        self._journal_append(record)
        return self._apply_record(record)

    def _journal_append(self, record: Dict[str, Any]) -> None:
        if self.journal is None:
            return
        action = chaos_action(
            self.chaos, f"maintenance/{record['seq']}", self.chaos_attempt
        )
        if action == "crash":
            # A mid-write kill: flush a torn frame, then die like SIGKILL
            # would — no exception handlers, no atexit, no journal close.
            self.journal.append_torn(record)
            os._exit(86)
        elif action == "stall":
            time.sleep(self.chaos.stall_seconds)
        self.journal.append(record)

    def _apply_record(self, record: Dict[str, Any]):
        if record["seq"] != self.seq + 1:
            raise RuntimeError(
                f"journal gap: expected seq {self.seq + 1}, got {record['seq']}"
            )
        op = record["op"]
        if op == "insert":
            result = self._do_insert(record["device"], record["neighbors"])
        elif op == "remove":
            result = self._do_remove(record["device"])
        elif op == "update_degree":
            result = self._do_update_degree(
                record["device"], record["add"], record["remove"]
            )
        elif op == "rebalance":
            result = self._do_rebalance(record["region"], record["iterations"])
        elif op == "rebuild":
            result = self._do_rebuild(record["iterations"], record["seed"])
        else:
            raise ValueError(f"unknown journal op {op!r}")
        self.seq = record["seq"]
        self.chain = hashlib.sha256(
            f"{self.chain}|".encode("utf-8") + _encode(record)
        ).hexdigest()
        return result

    # ------------------------------------------------------------------ #
    # Delta operations (shared by live mutation and replay)
    # ------------------------------------------------------------------ #
    def _assign_edge(self, device: int, neighbor: int) -> None:
        """Cover a new edge: the lighter endpoint keeps it (smaller id ties)."""
        device_load = len(self.assignment.selected.get(device, ()))
        neighbor_load = len(self.assignment.selected.get(neighbor, ()))
        if (device_load, device) <= (neighbor_load, neighbor):
            keeper, kept = device, neighbor
        else:
            keeper, kept = neighbor, device
        self.assignment.selected.setdefault(keeper, set()).add(kept)

    def _do_insert(self, device: int, neighbors: List[int]) -> List[int]:
        self.neighbors[device] = set(neighbors)
        self.assignment.selected.setdefault(device, set())
        for neighbor in neighbors:
            self.neighbors[neighbor].add(device)
            self._assign_edge(device, neighbor)
        if neighbors:
            _charge_analytic_comparisons(
                self.accountant, len(neighbors), bit_width=self.config.comparison_bits
            )
        self.ledger.send(
            device,
            SERVER_ID,
            MessageKind.SERVER_COORDINATION,
            8 + 8 * len(neighbors),
            description="maintenance-join",
        )
        self.ledger.next_round()
        self.counters["joins"] += 1
        self.counters["edges_added"] += len(neighbors)
        return neighbors

    def _do_remove(self, device: int) -> None:
        dropped = sorted(self.neighbors.pop(device))
        for neighbor in dropped:
            self.neighbors[neighbor].discard(device)
            self.assignment.selected.get(neighbor, set()).discard(device)
        self.assignment.selected.pop(device, None)
        self.ledger.send(
            device,
            SERVER_ID,
            MessageKind.SERVER_COORDINATION,
            8,
            description="maintenance-leave",
        )
        self.ledger.next_round()
        self.counters["leaves"] += 1
        self.counters["edges_removed"] += len(dropped)

    def _do_update_degree(
        self, device: int, add: List[int], remove: List[int]
    ) -> Tuple[List[int], List[int]]:
        for neighbor in remove:
            self.neighbors[device].discard(neighbor)
            self.neighbors[neighbor].discard(device)
            self.assignment.selected.get(device, set()).discard(neighbor)
            self.assignment.selected.get(neighbor, set()).discard(device)
        for neighbor in add:
            self.neighbors[device].add(neighbor)
            self.neighbors[neighbor].add(device)
            self._assign_edge(device, neighbor)
        if add:
            _charge_analytic_comparisons(
                self.accountant, len(add), bit_width=self.config.comparison_bits
            )
        self.ledger.send(
            device,
            SERVER_ID,
            MessageKind.SERVER_COORDINATION,
            8 + 8 * (len(add) + len(remove)),
            description="maintenance-degree-update",
        )
        self.ledger.next_round()
        self.counters["degree_updates"] += 1
        self.counters["edges_added"] += len(add)
        self.counters["edges_removed"] += len(remove)
        return add, remove

    def _do_rebalance(self, region: List[int], iterations: int) -> Dict[str, int]:
        stats = localized_rebalance(
            self.assignment,
            region,
            iterations,
            self.rng,
            accountant=self.accountant,
            bit_width=self.config.comparison_bits,
        )
        self.ledger.send(
            SERVER_ID,
            SERVER_ID,
            MessageKind.SECURE_COMPARISON,
            8 * stats["comparisons"],
            description="maintenance-rebalance",
        )
        self.ledger.next_round()
        self.counters["rebalances"] += 1
        self.counters["rebalance_moves"] += stats["moves"]
        return stats

    def _do_rebuild(self, iterations: int, seed: int) -> None:
        lists, transcript = fresh_assignment(self.neighbors, iterations, seed)
        assignment = Assignment.from_lists(lists)
        for vertex in self.neighbors:
            assignment.selected.setdefault(vertex, set())
        self.assignment = assignment
        self.accountant.merge(transcript)
        self.ledger.send(
            SERVER_ID,
            SERVER_ID,
            MessageKind.SERVER_COORDINATION,
            8 * max(len(self.neighbors), 1),
            description="maintenance-rebuild",
        )
        self.ledger.next_round()
        self.counters["rebuilds"] += 1
