"""Churn-driven maintenance runs: schedules, metrics and the chaos harness.

Bridges the fault layer to the maintenance layer: a compiled
:class:`~repro.faults.FaultPlan` churn chain becomes a flat, state-free
mutation *schedule* (``compile_churn_schedule``), which drives a
:class:`~repro.maintenance.tree.MaintainedTree` through real joins/leaves
instead of masks.  Two consumers share the schedule:

* :func:`churn_maintenance_metrics` — the module-level ``CallableItem``
  target behind ``eval.runner.run_churn_maintenance``; it returns a fully
  deterministic metrics dictionary (counters, objectives, digests — no
  wall-clock values), which is what makes serial vs process execution
  bit-identical, and asserts ``replay(journal) == live`` inline before
  returning;
* the kill-replay harness (:func:`run_schedule`, :func:`first_crash_seq`) —
  a child process runs the schedule with a :class:`ChaosConfig` that kills
  it mid-journal-write; the parent recovers the torn journal, finishes the
  schedule, and the acceptance contract is digest equality with an
  uninterrupted run.  Used by both the tests and the gate-tracked
  ``tree_maintenance`` bench section.
"""

from __future__ import annotations

import tempfile
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from ..core.config import TreeConstructorConfig
from ..core.constructor import TreeConstructor
from ..faults.config import FaultScenarioConfig
from ..faults.plan import FaultPlan
from ..federation.simulator import FederatedEnvironment
from ..graph import load_dataset
from ..runtime.worker import ChaosConfig, chaos_action
from .journal import MutationJournal
from .monitor import StalenessMonitor
from .tree import MaintainedTree, MaintenanceConfig

__all__ = [
    "compile_churn_schedule",
    "apply_schedule",
    "churn_maintenance_metrics",
    "run_schedule",
    "first_crash_seq",
]

#: Schedule entries: ("remove", device) | ("insert", device, neighbors) |
#: ("rebalance", iterations).  State-free on purpose — entry ``i`` always
#: produces mutation record ``seq == i + 1``, so a recovered tree resumes at
#: ``schedule[tree.seq:]``.
Spec = tuple


def compile_churn_schedule(
    plan: FaultPlan,
    ego_neighbors: Mapping[int, Iterable[int]],
    rebalance_every: int = 0,
    rebalance_iterations: int = 25,
) -> List[Spec]:
    """Flatten a fault plan's churn chain into tree-mutation specs.

    Inserts carry the device's *original* ego neighbours; the tree filters
    them to currently-present peers at apply time, so the schedule stays
    independent of the state it will be applied to.  When
    ``rebalance_every > 0`` a localized rebalance spec follows every
    ``rebalance_every``-th round's churn.
    """
    specs: List[Spec] = []
    for round_index, joins, leaves in plan.churn_events():
        for device in leaves:
            specs.append(("remove", device))
        for device in joins:
            specs.append(
                ("insert", device, tuple(int(v) for v in ego_neighbors[device]))
            )
        if rebalance_every and (round_index + 1) % rebalance_every == 0:
            specs.append(("rebalance", rebalance_iterations))
    return specs


def apply_schedule(tree: MaintainedTree, schedule: List[Spec], start: int = 0) -> int:
    """Apply ``schedule[start:]`` to ``tree``; returns the final ``tree.seq``."""
    for spec in schedule[start:]:
        kind = spec[0]
        if kind == "remove":
            tree.remove_device(spec[1])
        elif kind == "insert":
            tree.insert_device(spec[1], spec[2])
        elif kind == "rebalance":
            tree.rebalance(iterations=spec[1])
        else:
            raise ValueError(f"unknown schedule spec {spec!r}")
    return tree.seq


def _constructed_tree(
    dataset: str,
    num_nodes: Optional[int],
    seed: int,
    mcmc_iterations: int,
) -> Tuple[Dict[int, List[int]], Dict[int, List[int]], int]:
    """Deterministic construction shared by every process of a harness run."""
    graph = load_dataset(dataset, seed=seed, num_nodes=num_nodes)
    environment = FederatedEnvironment.from_graph(graph, seed=seed)
    constructor = TreeConstructor(
        TreeConstructorConfig(mcmc_iterations=mcmc_iterations),
        rng=np.random.default_rng(seed),
    )
    construction = constructor.construct(environment)
    ego = {
        vertex: [int(v) for v in graph.neighbors(vertex)]
        for vertex in range(graph.num_nodes)
    }
    return construction.assignment.as_lists(), ego, graph.num_nodes


# --------------------------------------------------------------------------- #
# Kill-replay harness
# --------------------------------------------------------------------------- #
def first_crash_seq(chaos: ChaosConfig, num_mutations: int) -> Optional[int]:
    """The seq of the first mutation whose journal append will crash.

    Pure function (mirrors the tree's ``chaos_action`` keying), so the
    parent process can predict where its child will die — and pick a chaos
    seed that lands the kill mid-schedule rather than at either edge.
    """
    for seq in range(1, num_mutations + 1):
        if chaos_action(chaos, f"maintenance/{seq}", 1) == "crash":
            return seq
    return None


def run_schedule(
    journal_path: str,
    snapshot_dir: str,
    dataset: str = "facebook",
    num_nodes: Optional[int] = 120,
    seed: int = 0,
    scenario: FaultScenarioConfig = FaultScenarioConfig(
        join_rate=0.30, leave_rate=0.10, fault_seed=13
    ),
    rounds: int = 10,
    mcmc_iterations: int = 40,
    rebalance_every: int = 4,
    maintenance_seed: int = 0,
    chaos: Optional[ChaosConfig] = None,
) -> str:
    """Build the tree, run the full churn schedule, return the state digest.

    Module-level (and fork/spawn-safe) so it can be the target of the chaos
    child process: with a crashing ``chaos`` the process dies with exit code
    86 mid-journal-write and never returns.
    """
    from ..engine.store import DiskSpillStore

    lists, ego, num_devices = _constructed_tree(
        dataset, num_nodes, seed, mcmc_iterations
    )
    plan = FaultPlan.compile(scenario, num_devices, rounds)
    schedule = compile_churn_schedule(plan, ego, rebalance_every=rebalance_every)
    journal = MutationJournal.create(journal_path)
    snapshots = DiskSpillStore(snapshot_dir, max_bytes=64 * 1024 * 1024)
    tree = MaintainedTree.from_construction(
        lists,
        ego,
        MaintenanceConfig(seed=maintenance_seed),
        journal=journal,
        snapshots=snapshots,
        chaos=chaos,
    )
    apply_schedule(tree, schedule)
    digest = tree.state_digest()
    journal.close()
    return digest


def resume_schedule(
    journal_path: str,
    snapshot_dir: str,
    dataset: str = "facebook",
    num_nodes: Optional[int] = 120,
    seed: int = 0,
    scenario: FaultScenarioConfig = FaultScenarioConfig(
        join_rate=0.30, leave_rate=0.10, fault_seed=13
    ),
    rounds: int = 10,
    mcmc_iterations: int = 40,
    rebalance_every: int = 4,
) -> Tuple[str, int]:
    """Recover a (possibly torn) journal and finish the schedule.

    Returns ``(state digest, resume index)``.  The resume index is simply
    the recovered ``tree.seq`` — each schedule entry journals exactly one
    mutation, which is the invariant that makes crash recovery a slice.
    """
    from ..engine.store import DiskSpillStore

    _, ego, num_devices = _constructed_tree(dataset, num_nodes, seed, mcmc_iterations)
    plan = FaultPlan.compile(scenario, num_devices, rounds)
    schedule = compile_churn_schedule(plan, ego, rebalance_every=rebalance_every)
    snapshots = DiskSpillStore(snapshot_dir, max_bytes=64 * 1024 * 1024)
    tree = MaintainedTree.recover(journal_path, snapshots)
    resumed_at = tree.seq
    apply_schedule(tree, schedule, start=resumed_at)
    digest = tree.state_digest()
    tree.journal.close()
    return digest, resumed_at


# --------------------------------------------------------------------------- #
# Runner entry point body (CallableItem target)
# --------------------------------------------------------------------------- #
def churn_maintenance_metrics(
    dataset: str = "facebook",
    num_nodes: Optional[int] = 300,
    seed: int = 0,
    scenario: FaultScenarioConfig = FaultScenarioConfig(
        join_rate=0.30, leave_rate=0.10, fault_seed=13
    ),
    rounds: int = 24,
    mcmc_iterations: int = 100,
    staleness_bound: float = 0.25,
    rebuild_bound: float = 1.0,
    check_every: int = 6,
    reference_iterations: int = 60,
) -> Dict[str, float]:
    """One churn-maintenance run; every returned value is deterministic.

    Constructs the tree, drives the full churn schedule through journalled
    delta operations with periodic :class:`StalenessMonitor` checks, then
    replays the journal and asserts bit-identity with the live tree before
    returning.  No wall-clock numbers appear in the result, so the serial
    and process executors produce identical payloads (the runner's
    determinism contract).
    """
    from ..engine.store import DiskSpillStore

    lists, ego, num_devices = _constructed_tree(
        dataset, num_nodes, seed, mcmc_iterations
    )
    plan = FaultPlan.compile(scenario, num_devices, rounds)
    initial_objective = max((len(v) for v in lists.values()), default=0)
    with tempfile.TemporaryDirectory(prefix="repro-maintenance-") as tmp:
        journal = MutationJournal.create(Path(tmp) / "journal.lmj")
        snapshots = DiskSpillStore(
            Path(tmp) / "snapshots", max_bytes=64 * 1024 * 1024
        )
        tree = MaintainedTree.from_construction(
            lists,
            ego,
            MaintenanceConfig(seed=seed),
            journal=journal,
            snapshots=snapshots,
        )
        monitor = StalenessMonitor(
            staleness_bound=staleness_bound,
            rebuild_bound=rebuild_bound,
            reference_iterations=reference_iterations,
        )
        for round_index, joins, leaves in plan.churn_events():
            for device in leaves:
                tree.remove_device(device)
            for device in joins:
                tree.insert_device(device, ego[device])
            if check_every and (round_index + 1) % check_every == 0:
                monitor.check(tree, round_index=round_index)
        tree.snapshot()
        live_digest = tree.state_digest()
        journal.close()
        replayed = MaintainedTree.replay(journal.path, snapshots)
        if replayed.state_digest() != live_digest:
            raise RuntimeError(
                "maintenance replay contract violated: "
                "replay(journal) != live tree"
            )
        counters = dict(tree.counters)
        metrics: Dict[str, float] = {
            "devices": float(num_devices),
            "present_devices": float(len(tree.present())),
            "rounds": float(rounds),
            "mutations": float(tree.seq),
            "initial_objective": float(initial_objective),
            "final_objective": float(tree.objective()),
            "replay_matches_live": 1.0,
            "mean_participation": plan.summary()["mean_participation"],
            "ledger_messages": float(tree.ledger.total_messages()),
            "comparisons": float(tree.accountant.comparisons),
        }
        for name in ("joins", "leaves", "rebalances", "rebuilds", "edges_added"):
            metrics[name] = float(counters[name])
        summary = monitor.summary()
        metrics["staleness_checks"] = summary["checks"]
        metrics["max_staleness"] = summary["max_staleness"]
        metrics["mean_staleness"] = summary["mean_staleness"]
        metrics["final_staleness"] = summary["final_staleness"]
        # Escalation breakdown per action and the snapshot store's traffic
        # counters.  All deterministic (counts of deterministic events), so
        # the serial/process bit-identity contract extends to them.
        for action in ("none", "rebalance", "rebuild"):
            metrics[f"escalations_{action}"] = float(
                sum(1 for report in monitor.reports if report.action == action)
            )
        store_stats = snapshots.stats()
        for name in (
            "entries",
            "hits",
            "misses",
            "evictions",
            "spill_writes",
            "spill_loads",
            "integrity_failures",
            "in_memory_bytes",
        ):
            metrics[f"snapshot_store_{name}"] = float(store_stats[name])
    return metrics
