"""Per-figure reproduction entry points.

Each ``figureN`` function regenerates the series behind the corresponding
figure of the paper's evaluation section and returns them as a dictionary;
it also prints an ASCII table so results can be read directly from a
terminal or from the benchmark output.

Run from the command line::

    python -m repro.eval.figures fig3 --scale small
    python -m repro.eval.figures all --scale medium
"""

from __future__ import annotations

import argparse
import json
import tempfile
from typing import Dict, List, Optional

import numpy as np

from .. import obs
from . import runner
from .reporting import (
    cdf_series,
    format_table,
    relative_savings_percent,
    summarize_comparison,
)

DATASETS = ("facebook", "lastfm")


def _scale_from_name(name: str) -> runner.ExperimentScale:
    factory = {
        "small": runner.ExperimentScale.small,
        "medium": runner.ExperimentScale.medium,
        "paper": runner.ExperimentScale.paper,
    }
    try:
        return factory[name]()
    except KeyError as error:
        raise KeyError(f"unknown scale '{name}'; use small, medium or paper") from error


# --------------------------------------------------------------------------- #
# Fig. 3 — supervised label classification accuracy
# --------------------------------------------------------------------------- #
def figure3(
    scale: runner.ExperimentScale = runner.ExperimentScale(),
    datasets: tuple = DATASETS,
    backbones: tuple = ("gcn", "gat"),
    verbose: bool = True,
    executor: runner.ExecutorArg = None,
) -> Dict[str, Dict[str, float]]:
    """Label classification accuracy: Lumos vs Centralized vs LPGNN vs Naive FedGNN."""
    results: Dict[str, Dict[str, float]] = {}
    rows: List[list] = []
    for dataset in datasets:
        for backbone in backbones:
            key = f"{dataset}/{backbone}"
            results[key] = runner.run_supervised_comparison(
                dataset, backbone, scale, executor=executor
            )
            rows.append(
                [
                    dataset,
                    backbone.upper(),
                    results[key].get("lumos", float("nan")),
                    results[key].get("centralized", float("nan")),
                    results[key].get("lpgnn", float("nan")),
                    results[key].get("naive_fedgnn", float("nan")),
                ]
            )
    if verbose:
        print("\n[Fig. 3] Label classification accuracy")
        print(
            format_table(
                ["dataset", "backbone", "Lumos", "Centralized", "LPGNN", "Naive FedGNN"], rows
            )
        )
    return results


# --------------------------------------------------------------------------- #
# Fig. 4 — unsupervised link prediction ROC-AUC
# --------------------------------------------------------------------------- #
def figure4(
    scale: runner.ExperimentScale = runner.ExperimentScale(),
    datasets: tuple = DATASETS,
    backbones: tuple = ("gcn", "gat"),
    verbose: bool = True,
    executor: runner.ExecutorArg = None,
) -> Dict[str, Dict[str, float]]:
    """Link prediction ROC-AUC: Lumos vs Centralized vs Naive FedGNN."""
    results: Dict[str, Dict[str, float]] = {}
    rows: List[list] = []
    for dataset in datasets:
        for backbone in backbones:
            key = f"{dataset}/{backbone}"
            results[key] = runner.run_unsupervised_comparison(
                dataset, backbone, scale, executor=executor
            )
            rows.append(
                [
                    dataset,
                    backbone.upper(),
                    results[key].get("lumos", float("nan")),
                    results[key].get("centralized", float("nan")),
                    results[key].get("naive_fedgnn", float("nan")),
                ]
            )
    if verbose:
        print("\n[Fig. 4] Link prediction ROC-AUC")
        print(format_table(["dataset", "backbone", "Lumos", "Centralized", "Naive FedGNN"], rows))
    return results


# --------------------------------------------------------------------------- #
# Fig. 5 — sensitivity to the privacy budget epsilon
# --------------------------------------------------------------------------- #
def figure5(
    scale: runner.ExperimentScale = runner.ExperimentScale(),
    datasets: tuple = DATASETS,
    epsilons: tuple = (0.5, 1.0, 2.0, 4.0),
    verbose: bool = True,
    executor: runner.ExecutorArg = None,
) -> Dict[str, Dict[str, Dict[float, float]]]:
    """Effect of epsilon on Lumos accuracy (supervised) and AUC (unsupervised)."""
    results: Dict[str, Dict[str, Dict[float, float]]] = {"supervised": {}, "unsupervised": {}}
    for task in ("supervised", "unsupervised"):
        rows = []
        for dataset in datasets:
            sweep = runner.run_epsilon_sweep(
                dataset, task=task, epsilons=list(epsilons), scale=scale,
                executor=executor,
            )
            results[task][dataset] = sweep
            rows.append([dataset] + [sweep[e] for e in epsilons])
        if verbose:
            metric = "accuracy" if task == "supervised" else "AUC"
            print(f"\n[Fig. 5] Lumos {task} {metric} vs epsilon")
            print(format_table(["dataset"] + [f"eps={e}" for e in epsilons], rows))
    return results


# --------------------------------------------------------------------------- #
# Fig. 6 — ablation: virtual nodes and tree trimming (accuracy side)
# --------------------------------------------------------------------------- #
def figure6(
    scale: runner.ExperimentScale = runner.ExperimentScale(),
    datasets: tuple = DATASETS,
    backbones: tuple = ("gcn", "gat"),
    verbose: bool = True,
    executor: runner.ExecutorArg = None,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Accuracy contribution of virtual nodes and tree trimming."""
    results: Dict[str, Dict[str, Dict[str, float]]] = {"supervised": {}, "unsupervised": {}}
    for task in ("supervised", "unsupervised"):
        rows = []
        for dataset in datasets:
            for backbone in backbones:
                key = f"{dataset}/{backbone}"
                ablation = runner.run_ablation(
                    dataset, task=task, backbone=backbone, scale=scale,
                    executor=executor,
                )
                results[task][key] = ablation
                rows.append(
                    [
                        dataset,
                        backbone.upper(),
                        ablation["lumos"],
                        ablation["lumos_wo_vn"],
                        ablation["lumos_wo_tt"],
                    ]
                )
        if verbose:
            metric = "accuracy" if task == "supervised" else "AUC"
            print(f"\n[Fig. 6] Ablation ({task}, {metric})")
            print(
                format_table(
                    ["dataset", "backbone", "Lumos", "Lumos w.o. VN", "Lumos w.o. TT"], rows
                )
            )
    return results


# --------------------------------------------------------------------------- #
# Fig. 7 — CDF of per-device workload with / without tree trimming
# --------------------------------------------------------------------------- #
def figure7(
    scale: runner.ExperimentScale = runner.ExperimentScale(),
    datasets: tuple = DATASETS,
    verbose: bool = True,
    executor: runner.ExecutorArg = None,
) -> Dict[str, Dict[str, object]]:
    """Workload distribution with and without tree trimming."""
    results: Dict[str, Dict[str, object]] = {}
    for dataset in datasets:
        analysis = runner.run_workload_analysis(dataset, scale=scale, executor=executor)
        trimmed = analysis["lumos"]
        untrimmed = analysis["lumos_wo_tt"]
        results[dataset] = {
            "max_with_trimming": float(trimmed.max()),
            "max_without_trimming": float(untrimmed.max()),
            "mean_with_trimming": float(trimmed.mean()),
            "mean_without_trimming": float(untrimmed.mean()),
            "cdf_with_trimming": cdf_series(trimmed),
            "cdf_without_trimming": cdf_series(untrimmed),
            "workloads_with_trimming": trimmed,
            "workloads_without_trimming": untrimmed,
        }
        if verbose:
            print(f"\n[Fig. 7] Workload CDF — {dataset}")
            rows = [
                ["max workload", float(trimmed.max()), float(untrimmed.max())],
                ["mean workload", float(trimmed.mean()), float(untrimmed.mean())],
                ["p95 workload", float(np.percentile(trimmed, 95)), float(np.percentile(untrimmed, 95))],
            ]
            print(format_table(["statistic", "Lumos", "Lumos w.o. TT"], rows))
    return results


# --------------------------------------------------------------------------- #
# Fig. 8 — system cost: communication rounds and training time per epoch
# --------------------------------------------------------------------------- #
def figure8(
    scale: runner.ExperimentScale = runner.ExperimentScale(),
    datasets: tuple = DATASETS,
    verbose: bool = True,
    executor: runner.ExecutorArg = None,
) -> Dict[str, Dict[str, float]]:
    """Per-epoch communication rounds and simulated training time, with/without TT."""
    results: Dict[str, Dict[str, float]] = {}
    rows = []
    for dataset in datasets:
        cost = runner.run_system_cost(dataset, scale=scale, executor=executor)
        for task in ("supervised", "unsupervised"):
            with_tt = cost["lumos"][f"{task}_rounds_per_device"]
            without_tt = cost["lumos_wo_tt"][f"{task}_rounds_per_device"]
            time_with = cost["lumos"][f"{task}_epoch_time"]
            time_without = cost["lumos_wo_tt"][f"{task}_epoch_time"]
            key = f"{dataset}/{task}"
            results[key] = {
                "rounds_with_trimming": with_tt,
                "rounds_without_trimming": without_tt,
                "rounds_saving_percent": relative_savings_percent(without_tt, with_tt),
                "epoch_time_with_trimming": time_with,
                "epoch_time_without_trimming": time_without,
                "time_saving_percent": relative_savings_percent(time_without, time_with),
            }
            rows.append(
                [
                    dataset,
                    task,
                    with_tt,
                    without_tt,
                    results[key]["rounds_saving_percent"],
                    time_with,
                    time_without,
                    results[key]["time_saving_percent"],
                ]
            )
    if verbose:
        print("\n[Fig. 8] System cost of tree trimming")
        print(
            format_table(
                [
                    "dataset",
                    "task",
                    "rounds (TT)",
                    "rounds (no TT)",
                    "rounds saved %",
                    "epoch time (TT)",
                    "epoch time (no TT)",
                    "time saved %",
                ],
                rows,
                float_format="{:.2f}",
            )
        )
    return results


# --------------------------------------------------------------------------- #
# Robustness — accuracy and system cost under unreliable federations
# --------------------------------------------------------------------------- #
def figure_robustness(
    scale: runner.ExperimentScale = runner.ExperimentScale(),
    datasets: tuple = ("facebook",),
    verbose: bool = True,
    executor: runner.ExecutorArg = None,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Lumos under fault scenarios: accuracy, participation and epoch time.

    Not a figure of the paper (its evaluation assumes full availability) —
    this is the robustness extension's figure family: every scenario of
    :func:`repro.faults.default_robustness_scenarios` as one arm, reported
    against the fault-free baseline.
    """
    results: Dict[str, Dict[str, Dict[str, float]]] = {}
    for dataset in datasets:
        sweep = runner.run_robustness_sweep(dataset, scale=scale, executor=executor)
        results[dataset] = sweep
        if verbose:
            print(f"\n[Robustness] Lumos under unreliable federations — {dataset}")
            # Runtime retry/backoff provenance per arm (surfaced from
            # RuntimeReport.failure_attempts via run_robustness_sweep): a
            # clean run is all "1 attempt"; a flaky one shows its history.
            retry_parts = [
                f"{name}: {int(entry['attempts'])} attempt(s), "
                f"{int(entry['failed_attempts'])} failed"
                for name, entry in sweep.items()
                if "attempts" in entry
            ]
            if retry_parts:
                print("runtime attempts — " + "; ".join(retry_parts))
            # The fault_summary columns (skipped updates, evicted straggler
            # device-rounds, dropped bytes) surface the graceful-degradation
            # accounting in the table, not just the raw result dictionaries.
            rows = [
                [
                    name,
                    entry["test_accuracy"],
                    entry["accuracy_vs_baseline_percent"],
                    entry["mean_participation"],
                    entry["mean_epoch_time"],
                    entry["skipped_updates"],
                    entry["evicted_device_rounds"],
                    entry["dropped_messages"],
                    entry["dropped_bytes"],
                ]
                for name, entry in sweep.items()
            ]
            print(
                format_table(
                    [
                        "scenario",
                        "accuracy",
                        "vs baseline %",
                        "participation",
                        "epoch time",
                        "skipped upd",
                        "evicted",
                        "dropped msgs",
                        "dropped bytes",
                    ],
                    rows,
                    float_format="{:.3f}",
                )
            )
    return results


# --------------------------------------------------------------------------- #
# Tree maintenance — churn-driven delta operations vs staleness bounds
# --------------------------------------------------------------------------- #
def figure_maintenance(
    scale: runner.ExperimentScale = runner.ExperimentScale(),
    datasets: tuple = ("facebook",),
    rounds: int = 24,
    verbose: bool = True,
    executor: runner.ExecutorArg = None,
) -> Dict[str, Dict[str, float]]:
    """Self-healing tree maintenance under churn (robustness family).

    One churn-maintenance run per dataset: journalled joins/leaves, periodic
    staleness checks against a shadow reconstruction, and the inline
    replay-equals-live assertion.  The table shows how far the delta-
    maintained tree drifted and what the degradation policy did about it.
    """
    results: Dict[str, Dict[str, float]] = {}
    rows = []
    for dataset in datasets:
        metrics = runner.run_churn_maintenance(
            dataset, rounds=rounds, scale=scale, executor=executor
        )
        results[dataset] = metrics
        rows.append(
            [
                dataset,
                metrics["mutations"],
                metrics["joins"],
                metrics["leaves"],
                metrics["final_objective"],
                metrics["max_staleness"],
                metrics["rebalances"],
                metrics["rebuilds"],
                metrics["replay_matches_live"],
            ]
        )
    if verbose:
        print("\n[Maintenance] Self-healing trees under churn")
        print(
            format_table(
                [
                    "dataset",
                    "mutations",
                    "joins",
                    "leaves",
                    "objective",
                    "max staleness",
                    "rebalances",
                    "rebuilds",
                    "replay ok",
                ],
                rows,
                float_format="{:.3f}",
            )
        )
    return results


# --------------------------------------------------------------------------- #
# Headline claims (abstract)
# --------------------------------------------------------------------------- #
def headline_summary(
    scale: runner.ExperimentScale = runner.ExperimentScale(),
    dataset: str = "facebook",
    verbose: bool = True,
    executor: runner.ExecutorArg = None,
) -> Dict[str, float]:
    """Accuracy gain vs the federated baseline and the tree-trimming savings."""
    summary = runner.run_headline_summary(dataset, scale=scale, executor=executor)
    if verbose:
        print("\n[Headline] Abstract claims (paper: +39.48% acc, -35.16% rounds, -17.74% time)")
        print(summarize_comparison(
            {"lumos": summary["lumos_accuracy"], "naive_fedgnn": summary["naive_fedgnn_accuracy"]},
            reference_key="naive_fedgnn",
        ))
        print(
            f"communication rounds saved: {summary['communication_rounds_saving_percent']:.1f}% | "
            f"training time saved: {summary['training_time_saving_percent']:.1f}%"
        )
    return summary


FIGURES = {
    "fig3": figure3,
    "fig4": figure4,
    "fig5": figure5,
    "fig6": figure6,
    "fig7": figure7,
    "fig8": figure8,
    "robustness": figure_robustness,
    "maintenance": figure_maintenance,
    "headline": headline_summary,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Command line entry point: regenerate one figure or all of them."""
    parser = argparse.ArgumentParser(description="Regenerate the paper's figures as text tables")
    parser.add_argument("figure", choices=sorted(FIGURES) + ["all"], help="which figure to run")
    parser.add_argument("--scale", default="small", choices=["small", "medium", "paper"])
    parser.add_argument("--json", dest="as_json", action="store_true", help="dump results as JSON")
    parser.add_argument("--executor", default="serial", choices=["serial", "process"],
                        help="schedule independent experiment arms across a "
                             "worker-process pool (results are identical)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker-pool size (implies --executor process)")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="record spans and metrics across the whole "
                             "invocation (all processes) and write a Chrome "
                             "trace-event JSON loadable in Perfetto")
    args = parser.parse_args(argv)
    if args.workers is not None:
        args.executor = "process"

    scale = _scale_from_name(args.scale)
    selected = sorted(FIGURES) if args.figure == "all" else [args.figure]
    collected = {}
    tracer = obs.Tracer() if args.trace else None
    with tempfile.TemporaryDirectory(prefix="repro-figures-") as spill_dir:
        if args.executor == "process":
            # One spill directory for the whole invocation, so every run_*
            # call (and every figure, under "all") reuses the warm pipeline
            # prefix — the parallel analogue of the serial path's
            # process-wide default store.
            from ..runtime import ProcessExecutor

            executor = ProcessExecutor(max_workers=args.workers, spill_dir=spill_dir)
        else:
            executor = runner.resolve_executor(args.executor, args.workers)
        with obs.tracing(tracer=tracer) if tracer else _null_context():
            for name in selected:
                collected[name] = FIGURES[name](scale=scale, executor=executor)
    if args.as_json:
        print(json.dumps(_to_jsonable(collected), indent=2))
    if tracer is not None:
        trace = obs.RunTrace.from_tracer(tracer)
        path = obs.write_chrome_trace(trace, args.trace)
        print(f"\ntrace written to {path} (load in https://ui.perfetto.dev)")
        print(obs.summary_table(trace))
    return 0


def _null_context():
    from contextlib import nullcontext

    return nullcontext()


def _to_jsonable(value):
    """Recursively convert numpy containers into JSON-serialisable types."""
    if isinstance(value, dict):
        return {str(key): _to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_to_jsonable(item) for item in value]
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    return value


if __name__ == "__main__":
    raise SystemExit(main())
