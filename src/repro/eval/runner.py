"""Experiment runner: one entry point per comparison the paper makes.

Every function takes an :class:`ExperimentScale` so the same code drives the
quick benchmark configurations (small synthetic graphs, tens of epochs) and
larger runs.  The returned dictionaries are consumed by
:mod:`repro.eval.figures` and by the pytest benchmarks.

All Lumos runs go through the staged execution engine: the sweeps share one
content-keyed :class:`~repro.engine.store.ArtifactStore`, so stages whose
inputs do not change between sweep points (e.g. tree construction across an
epsilon sweep, the whole pre-training pipeline across a backbone sweep) are
computed once and replayed bit-for-bit afterwards.

Every entry point also takes an ``executor=`` knob (default ``"serial"``,
the in-process loop below).  ``executor="process"`` (optionally with
``max_workers=``) schedules the independent arms — sweep points, ablation
variants, baseline comparisons — across a worker-process pool via
:mod:`repro.runtime`: the shared pipeline prefix is computed once and handed
to workers through a disk-spill store, and the merged results are
bit-for-bit identical to the serial path (metrics, canonical ledger
transcripts, accountant totals).  An :class:`~repro.runtime.executor.Executor`
instance is accepted too (e.g. to pin a spill directory, retries or
timeouts, or to inspect scheduling statistics afterwards).  The ``store=``
parameter only affects the serial path — worker processes always hydrate
from the executor's shared spill store.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Union

import numpy as np

from .. import obs
from ..baselines import (
    train_centralized_supervised,
    train_centralized_unsupervised,
    train_lpgnn_supervised,
    train_naive_fedgnn_supervised,
    train_naive_fedgnn_unsupervised,
)
from ..core import LumosSystem, default_config_for
from ..core.config import LumosConfig, RuntimeConfig
from ..engine import ArtifactStore, default_store
from ..faults import FaultScenarioConfig, default_robustness_scenarios
from ..graph import Graph, load_dataset, split_edges, split_nodes
from ..runtime import (
    BaselineItem,
    CallableItem,
    Executor,
    GraphSpec,
    LumosItem,
    SerialExecutor,
    WorkPlan,
    resolve_executor,
)
from .metrics import relative_change

#: Type of the ``executor=`` knob shared by every entry point: an executor
#: name, an :class:`~repro.runtime.executor.Executor` instance, or a
#: recorded preference (``config.runtime``).
ExecutorArg = Union[str, Executor, RuntimeConfig, None]


def _traced_entry(fn):
    """Wrap an experiment entry point in a ``runner.<name>`` span.

    A no-op (one ``None`` check) unless a tracer is active, so the decorator
    is invisible to untraced callers — see the contract in :mod:`repro.obs`.
    """

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        with obs.span(f"runner.{fn.__name__}"):
            return fn(*args, **kwargs)

    return wrapper


@dataclass(frozen=True)
class ExperimentScale:
    """Size / effort knobs shared by all experiments."""

    num_nodes: Optional[int] = 400
    epochs: int = 80
    mcmc_iterations: int = 150
    seed: int = 0

    @classmethod
    def small(cls) -> "ExperimentScale":
        """Quick configuration used by the pytest benchmarks."""
        return cls(num_nodes=300, epochs=50, mcmc_iterations=100, seed=0)

    @classmethod
    def medium(cls) -> "ExperimentScale":
        """Configuration closer to the paper's setup (minutes per figure)."""
        return cls(num_nodes=800, epochs=150, mcmc_iterations=300, seed=0)

    @classmethod
    def paper(cls) -> "ExperimentScale":
        """Paper-scale run (uses the full synthetic graphs and 300 epochs)."""
        return cls(num_nodes=None, epochs=300, mcmc_iterations=1000, seed=0)


def _prepare(dataset: str, scale: ExperimentScale) -> Graph:
    return load_dataset(dataset, seed=scale.seed, num_nodes=scale.num_nodes)


def _graph_spec(dataset: str, scale: ExperimentScale) -> GraphSpec:
    """The picklable recipe workers rebuild ``_prepare``'s graph from."""
    return GraphSpec(dataset=dataset, seed=scale.seed, num_nodes=scale.num_nodes)


def _lumos_item(
    dataset: str,
    scale: ExperimentScale,
    task: str,
    config: LumosConfig,
    label: str,
) -> LumosItem:
    return LumosItem(
        graph_spec=_graph_spec(dataset, scale),
        config=config,
        task=task,
        split_seed=scale.seed,
        label=label,
    )


def _lumos_config(dataset: str, scale: ExperimentScale, backbone: str, epsilon: float = 2.0) -> LumosConfig:
    return (
        default_config_for(dataset)
        .with_mcmc_iterations(scale.mcmc_iterations)
        .with_epochs(scale.epochs)
        .with_backbone(backbone)
        .with_epsilon(epsilon)
        .with_seed(scale.seed)
    )


# --------------------------------------------------------------------------- #
# Fig. 3 — supervised accuracy comparison
# --------------------------------------------------------------------------- #
def _comparison_parallel(
    dataset: str,
    backbone: str,
    scale: ExperimentScale,
    methods: List[str],
    task: str,
    executor: Executor,
) -> Dict[str, float]:
    """Process-pool path shared by the Fig. 3 / Fig. 4 comparisons."""
    spec = _graph_spec(dataset, scale)
    plan = WorkPlan()
    keys: Dict[str, str] = {}
    for method in methods:
        if method == "lumos":
            keys[method] = plan.add(
                _lumos_item(
                    dataset, scale, task,
                    _lumos_config(dataset, scale, backbone),
                    label=f"lumos/{task}/{dataset}/{backbone}",
                )
            )
        else:
            keys[method] = plan.add(
                BaselineItem(
                    method=method,
                    task=task,
                    graph_spec=spec,
                    backbone=backbone,
                    epochs=scale.epochs,
                    seed=scale.seed,
                    split_seed=scale.seed,
                    label=f"{method}/{task}/{dataset}/{backbone}",
                )
            )
    report = executor.execute(plan)
    return {method: report.records[key].value for method, key in keys.items()}


@_traced_entry
def run_supervised_comparison(
    dataset: str,
    backbone: str = "gcn",
    scale: ExperimentScale = ExperimentScale(),
    methods: Optional[List[str]] = None,
    executor: ExecutorArg = None,
    max_workers: Optional[int] = None,
) -> Dict[str, float]:
    """Test accuracy of Lumos and the baselines on one dataset + backbone."""
    methods = methods or ["lumos", "centralized", "lpgnn", "naive_fedgnn"]
    resolved = resolve_executor(executor, max_workers)
    if resolved is not None:
        return _comparison_parallel(dataset, backbone, scale, methods, "supervised", resolved)
    graph = _prepare(dataset, scale)
    split = split_nodes(graph, seed=scale.seed)
    results: Dict[str, float] = {}

    if "lumos" in methods:
        system = LumosSystem(graph, _lumos_config(dataset, scale, backbone))
        results["lumos"] = system.run_supervised(split).test_accuracy
    if "centralized" in methods:
        results["centralized"] = train_centralized_supervised(
            graph, split, backbone=backbone, epochs=scale.epochs, seed=scale.seed
        ).test_accuracy
    if "lpgnn" in methods:
        results["lpgnn"] = train_lpgnn_supervised(
            graph, split, backbone=backbone, epochs=scale.epochs, seed=scale.seed
        ).test_accuracy
    if "naive_fedgnn" in methods:
        results["naive_fedgnn"] = train_naive_fedgnn_supervised(
            graph, split, backbone=backbone, epochs=scale.epochs, seed=scale.seed
        ).test_accuracy
    return results


# --------------------------------------------------------------------------- #
# Fig. 4 — unsupervised (link prediction) comparison
# --------------------------------------------------------------------------- #
@_traced_entry
def run_unsupervised_comparison(
    dataset: str,
    backbone: str = "gcn",
    scale: ExperimentScale = ExperimentScale(),
    methods: Optional[List[str]] = None,
    executor: ExecutorArg = None,
    max_workers: Optional[int] = None,
) -> Dict[str, float]:
    """Test ROC-AUC of Lumos, centralized and naive FedGNN."""
    methods = methods or ["lumos", "centralized", "naive_fedgnn"]
    resolved = resolve_executor(executor, max_workers)
    if resolved is not None:
        return _comparison_parallel(dataset, backbone, scale, methods, "unsupervised", resolved)
    graph = _prepare(dataset, scale)
    edge_split = split_edges(graph, seed=scale.seed)
    results: Dict[str, float] = {}

    if "lumos" in methods:
        system = LumosSystem(graph, _lumos_config(dataset, scale, backbone))
        results["lumos"] = system.run_unsupervised(edge_split).test_auc
    if "centralized" in methods:
        results["centralized"] = train_centralized_unsupervised(
            graph, edge_split, backbone=backbone, epochs=scale.epochs, seed=scale.seed
        ).test_auc
    if "naive_fedgnn" in methods:
        results["naive_fedgnn"] = train_naive_fedgnn_unsupervised(
            graph, edge_split, backbone=backbone, epochs=scale.epochs, seed=scale.seed
        ).test_auc
    return results


# --------------------------------------------------------------------------- #
# Fig. 5 — sensitivity to the privacy budget
# --------------------------------------------------------------------------- #
@_traced_entry
def run_epsilon_sweep(
    dataset: str,
    task: str = "supervised",
    epsilons: Optional[List[float]] = None,
    backbone: str = "gcn",
    scale: ExperimentScale = ExperimentScale(),
    store: Optional[ArtifactStore] = None,
    executor: ExecutorArg = None,
    max_workers: Optional[int] = None,
) -> Dict[float, float]:
    """Lumos accuracy / AUC as a function of the privacy budget ``epsilon``.

    Epsilon only affects the LDP exchange onwards: the partition and the tree
    construction are computed for the first point and replayed from the
    artifact store for every other point.  Under ``executor="process"`` the
    shared prefix is computed once and the per-point thresholding + training
    fan out across workers (results bit-for-bit identical to serial).
    """
    epsilons = epsilons or [0.5, 1.0, 2.0, 4.0]
    resolved = resolve_executor(executor, max_workers)
    if resolved is not None:
        plan = WorkPlan()
        keys = {
            epsilon: plan.add(
                _lumos_item(
                    dataset, scale, task,
                    _lumos_config(dataset, scale, backbone, epsilon=epsilon),
                    label=f"sweep/{task}/{dataset}/eps={epsilon}",
                )
            )
            for epsilon in epsilons
        }
        report = resolved.execute(plan)
        return {epsilon: report.records[key].value for epsilon, key in keys.items()}
    store = store if store is not None else default_store()
    graph = _prepare(dataset, scale)
    systems = [
        LumosSystem(
            graph, _lumos_config(dataset, scale, backbone, epsilon=epsilon), store=store
        )
        for epsilon in epsilons
    ]
    if task == "supervised":
        # All sweep points share the cached construction, so their training
        # loops stack into batched backend kernels (bit-identical results,
        # one pass over the epochs instead of one per point).
        from ..core.lumos import run_supervised_many

        split = split_nodes(graph, seed=scale.seed)
        sweep_results = run_supervised_many(systems, split)
        return {
            epsilon: result.test_accuracy
            for epsilon, result in zip(epsilons, sweep_results)
        }
    edge_split = split_edges(graph, seed=scale.seed)
    return {
        epsilon: system.run_unsupervised(edge_split).test_auc
        for epsilon, system in zip(epsilons, systems)
    }


# --------------------------------------------------------------------------- #
# Fig. 6 — ablation of virtual nodes and tree trimming (accuracy side)
# --------------------------------------------------------------------------- #
@_traced_entry
def run_ablation(
    dataset: str,
    task: str = "supervised",
    backbone: str = "gcn",
    scale: ExperimentScale = ExperimentScale(),
    store: Optional[ArtifactStore] = None,
    executor: ExecutorArg = None,
    max_workers: Optional[int] = None,
) -> Dict[str, float]:
    """Lumos vs Lumos w.o. virtual nodes vs Lumos w.o. tree trimming.

    The three variants share the node-level partition (and, where the
    constructor configuration matches, the construction) via the store.
    Under ``executor="process"`` each arm — including its per-arm tree
    construction — runs on its own worker.
    """
    configs = {
        "lumos": _lumos_config(dataset, scale, backbone),
        "lumos_wo_vn": _lumos_config(dataset, scale, backbone).without_virtual_nodes(),
        "lumos_wo_tt": _lumos_config(dataset, scale, backbone).without_tree_trimming(),
    }
    resolved = resolve_executor(executor, max_workers)
    if resolved is not None:
        plan = WorkPlan()
        keys = {
            name: plan.add(
                _lumos_item(
                    dataset, scale, task, config,
                    label=f"ablation/{task}/{dataset}/{name}",
                )
            )
            for name, config in configs.items()
        }
        report = resolved.execute(plan)
        return {name: report.records[key].value for name, key in keys.items()}
    store = store if store is not None else default_store()
    graph = _prepare(dataset, scale)
    results: Dict[str, float] = {}
    for name, config in configs.items():
        system = LumosSystem(graph, config, store=store)
        if task == "supervised":
            split = split_nodes(graph, seed=scale.seed)
            results[name] = system.run_supervised(split).test_accuracy
        else:
            edge_split = split_edges(graph, seed=scale.seed)
            results[name] = system.run_unsupervised(edge_split).test_auc
    return results


# --------------------------------------------------------------------------- #
# Robustness — accuracy/system metrics under unreliable federations
# --------------------------------------------------------------------------- #
@_traced_entry
def run_robustness_sweep(
    dataset: str,
    scenarios: Optional[Dict[str, FaultScenarioConfig]] = None,
    backbone: str = "gcn",
    scale: ExperimentScale = ExperimentScale(),
    store: Optional[ArtifactStore] = None,
    executor: ExecutorArg = None,
    max_workers: Optional[int] = None,
) -> Dict[str, Dict[str, float]]:
    """Supervised Lumos metrics per fault scenario, relative to a baseline.

    Each scenario is one ablation arm: the same dataset/config trained under
    a different :class:`~repro.faults.FaultScenarioConfig`.  Scenarios only
    engage at training time, so every arm shares the full pipeline prefix
    (partition, construction, LDP init, tree batch) through the store; the
    per-arm work-item keys differ by the scenario fingerprint, so cached
    training results never mix scenarios.  A fault-free ``baseline`` arm is
    added when the grid lacks one, and every arm reports its accuracy delta
    vs that baseline (``accuracy_vs_baseline_percent``).

    Both the serial path and ``executor="process"`` run the same work plan —
    serially inline or across the worker pool — and are bit-for-bit
    identical (the robustness chapter of the runtime determinism contract).
    """
    scenarios = (
        dict(scenarios) if scenarios is not None else default_robustness_scenarios()
    )
    if not any(config.is_empty() for config in scenarios.values()):
        scenarios = {"baseline": FaultScenarioConfig(), **scenarios}
    plan = WorkPlan()
    keys = {
        name: plan.add(
            _lumos_item(
                dataset,
                scale,
                "robustness",
                _lumos_config(dataset, scale, backbone).with_faults(config),
                label=f"robustness/{dataset}/{name}",
            )
        )
        for name, config in scenarios.items()
    }
    resolved = resolve_executor(executor, max_workers)
    if resolved is None:
        # The serial path executes the identical plan inline so both paths
        # share one code path per item (and the plan's dedupe: two empty
        # scenarios collapse to one execution).
        resolved = SerialExecutor(store=store if store is not None else default_store())
    report = resolved.execute(plan)
    results = {
        name: dict(report.records[key].value) for name, key in keys.items()
    }
    baseline_name = next(
        name for name, config in scenarios.items() if config.is_empty()
    )
    baseline_accuracy = results[baseline_name]["test_accuracy"]
    for entry in results.values():
        entry["accuracy_vs_baseline_percent"] = relative_change(
            baseline_accuracy, entry["test_accuracy"]
        )
    # Surface the runtime's retry/backoff provenance per arm.  On the serial
    # path (and any clean process run) these are exactly 1.0 / 0.0, so the
    # serial-vs-process bit-identity contract extends to them; a chaotic or
    # flaky run shows its attempt history right in the sweep results.
    for name, key in keys.items():
        record = report.records[key]
        results[name]["attempts"] = float(record.attempts)
        results[name]["failed_attempts"] = float(
            len(report.failure_attempts.get(key, ()))
        )
    return results


# --------------------------------------------------------------------------- #
# Churn maintenance — delta-maintained tree vs rebuild, under joins/leaves
# --------------------------------------------------------------------------- #
@_traced_entry
def run_churn_maintenance(
    dataset: str = "facebook",
    scenario: Optional[FaultScenarioConfig] = None,
    rounds: int = 24,
    scale: ExperimentScale = ExperimentScale(),
    staleness_bound: float = 0.25,
    rebuild_bound: float = 1.0,
    check_every: int = 6,
    executor: ExecutorArg = None,
    max_workers: Optional[int] = None,
) -> Dict[str, float]:
    """Maintain a constructed tree through a churn schedule; report metrics.

    The fault plan's joins/leaves become journalled delta mutations of a
    :class:`~repro.maintenance.MaintainedTree`, with a
    :class:`~repro.maintenance.StalenessMonitor` check every ``check_every``
    rounds; the run replays its own mutation journal at the end and asserts
    bit-identity before returning (``replay_matches_live``).  The body is a
    module-level callable
    (``repro.maintenance.churn:churn_maintenance_metrics``), shipped as a
    ``CallableItem`` so the serial path and ``executor="process"`` execute
    the identical work plan — the returned dictionary contains only
    deterministic values, making the two paths bit-for-bit identical like
    every other entry point.
    """
    scenario = (
        scenario
        if scenario is not None
        else FaultScenarioConfig(join_rate=0.30, leave_rate=0.10, fault_seed=13)
    )
    kwargs = {
        "dataset": dataset,
        "num_nodes": scale.num_nodes,
        "seed": scale.seed,
        "scenario": scenario,
        "rounds": rounds,
        "mcmc_iterations": scale.mcmc_iterations,
        "staleness_bound": staleness_bound,
        "rebuild_bound": rebuild_bound,
        "check_every": check_every,
    }
    plan = WorkPlan()
    key = plan.add(
        CallableItem(
            target="repro.maintenance.churn:churn_maintenance_metrics",
            kwargs=tuple(sorted(kwargs.items())),
            label=f"maintenance/{dataset}",
        )
    )
    resolved = resolve_executor(executor, max_workers)
    if resolved is None:
        resolved = SerialExecutor(store=default_store())
    report = resolved.execute(plan)
    return dict(report.records[key].value)


# --------------------------------------------------------------------------- #
# Fig. 7 — workload CDF with / without tree trimming
# --------------------------------------------------------------------------- #
@_traced_entry
def run_workload_analysis(
    dataset: str,
    scale: ExperimentScale = ExperimentScale(),
    store: Optional[ArtifactStore] = None,
    executor: ExecutorArg = None,
    max_workers: Optional[int] = None,
) -> Dict[str, np.ndarray]:
    """Per-device workload arrays for Lumos and Lumos w.o. TT."""
    graph = _prepare(dataset, scale)
    resolved = resolve_executor(executor, max_workers)
    if resolved is not None:
        plan = WorkPlan()
        keys = {
            name: plan.add(
                _lumos_item(
                    dataset, scale, "workload", config,
                    label=f"workload/{dataset}/{name}",
                )
            )
            for name, config in (
                ("lumos", _lumos_config(dataset, scale, "gcn")),
                ("lumos_wo_tt", _lumos_config(dataset, scale, "gcn").without_tree_trimming()),
            )
        }
        report = resolved.execute(plan)
        results = {name: report.records[key].value for name, key in keys.items()}
        results["degrees"] = graph.degrees()
        return results
    store = store if store is not None else default_store()
    trimmed = LumosSystem(graph, _lumos_config(dataset, scale, "gcn"), store=store)
    untrimmed = LumosSystem(
        graph, _lumos_config(dataset, scale, "gcn").without_tree_trimming(), store=store
    )
    return {
        "lumos": trimmed.workload_distribution(),
        "lumos_wo_tt": untrimmed.workload_distribution(),
        "degrees": graph.degrees(),
    }


# --------------------------------------------------------------------------- #
# Fig. 8 — system cost (communication rounds and epoch time)
# --------------------------------------------------------------------------- #
@_traced_entry
def run_system_cost(
    dataset: str,
    scale: ExperimentScale = ExperimentScale(),
    store: Optional[ArtifactStore] = None,
    executor: ExecutorArg = None,
    max_workers: Optional[int] = None,
) -> Dict[str, Dict[str, float]]:
    """Per-epoch communication rounds and simulated epoch time, with/without TT."""
    variants = (
        ("lumos", _lumos_config(dataset, scale, "gcn")),
        ("lumos_wo_tt", _lumos_config(dataset, scale, "gcn").without_tree_trimming()),
    )
    resolved = resolve_executor(executor, max_workers)
    if resolved is not None:
        plan = WorkPlan()
        keys = {
            name: plan.add(
                _lumos_item(
                    dataset, scale, "system_cost", config,
                    label=f"system_cost/{dataset}/{name}",
                )
            )
            for name, config in variants
        }
        report = resolved.execute(plan)
        return {name: report.records[key].value for name, key in keys.items()}
    store = store if store is not None else default_store()
    graph = _prepare(dataset, scale)
    results: Dict[str, Dict[str, float]] = {}
    for name, config in variants:
        system = LumosSystem(graph, config, store=store)
        trainer = system.trainer()
        entry: Dict[str, float] = {}
        for task in ("supervised", "unsupervised"):
            profile = trainer.communication_profile(task)
            entry[f"{task}_rounds_per_device"] = float(profile["per_device_rounds"].mean())
            entry[f"{task}_epoch_time"] = trainer.simulated_epoch_time(task)
        entry["max_workload"] = float(system.workload_distribution().max())
        results[name] = entry
    return results


# --------------------------------------------------------------------------- #
# Headline claims (abstract / introduction)
# --------------------------------------------------------------------------- #
@_traced_entry
def run_headline_summary(
    dataset: str = "facebook",
    backbone: str = "gcn",
    scale: ExperimentScale = ExperimentScale(),
    executor: ExecutorArg = None,
    max_workers: Optional[int] = None,
) -> Dict[str, float]:
    """Reproduce the abstract's three headline numbers on one dataset.

    * accuracy increase of Lumos over the (naive) federated baseline,
    * reduction of inter-device communication rounds from tree trimming,
    * reduction of training time from tree trimming.
    """
    resolved = resolve_executor(executor, max_workers)
    supervised = run_supervised_comparison(
        dataset, backbone=backbone, scale=scale, methods=["lumos", "naive_fedgnn"],
        executor=resolved,
    )
    system_cost = run_system_cost(dataset, scale=scale, executor=resolved)
    accuracy_gain = relative_change(supervised["naive_fedgnn"], supervised["lumos"])
    rounds_saving = -relative_change(
        system_cost["lumos_wo_tt"]["supervised_rounds_per_device"],
        system_cost["lumos"]["supervised_rounds_per_device"],
    )
    time_saving = -relative_change(
        system_cost["lumos_wo_tt"]["supervised_epoch_time"],
        system_cost["lumos"]["supervised_epoch_time"],
    )
    return {
        "lumos_accuracy": supervised["lumos"],
        "naive_fedgnn_accuracy": supervised["naive_fedgnn"],
        "accuracy_gain_percent": accuracy_gain,
        "communication_rounds_saving_percent": rounds_saving,
        "training_time_saving_percent": time_saving,
    }
