"""Evaluation metrics: classification accuracy and ROC-AUC."""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np


def accuracy(targets: np.ndarray, predictions: np.ndarray, mask: Optional[np.ndarray] = None) -> float:
    """Fraction of correct predictions, optionally restricted to ``mask``."""
    targets = np.asarray(targets)
    predictions = np.asarray(predictions)
    if targets.shape != predictions.shape:
        raise ValueError("targets and predictions must have the same shape")
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
        targets = targets[mask]
        predictions = predictions[mask]
    if targets.size == 0:
        return 0.0
    return float((targets == predictions).mean())


def roc_auc_score(targets: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve.

    Computed via the rank statistic (equivalent to the Mann-Whitney U):
    the probability that a random positive receives a higher score than a
    random negative, with ties counted as one half (matching the definition
    the paper cites from Fawcett, 2006).
    """
    targets = np.asarray(targets, dtype=np.float64).ravel()
    scores = np.asarray(scores, dtype=np.float64).ravel()
    if targets.shape != scores.shape:
        raise ValueError("targets and scores must have the same shape")
    positives = scores[targets == 1]
    negatives = scores[targets == 0]
    if positives.size == 0 or negatives.size == 0:
        return 0.5
    # Rank-based computation handles ties exactly.
    order = np.argsort(np.concatenate([positives, negatives]), kind="mergesort")
    ranks = np.empty(order.size, dtype=np.float64)
    sorted_scores = np.concatenate([positives, negatives])[order]
    ranks[order] = _average_ranks(sorted_scores)
    positive_ranks = ranks[: positives.size]
    auc = (positive_ranks.sum() - positives.size * (positives.size + 1) / 2.0) / (
        positives.size * negatives.size
    )
    return float(auc)


def _average_ranks(sorted_values: np.ndarray) -> np.ndarray:
    """1-based ranks of an already sorted array with ties averaged."""
    n = sorted_values.size
    ranks = np.arange(1, n + 1, dtype=np.float64)
    index = 0
    while index < n:
        stop = index
        while stop + 1 < n and sorted_values[stop + 1] == sorted_values[index]:
            stop += 1
        if stop > index:
            ranks[index : stop + 1] = ranks[index : stop + 1].mean()
        index = stop + 1
    return ranks


def f1_macro(targets: np.ndarray, predictions: np.ndarray, num_classes: Optional[int] = None) -> float:
    """Macro-averaged F1 score (extra metric, not in the paper's tables)."""
    targets = np.asarray(targets, dtype=np.int64)
    predictions = np.asarray(predictions, dtype=np.int64)
    if num_classes is None:
        num_classes = int(max(targets.max(initial=0), predictions.max(initial=0))) + 1
    scores = []
    for c in range(num_classes):
        true_positive = float(np.sum((predictions == c) & (targets == c)))
        false_positive = float(np.sum((predictions == c) & (targets != c)))
        false_negative = float(np.sum((predictions != c) & (targets == c)))
        if true_positive == 0:
            scores.append(0.0)
            continue
        precision = true_positive / (true_positive + false_positive)
        recall = true_positive / (true_positive + false_negative)
        scores.append(2 * precision * recall / (precision + recall))
    return float(np.mean(scores)) if scores else 0.0


def confusion_matrix(targets: np.ndarray, predictions: np.ndarray, num_classes: Optional[int] = None) -> np.ndarray:
    """Confusion matrix with rows = true classes, columns = predicted classes."""
    targets = np.asarray(targets, dtype=np.int64)
    predictions = np.asarray(predictions, dtype=np.int64)
    if num_classes is None:
        num_classes = int(max(targets.max(initial=0), predictions.max(initial=0))) + 1
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (targets, predictions), 1)
    return matrix


def relative_change(reference: float, value: float) -> float:
    """Relative change ``(value - reference) / reference`` in percent."""
    if reference == 0:
        return 0.0
    return 100.0 * (value - reference) / reference
