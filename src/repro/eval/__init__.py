"""Evaluation harness: metrics, experiment runner and figure reproduction."""

from . import reporting
from .metrics import accuracy, confusion_matrix, f1_macro, relative_change, roc_auc_score

__all__ = [
    "reporting",
    "accuracy",
    "roc_auc_score",
    "f1_macro",
    "confusion_matrix",
    "relative_change",
]


def __getattr__(name):
    """Lazily expose the heavier submodules (they import the full system)."""
    if name in ("figures", "runner"):
        import importlib

        return importlib.import_module(f".{name}", __name__)
    if name == "ExperimentScale":
        from .runner import ExperimentScale

        return ExperimentScale
    raise AttributeError(f"module 'repro.eval' has no attribute '{name}'")
