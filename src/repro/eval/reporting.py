"""Plain-text reporting helpers for the evaluation harness.

The paper presents its evaluation as bar charts and CDF plots; since this
reproduction is headless, every figure is regenerated as a text table holding
the same series, which is what the benchmarks print and what EXPERIMENTS.md
records.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_format: str = "{:.4f}",
) -> str:
    """Render a list of rows as an aligned ASCII table."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered: List[str] = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(float_format.format(cell))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    header_line = " | ".join(header.ljust(widths[i]) for i, header in enumerate(headers))
    lines.append(header_line)
    lines.append("-+-".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def relative_difference_percent(reference: float, value: float) -> float:
    """``100 * (value - reference) / reference`` with a zero-safe guard."""
    if reference == 0:
        return 0.0
    return 100.0 * (value - reference) / reference


def relative_savings_percent(baseline: float, improved: float) -> float:
    """``100 * (baseline - improved) / baseline``: how much ``improved`` saves."""
    if baseline == 0:
        return 0.0
    return 100.0 * (baseline - improved) / baseline


def cdf_series(values: np.ndarray, points: Optional[Sequence[float]] = None) -> Dict[float, float]:
    """Empirical CDF of ``values`` evaluated at ``points`` (or deciles)."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return {}
    if points is None:
        points = np.unique(np.percentile(values, np.arange(0, 101, 10)))
    return {float(p): float((values <= p).mean()) for p in points}


def summarize_comparison(results: Mapping[str, float], reference_key: str) -> str:
    """One-line summary comparing every entry against ``results[reference_key]``."""
    reference = results[reference_key]
    parts = []
    for key, value in results.items():
        if key == reference_key:
            parts.append(f"{key}={value:.4f} (reference)")
        else:
            delta = relative_difference_percent(reference, value)
            parts.append(f"{key}={value:.4f} ({delta:+.1f}% vs {reference_key})")
    return "; ".join(parts)
