"""Optional torch implementation of the :class:`~repro.nn.backend.OpsBackend`.

This module is imported lazily by the backend registry and **only** when
``torch`` is importable — the repository never depends on torch, and every
test that exercises this backend skips cleanly when it is absent (install
the ``repro[torch]`` extra to enable it).

The backend mirrors the numpy kernels on CPU torch tensors in float64 so it
can be held to the same bit-for-bit-tolerance parity bar as the fast numpy
backend: constant propagation matrices become cached ``torch.sparse_csr``
tensors, row gather/scatter use ``index_select`` / ``index_add_``, and the
segment reductions use ``scatter_reduce``.  Inputs and outputs stay numpy
arrays at the interface so the autograd engine and every caller are oblivious
to which backend is active.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np
import scipy.sparse as sp

import torch

from ..caching import IdentityCache
from .backend import MatrixLike, OpsBackend, PreparedMatrix


class _PreparedTorchMatrix:
    """A constant sparse matrix converted to torch CSR, with its transpose."""

    __slots__ = ("csr", "csr_t", "shape", "__weakref__")

    def __init__(self, matrix: sp.csr_matrix) -> None:
        transpose = matrix.T.tocsr()
        self.csr = _to_torch_csr(matrix)
        self.csr_t = _to_torch_csr(transpose)
        self.shape = matrix.shape


def _to_torch_csr(matrix: sp.csr_matrix) -> "torch.Tensor":
    return torch.sparse_csr_tensor(
        torch.from_numpy(matrix.indptr.astype(np.int64)),
        torch.from_numpy(matrix.indices.astype(np.int64)),
        torch.from_numpy(np.asarray(matrix.data, dtype=np.float64)),
        size=matrix.shape,
        dtype=torch.float64,
    )


def _as_tensor(array: np.ndarray) -> "torch.Tensor":
    return torch.from_numpy(np.ascontiguousarray(array, dtype=np.float64))


class TorchBackend(OpsBackend):
    """CPU torch kernels behind the numpy-facing backend interface."""

    name = "torch"

    def __init__(self) -> None:
        self._matrix_cache = IdentityCache()

    # -- sparse matmul -------------------------------------------------- #
    def _prepare_torch(self, matrix: MatrixLike) -> _PreparedTorchMatrix:
        if isinstance(matrix, _PreparedTorchMatrix):
            return matrix
        anchor = matrix.csr if isinstance(matrix, PreparedMatrix) else matrix
        prepared = self._matrix_cache.get(anchor)
        if prepared is None:
            prepared = self._matrix_cache.put(
                anchor, _PreparedTorchMatrix(anchor.tocsr())
            )
        return prepared

    def prepare_matrix(self, matrix: MatrixLike) -> MatrixLike:
        # Keep the scipy object as the canonical handle (PreparedMatrix is
        # what the rest of the stack passes around); the torch CSR tensors
        # are cached against it on first product.
        if isinstance(matrix, PreparedMatrix):
            return matrix
        return PreparedMatrix(matrix)

    def spmm(self, matrix: MatrixLike, dense: np.ndarray) -> np.ndarray:
        prepared = self._prepare_torch(matrix)
        return (prepared.csr @ _as_tensor(dense)).numpy()

    def spmm_t(self, matrix: MatrixLike, dense: np.ndarray) -> np.ndarray:
        prepared = self._prepare_torch(matrix)
        return (prepared.csr_t @ _as_tensor(dense)).numpy()

    def spmm_many(self, matrix: MatrixLike, dense_stack: np.ndarray) -> np.ndarray:
        return self._spmm_stack(self._prepare_torch(matrix).csr, dense_stack)

    def spmm_t_many(self, matrix: MatrixLike, dense_stack: np.ndarray) -> np.ndarray:
        return self._spmm_stack(self._prepare_torch(matrix).csr_t, dense_stack)

    @staticmethod
    def _spmm_stack(csr: "torch.Tensor", dense_stack: np.ndarray) -> np.ndarray:
        num_slices, num_rows, width = dense_stack.shape
        flat = (
            _as_tensor(dense_stack)
            .permute(1, 0, 2)
            .reshape(num_rows, num_slices * width)
            .contiguous()
        )
        out = csr @ flat
        return (
            out.reshape(out.shape[0], num_slices, width)
            .permute(1, 0, 2)
            .contiguous()
            .numpy()
        )

    def fold_chain(self, matrices: Sequence[MatrixLike]) -> MatrixLike:
        # Fold in scipy (a one-off setup cost), then serve products through
        # the cached torch CSR tensors like any other prepared matrix.
        if not matrices:
            raise ValueError("fold_chain requires at least one matrix")
        product: Optional[sp.csr_matrix] = None
        for matrix in matrices:
            csr = matrix.csr if isinstance(matrix, PreparedMatrix) else sp.csr_matrix(matrix)
            product = csr if product is None else product @ csr
        return self.prepare_matrix(product)

    # -- row gather / scatter ------------------------------------------- #
    def take_rows(self, data: np.ndarray, index: np.ndarray) -> np.ndarray:
        tensor = torch.from_numpy(np.ascontiguousarray(data))
        picked = tensor.index_select(0, torch.from_numpy(index.astype(np.int64)))
        return picked.numpy()

    def scatter_rows(self, values: np.ndarray, index: np.ndarray, num_rows: int) -> np.ndarray:
        out = torch.zeros(
            (num_rows,) + tuple(values.shape[1:]), dtype=torch.float64
        )
        if values.size:
            out.index_add_(
                0, torch.from_numpy(index.astype(np.int64)), _as_tensor(values)
            )
        return out.numpy()

    # -- segment reductions --------------------------------------------- #
    def segment_counts(self, index: np.ndarray, num_segments: int) -> np.ndarray:
        counts = torch.bincount(
            torch.from_numpy(index.astype(np.int64)), minlength=num_segments
        )
        return counts.to(torch.float64).numpy()

    def segment_max(self, values: np.ndarray, index: np.ndarray, num_segments: int) -> np.ndarray:
        out = torch.full((num_segments,) + tuple(values.shape[1:]), -np.inf, dtype=torch.float64)
        if values.size:
            gather_index = torch.from_numpy(index.astype(np.int64))
            expand_shape = (index.shape[0],) + tuple(values.shape[1:])
            gather_index = gather_index.reshape(
                (-1,) + (1,) * (values.ndim - 1)
            ).expand(expand_shape)
            out.scatter_reduce_(0, gather_index, _as_tensor(values), reduce="amax")
        return out.numpy()
