"""Weight initialisation schemes used by the GNN layers."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def xavier_uniform(
    shape: Tuple[int, ...],
    gain: float = 1.0,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Glorot/Xavier uniform initialisation.

    Samples from ``U(-a, a)`` with ``a = gain * sqrt(6 / (fan_in + fan_out))``.
    This matches PyTorch's ``nn.init.xavier_uniform_`` which both the GCN and
    GAT reference implementations use for weight matrices.
    """
    rng = rng if rng is not None else np.random.default_rng()
    fan_in, fan_out = _compute_fans(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(
    shape: Tuple[int, ...],
    gain: float = 1.0,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Glorot/Xavier normal initialisation."""
    rng = rng if rng is not None else np.random.default_rng()
    fan_in, fan_out = _compute_fans(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(
    shape: Tuple[int, ...],
    negative_slope: float = 0.0,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """He/Kaiming uniform initialisation for ReLU-family activations."""
    rng = rng if rng is not None else np.random.default_rng()
    fan_in, _ = _compute_fans(shape)
    gain = np.sqrt(2.0 / (1.0 + negative_slope ** 2))
    bound = gain * np.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    """All-zero initialisation (used for biases)."""
    return np.zeros(shape, dtype=np.float64)


def _compute_fans(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Return ``(fan_in, fan_out)`` for a weight of the given shape."""
    if len(shape) == 0:
        return 1, 1
    if len(shape) == 1:
        return shape[0], shape[0]
    fan_in = int(np.prod(shape[:-1]))
    fan_out = int(shape[-1])
    return fan_in, fan_out
