"""Module / Parameter abstractions, mirroring a small subset of ``torch.nn``.

A :class:`Module` owns named :class:`Parameter` tensors and child modules,
exposes :meth:`parameters` for the optimizers, and carries a ``training``
flag toggled by :meth:`train` / :meth:`eval` (used by dropout).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Tuple

import numpy as np

from .tensor import Tensor


class Parameter(Tensor):
    """A tensor that is registered as a trainable parameter of a module."""

    def __init__(self, data, name: str = "") -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for neural network modules."""

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training = True

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def register_parameter(self, name: str, parameter: Parameter) -> None:
        """Explicitly register a parameter under ``name``."""
        self._parameters[name] = parameter
        object.__setattr__(self, name, parameter)

    def add_module(self, name: str, module: "Module") -> None:
        """Explicitly register a child module under ``name``."""
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def parameters(self) -> List[Parameter]:
        """Return all parameters of this module and its children."""
        return [parameter for _, parameter in self.named_parameters()]

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(qualified_name, parameter)`` pairs recursively."""
        for name, parameter in self._parameters.items():
            yield (f"{prefix}{name}", parameter)
        for module_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{module_name}.")

    def children(self) -> Iterator["Module"]:
        """Yield immediate child modules."""
        yield from self._modules.values()

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all descendants."""
        yield self
        for child in self._modules.values():
            yield from child.modules()

    # ------------------------------------------------------------------ #
    # State handling
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a flat mapping of parameter names to array copies."""
        return {name: parameter.data.copy() for name, parameter in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameter values from a mapping produced by :meth:`state_dict`."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}"
            )
        for name, parameter in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != parameter.data.shape:
                raise ValueError(
                    f"shape mismatch for parameter '{name}': "
                    f"expected {parameter.data.shape}, got {value.shape}"
                )
            parameter.data = value.copy()

    def zero_grad(self) -> None:
        """Clear the gradients of every parameter."""
        for parameter in self.parameters():
            parameter.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects dropout)."""
        self.training = mode
        for child in self._modules.values():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        """Set evaluation mode recursively."""
        return self.train(False)

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return sum(parameter.data.size for parameter in self.parameters())

    # ------------------------------------------------------------------ #
    # Call protocol
    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Sequential(Module):
    """Chain modules, feeding each output into the next module."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        for index, module in enumerate(modules):
            self.add_module(str(index), module)

    def forward(self, inputs):
        for module in self._modules.values():
            inputs = module(inputs)
        return inputs
