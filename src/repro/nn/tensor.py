"""Reverse-mode automatic differentiation on top of numpy.

This module provides the :class:`Tensor` class, the computational substrate
for every neural network in this repository.  The paper's system (Lumos) is
originally implemented on PyTorch; since the reproduction environment offers
only numpy/scipy, we re-implement the small slice of an autograd engine that
GCN / GAT training requires:

* broadcasting-aware elementwise arithmetic,
* matrix multiplication (dense and a sparse-constant variant in
  :mod:`repro.nn.functional`),
* gather / scatter-add for edge-wise graph operations,
* the usual nonlinearities, reductions and a numerically stable
  log-softmax, and
* reverse-mode backpropagation over a dynamically recorded DAG.

Design notes
------------
The engine is deliberately eager and dynamic (define-by-run): each operation
returns a new :class:`Tensor` that remembers its parents and a closure that
propagates the output gradient to them.  ``Tensor.backward`` performs a
topological sort of the recorded graph and runs the closures in reverse
order.  Gradients accumulate additively, matching PyTorch semantics, and are
cleared with :meth:`Tensor.zero_grad` (or by the optimizers).
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence]

_GRAD_ENABLED = True


class no_grad:
    """Context manager that disables gradient recording.

    Mirrors ``torch.no_grad``: operations executed inside the context do not
    record parents and therefore do not participate in backpropagation.  Used
    for evaluation passes and for constant pre-processing (e.g. subtracting a
    per-segment max inside the edge softmax).
    """

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._previous = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._previous


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autograd graph."""
    return _GRAD_ENABLED


def _as_array(value: ArrayLike) -> np.ndarray:
    """Coerce ``value`` into a float64 numpy array."""
    if isinstance(value, np.ndarray):
        if value.dtype != np.float64:
            return value.astype(np.float64)
        return value
    return np.asarray(value, dtype=np.float64)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting.

    Broadcasting expands dimensions on the fly during the forward pass; the
    corresponding adjoint operation is a sum over the broadcast axes.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions that were added by broadcasting.
    extra_dims = grad.ndim - len(shape)
    if extra_dims > 0:
        grad = grad.sum(axis=tuple(range(extra_dims)))
    # Sum over axes that were 1 in the original shape but expanded.
    axes = tuple(
        axis for axis, size in enumerate(shape) if size == 1 and grad.shape[axis] != 1
    )
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with an attached gradient and autograd history."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        parents: Tuple["Tensor", ...] = (),
        backward: Optional[Callable[[np.ndarray], None]] = None,
        name: str = "",
    ) -> None:
        self.data = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self._parents = parents if self.requires_grad or parents else ()
        self._backward = backward
        self.name = name

    # ------------------------------------------------------------------ #
    # Basic protocol
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.data.shape}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (a view, not a copy)."""
        return self.data

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        """Return a detached deep copy of this tensor."""
        return Tensor(self.data.copy(), requires_grad=False)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------ #
    # Graph construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        if not requires:
            return Tensor(data, requires_grad=False)
        return Tensor(data, requires_grad=True, parents=parents, backward=backward)

    def _accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` into this tensor's gradient buffer."""
        if not self.requires_grad:
            return
        grad = _unbroadcast(_as_array(grad), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Backpropagate ``grad`` (default: ones) from this tensor.

        Raises
        ------
        RuntimeError
            If called on a tensor that does not require gradients.
        """
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError(
                    "backward() without an explicit gradient is only supported "
                    "for scalar tensors"
                )
            grad = np.ones_like(self.data)
        self._accumulate(grad)

        ordered: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                ordered.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        for node in reversed(ordered):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data + other_t.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other_t._accumulate(grad)

        return Tensor._make(out_data, (self, other_t), backward)

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return self.__add__(other)

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data - other_t.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other_t._accumulate(-grad)

        return Tensor._make(out_data, (self, other_t), backward)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other).__sub__(self)

    def __mul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data * other_t.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * other_t.data)
            other_t._accumulate(grad * self.data)

        return Tensor._make(out_data, (self, other_t), backward)

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data / other_t.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / other_t.data)
            other_t._accumulate(-grad * self.data / (other_t.data ** 2))

        return Tensor._make(out_data, (self, other_t), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data @ other_t.data

        def backward(grad: np.ndarray) -> None:
            # Only the last two axes participate in the product; leading axes
            # are batch dimensions.  Transposing with swapaxes(-1, -2) keeps
            # batch axes in place (a bare .T would reverse them), and
            # _accumulate's unbroadcast folds gradients over broadcast batch
            # dimensions back onto the operand's shape.
            if self.requires_grad:
                if other_t.data.ndim == 1:
                    self._accumulate(np.outer(grad, other_t.data) if self.data.ndim == 2 else grad * other_t.data)
                else:
                    self._accumulate(grad @ np.swapaxes(other_t.data, -1, -2))
            if other_t.requires_grad:
                if self.data.ndim == 1:
                    other_t._accumulate(np.outer(self.data, grad))
                else:
                    other_t._accumulate(np.swapaxes(self.data, -1, -2) @ grad)

        return Tensor._make(out_data, (self, other_t), backward)

    # ------------------------------------------------------------------ #
    # Shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape
        out_data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original))

        return Tensor._make(out_data, (self,), backward)

    def transpose(self, axes: Optional[Tuple[int, ...]] = None) -> "Tensor":
        out_data = np.transpose(self.data, axes)

        def backward(grad: np.ndarray) -> None:
            if axes is None:
                self._accumulate(np.transpose(grad))
            else:
                inverse = np.argsort(axes)
                self._accumulate(np.transpose(grad, inverse))

        return Tensor._make(out_data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            grad_arr = _as_array(grad)
            if axis is None:
                self._accumulate(np.full_like(self.data, 1.0) * grad_arr)
                return
            if not keepdims:
                grad_arr = np.expand_dims(grad_arr, axis=axis)
            self._accumulate(np.broadcast_to(grad_arr, self.data.shape))

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.data.shape[a] for a in axis]))
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        """Maximum reduction (gradient flows to the arg-max entries)."""
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            grad_arr = _as_array(grad)
            if axis is None:
                mask = (self.data == self.data.max()).astype(np.float64)
                mask /= mask.sum()
                self._accumulate(mask * grad_arr)
                return
            expanded = out_data if keepdims else np.expand_dims(out_data, axis=axis)
            mask = (self.data == expanded).astype(np.float64)
            mask /= np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
            g = grad_arr if keepdims else np.expand_dims(grad_arr, axis=axis)
            self._accumulate(mask * g)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Elementwise nonlinearities
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = (self.data > 0).astype(np.float64)
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward)

    def leaky_relu(self, negative_slope: float = 0.2) -> "Tensor":
        mask = np.where(self.data > 0, 1.0, negative_slope)
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60.0, 60.0)))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data ** 2))

        return Tensor._make(out_data, (self,), backward)

    def clip(self, minimum: float, maximum: float) -> "Tensor":
        out_data = np.clip(self.data, minimum, maximum)
        mask = ((self.data >= minimum) & (self.data <= maximum)).astype(np.float64)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward)


def as_tensor(value: Union[Tensor, ArrayLike], requires_grad: bool = False) -> Tensor:
    """Coerce ``value`` into a :class:`Tensor`."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, requires_grad=requires_grad)


def zeros(shape: Union[int, Tuple[int, ...]], requires_grad: bool = False) -> Tensor:
    """Return a zero-filled tensor."""
    return Tensor(np.zeros(shape), requires_grad=requires_grad)


def ones(shape: Union[int, Tuple[int, ...]], requires_grad: bool = False) -> Tensor:
    """Return a ones-filled tensor."""
    return Tensor(np.ones(shape), requires_grad=requires_grad)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient support."""
    tensors = list(tensors)
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        pieces = np.split(grad, len(tensors), axis=axis)
        for tensor, piece in zip(tensors, pieces):
            tensor._accumulate(np.squeeze(piece, axis=axis))

    return Tensor._make(out_data, tuple(tensors), backward)


def concat(tensors: Iterable[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along an existing axis with gradient support."""
    tensors = list(tensors)
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            slicer = [slice(None)] * grad.ndim
            slicer[axis] = slice(start, stop)
            tensor._accumulate(grad[tuple(slicer)])

    return Tensor._make(out_data, tuple(tensors), backward)
