"""Functional building blocks for graph neural networks.

These functions complement :class:`repro.nn.tensor.Tensor` with the graph-
specific primitives GCN and GAT need: multiplication by a *constant* sparse
matrix (the normalised adjacency), row gathering / scatter-add for edge-wise
computation, segment softmax for attention coefficients and the usual
classification heads (softmax / log-softmax) plus dropout.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np
import scipy.sparse as sp

from .backend import PreparedMatrix, get_backend
from .tensor import Tensor, _as_array


def sparse_matmul(matrix: Union[sp.spmatrix, PreparedMatrix], tensor: Tensor) -> Tensor:
    """Multiply a constant sparse matrix by a dense tensor: ``matrix @ tensor``.

    The sparse matrix is treated as a constant (no gradient is computed for
    it); the gradient w.r.t. ``tensor`` is ``matrix.T @ grad``.  This is the
    workhorse of GCN message passing where ``matrix`` is the symmetrically
    normalised adjacency.  The kernels (including the transposed product of
    the backward pass) are supplied by the active :mod:`repro.nn.backend`.
    """
    if not (sp.issparse(matrix) or isinstance(matrix, PreparedMatrix)):
        raise TypeError("sparse_matmul expects a scipy sparse matrix")
    backend = get_backend()
    prepared = backend.prepare_matrix(matrix)
    out_data = backend.spmm(prepared, tensor.data)

    def backward(grad: np.ndarray) -> None:
        tensor._accumulate(backend.spmm_t(prepared, _as_array(grad)))

    return Tensor._make(out_data, (tensor,), backward)


def gather(tensor: Tensor, index: np.ndarray) -> Tensor:
    """Select rows ``tensor[index]`` with duplicate-aware gradients."""
    backend = get_backend()
    index = np.asarray(index, dtype=np.int64)
    out_data = backend.take_rows(tensor.data, index)
    num_rows = tensor.data.shape[0]

    def backward(grad: np.ndarray) -> None:
        tensor._accumulate(backend.scatter_rows(_as_array(grad), index, num_rows))

    return Tensor._make(out_data, (tensor,), backward)


def scatter_add(tensor: Tensor, index: np.ndarray, num_segments: int) -> Tensor:
    """Sum rows of ``tensor`` into ``num_segments`` buckets given by ``index``.

    ``out[k] = sum_{i : index[i] == k} tensor[i]``.  The gradient of a bucket
    flows back equally (as a copy) to every row that contributed to it.
    """
    backend = get_backend()
    index = np.asarray(index, dtype=np.int64)
    out_data = backend.segment_sum(tensor.data, index, num_segments)

    def backward(grad: np.ndarray) -> None:
        tensor._accumulate(backend.take_rows(_as_array(grad), index))

    return Tensor._make(out_data, (tensor,), backward)


def segment_softmax(values: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Softmax of ``values`` normalised within each segment.

    Used by GAT to normalise attention logits over the incoming edges of each
    destination node.  ``values`` may be of shape ``(E,)`` or ``(E, H)`` for
    multi-head attention; segments are defined along the first axis.
    """
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    # Subtract the per-segment max for numerical stability.  The max is a
    # constant shift within each segment: its gradient contribution cancels
    # exactly in the softmax, so treating it as a constant is correct.
    seg_max = get_backend().segment_max(values.data, segment_ids, num_segments)
    seg_max = np.where(np.isfinite(seg_max), seg_max, 0.0)

    shifted = values - Tensor(seg_max[segment_ids])
    exp_values = shifted.exp()
    denom = scatter_add(exp_values, segment_ids, num_segments)
    denom_per_edge = gather(denom, segment_ids)
    return exp_values / (denom_per_edge + 1e-16)


def edge_attention_softmax(
    src_scores: Tensor,
    dst_scores: Tensor,
    src: np.ndarray,
    dst: np.ndarray,
    num_segments: int,
    negative_slope: float = 0.2,
) -> Tensor:
    """Fused GAT attention kernel: gather + add + leaky-relu + segment softmax.

    Computes ``segment_softmax(leaky_relu(src_scores[src] + dst_scores[dst]))``
    normalised over the incoming edges of each destination — the attention
    coefficients of a GAT layer — as **one** autograd node instead of the
    seven-node composite (two gathers, add, leaky-relu, exp, scatter, divide).
    All array work runs through the active backend (so the fast backend's
    cached CSR aggregation matrices serve the segment reductions), and the
    backward pass uses the closed-form softmax adjoint

        d/d logits = a * (g - segment_sum(a * g)[dst]) * leaky_relu'(logits)

    which matches the composite graph's gradient exactly (the per-segment max
    shift is constant within a segment and the ``1e-16`` denominator guard is
    segment-constant too, so both cancel from the adjoint).
    """
    backend = get_backend()
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    logits = backend.take_rows(src_scores.data, src) + backend.take_rows(dst_scores.data, dst)
    slope = np.where(logits > 0, 1.0, negative_slope)
    activated = logits * slope
    seg_max = backend.segment_max(activated, dst, num_segments)
    seg_max = np.where(np.isfinite(seg_max), seg_max, 0.0)
    exp_values = np.exp(activated - backend.take_rows(seg_max, dst))
    denominator = backend.segment_sum(exp_values, dst, num_segments) + 1e-16
    attention = exp_values / backend.take_rows(denominator, dst)
    num_src_rows = src_scores.data.shape[0]
    num_dst_rows = dst_scores.data.shape[0]

    def backward(grad: np.ndarray) -> None:
        grad = _as_array(grad)
        weighted = attention * grad
        segment_dot = backend.segment_sum(weighted, dst, num_segments)
        grad_logits = (weighted - attention * backend.take_rows(segment_dot, dst)) * slope
        src_scores._accumulate(backend.scatter_rows(grad_logits, src, num_src_rows))
        dst_scores._accumulate(backend.scatter_rows(grad_logits, dst, num_dst_rows))

    return Tensor._make(attention, (src_scores, dst_scores), backward)


def sparse_matmul_many(
    matrix: Union[sp.spmatrix, PreparedMatrix], tensor: Tensor
) -> Tensor:
    """Batched :func:`sparse_matmul` over a stacked ``(K, N, d)`` tensor.

    Slice ``k`` of the result is ``matrix @ tensor[k]``; the whole stack goes
    through one backend call (:meth:`OpsBackend.spmm_many`), which the fast
    backends collapse into a single multi-vector CSR product.  Used by the
    cross-sweep-point batched trainer, where ``K`` sweep points share one
    propagation matrix.
    """
    backend = get_backend()
    prepared = backend.prepare_matrix(matrix)
    out_data = backend.spmm_many(prepared, tensor.data)

    def backward(grad: np.ndarray) -> None:
        tensor._accumulate(backend.spmm_t_many(prepared, _as_array(grad)))

    return Tensor._make(out_data, (tensor,), backward)


def fused_gcn_layer(
    features: Tensor,
    matrix: Union[sp.spmatrix, PreparedMatrix],
    weight: Tensor,
    bias: Optional[Tensor] = None,
    activation: Optional[str] = None,
    bias_operator: Optional[np.ndarray] = None,
) -> Tensor:
    """One fused autograd node for a full GCN layer.

    Computes ``act(M @ (X W) + b)`` — spmm, affine and activation in a single
    node with closed-form adjoints, instead of the four-node composite
    (matmul, sparse matmul, bias add, relu).  ``M`` may be the plain
    propagation matrix or a folded chain (:meth:`OpsBackend.fold_chain`), e.g.
    ``pool @ adjacency`` for the last layer of the Lumos model; when the fold
    absorbs a row-scaling prefix, ``bias_operator`` carries that prefix's row
    sums ``s`` so the bias enters as ``s ⊗ b`` (``M (X W + 1 bᵀ) = M X W +
    (M 1) ⊗ b``).

    Adjoints (``g`` is the incoming gradient, masked by ``act'``):

    * ``db = Σ_rows g`` (or ``Σ_rows (s ⊙ g)`` under a folded bias),
    * ``g_s = Mᵀ g``,
    * ``dW = Xᵀ g_s``,
    * ``dX = g_s Wᵀ``.
    """
    if activation not in (None, "relu"):
        raise ValueError(f"unsupported fused activation '{activation}'")
    backend = get_backend()
    prepared = backend.prepare_matrix(matrix)
    support = features.data @ weight.data
    out = backend.spmm(prepared, support)
    if bias is not None:
        if bias_operator is None:
            out = out + bias.data
        else:
            out = out + np.multiply.outer(bias_operator, bias.data)
    mask: Optional[np.ndarray] = None
    if activation == "relu":
        mask = (out > 0).astype(np.float64)
        out = out * mask

    def backward(grad: np.ndarray) -> None:
        grad = _as_array(grad)
        if mask is not None:
            grad = grad * mask
        if bias is not None:
            if bias_operator is None:
                bias._accumulate(grad)
            else:
                bias._accumulate((grad * bias_operator[:, None]).sum(axis=0))
        grad_support = backend.spmm_t(prepared, grad)
        weight._accumulate(features.data.T @ grad_support)
        if features.requires_grad:
            features._accumulate(grad_support @ weight.data.T)

    parents = (features, weight) if bias is None else (features, weight, bias)
    return Tensor._make(out, parents, backward)


def fused_gat_layer(
    features: Tensor,
    src: np.ndarray,
    dst: np.ndarray,
    weight: Tensor,
    attention_src: Tensor,
    attention_dst: Tensor,
    bias: Tensor,
    num_heads: int,
    head_dim: int,
    concat_heads: bool,
    negative_slope: float = 0.2,
    activation: Optional[str] = None,
) -> Tensor:
    """One fused autograd node for a full multi-head GAT layer.

    Runs the entire layer — linear transform, per-node attention logits,
    leaky-relu + segment softmax over incoming edges, weighted aggregation,
    head concat/mean, bias, optional activation — as a single node whose
    forward executes the same float operations as the composite graph (parity
    is pinned by ``tests/test_nn_backend.py``).  The backward pass applies
    the closed-form adjoint of every stage in reverse, reusing the stored
    forward intermediates (``transformed``, ``attention``, ``slope``).
    """
    if activation not in (None, "relu"):
        raise ValueError(f"unsupported fused activation '{activation}'")
    backend = get_backend()
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    num_nodes = features.data.shape[0]
    transformed = (features.data @ weight.data).reshape(num_nodes, num_heads, head_dim)
    src_vec = attention_src.data.reshape(1, num_heads, head_dim)
    dst_vec = attention_dst.data.reshape(1, num_heads, head_dim)
    src_scores = (transformed * src_vec).sum(axis=-1)  # (N, H)
    dst_scores = (transformed * dst_vec).sum(axis=-1)

    logits = backend.take_rows(src_scores, src) + backend.take_rows(dst_scores, dst)
    slope = np.where(logits > 0, 1.0, negative_slope)
    activated = logits * slope
    seg_max = backend.segment_max(activated, dst, num_nodes)
    seg_max = np.where(np.isfinite(seg_max), seg_max, 0.0)
    exp_values = np.exp(activated - backend.take_rows(seg_max, dst))
    denominator = backend.segment_sum(exp_values, dst, num_nodes) + 1e-16
    attention = exp_values / backend.take_rows(denominator, dst)  # (E, H)

    messages = backend.take_rows(transformed, src)  # (E, H, F)
    weighted = messages * attention[:, :, None]
    aggregated = backend.segment_sum(weighted, dst, num_nodes)  # (N, H, F)
    if concat_heads:
        out = aggregated.reshape(num_nodes, num_heads * head_dim)
    else:
        out = aggregated.sum(axis=1) * (1.0 / num_heads)
    out = out + bias.data
    mask: Optional[np.ndarray] = None
    if activation == "relu":
        mask = (out > 0).astype(np.float64)
        out = out * mask

    def backward(grad: np.ndarray) -> None:
        g = _as_array(grad)
        if mask is not None:
            g = g * mask
        bias._accumulate(g)
        if concat_heads:
            g_agg = g.reshape(num_nodes, num_heads, head_dim)
        else:
            g_agg = np.broadcast_to(
                (g * (1.0 / num_heads))[:, None, :], (num_nodes, num_heads, head_dim)
            )
        g_weighted = backend.take_rows(g_agg, dst)  # (E, H, F)
        g_messages = g_weighted * attention[:, :, None]
        g_attention = (g_weighted * messages).sum(axis=-1)  # (E, H)
        # Closed-form segment-softmax adjoint (the max shift and the 1e-16
        # denominator guard are segment-constant, so both cancel).
        weighted_grad = attention * g_attention
        segment_dot = backend.segment_sum(weighted_grad, dst, num_nodes)
        g_logits = (
            weighted_grad - attention * backend.take_rows(segment_dot, dst)
        ) * slope
        g_src_scores = backend.scatter_rows(g_logits, src, num_nodes)  # (N, H)
        g_dst_scores = backend.scatter_rows(g_logits, dst, num_nodes)
        g_transformed = (
            g_src_scores[:, :, None] * src_vec
            + g_dst_scores[:, :, None] * dst_vec
            + backend.scatter_rows(g_messages, src, num_nodes)
        )
        attention_src._accumulate((transformed * g_src_scores[:, :, None]).sum(axis=0))
        attention_dst._accumulate((transformed * g_dst_scores[:, :, None]).sum(axis=0))
        flat = g_transformed.reshape(num_nodes, num_heads * head_dim)
        weight._accumulate(features.data.T @ flat)
        if features.requires_grad:
            features._accumulate(flat @ weight.data.T)

    parents = (features, weight, attention_src, attention_dst, bias)
    return Tensor._make(out, parents, backward)


def fused_pool_head(
    node_embeddings: Tensor,
    matrix: Union[sp.spmatrix, PreparedMatrix],
    weight: Tensor,
    bias: Optional[Tensor] = None,
) -> Tensor:
    """Fused mean-pool + linear head: ``(P @ E) W + b`` as one autograd node.

    ``P`` is the constant mean-pool matrix; the adjoints are ``db = Σ_rows g``,
    ``dW = (P E)ᵀ g`` and ``dE = Pᵀ (g Wᵀ)``.
    """
    backend = get_backend()
    prepared = backend.prepare_matrix(matrix)
    pooled = backend.spmm(prepared, node_embeddings.data)
    out = pooled @ weight.data
    if bias is not None:
        out = out + bias.data

    def backward(grad: np.ndarray) -> None:
        g = _as_array(grad)
        if bias is not None:
            bias._accumulate(g)
        weight._accumulate(pooled.T @ g)
        if node_embeddings.requires_grad:
            node_embeddings._accumulate(backend.spmm_t(prepared, g @ weight.data.T))

    parents = (node_embeddings, weight) if bias is None else (node_embeddings, weight, bias)
    return Tensor._make(out, parents, backward)


def fused_folded_head(
    hidden: Tensor,
    matrix: Union[sp.spmatrix, PreparedMatrix],
    layer_weight: Tensor,
    layer_bias: Tensor,
    head_weight: Tensor,
    head_bias: Tensor,
    bias_operator: np.ndarray,
) -> Tensor:
    """Final folded GCN layer and classifier head as one autograd node.

    Computes ``(M (H W_f) + s ⊗ b_f) W_h + b_h`` — with ``M`` the folded
    ``pool @ adjacency`` operator and ``s`` its row sums — reassociated as

        ``M (H (W_f W_h)) + s ⊗ (b_f W_h) + b_h``.

    Both weight products collapse into one tiny ``(d, C)`` matrix, so the
    wide gemm, the sparse product and every intermediate run at
    ``num_classes`` columns instead of ``hidden_dim``.  Like propagation
    folding this reassociates float ops (the benchmark gates it on exact
    final metrics and rtol-level losses against the reference path).

    Adjoints (``g`` the incoming gradient, ``S = Mᵀ g``, ``T = Hᵀ S``,
    ``r = sᵀ g``):

    * ``db_h = Σ_rows g``,
    * ``dW_h = W_fᵀ T + b_f ⊗ r``,
    * ``dW_f = T W_hᵀ``,  ``db_f = r W_hᵀ``,
    * ``dH = S (W_f W_h)ᵀ``.
    """
    backend = get_backend()
    prepared = backend.prepare_matrix(matrix)
    combined = layer_weight.data @ head_weight.data
    support = hidden.data @ combined
    pooled = backend.spmm(prepared, support)
    combined_bias = layer_bias.data @ head_weight.data
    out = pooled + np.multiply.outer(bias_operator, combined_bias) + head_bias.data

    def backward(grad: np.ndarray) -> None:
        g = _as_array(grad)
        head_bias._accumulate(g)
        row_grad = bias_operator @ g
        scattered = backend.spmm_t(prepared, g)
        projected = hidden.data.T @ scattered
        head_weight._accumulate(
            layer_weight.data.T @ projected
            + np.multiply.outer(layer_bias.data, row_grad)
        )
        layer_weight._accumulate(projected @ head_weight.data.T)
        layer_bias._accumulate(row_grad @ head_weight.data.T)
        if hidden.requires_grad:
            hidden._accumulate(scattered @ combined.T)

    parents = (hidden, layer_weight, layer_bias, head_weight, head_bias)
    return Tensor._make(out, parents, backward)


def gather_rows_columns(tensor: Tensor, column_index: np.ndarray) -> Tensor:
    """Pick one entry per row: ``out[i] = tensor[i, column_index[i]]``.

    Used by the cross-entropy loss to select the log-probability of the
    target class of each node.
    """
    column_index = np.asarray(column_index, dtype=np.int64)
    rows = np.arange(tensor.data.shape[0])
    out_data = tensor.data[rows, column_index]

    def backward(grad: np.ndarray) -> None:
        full = np.zeros_like(tensor.data)
        np.add.at(full, (rows, column_index), _as_array(grad))
        tensor._accumulate(full)

    return Tensor._make(out_data, (tensor,), backward)


def softmax(tensor: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = tensor - Tensor(tensor.data.max(axis=axis, keepdims=True))
    exp_values = shifted.exp()
    return exp_values / exp_values.sum(axis=axis, keepdims=True)


def log_softmax(tensor: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = tensor - Tensor(tensor.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def fused_masked_cross_entropy(
    logits: Tensor,
    targets: np.ndarray,
    weights: np.ndarray,
    total: float,
) -> Tensor:
    """Masked mean cross-entropy as a single autograd node.

    Computes ``-(sum_i weights[i] * log_softmax(logits)[i, targets[i]]) /
    total``.  The forward replicates the composite ``log_softmax ->
    gather -> masked mean`` chain float operation for float operation (same
    max-shift, same reduction order), so the loss value is bit-identical to
    the un-fused expression.  The backward uses the closed-form adjoint
    ``(softmax - onehot) * weights / total`` instead of unwinding the five
    intermediate nodes.

    ``logits`` may be ``(N, C)`` (scalar loss) or a stacked ``(K, N, C)``
    batch sharing ``targets``/``weights`` across slices (loss vector of
    shape ``(K,)``, slice ``k`` bit-identical to the 2-D call on
    ``logits[k]``).
    """
    targets = np.asarray(targets, dtype=np.int64)
    weights = np.asarray(weights, dtype=np.float64)
    data = logits.data
    if data.ndim not in (2, 3):
        raise ValueError("fused_masked_cross_entropy expects 2-D or 3-D logits")
    shifted = data - data.max(axis=-1, keepdims=True)
    exp_values = np.exp(shifted)
    denominator = exp_values.sum(axis=-1, keepdims=True)
    log_probabilities = shifted - np.log(denominator)
    rows = np.arange(data.shape[-2])
    if data.ndim == 2:
        picked = log_probabilities[rows, targets]
    else:
        # The advanced-index gather returns a transposed-stride (K, N)
        # view-like array; materialise it C-contiguous so the row reduction
        # below uses the same pairwise summation as the 1-D per-point sum.
        picked = np.ascontiguousarray(log_probabilities[:, rows, targets])
    value = -(picked * weights).sum(axis=-1) / total
    coefficients = weights / total

    def backward(grad: np.ndarray) -> None:
        grad = _as_array(grad)
        delta = exp_values / denominator
        if data.ndim == 2:
            delta[rows, targets] -= 1.0
            scale = coefficients * grad
            logits._accumulate(delta * scale[:, None])
        else:
            delta[:, rows, targets] -= 1.0
            scale = coefficients[None, :] * np.reshape(grad, (-1, 1))
            logits._accumulate(delta * scale[:, :, None])

    return Tensor._make(value, (logits,), backward)


def dropout(
    tensor: Tensor,
    probability: float,
    training: bool,
    rng: Optional[np.random.Generator] = None,
) -> Tensor:
    """Inverted dropout: zero entries with ``probability`` and rescale.

    A no-op when ``training`` is false or ``probability`` is zero.
    """
    if not training or probability <= 0.0:
        return tensor
    if not 0.0 <= probability < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {probability}")
    rng = rng if rng is not None else np.random.default_rng()
    keep_probability = 1.0 - probability
    mask = (rng.random(tensor.data.shape) < keep_probability) / keep_probability
    # One fused node instead of the generic broadcasting multiply: same
    # forward multiply, and the adjoint is the same ``grad * mask`` without
    # the unbroadcast bookkeeping (the mask always matches the input shape).
    value = tensor.data * mask

    def backward(grad: np.ndarray) -> None:
        tensor._accumulate(_as_array(grad) * mask)

    return Tensor._make(value, (tensor,), backward)


def linear(tensor: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``tensor @ weight + bias``."""
    out = tensor @ weight
    if bias is not None:
        out = out + bias
    return out


def embedding_mean(tensor: Tensor, index_groups: Union[np.ndarray, list]) -> Tensor:
    """Average rows of ``tensor`` grouped by ``index_groups``.

    Convenience wrapper over :func:`scatter_add` used by the POOL layer: the
    groups are given as an integer segment id per row.
    """
    index_groups = np.asarray(index_groups, dtype=np.int64)
    num_segments = int(index_groups.max()) + 1 if index_groups.size else 0
    sums = scatter_add(tensor, index_groups, num_segments)
    counts = get_backend().segment_counts(index_groups, num_segments)
    counts = np.maximum(counts, 1.0).reshape(-1, *([1] * (tensor.data.ndim - 1)))
    return sums / Tensor(counts)
