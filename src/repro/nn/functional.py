"""Functional building blocks for graph neural networks.

These functions complement :class:`repro.nn.tensor.Tensor` with the graph-
specific primitives GCN and GAT need: multiplication by a *constant* sparse
matrix (the normalised adjacency), row gathering / scatter-add for edge-wise
computation, segment softmax for attention coefficients and the usual
classification heads (softmax / log-softmax) plus dropout.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np
import scipy.sparse as sp

from .backend import PreparedMatrix, get_backend
from .tensor import Tensor, _as_array


def sparse_matmul(matrix: Union[sp.spmatrix, PreparedMatrix], tensor: Tensor) -> Tensor:
    """Multiply a constant sparse matrix by a dense tensor: ``matrix @ tensor``.

    The sparse matrix is treated as a constant (no gradient is computed for
    it); the gradient w.r.t. ``tensor`` is ``matrix.T @ grad``.  This is the
    workhorse of GCN message passing where ``matrix`` is the symmetrically
    normalised adjacency.  The kernels (including the transposed product of
    the backward pass) are supplied by the active :mod:`repro.nn.backend`.
    """
    if not (sp.issparse(matrix) or isinstance(matrix, PreparedMatrix)):
        raise TypeError("sparse_matmul expects a scipy sparse matrix")
    backend = get_backend()
    prepared = backend.prepare_matrix(matrix)
    out_data = backend.spmm(prepared, tensor.data)

    def backward(grad: np.ndarray) -> None:
        tensor._accumulate(backend.spmm_t(prepared, _as_array(grad)))

    return Tensor._make(out_data, (tensor,), backward)


def gather(tensor: Tensor, index: np.ndarray) -> Tensor:
    """Select rows ``tensor[index]`` with duplicate-aware gradients."""
    backend = get_backend()
    index = np.asarray(index, dtype=np.int64)
    out_data = backend.take_rows(tensor.data, index)
    num_rows = tensor.data.shape[0]

    def backward(grad: np.ndarray) -> None:
        tensor._accumulate(backend.scatter_rows(_as_array(grad), index, num_rows))

    return Tensor._make(out_data, (tensor,), backward)


def scatter_add(tensor: Tensor, index: np.ndarray, num_segments: int) -> Tensor:
    """Sum rows of ``tensor`` into ``num_segments`` buckets given by ``index``.

    ``out[k] = sum_{i : index[i] == k} tensor[i]``.  The gradient of a bucket
    flows back equally (as a copy) to every row that contributed to it.
    """
    backend = get_backend()
    index = np.asarray(index, dtype=np.int64)
    out_data = backend.segment_sum(tensor.data, index, num_segments)

    def backward(grad: np.ndarray) -> None:
        tensor._accumulate(backend.take_rows(_as_array(grad), index))

    return Tensor._make(out_data, (tensor,), backward)


def segment_softmax(values: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Softmax of ``values`` normalised within each segment.

    Used by GAT to normalise attention logits over the incoming edges of each
    destination node.  ``values`` may be of shape ``(E,)`` or ``(E, H)`` for
    multi-head attention; segments are defined along the first axis.
    """
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    # Subtract the per-segment max for numerical stability.  The max is a
    # constant shift within each segment: its gradient contribution cancels
    # exactly in the softmax, so treating it as a constant is correct.
    seg_max = get_backend().segment_max(values.data, segment_ids, num_segments)
    seg_max = np.where(np.isfinite(seg_max), seg_max, 0.0)

    shifted = values - Tensor(seg_max[segment_ids])
    exp_values = shifted.exp()
    denom = scatter_add(exp_values, segment_ids, num_segments)
    denom_per_edge = gather(denom, segment_ids)
    return exp_values / (denom_per_edge + 1e-16)


def edge_attention_softmax(
    src_scores: Tensor,
    dst_scores: Tensor,
    src: np.ndarray,
    dst: np.ndarray,
    num_segments: int,
    negative_slope: float = 0.2,
) -> Tensor:
    """Fused GAT attention kernel: gather + add + leaky-relu + segment softmax.

    Computes ``segment_softmax(leaky_relu(src_scores[src] + dst_scores[dst]))``
    normalised over the incoming edges of each destination — the attention
    coefficients of a GAT layer — as **one** autograd node instead of the
    seven-node composite (two gathers, add, leaky-relu, exp, scatter, divide).
    All array work runs through the active backend (so the fast backend's
    cached CSR aggregation matrices serve the segment reductions), and the
    backward pass uses the closed-form softmax adjoint

        d/d logits = a * (g - segment_sum(a * g)[dst]) * leaky_relu'(logits)

    which matches the composite graph's gradient exactly (the per-segment max
    shift is constant within a segment and the ``1e-16`` denominator guard is
    segment-constant too, so both cancel from the adjoint).
    """
    backend = get_backend()
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    logits = backend.take_rows(src_scores.data, src) + backend.take_rows(dst_scores.data, dst)
    slope = np.where(logits > 0, 1.0, negative_slope)
    activated = logits * slope
    seg_max = backend.segment_max(activated, dst, num_segments)
    seg_max = np.where(np.isfinite(seg_max), seg_max, 0.0)
    exp_values = np.exp(activated - backend.take_rows(seg_max, dst))
    denominator = backend.segment_sum(exp_values, dst, num_segments) + 1e-16
    attention = exp_values / backend.take_rows(denominator, dst)
    num_src_rows = src_scores.data.shape[0]
    num_dst_rows = dst_scores.data.shape[0]

    def backward(grad: np.ndarray) -> None:
        grad = _as_array(grad)
        weighted = attention * grad
        segment_dot = backend.segment_sum(weighted, dst, num_segments)
        grad_logits = (weighted - attention * backend.take_rows(segment_dot, dst)) * slope
        src_scores._accumulate(backend.scatter_rows(grad_logits, src, num_src_rows))
        dst_scores._accumulate(backend.scatter_rows(grad_logits, dst, num_dst_rows))

    return Tensor._make(attention, (src_scores, dst_scores), backward)


def gather_rows_columns(tensor: Tensor, column_index: np.ndarray) -> Tensor:
    """Pick one entry per row: ``out[i] = tensor[i, column_index[i]]``.

    Used by the cross-entropy loss to select the log-probability of the
    target class of each node.
    """
    column_index = np.asarray(column_index, dtype=np.int64)
    rows = np.arange(tensor.data.shape[0])
    out_data = tensor.data[rows, column_index]

    def backward(grad: np.ndarray) -> None:
        full = np.zeros_like(tensor.data)
        np.add.at(full, (rows, column_index), _as_array(grad))
        tensor._accumulate(full)

    return Tensor._make(out_data, (tensor,), backward)


def softmax(tensor: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = tensor - Tensor(tensor.data.max(axis=axis, keepdims=True))
    exp_values = shifted.exp()
    return exp_values / exp_values.sum(axis=axis, keepdims=True)


def log_softmax(tensor: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = tensor - Tensor(tensor.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def dropout(
    tensor: Tensor,
    probability: float,
    training: bool,
    rng: Optional[np.random.Generator] = None,
) -> Tensor:
    """Inverted dropout: zero entries with ``probability`` and rescale.

    A no-op when ``training`` is false or ``probability`` is zero.
    """
    if not training or probability <= 0.0:
        return tensor
    if not 0.0 <= probability < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {probability}")
    rng = rng if rng is not None else np.random.default_rng()
    keep_probability = 1.0 - probability
    mask = (rng.random(tensor.data.shape) < keep_probability) / keep_probability
    return tensor * Tensor(mask)


def linear(tensor: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``tensor @ weight + bias``."""
    out = tensor @ weight
    if bias is not None:
        out = out + bias
    return out


def embedding_mean(tensor: Tensor, index_groups: Union[np.ndarray, list]) -> Tensor:
    """Average rows of ``tensor`` grouped by ``index_groups``.

    Convenience wrapper over :func:`scatter_add` used by the POOL layer: the
    groups are given as an integer segment id per row.
    """
    index_groups = np.asarray(index_groups, dtype=np.int64)
    num_segments = int(index_groups.max()) + 1 if index_groups.size else 0
    sums = scatter_add(tensor, index_groups, num_segments)
    counts = get_backend().segment_counts(index_groups, num_segments)
    counts = np.maximum(counts, 1.0).reshape(-1, *([1] * (tensor.data.ndim - 1)))
    return sums / Tensor(counts)
