"""Pluggable compute backends for the nn / gnn kernels.

Every dense/sparse kernel that :mod:`repro.nn.functional` (and through it the
GCN / GAT encoders) relies on is routed through an :class:`OpsBackend`.  The
backend owns exactly the operations whose implementation strategy matters for
performance or hardware portability:

* ``spmm`` / ``spmm_t`` — multiplication by a constant sparse propagation
  matrix (and by its transpose, for the backward pass);
* ``take_rows`` / ``scatter_rows`` — row gather and its duplicate-aware
  adjoint;
* ``segment_sum`` / ``segment_counts`` / ``segment_max`` — unsorted segment
  reductions used by pooling and by the GAT edge softmax.

Three backends ship with the repository:

``numpy`` (default)
    Optimised numpy/scipy kernels: the sparse matrix and its transpose are
    prepared once and cached, and segment reductions go through a cached CSR
    aggregation matrix instead of ``np.add.at`` (which is unbuffered and an
    order of magnitude slower).

``reference``
    The straightforward kernels the original implementation used
    (``np.add.at``, per-call transposes).  Numerically this is the ground
    truth the fast kernels are tested against, and the benchmark harness uses
    it to emulate the pre-refactor execution cost.

``dense``
    Densifies the propagation matrix and uses plain ``@``.  Only sensible for
    small graphs; exists so sparse kernels can be validated against dense
    linear algebra (and as the template for a future torch/GPU backend, which
    only needs to implement this same interface on device tensors).

Use :func:`set_backend` to switch globally or :func:`use_backend` as a
context manager; :func:`register_backend` installs third-party backends.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Dict, Iterator, Optional, Union

import numpy as np
import scipy.sparse as sp

from ..caching import IdentityCache


class PreparedMatrix:
    """A constant sparse matrix pre-converted to CSR with a cached transpose."""

    __slots__ = ("csr", "csr_t", "__weakref__")

    def __init__(self, matrix: sp.spmatrix) -> None:
        self.csr = matrix.tocsr()
        self.csr_t = self.csr.T.tocsr()

    @property
    def shape(self):
        return self.csr.shape


MatrixLike = Union[sp.spmatrix, PreparedMatrix]


class OpsBackend:
    """Interface of a compute backend (the default methods are the reference
    numpy kernels; subclasses override what they can do faster)."""

    name = "abstract"
    #: Whether model-level fast paths (fused pooling matrices, reuse of
    #: constant-input layer outputs across forward passes) may be taken while
    #: this backend is active.  The reference backend keeps it off so that it
    #: executes the un-fused computation graph op for op.
    allow_fused = True

    # ------------------------------------------------------------------ #
    # Sparse matmul
    # ------------------------------------------------------------------ #
    def prepare_matrix(self, matrix: MatrixLike) -> MatrixLike:
        """Pre-process a constant sparse matrix for repeated products."""
        return matrix

    def spmm(self, matrix: MatrixLike, dense: np.ndarray) -> np.ndarray:
        """``matrix @ dense`` for a constant sparse ``matrix``."""
        csr = matrix.csr if isinstance(matrix, PreparedMatrix) else matrix.tocsr()
        return csr @ dense

    def spmm_t(self, matrix: MatrixLike, dense: np.ndarray) -> np.ndarray:
        """``matrix.T @ dense`` (the adjoint of :meth:`spmm`)."""
        if isinstance(matrix, PreparedMatrix):
            return matrix.csr_t @ dense
        return matrix.tocsr().T.tocsr() @ dense

    # ------------------------------------------------------------------ #
    # Row gather / scatter
    # ------------------------------------------------------------------ #
    def take_rows(self, data: np.ndarray, index: np.ndarray) -> np.ndarray:
        """``data[index]`` along the first axis."""
        return data[index]

    def scatter_rows(self, values: np.ndarray, index: np.ndarray, num_rows: int) -> np.ndarray:
        """Adjoint of :meth:`take_rows`: ``out[index[i]] += values[i]``."""
        out = np.zeros((num_rows,) + values.shape[1:], dtype=np.float64)
        np.add.at(out, index, values)
        return out

    # ------------------------------------------------------------------ #
    # Segment reductions (unsorted segment ids along the first axis)
    # ------------------------------------------------------------------ #
    def segment_sum(self, values: np.ndarray, index: np.ndarray, num_segments: int) -> np.ndarray:
        """``out[k] = sum_{i: index[i] == k} values[i]``."""
        return self.scatter_rows(values, index, num_segments)

    def segment_counts(self, index: np.ndarray, num_segments: int) -> np.ndarray:
        """Number of rows per segment, as float64."""
        counts = np.zeros(num_segments, dtype=np.float64)
        np.add.at(counts, index, 1.0)
        return counts

    def segment_max(self, values: np.ndarray, index: np.ndarray, num_segments: int) -> np.ndarray:
        """Per-segment elementwise maximum (``-inf`` for empty segments)."""
        out = np.full((num_segments,) + values.shape[1:], -np.inf)
        np.maximum.at(out, index, values)
        return out


class ReferenceBackend(OpsBackend):
    """The seed implementation's kernels, kept verbatim as numerical ground
    truth (per-call transposes, unbuffered ``np.add.at`` accumulation)."""

    name = "reference"
    allow_fused = False


class FastNumpyBackend(OpsBackend):
    """Optimised numpy/scipy kernels (the default backend).

    Two caches make the hot paths cheap:

    * :meth:`prepare_matrix` converts a propagation matrix to CSR **once**
      and also stores its transpose, so the backward pass never re-transposes
      (the seed code paid an O(nnz) transpose per backward call);
    * segment reductions build a CSR aggregation matrix per distinct index
      array and reuse it, replacing ``np.add.at`` (unbuffered, slow) with
      the C-optimised sparse matmul.

    Both caches key on ``id()`` of the input object guarded by a weak
    reference, so entries die with the arrays they describe.  Index arrays
    must therefore not be mutated in place after first use — which holds for
    every caller in this repository (graph structure is constant during
    training).
    """

    name = "numpy"

    def __init__(self) -> None:
        self._matrix_cache = IdentityCache()
        self._segment_cache = IdentityCache()

    # -- sparse matmul -------------------------------------------------- #
    def prepare_matrix(self, matrix: MatrixLike) -> PreparedMatrix:
        if isinstance(matrix, PreparedMatrix):
            return matrix
        prepared = self._matrix_cache.get(matrix)
        if prepared is None:
            prepared = self._matrix_cache.put(matrix, PreparedMatrix(matrix))
        return prepared

    def spmm(self, matrix: MatrixLike, dense: np.ndarray) -> np.ndarray:
        return self.prepare_matrix(matrix).csr @ dense

    def spmm_t(self, matrix: MatrixLike, dense: np.ndarray) -> np.ndarray:
        return self.prepare_matrix(matrix).csr_t @ dense

    # -- segment reductions --------------------------------------------- #
    def _aggregation_matrix(self, index: np.ndarray, num_segments: int) -> sp.csr_matrix:
        matrix = self._segment_cache.get(index, extra=int(num_segments))
        if matrix is None:
            num_rows = index.shape[0]
            matrix = self._segment_cache.put(
                index,
                sp.csr_matrix(
                    (np.ones(num_rows, dtype=np.float64), (index, np.arange(num_rows))),
                    shape=(int(num_segments), num_rows),
                ),
                extra=int(num_segments),
            )
        return matrix

    def scatter_rows(self, values: np.ndarray, index: np.ndarray, num_rows: int) -> np.ndarray:
        if values.size == 0:
            return np.zeros((num_rows,) + values.shape[1:], dtype=np.float64)
        matrix = self._aggregation_matrix(index, num_rows)
        if values.ndim <= 2:
            return np.asarray(matrix @ values, dtype=np.float64)
        flat = values.reshape(values.shape[0], -1)
        out = matrix @ flat
        return np.asarray(out, dtype=np.float64).reshape((num_rows,) + values.shape[1:])

    def segment_counts(self, index: np.ndarray, num_segments: int) -> np.ndarray:
        return np.bincount(index, minlength=num_segments).astype(np.float64)


class DenseBackend(OpsBackend):
    """Densifies the propagation matrix; validation / small-graph backend."""

    name = "dense"

    def __init__(self) -> None:
        self._dense_cache = IdentityCache()

    def _densify(self, matrix: MatrixLike) -> np.ndarray:
        if isinstance(matrix, PreparedMatrix):
            matrix = matrix.csr
        dense = self._dense_cache.get(matrix)
        if dense is None:
            dense = self._dense_cache.put(
                matrix, np.asarray(matrix.todense(), dtype=np.float64)
            )
        return dense

    def spmm(self, matrix: MatrixLike, dense: np.ndarray) -> np.ndarray:
        return self._densify(matrix) @ dense

    def spmm_t(self, matrix: MatrixLike, dense: np.ndarray) -> np.ndarray:
        return self._densify(matrix).T @ dense


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
_FACTORIES: Dict[str, Callable[[], OpsBackend]] = {
    "numpy": FastNumpyBackend,
    "reference": ReferenceBackend,
    "dense": DenseBackend,
}
_instances: Dict[str, OpsBackend] = {}
_active: Optional[OpsBackend] = None


def register_backend(name: str, factory: Callable[[], OpsBackend]) -> None:
    """Install a third-party backend factory (e.g. a torch/GPU backend)."""
    _FACTORIES[name] = factory
    _instances.pop(name, None)


def available_backends() -> list:
    """Names of all registered backends."""
    return sorted(_FACTORIES)


def _instantiate(name: str) -> OpsBackend:
    if name not in _FACTORIES:
        raise KeyError(f"unknown backend '{name}'; available: {available_backends()}")
    if name not in _instances:
        _instances[name] = _FACTORIES[name]()
    return _instances[name]


def get_backend() -> OpsBackend:
    """Return the active compute backend (default: the fast numpy backend)."""
    global _active
    if _active is None:
        _active = _instantiate("numpy")
    return _active


def set_backend(backend: Union[str, OpsBackend]) -> OpsBackend:
    """Switch the active backend globally; returns the new active backend."""
    global _active
    _active = _instantiate(backend) if isinstance(backend, str) else backend
    return _active


@contextmanager
def use_backend(backend: Union[str, OpsBackend]) -> Iterator[OpsBackend]:
    """Context manager that temporarily switches the active backend."""
    global _active
    previous = get_backend()
    switched = set_backend(backend)
    try:
        yield switched
    finally:
        _active = previous
