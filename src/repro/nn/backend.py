"""Pluggable compute backends for the nn / gnn kernels.

Every dense/sparse kernel that :mod:`repro.nn.functional` (and through it the
GCN / GAT encoders) relies on is routed through an :class:`OpsBackend`.  The
backend owns exactly the operations whose implementation strategy matters for
performance or hardware portability:

* ``spmm`` / ``spmm_t`` — multiplication by a constant sparse propagation
  matrix (and by its transpose, for the backward pass);
* ``take_rows`` / ``scatter_rows`` — row gather and its duplicate-aware
  adjoint;
* ``segment_sum`` / ``segment_counts`` / ``segment_max`` — unsorted segment
  reductions used by pooling and by the GAT edge softmax.

Three backends ship with the repository:

``numpy`` (default)
    Optimised numpy/scipy kernels: the sparse matrix and its transpose are
    prepared once and cached, and segment reductions go through a cached CSR
    aggregation matrix instead of ``np.add.at`` (which is unbuffered and an
    order of magnitude slower).

``reference``
    The straightforward kernels the original implementation used
    (``np.add.at``, per-call transposes).  Numerically this is the ground
    truth the fast kernels are tested against, and the benchmark harness uses
    it to emulate the pre-refactor execution cost.

``dense``
    Densifies the propagation matrix and uses plain ``@``.  Only sensible for
    small graphs; exists so sparse kernels can be validated against dense
    linear algebra (and as the template for a future torch/GPU backend, which
    only needs to implement this same interface on device tensors).

A fourth backend, ``torch``, is registered automatically when torch is
importable (install the ``repro[torch]`` extra); see
:mod:`repro.nn.torch_backend`.  The numpy backends remain the default and the
parity oracle — torch is an optional accelerator, never a dependency.

Use :func:`set_backend` to switch globally or :func:`use_backend` as a
context manager; :func:`register_backend` installs third-party backends.
"""

from __future__ import annotations

import importlib.util
from collections import OrderedDict
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, Optional, Sequence, Tuple, Union

import numpy as np
import scipy.sparse as sp

from ..caching import IdentityCache

try:  # scipy's C kernel for multi-vector CSR products (see _spmm_stack)
    from scipy.sparse._sparsetools import csr_matvecs as _csr_matvecs
except ImportError:  # pragma: no cover - older scipy layouts
    _csr_matvecs = None


class PreparedMatrix:
    """A constant sparse matrix pre-converted to CSR with a cached transpose."""

    __slots__ = ("csr", "csr_t", "__weakref__")

    def __init__(self, matrix: sp.spmatrix) -> None:
        self.csr = matrix.tocsr()
        self.csr_t = self.csr.T.tocsr()

    @property
    def shape(self):
        return self.csr.shape


MatrixLike = Union[sp.spmatrix, PreparedMatrix]


class OpsBackend:
    """Interface of a compute backend (the default methods are the reference
    numpy kernels; subclasses override what they can do faster)."""

    name = "abstract"
    #: Whether model-level fast paths (fused pooling matrices, reuse of
    #: constant-input layer outputs across forward passes) may be taken while
    #: this backend is active.  The reference backend keeps it off so that it
    #: executes the un-fused computation graph op for op.
    allow_fused = True

    # ------------------------------------------------------------------ #
    # Sparse matmul
    # ------------------------------------------------------------------ #
    def prepare_matrix(self, matrix: MatrixLike) -> MatrixLike:
        """Pre-process a constant sparse matrix for repeated products."""
        return matrix

    def spmm(self, matrix: MatrixLike, dense: np.ndarray) -> np.ndarray:
        """``matrix @ dense`` for a constant sparse ``matrix``."""
        csr = matrix.csr if isinstance(matrix, PreparedMatrix) else matrix.tocsr()
        return csr @ dense

    def spmm_t(self, matrix: MatrixLike, dense: np.ndarray) -> np.ndarray:
        """``matrix.T @ dense`` (the adjoint of :meth:`spmm`)."""
        if isinstance(matrix, PreparedMatrix):
            return matrix.csr_t @ dense
        return matrix.tocsr().T.tocsr() @ dense

    def spmm_many(self, matrix: MatrixLike, dense_stack: np.ndarray) -> np.ndarray:
        """Batched :meth:`spmm` over a stacked ``(K, N, d)`` operand.

        Semantically ``stack([matrix @ dense_stack[k] for k in range(K)])``.
        Fast backends collapse the batch into a single sparse product; the
        default executes the per-slice definition, which doubles as the
        bit-for-bit oracle for the collapsed kernels.
        """
        return np.stack(
            [self.spmm(matrix, dense_stack[k]) for k in range(dense_stack.shape[0])]
        )

    def spmm_t_many(self, matrix: MatrixLike, dense_stack: np.ndarray) -> np.ndarray:
        """Batched :meth:`spmm_t` (the adjoint of :meth:`spmm_many`)."""
        return np.stack(
            [self.spmm_t(matrix, dense_stack[k]) for k in range(dense_stack.shape[0])]
        )

    def fold_chain(self, matrices: Sequence[MatrixLike]) -> MatrixLike:
        """Collapse a chain of constant sparse operators into one operator.

        ``fold_chain([A, B, C])`` returns an operator equal to ``A @ B @ C``
        in a representation the backend's :meth:`spmm` / :meth:`spmm_many`
        accept.  The chain members must all be constants (no gradients flow
        into them), which is exactly the situation for propagation matrices:
        the mean-pool matrix composed with the normalised tree adjacency can
        be precomputed once per tree batch and reused for every epoch and
        every sweep point that shares the construction.
        """
        if not matrices:
            raise ValueError("fold_chain requires at least one matrix")
        product: Optional[sp.csr_matrix] = None
        for matrix in matrices:
            csr = matrix.csr if isinstance(matrix, PreparedMatrix) else sp.csr_matrix(matrix)
            product = csr if product is None else product @ csr
        return self.prepare_matrix(product)

    # ------------------------------------------------------------------ #
    # Row gather / scatter
    # ------------------------------------------------------------------ #
    def take_rows(self, data: np.ndarray, index: np.ndarray) -> np.ndarray:
        """``data[index]`` along the first axis."""
        return data[index]

    def scatter_rows(self, values: np.ndarray, index: np.ndarray, num_rows: int) -> np.ndarray:
        """Adjoint of :meth:`take_rows`: ``out[index[i]] += values[i]``."""
        out = np.zeros((num_rows,) + values.shape[1:], dtype=np.float64)
        np.add.at(out, index, values)
        return out

    # ------------------------------------------------------------------ #
    # Segment reductions (unsorted segment ids along the first axis)
    # ------------------------------------------------------------------ #
    def segment_sum(self, values: np.ndarray, index: np.ndarray, num_segments: int) -> np.ndarray:
        """``out[k] = sum_{i: index[i] == k} values[i]``."""
        return self.scatter_rows(values, index, num_segments)

    def segment_counts(self, index: np.ndarray, num_segments: int) -> np.ndarray:
        """Number of rows per segment, as float64."""
        counts = np.zeros(num_segments, dtype=np.float64)
        np.add.at(counts, index, 1.0)
        return counts

    def segment_max(self, values: np.ndarray, index: np.ndarray, num_segments: int) -> np.ndarray:
        """Per-segment elementwise maximum (``-inf`` for empty segments)."""
        out = np.full((num_segments,) + values.shape[1:], -np.inf)
        np.maximum.at(out, index, values)
        return out


class ReferenceBackend(OpsBackend):
    """The seed implementation's kernels, kept verbatim as numerical ground
    truth (per-call transposes, unbuffered ``np.add.at`` accumulation)."""

    name = "reference"
    allow_fused = False


class FastNumpyBackend(OpsBackend):
    """Optimised numpy/scipy kernels (the default backend).

    Two caches make the hot paths cheap:

    * :meth:`prepare_matrix` converts a propagation matrix to CSR **once**
      and also stores its transpose, so the backward pass never re-transposes
      (the seed code paid an O(nnz) transpose per backward call);
    * segment reductions build a CSR aggregation matrix per distinct index
      array and reuse it, replacing ``np.add.at`` (unbuffered, slow) with
      the C-optimised sparse matmul.

    Both caches key on ``id()`` of the input object guarded by a weak
    reference, so entries die with the arrays they describe.  Index arrays
    must therefore not be mutated in place after first use — which holds for
    every caller in this repository (graph structure is constant during
    training).
    """

    name = "numpy"

    def __init__(self) -> None:
        self._matrix_cache = IdentityCache()
        self._segment_cache = IdentityCache()

    # -- sparse matmul -------------------------------------------------- #
    def prepare_matrix(self, matrix: MatrixLike) -> PreparedMatrix:
        if isinstance(matrix, PreparedMatrix):
            return matrix
        prepared = self._matrix_cache.get(matrix)
        if prepared is None:
            prepared = self._matrix_cache.put(matrix, PreparedMatrix(matrix))
        return prepared

    def spmm(self, matrix: MatrixLike, dense: np.ndarray) -> np.ndarray:
        return self.prepare_matrix(matrix).csr @ dense

    def spmm_t(self, matrix: MatrixLike, dense: np.ndarray) -> np.ndarray:
        return self.prepare_matrix(matrix).csr_t @ dense

    def spmm_many(self, matrix: MatrixLike, dense_stack: np.ndarray) -> np.ndarray:
        return self._spmm_stack(self.prepare_matrix(matrix).csr, dense_stack)

    def spmm_t_many(self, matrix: MatrixLike, dense_stack: np.ndarray) -> np.ndarray:
        return self._spmm_stack(self.prepare_matrix(matrix).csr_t, dense_stack)

    #: Above this many stacked elements the transpose copies of the
    #: reordered single-kernel form cost more than K kernel launches.
    _SPMM_STACK_REORDER_LIMIT = 1 << 16

    @staticmethod
    def _spmm_stack(csr: sp.csr_matrix, dense_stack: np.ndarray) -> np.ndarray:
        """CSR product applied to all K slices.

        Small stacks are reordered ``(K, N, d) -> (N, K*d)`` so a single
        multi-vector CSR multiply serves every slice; large stacks run one
        kernel per slice, which skips the two transpose copies (each the
        size of the stack) that the reordering needs.  scipy's multi-vector
        kernel accumulates each output column independently in row order —
        exactly the per-slice accumulation order — so both forms produce
        slices bit-identical to ``csr @ dense_stack[k]``.
        """
        num_slices, num_rows, width = dense_stack.shape
        if dense_stack.size > FastNumpyBackend._SPMM_STACK_REORDER_LIMIT:
            if (
                _csr_matvecs is not None
                and csr.dtype == np.float64
                and dense_stack.dtype == np.float64
            ):
                # scipy's multi-vector kernel accumulates ``Y += A @ X`` into
                # a caller-provided buffer (this is exactly how scipy's own
                # ``@`` uses it), so each slice lands directly in the stacked
                # output with no per-slice result copy.
                out = np.zeros((num_slices, csr.shape[0], width), dtype=np.float64)
                for k in range(num_slices):
                    _csr_matvecs(
                        csr.shape[0],
                        num_rows,
                        width,
                        csr.indptr,
                        csr.indices,
                        csr.data,
                        np.ascontiguousarray(dense_stack[k]).ravel(),
                        out[k].ravel(),
                    )
                return out
            return np.stack([csr @ dense_stack[k] for k in range(num_slices)])
        flat = np.ascontiguousarray(dense_stack.transpose(1, 0, 2)).reshape(
            num_rows, num_slices * width
        )
        out = csr @ flat
        return np.ascontiguousarray(
            out.reshape(out.shape[0], num_slices, width).transpose(1, 0, 2)
        )

    # -- segment reductions --------------------------------------------- #
    def _aggregation_matrix(self, index: np.ndarray, num_segments: int) -> sp.csr_matrix:
        matrix = self._segment_cache.get(index, extra=int(num_segments))
        if matrix is None:
            num_rows = index.shape[0]
            matrix = self._segment_cache.put(
                index,
                sp.csr_matrix(
                    (np.ones(num_rows, dtype=np.float64), (index, np.arange(num_rows))),
                    shape=(int(num_segments), num_rows),
                ),
                extra=int(num_segments),
            )
        return matrix

    def scatter_rows(self, values: np.ndarray, index: np.ndarray, num_rows: int) -> np.ndarray:
        if values.size == 0:
            return np.zeros((num_rows,) + values.shape[1:], dtype=np.float64)
        matrix = self._aggregation_matrix(index, num_rows)
        if values.ndim <= 2:
            return np.asarray(matrix @ values, dtype=np.float64)
        flat = values.reshape(values.shape[0], -1)
        out = matrix @ flat
        return np.asarray(out, dtype=np.float64).reshape((num_rows,) + values.shape[1:])

    def segment_counts(self, index: np.ndarray, num_segments: int) -> np.ndarray:
        return np.bincount(index, minlength=num_segments).astype(np.float64)


class DenseBackend(OpsBackend):
    """Densifies the propagation matrix; validation / small-graph backend.

    Densified operators are kept in a small byte-budgeted LRU rather than an
    unbounded identity cache: a long sweep visits many tree batches, each
    with its own adjacency, and an unbounded cache would pin every densified
    copy for the lifetime of the backend instance.
    """

    name = "dense"
    #: Total bytes of densified operators kept alive; least-recently-used
    #: entries are evicted past this budget (the newest entry always stays).
    cache_budget_bytes = 32 * 1024 * 1024

    def __init__(self, cache_budget_bytes: Optional[int] = None) -> None:
        if cache_budget_bytes is not None:
            if cache_budget_bytes <= 0:
                raise ValueError("cache_budget_bytes must be positive")
            self.cache_budget_bytes = int(cache_budget_bytes)
        # id(matrix) -> (matrix, dense); the strong reference to the matrix
        # keeps the id stable for the entry's lifetime.
        self._dense_cache: "OrderedDict[int, Tuple[sp.spmatrix, np.ndarray]]" = OrderedDict()
        self._dense_cache_bytes = 0

    def _densify(self, matrix: MatrixLike) -> np.ndarray:
        if isinstance(matrix, PreparedMatrix):
            matrix = matrix.csr
        key = id(matrix)
        entry = self._dense_cache.get(key)
        if entry is not None and entry[0] is matrix:
            self._dense_cache.move_to_end(key)
            return entry[1]
        dense = np.asarray(matrix.todense(), dtype=np.float64)
        self._dense_cache[key] = (matrix, dense)
        self._dense_cache_bytes += dense.nbytes
        while (
            self._dense_cache_bytes > self.cache_budget_bytes
            and len(self._dense_cache) > 1
        ):
            _, (_, evicted) = self._dense_cache.popitem(last=False)
            self._dense_cache_bytes -= evicted.nbytes
        return dense

    def spmm(self, matrix: MatrixLike, dense: np.ndarray) -> np.ndarray:
        return self._densify(matrix) @ dense

    def spmm_t(self, matrix: MatrixLike, dense: np.ndarray) -> np.ndarray:
        return self._densify(matrix).T @ dense


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
_FACTORIES: Dict[str, Callable[[], OpsBackend]] = {
    "numpy": FastNumpyBackend,
    "reference": ReferenceBackend,
    "dense": DenseBackend,
}
_instances: Dict[str, OpsBackend] = {}
_active: Optional[OpsBackend] = None


def register_backend(name: str, factory: Callable[[], OpsBackend]) -> None:
    """Install a third-party backend factory (e.g. a torch/GPU backend)."""
    _FACTORIES[name] = factory
    _instances.pop(name, None)


def available_backends() -> list:
    """Names of all registered backends."""
    return sorted(_FACTORIES)


def _instantiate(name: str) -> OpsBackend:
    if name not in _FACTORIES:
        raise KeyError(f"unknown backend '{name}'; available: {available_backends()}")
    if name not in _instances:
        _instances[name] = _FACTORIES[name]()
    return _instances[name]


def get_backend() -> OpsBackend:
    """Return the active compute backend (default: the fast numpy backend)."""
    global _active
    if _active is None:
        _active = _instantiate("numpy")
    return _active


def resolve_backend(backend: Union[str, OpsBackend]) -> OpsBackend:
    """Return the backend instance for a name *without* activating it."""
    return _instantiate(backend) if isinstance(backend, str) else backend


def set_backend(backend: Union[str, OpsBackend]) -> OpsBackend:
    """Switch the active backend globally; returns the new active backend."""
    global _active
    _active = _instantiate(backend) if isinstance(backend, str) else backend
    return _active


@contextmanager
def use_backend(backend: Union[str, OpsBackend]) -> Iterator[OpsBackend]:
    """Context manager that temporarily switches the active backend.

    The previous backend is restored on *every* exit path — including an
    exception raised by the body or by the switch itself — so a failing
    sweep point can never leak its backend into the next one.
    """
    global _active
    previous = get_backend()
    try:
        yield set_backend(backend)
    finally:
        _active = previous


# --------------------------------------------------------------------------- #
# Optional backends
# --------------------------------------------------------------------------- #
def _torch_backend_factory() -> OpsBackend:
    from .torch_backend import TorchBackend

    return TorchBackend()


if importlib.util.find_spec("torch") is not None:  # pragma: no cover - env-dependent
    register_backend("torch", _torch_backend_factory)
