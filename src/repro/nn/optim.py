"""Optimizers: SGD (with momentum) and Adam.

The paper trains all models with Adam at learning rate 0.01; SGD is provided
for completeness and for tests that check optimizer-agnostic behaviour.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from .module import Parameter


class Optimizer:
    """Base class holding the parameter list and the ``zero_grad`` helper."""

    def __init__(self, parameters: Iterable[Parameter]) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")

    def zero_grad(self) -> None:
        """Clear all parameter gradients."""
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: List[Optional[np.ndarray]] = [None] * len(self.parameters)

    def step(self) -> None:
        for index, parameter in enumerate(self.parameters):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            if self.momentum:
                if self._velocity[index] is None:
                    self._velocity[index] = np.zeros_like(parameter.data)
                self._velocity[index] = self.momentum * self._velocity[index] + grad
                grad = self._velocity[index]
            parameter.data = parameter.data - self.lr * grad


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015)."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError("betas must be in [0, 1)")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._first_moment = [np.zeros_like(p.data) for p in self.parameters]
        self._second_moment = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias_correction1 = 1.0 - self.beta1 ** self._step_count
        bias_correction2 = 1.0 - self.beta2 ** self._step_count
        for index, parameter in enumerate(self.parameters):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            self._first_moment[index] = (
                self.beta1 * self._first_moment[index] + (1.0 - self.beta1) * grad
            )
            self._second_moment[index] = (
                self.beta2 * self._second_moment[index] + (1.0 - self.beta2) * grad ** 2
            )
            m_hat = self._first_moment[index] / bias_correction1
            v_hat = self._second_moment[index] / bias_correction2
            parameter.data = parameter.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
