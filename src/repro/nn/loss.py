"""Loss functions used across the supervised and unsupervised pipelines."""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import functional as F
from .backend import get_backend
from .tensor import Tensor


def cross_entropy(
    logits: Tensor,
    targets: np.ndarray,
    mask: Optional[np.ndarray] = None,
) -> Tensor:
    """Mean cross-entropy between ``logits`` and integer class ``targets``.

    Parameters
    ----------
    logits:
        Tensor of shape ``(N, C)``.
    targets:
        Integer array of shape ``(N,)`` with values in ``[0, C)``.
    mask:
        Optional boolean array of shape ``(N,)``; when provided the loss is
        averaged only over the masked rows (used to restrict the loss to the
        training split in transductive node classification).
    """
    targets = np.asarray(targets, dtype=np.int64)
    if logits.data.ndim != 2:
        raise ValueError("cross_entropy expects 2-D logits")
    if targets.shape[0] != logits.data.shape[0]:
        raise ValueError("logits and targets must agree on the first dimension")
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
        weights = mask.astype(np.float64)
        total = max(weights.sum(), 1.0)
        if get_backend().allow_fused:
            # Single-node loss: forward bits match the composite chain
            # below; backward is the closed-form softmax adjoint.
            return F.fused_masked_cross_entropy(logits, targets, weights, total)
    log_probabilities = F.log_softmax(logits, axis=-1)
    picked = F.gather_rows_columns(log_probabilities, targets)
    if mask is not None:
        return -(picked * Tensor(weights)).sum() / total
    return -picked.mean()


def binary_cross_entropy_with_logits(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Numerically stable binary cross-entropy on raw logits.

    Uses the identity ``BCE(x, y) = max(x, 0) - x*y + log(1 + exp(-|x|))``.
    """
    targets_arr = np.asarray(targets, dtype=np.float64)
    positive_part = logits.clip(0.0, np.inf)
    softplus = (Tensor(np.ones_like(logits.data)) + (-_abs(logits)).exp()).log()
    loss = positive_part - logits * Tensor(targets_arr) + softplus
    return loss.mean()


def nll_loss(log_probabilities: Tensor, targets: np.ndarray) -> Tensor:
    """Negative log-likelihood given log-probabilities."""
    picked = F.gather_rows_columns(log_probabilities, np.asarray(targets, dtype=np.int64))
    return -picked.mean()


def link_prediction_loss(
    source: Tensor,
    positive: Tensor,
    negative: Tensor,
) -> Tensor:
    """Unsupervised link-prediction loss (paper Eq. 33).

    ``-sum log sigma(h_u . h_v+)  - sum log sigma(-h_u . h_v-)`` averaged over
    the sampled pairs.  ``source``, ``positive`` and ``negative`` are row-
    aligned embedding tensors.
    """
    positive_scores = (source * positive).sum(axis=-1)
    negative_scores = (source * negative).sum(axis=-1)
    positive_term = _log_sigmoid(positive_scores)
    negative_term = _log_sigmoid(-negative_scores)
    return -(positive_term.mean() + negative_term.mean())


def mse_loss(predictions: Tensor, targets: np.ndarray) -> Tensor:
    """Mean squared error."""
    diff = predictions - Tensor(np.asarray(targets, dtype=np.float64))
    return (diff * diff).mean()


def _abs(tensor: Tensor) -> Tensor:
    """Differentiable absolute value (sub-gradient 0 at the origin)."""
    sign = Tensor(np.sign(tensor.data))
    return tensor * sign


def _log_sigmoid(tensor: Tensor) -> Tensor:
    """Numerically stable ``log(sigmoid(x)) = -softplus(-x)``."""
    negative = -tensor
    clipped = negative.clip(-60.0, 60.0)
    return -(Tensor(np.ones_like(tensor.data)) + clipped.exp()).log()
