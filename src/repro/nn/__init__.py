"""Numpy-based neural network substrate (autograd, layers, optimizers).

This subpackage replaces the PyTorch dependency of the original Lumos
implementation.  It is intentionally small but complete for the needs of the
paper: dense/sparse linear algebra with reverse-mode autodiff, GNN-oriented
scatter/gather primitives, Glorot initialisation, dropout, Adam/SGD and the
supervised / unsupervised losses used in the evaluation.
"""

from . import functional
from . import init
from .backend import (
    OpsBackend,
    available_backends,
    get_backend,
    register_backend,
    set_backend,
    use_backend,
)
from .layers import MLP, Dropout, LeakyReLU, Linear, ReLU, Sigmoid, Tanh
from .loss import (
    binary_cross_entropy_with_logits,
    cross_entropy,
    link_prediction_loss,
    mse_loss,
    nll_loss,
)
from .module import Module, Parameter, Sequential
from .optim import SGD, Adam, Optimizer
from .tensor import Tensor, as_tensor, concat, no_grad, ones, stack, zeros

__all__ = [
    "functional",
    "init",
    "OpsBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "set_backend",
    "use_backend",
    "Tensor",
    "as_tensor",
    "concat",
    "stack",
    "zeros",
    "ones",
    "no_grad",
    "Module",
    "Parameter",
    "Sequential",
    "Linear",
    "Dropout",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "MLP",
    "Optimizer",
    "SGD",
    "Adam",
    "cross_entropy",
    "nll_loss",
    "binary_cross_entropy_with_logits",
    "link_prediction_loss",
    "mse_loss",
]
