"""Generic (non graph-specific) neural network layers."""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import functional as F
from . import init
from .module import Module, Parameter
from .tensor import Tensor


class Linear(Module):
    """Fully connected layer ``y = x W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Linear layer dimensions must be positive")
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((in_features, out_features), rng=rng), name="weight")
        self.bias = Parameter(init.zeros((out_features,)), name="bias") if bias else None

    def forward(self, inputs: Tensor) -> Tensor:
        return F.linear(inputs, self.weight, self.bias)

    def __repr__(self) -> str:
        return f"Linear(in={self.in_features}, out={self.out_features}, bias={self.bias is not None})"


class Dropout(Module):
    """Inverted dropout layer; active only in training mode."""

    def __init__(self, probability: float = 0.5, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= probability < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {probability}")
        self.probability = probability
        self._rng = rng if rng is not None else np.random.default_rng()

    def forward(self, inputs: Tensor) -> Tensor:
        return F.dropout(inputs, self.probability, training=self.training, rng=self._rng)

    def __repr__(self) -> str:
        return f"Dropout(p={self.probability})"


class ReLU(Module):
    """Rectified linear unit."""

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs.relu()


class LeakyReLU(Module):
    """Leaky rectified linear unit."""

    def __init__(self, negative_slope: float = 0.2) -> None:
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs.leaky_relu(self.negative_slope)


class Sigmoid(Module):
    """Logistic sigmoid."""

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs.sigmoid()


class Tanh(Module):
    """Hyperbolic tangent."""

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs.tanh()


class MLP(Module):
    """Multi-layer perceptron used as a READ-out / decoder head.

    The paper's decoder for vertex tasks is "single or multi-layer
    perceptrons" (Eq. 3); this class covers both.
    """

    def __init__(
        self,
        in_features: int,
        hidden_features: int,
        out_features: int,
        num_layers: int = 2,
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if num_layers < 1:
            raise ValueError("MLP needs at least one layer")
        self.num_layers = num_layers
        dims = (
            [in_features]
            + [hidden_features] * (num_layers - 1)
            + [out_features]
        )
        for index in range(num_layers):
            self.add_module(f"linear_{index}", Linear(dims[index], dims[index + 1], rng=rng))
            if index < num_layers - 1:
                self.add_module(f"act_{index}", ReLU())
                if dropout > 0:
                    self.add_module(f"drop_{index}", Dropout(dropout, rng=rng))

    def forward(self, inputs: Tensor) -> Tensor:
        out = inputs
        for module in self._modules.values():
            out = module(out)
        return out
