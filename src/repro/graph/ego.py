"""Node-level federation: ego networks and the device partition.

In the paper's setting every device *is* one vertex of the global graph and
holds only its ego network ``E(v)``: the identities of its direct neighbours
and the edges from ``v`` to them, plus its own feature vector ``x_v`` and
label ``y_v``.  Crucially, the device knows nothing about other vertices'
features, labels, or the edges among its neighbours.

:class:`EgoNetwork` captures exactly this visibility boundary and
:func:`partition_node_level` produces one ego network per vertex from a
global :class:`~repro.graph.graph.Graph` — this is the "split the graph into
|V| ego networks" step of the paper's experimental setup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from .graph import Graph


@dataclass
class EgoNetwork:
    """The local view of one device in the node-level federated setting.

    Attributes
    ----------
    center:
        Global vertex id of the device.
    neighbors:
        Sorted array of the global ids of the direct neighbours.
    feature:
        Feature vector of the centre vertex only.
    label:
        Label of the centre vertex only (``None`` for unlabeled graphs).
    """

    center: int
    neighbors: np.ndarray
    feature: np.ndarray
    label: Optional[int] = None

    def __post_init__(self) -> None:
        self.neighbors = np.asarray(sorted(int(v) for v in self.neighbors), dtype=np.int64)
        self.feature = np.asarray(self.feature, dtype=np.float64)
        if self.center in set(self.neighbors.tolist()):
            raise ValueError("an ego network cannot contain the centre as its own neighbour")

    @property
    def degree(self) -> int:
        """Degree of the centre vertex (private to the device)."""
        return int(self.neighbors.shape[0])

    def has_neighbor(self, vertex: int) -> bool:
        """Return whether ``vertex`` is a direct neighbour."""
        return int(vertex) in set(self.neighbors.tolist())

    def edge_tuples(self) -> List[tuple]:
        """Return the canonical ``(min, max)`` tuples of the local edges."""
        return [
            (min(self.center, int(v)), max(self.center, int(v))) for v in self.neighbors
        ]


def partition_node_level(graph: Graph) -> Dict[int, EgoNetwork]:
    """Split ``graph`` into one :class:`EgoNetwork` per vertex.

    This mirrors the experimental setup of the paper: "We split the graphs
    into |V| ego networks so that each device represented by one vertex in
    the graph holds its corresponding ego network".
    """
    partition: Dict[int, EgoNetwork] = {}
    labels = graph.labels
    for vertex in range(graph.num_nodes):
        partition[vertex] = EgoNetwork(
            center=vertex,
            neighbors=graph.neighbors(vertex),
            feature=graph.features[vertex],
            label=int(labels[vertex]) if labels is not None else None,
        )
    return partition


def validate_partition(graph: Graph, partition: Dict[int, EgoNetwork]) -> None:
    """Check that a partition is consistent with the global graph.

    Raises ``ValueError`` when the partition drops or invents edges, or when
    feature/label ownership is violated.  Used by tests and by the federated
    simulator's sanity checks.
    """
    if set(partition) != set(range(graph.num_nodes)):
        raise ValueError("partition must contain exactly one ego network per vertex")
    seen_edges = set()
    for vertex, ego in partition.items():
        if ego.center != vertex:
            raise ValueError(f"ego network stored under {vertex} has centre {ego.center}")
        if not np.allclose(ego.feature, graph.features[vertex]):
            raise ValueError(f"feature mismatch for vertex {vertex}")
        if graph.labels is not None and ego.label != int(graph.labels[vertex]):
            raise ValueError(f"label mismatch for vertex {vertex}")
        if not np.array_equal(ego.neighbors, graph.neighbors(vertex)):
            raise ValueError(f"neighbour set mismatch for vertex {vertex}")
        for u, v in ego.edge_tuples():
            seen_edges.add((u, v))
    if seen_edges != graph.edge_set():
        raise ValueError("the union of ego-network edges must equal the global edge set")
