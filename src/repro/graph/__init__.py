"""Graph substrate: data structures, ego partition, generators and splits."""

from .datasets import available_datasets, load_dataset
from .ego import EgoNetwork, partition_node_level, validate_partition
from .generators import (
    FACEBOOK_SPEC,
    LASTFM_SPEC,
    SocialGraphSpec,
    generate_facebook_like,
    generate_lastfm_like,
    generate_small_world,
    generate_star,
    generate_social_graph,
)
from .graph import Graph, from_edge_list, from_networkx
from .splits import EdgeSplit, NodeSplit, sample_negative_edges, split_edges, split_nodes
from . import sparse

__all__ = [
    "Graph",
    "from_edge_list",
    "from_networkx",
    "EgoNetwork",
    "partition_node_level",
    "validate_partition",
    "SocialGraphSpec",
    "FACEBOOK_SPEC",
    "LASTFM_SPEC",
    "generate_social_graph",
    "generate_facebook_like",
    "generate_lastfm_like",
    "generate_small_world",
    "generate_star",
    "load_dataset",
    "available_datasets",
    "NodeSplit",
    "EdgeSplit",
    "split_nodes",
    "split_edges",
    "sample_negative_edges",
    "sparse",
]
