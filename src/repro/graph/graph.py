"""Core graph data structure shared by every subsystem.

The :class:`Graph` class stores an undirected, simple graph with per-node
feature vectors and (optionally) integer labels, which is exactly the data
model of the paper's datasets (Facebook Page-Page and LastFM Asia).  It is an
immutable value object: every transformation (subgraphing, edge splits, ego
extraction) returns a new instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp


@dataclass(frozen=True, eq=False)
class Graph:
    """An undirected attributed graph.

    Attributes
    ----------
    num_nodes:
        Number of vertices; vertices are identified by integers ``0..n-1``.
    edges:
        Integer array of shape ``(E, 2)`` holding each undirected edge exactly
        once with ``edges[i, 0] < edges[i, 1]``.
    features:
        Float array of shape ``(n, d)`` with one feature vector per vertex.
    labels:
        Optional integer array of shape ``(n,)`` with class labels.
    name:
        Human-readable dataset name.
    """

    num_nodes: int
    edges: np.ndarray
    features: np.ndarray
    labels: Optional[np.ndarray] = None
    name: str = "graph"
    _neighbor_cache: Dict[int, np.ndarray] = field(
        default_factory=dict, compare=False, repr=False, hash=False
    )

    def __post_init__(self) -> None:
        edges = np.asarray(self.edges, dtype=np.int64)
        if edges.size == 0:
            edges = edges.reshape(0, 2)
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise ValueError("edges must have shape (E, 2)")
        if edges.size and (edges.min() < 0 or edges.max() >= self.num_nodes):
            raise ValueError("edge endpoints must be valid vertex ids")
        if edges.size and np.any(edges[:, 0] == edges[:, 1]):
            raise ValueError("self loops are not allowed")
        # Canonicalise: smaller endpoint first, deduplicate, sort.
        lo = np.minimum(edges[:, 0], edges[:, 1])
        hi = np.maximum(edges[:, 0], edges[:, 1])
        canonical = np.unique(np.stack([lo, hi], axis=1), axis=0) if edges.size else edges
        object.__setattr__(self, "edges", canonical)

        features = np.asarray(self.features, dtype=np.float64)
        if features.ndim != 2 or features.shape[0] != self.num_nodes:
            raise ValueError(
                f"features must have shape (num_nodes, d); got {features.shape} "
                f"for {self.num_nodes} nodes"
            )
        object.__setattr__(self, "features", features)

        if self.labels is not None:
            labels = np.asarray(self.labels, dtype=np.int64)
            if labels.shape != (self.num_nodes,):
                raise ValueError("labels must have shape (num_nodes,)")
            object.__setattr__(self, "labels", labels)

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return int(self.edges.shape[0])

    @property
    def num_features(self) -> int:
        """Feature dimensionality."""
        return int(self.features.shape[1])

    @property
    def num_classes(self) -> int:
        """Number of distinct labels (0 when the graph is unlabeled)."""
        if self.labels is None:
            return 0
        return int(self.labels.max()) + 1 if self.labels.size else 0

    def degrees(self) -> np.ndarray:
        """Return the degree of every vertex."""
        degree = np.zeros(self.num_nodes, dtype=np.int64)
        if self.num_edges:
            np.add.at(degree, self.edges[:, 0], 1)
            np.add.at(degree, self.edges[:, 1], 1)
        return degree

    def degree(self, vertex: int) -> int:
        """Return the degree of ``vertex``."""
        return len(self.neighbors(vertex))

    def neighbors(self, vertex: int) -> np.ndarray:
        """Return the sorted neighbour ids of ``vertex`` (cached)."""
        if vertex < 0 or vertex >= self.num_nodes:
            raise ValueError(f"vertex {vertex} out of range [0, {self.num_nodes})")
        cached = self._neighbor_cache.get(vertex)
        if cached is not None:
            return cached
        if not self._neighbor_cache and self.num_edges:
            self._build_neighbor_cache()
            return self._neighbor_cache.get(vertex, np.empty(0, dtype=np.int64))
        return np.empty(0, dtype=np.int64)

    def _build_neighbor_cache(self) -> None:
        adjacency_lists: Dict[int, List[int]] = {}
        for u, v in self.edges:
            adjacency_lists.setdefault(int(u), []).append(int(v))
            adjacency_lists.setdefault(int(v), []).append(int(u))
        for vertex in range(self.num_nodes):
            entries = adjacency_lists.get(vertex, [])
            self._neighbor_cache[vertex] = np.asarray(sorted(entries), dtype=np.int64)

    def has_edge(self, u: int, v: int) -> bool:
        """Return whether the undirected edge ``(u, v)`` is present."""
        return v in set(self.neighbors(u).tolist())

    def edge_set(self) -> set:
        """Return the set of canonical ``(min, max)`` edge tuples."""
        return {(int(a), int(b)) for a, b in self.edges}

    # ------------------------------------------------------------------ #
    # Matrix views
    # ------------------------------------------------------------------ #
    def adjacency(self, add_self_loops: bool = False) -> sp.csr_matrix:
        """Return the (symmetric) sparse adjacency matrix."""
        if self.num_edges:
            rows = np.concatenate([self.edges[:, 0], self.edges[:, 1]])
            cols = np.concatenate([self.edges[:, 1], self.edges[:, 0]])
            data = np.ones(rows.shape[0], dtype=np.float64)
        else:
            rows = np.empty(0, dtype=np.int64)
            cols = np.empty(0, dtype=np.int64)
            data = np.empty(0, dtype=np.float64)
        matrix = sp.csr_matrix((data, (rows, cols)), shape=(self.num_nodes, self.num_nodes))
        if add_self_loops:
            matrix = matrix + sp.eye(self.num_nodes, format="csr")
        return matrix

    def directed_edge_index(self, add_self_loops: bool = False) -> np.ndarray:
        """Return a ``(2, 2E [+n])`` directed edge index (both directions)."""
        if self.num_edges:
            src = np.concatenate([self.edges[:, 0], self.edges[:, 1]])
            dst = np.concatenate([self.edges[:, 1], self.edges[:, 0]])
        else:
            src = np.empty(0, dtype=np.int64)
            dst = np.empty(0, dtype=np.int64)
        if add_self_loops:
            loops = np.arange(self.num_nodes, dtype=np.int64)
            src = np.concatenate([src, loops])
            dst = np.concatenate([dst, loops])
        return np.stack([src, dst], axis=0)

    # ------------------------------------------------------------------ #
    # Transformations
    # ------------------------------------------------------------------ #
    def with_edges(self, edges: np.ndarray) -> "Graph":
        """Return a copy of this graph with a different edge set."""
        return Graph(
            num_nodes=self.num_nodes,
            edges=np.asarray(edges, dtype=np.int64),
            features=self.features,
            labels=self.labels,
            name=self.name,
        )

    def subgraph(self, vertices: Sequence[int]) -> "Graph":
        """Return the induced subgraph on ``vertices`` (relabelled 0..k-1)."""
        vertices = np.asarray(sorted(set(int(v) for v in vertices)), dtype=np.int64)
        mapping = {int(old): new for new, old in enumerate(vertices)}
        kept = [
            (mapping[int(u)], mapping[int(v)])
            for u, v in self.edges
            if int(u) in mapping and int(v) in mapping
        ]
        edges = np.asarray(kept, dtype=np.int64).reshape(-1, 2)
        return Graph(
            num_nodes=len(vertices),
            edges=edges,
            features=self.features[vertices],
            labels=self.labels[vertices] if self.labels is not None else None,
            name=f"{self.name}-sub",
        )

    def normalized_features(self, lower: float = 0.0, upper: float = 1.0) -> "Graph":
        """Return a copy with features min-max scaled into ``[lower, upper]``.

        The LDP 1-bit encoder assumes features live in a known interval
        ``[a, b]``; this helper produces that interval deterministically.
        """
        features = self.features
        minimum = features.min(axis=0, keepdims=True)
        maximum = features.max(axis=0, keepdims=True)
        span = np.where(maximum - minimum > 0, maximum - minimum, 1.0)
        scaled = lower + (features - minimum) / span * (upper - lower)
        return Graph(
            num_nodes=self.num_nodes,
            edges=self.edges,
            features=scaled,
            labels=self.labels,
            name=self.name,
        )

    def summary(self) -> Dict[str, float]:
        """Return basic statistics used for reporting."""
        degrees = self.degrees()
        return {
            "name": self.name,
            "num_nodes": self.num_nodes,
            "num_edges": self.num_edges,
            "num_features": self.num_features,
            "num_classes": self.num_classes,
            "avg_degree": float(degrees.mean()) if self.num_nodes else 0.0,
            "max_degree": int(degrees.max()) if self.num_nodes else 0,
        }


def from_edge_list(
    num_nodes: int,
    edge_list: Iterable[Tuple[int, int]],
    features: Optional[np.ndarray] = None,
    labels: Optional[np.ndarray] = None,
    name: str = "graph",
) -> Graph:
    """Build a :class:`Graph` from an iterable of edge tuples."""
    edges = np.asarray(list(edge_list), dtype=np.int64).reshape(-1, 2)
    if features is None:
        features = np.zeros((num_nodes, 1), dtype=np.float64)
    return Graph(num_nodes=num_nodes, edges=edges, features=features, labels=labels, name=name)


def from_networkx(nx_graph, features: Optional[np.ndarray] = None, labels=None, name: str = "graph") -> Graph:
    """Convert a ``networkx`` graph (nodes must be 0..n-1) to :class:`Graph`."""
    num_nodes = nx_graph.number_of_nodes()
    edges = np.asarray([(int(u), int(v)) for u, v in nx_graph.edges() if u != v], dtype=np.int64)
    edges = edges.reshape(-1, 2)
    if features is None:
        features = np.zeros((num_nodes, 1), dtype=np.float64)
    return Graph(num_nodes=num_nodes, edges=edges, features=features, labels=labels, name=name)
