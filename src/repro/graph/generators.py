"""Synthetic social-graph generators standing in for the paper's datasets.

The paper evaluates on two public social graphs:

* **Facebook Page-Page** — 22,470 vertices, 170,912 edges, 4,714 binary
  features (page-description words), 4 classes (page category).
* **LastFM Asia** — 7,624 vertices, 55,612 edges, 128 binary features
  (preferred artists), 18 classes (nationality).

Both are downloads from SNAP / the original authors, which this offline
environment cannot fetch.  The generators below create graphs with the same
*qualitative* properties that drive the paper's results:

* a heavy-tailed (power-law-like) degree distribution — this is what causes
  the degree heterogeneity / workload-imbalance problem Lumos addresses;
* community structure with **label homophily** — neighbouring vertices tend
  to share labels, which is what lets any GNN beat a feature-only model;
* **feature-label correlation** — sparse binary features whose active set
  depends on the class, mimicking bag-of-words page descriptions / artist
  preference vectors.

Node counts default to scaled-down values so the pure-numpy pipeline stays
fast; the full-size counts can be requested explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .graph import Graph


@dataclass(frozen=True)
class SocialGraphSpec:
    """Parameters of a synthetic social graph."""

    num_nodes: int
    num_features: int
    num_classes: int
    average_degree: float
    power_law_exponent: float
    homophily: float
    feature_signal: float
    name: str


FACEBOOK_SPEC = SocialGraphSpec(
    num_nodes=2247,          # 1/10 of the real graph; pass num_nodes to rescale
    num_features=128,        # compressed bag-of-words; real graph has 4,714
    num_classes=4,
    average_degree=15.2,     # 2 * 170,912 / 22,470 ≈ 15.2
    power_law_exponent=2.3,
    homophily=0.82,
    feature_signal=0.35,
    name="synthetic-facebook",
)

LASTFM_SPEC = SocialGraphSpec(
    num_nodes=1525,          # 1/5 of the real graph
    num_features=128,
    num_classes=18,
    average_degree=14.6,     # 2 * 55,612 / 7,624 ≈ 14.6
    power_law_exponent=2.1,
    homophily=0.78,
    feature_signal=0.4,
    name="synthetic-lastfm",
)


def power_law_degree_sequence(
    num_nodes: int,
    average_degree: float,
    exponent: float,
    rng: np.random.Generator,
    min_degree: int = 1,
    max_degree: Optional[int] = None,
) -> np.ndarray:
    """Sample an integer degree sequence with a Pareto-like tail.

    The sequence is rescaled so its mean matches ``average_degree`` and its
    sum is even (required to realise it as a graph).
    """
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    if max_degree is None:
        max_degree = max(min_degree + 1, num_nodes // 4)
    raw = (rng.pareto(exponent - 1.0, size=num_nodes) + 1.0) * min_degree
    raw = raw * (average_degree / max(raw.mean(), 1e-9))
    degrees = np.clip(np.round(raw).astype(np.int64), min_degree, max_degree)
    if degrees.sum() % 2 == 1:
        degrees[int(np.argmin(degrees))] += 1
    return degrees


def _assign_communities(num_nodes: int, num_classes: int, rng: np.random.Generator) -> np.ndarray:
    """Assign each vertex to a community with mildly unequal sizes."""
    weights = rng.dirichlet(np.full(num_classes, 4.0))
    return rng.choice(num_classes, size=num_nodes, p=weights)


def _sample_edges(
    degrees: np.ndarray,
    communities: np.ndarray,
    homophily: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Wire edges with a Chung-Lu style model biased towards same-community pairs.

    Each vertex receives a number of "stubs" proportional to its target
    degree; stubs are matched preferentially within the same community with
    probability ``homophily``.
    """
    num_nodes = degrees.shape[0]
    num_classes = int(communities.max()) + 1
    members = [np.where(communities == c)[0] for c in range(num_classes)]
    target_edges = int(degrees.sum() // 2)
    probabilities = degrees.astype(np.float64) / degrees.sum()

    edge_set = set()
    attempts = 0
    max_attempts = target_edges * 30
    while len(edge_set) < target_edges and attempts < max_attempts:
        attempts += 1
        u = int(rng.choice(num_nodes, p=probabilities))
        if rng.random() < homophily:
            pool = members[communities[u]]
            if pool.shape[0] < 2:
                continue
            local_probabilities = degrees[pool].astype(np.float64)
            local_probabilities /= local_probabilities.sum()
            v = int(rng.choice(pool, p=local_probabilities))
        else:
            v = int(rng.choice(num_nodes, p=probabilities))
        if u == v:
            continue
        edge_set.add((min(u, v), max(u, v)))

    edges = np.asarray(sorted(edge_set), dtype=np.int64).reshape(-1, 2)
    return _connect_isolated(edges, num_nodes, rng)


def _connect_isolated(edges: np.ndarray, num_nodes: int, rng: np.random.Generator) -> np.ndarray:
    """Attach any isolated vertex to a random other vertex.

    Every device must have at least one neighbour for the ego-network setting
    to make sense (a degree-0 device has no edges to train on).
    """
    degree = np.zeros(num_nodes, dtype=np.int64)
    if edges.size:
        np.add.at(degree, edges[:, 0], 1)
        np.add.at(degree, edges[:, 1], 1)
    isolated = np.where(degree == 0)[0]
    extra = []
    for vertex in isolated:
        other = int(rng.integers(num_nodes - 1))
        if other >= vertex:
            other += 1
        extra.append((min(int(vertex), other), max(int(vertex), other)))
    if extra:
        edges = np.concatenate([edges.reshape(-1, 2), np.asarray(extra, dtype=np.int64)], axis=0)
    return edges


def _sample_features(
    communities: np.ndarray,
    num_features: int,
    feature_signal: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sparse binary features whose active set correlates with the community.

    Each class owns a block of "preferred" feature indices; a vertex activates
    preferred indices with elevated probability and background indices with a
    small base rate, mimicking bag-of-words / preferred-artist indicators.
    """
    num_nodes = communities.shape[0]
    num_classes = int(communities.max()) + 1
    block = max(1, num_features // max(num_classes, 1))
    base_rate = 0.02
    features = (rng.random((num_nodes, num_features)) < base_rate).astype(np.float64)
    for c in range(num_classes):
        rows = np.where(communities == c)[0]
        start = (c * block) % num_features
        stop = min(start + block, num_features)
        preferred = np.arange(start, stop)
        activation = rng.random((rows.shape[0], preferred.shape[0])) < (base_rate + feature_signal)
        features[np.ix_(rows, preferred)] = np.maximum(
            features[np.ix_(rows, preferred)], activation.astype(np.float64)
        )
    return features


def generate_social_graph(spec: SocialGraphSpec, seed: int = 0, num_nodes: Optional[int] = None) -> Graph:
    """Generate a synthetic attributed social graph from ``spec``."""
    rng = np.random.default_rng(seed)
    n = int(num_nodes) if num_nodes is not None else spec.num_nodes
    if n < max(4, spec.num_classes):
        raise ValueError("graph too small for the requested number of classes")
    degrees = power_law_degree_sequence(n, spec.average_degree, spec.power_law_exponent, rng)
    communities = _assign_communities(n, spec.num_classes, rng)
    edges = _sample_edges(degrees, communities, spec.homophily, rng)
    features = _sample_features(communities, spec.num_features, spec.feature_signal, rng)
    return Graph(
        num_nodes=n,
        edges=edges,
        features=features,
        labels=communities.astype(np.int64),
        name=spec.name,
    )


def generate_facebook_like(seed: int = 0, num_nodes: Optional[int] = None) -> Graph:
    """Synthetic stand-in for the Facebook Page-Page graph."""
    return generate_social_graph(FACEBOOK_SPEC, seed=seed, num_nodes=num_nodes)


def generate_lastfm_like(seed: int = 0, num_nodes: Optional[int] = None) -> Graph:
    """Synthetic stand-in for the LastFM Asia graph."""
    return generate_social_graph(LASTFM_SPEC, seed=seed, num_nodes=num_nodes)


def generate_small_world(
    num_nodes: int = 100,
    k: int = 4,
    rewire_probability: float = 0.1,
    num_features: int = 8,
    num_classes: int = 2,
    seed: int = 0,
) -> Graph:
    """Small Watts-Strogatz-style graph used by unit tests and examples."""
    rng = np.random.default_rng(seed)
    edges = set()
    for vertex in range(num_nodes):
        for offset in range(1, k // 2 + 1):
            neighbor = (vertex + offset) % num_nodes
            if rng.random() < rewire_probability:
                neighbor = int(rng.integers(num_nodes))
            if neighbor != vertex:
                edges.add((min(vertex, neighbor), max(vertex, neighbor)))
    labels = rng.integers(num_classes, size=num_nodes)
    features = rng.random((num_nodes, num_features))
    features += labels[:, None] * 0.3
    edge_array = _connect_isolated(
        np.asarray(sorted(edges), dtype=np.int64).reshape(-1, 2), num_nodes, rng
    )
    return Graph(
        num_nodes=num_nodes,
        edges=edge_array,
        features=features,
        labels=labels.astype(np.int64),
        name="small-world",
    )


def generate_star(num_leaves: int = 5, num_features: int = 4, seed: int = 0) -> Graph:
    """A star graph: the canonical degree-heterogeneous toy case."""
    rng = np.random.default_rng(seed)
    edges = [(0, leaf) for leaf in range(1, num_leaves + 1)]
    num_nodes = num_leaves + 1
    features = rng.random((num_nodes, num_features))
    labels = np.asarray([0] + [1] * num_leaves, dtype=np.int64)
    return Graph(
        num_nodes=num_nodes,
        edges=np.asarray(edges, dtype=np.int64),
        features=features,
        labels=labels,
        name="star",
    )
