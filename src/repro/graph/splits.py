"""Train / validation / test splits for node and edge tasks.

The paper uses:

* supervised node classification — vertices split 50 / 25 / 25;
* unsupervised link prediction — edges split 80 / 5 / 15, with an equal
  number of negative (non-edge) samples per split for ROC-AUC evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .graph import Graph


@dataclass(frozen=True)
class NodeSplit:
    """Boolean masks over vertices for transductive node classification."""

    train_mask: np.ndarray
    val_mask: np.ndarray
    test_mask: np.ndarray

    def __post_init__(self) -> None:
        for mask in (self.train_mask, self.val_mask, self.test_mask):
            if mask.dtype != bool:
                raise ValueError("split masks must be boolean arrays")
        overlap = (
            (self.train_mask & self.val_mask)
            | (self.train_mask & self.test_mask)
            | (self.val_mask & self.test_mask)
        )
        if overlap.any():
            raise ValueError("node split masks must be disjoint")

    @property
    def num_nodes(self) -> int:
        return int(self.train_mask.shape[0])


@dataclass(frozen=True)
class EdgeSplit:
    """Edge-level split with negative samples for link prediction.

    ``train_edges`` are the *message passing and supervision* edges; the
    validation/test positives are held out of the training graph, matching
    the standard transductive link-prediction protocol.
    """

    train_edges: np.ndarray
    val_edges: np.ndarray
    test_edges: np.ndarray
    val_negatives: np.ndarray
    test_negatives: np.ndarray

    def training_graph(self, graph: Graph) -> Graph:
        """Return a copy of ``graph`` containing only the training edges."""
        return graph.with_edges(self.train_edges)


def split_nodes(
    graph: Graph,
    train_fraction: float = 0.5,
    val_fraction: float = 0.25,
    seed: int = 0,
) -> NodeSplit:
    """Uniformly sample vertices into train/val/test masks (paper: 50/25/25)."""
    if not 0 < train_fraction < 1 or not 0 <= val_fraction < 1:
        raise ValueError("fractions must lie in (0, 1)")
    if train_fraction + val_fraction >= 1.0:
        raise ValueError("train + val fraction must be < 1")
    rng = np.random.default_rng(seed)
    order = rng.permutation(graph.num_nodes)
    num_train = int(round(train_fraction * graph.num_nodes))
    num_val = int(round(val_fraction * graph.num_nodes))
    train_idx = order[:num_train]
    val_idx = order[num_train : num_train + num_val]
    test_idx = order[num_train + num_val :]

    def mask_of(indices: np.ndarray) -> np.ndarray:
        mask = np.zeros(graph.num_nodes, dtype=bool)
        mask[indices] = True
        return mask

    return NodeSplit(mask_of(train_idx), mask_of(val_idx), mask_of(test_idx))


def sample_negative_edges(
    graph: Graph,
    count: int,
    rng: np.random.Generator,
    forbidden: Optional[set] = None,
) -> np.ndarray:
    """Sample ``count`` vertex pairs that are not edges of ``graph``."""
    existing = graph.edge_set()
    if forbidden:
        existing = existing | set(forbidden)
    negatives = []
    seen = set()
    max_attempts = count * 200 + 1000
    attempts = 0
    while len(negatives) < count and attempts < max_attempts:
        attempts += 1
        u = int(rng.integers(graph.num_nodes))
        v = int(rng.integers(graph.num_nodes))
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if key in existing or key in seen:
            continue
        seen.add(key)
        negatives.append(key)
    if len(negatives) < count:
        raise RuntimeError(
            f"could only sample {len(negatives)} of {count} negative edges; "
            "graph may be too dense"
        )
    return np.asarray(negatives, dtype=np.int64)


def split_edges(
    graph: Graph,
    train_fraction: float = 0.8,
    val_fraction: float = 0.05,
    seed: int = 0,
) -> EdgeSplit:
    """Uniformly sample edges into train/val/test sets (paper: 80/5/15)."""
    if graph.num_edges < 10:
        raise ValueError("graph too small for an edge split")
    rng = np.random.default_rng(seed)
    order = rng.permutation(graph.num_edges)
    num_train = int(round(train_fraction * graph.num_edges))
    num_val = int(round(val_fraction * graph.num_edges))
    train_edges = graph.edges[order[:num_train]]
    val_edges = graph.edges[order[num_train : num_train + num_val]]
    test_edges = graph.edges[order[num_train + num_val :]]

    val_negatives = sample_negative_edges(graph, len(val_edges), rng)
    forbidden = {tuple(edge) for edge in val_negatives}
    test_negatives = sample_negative_edges(graph, len(test_edges), rng, forbidden=forbidden)
    return EdgeSplit(
        train_edges=train_edges,
        val_edges=val_edges,
        test_edges=test_edges,
        val_negatives=val_negatives,
        test_negatives=test_negatives,
    )
