"""Sparse adjacency normalisation helpers for GCN-style propagation."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp


def add_self_loops(adjacency: sp.spmatrix) -> sp.csr_matrix:
    """Return ``A + I`` in CSR format."""
    n = adjacency.shape[0]
    return (adjacency + sp.eye(n, format="csr")).tocsr()


def symmetric_normalize(adjacency: sp.spmatrix, self_loops: bool = True) -> sp.csr_matrix:
    """Return the symmetrically normalised adjacency ``D^-1/2 Â D^-1/2``.

    This is the propagation matrix of Kipf & Welling's GCN.  Isolated nodes
    (zero degree even after self loops are disabled) get a zero row rather
    than a division-by-zero.
    """
    matrix = adjacency.tocsr().astype(np.float64)
    if self_loops:
        matrix = add_self_loops(matrix)
    degrees = np.asarray(matrix.sum(axis=1)).ravel()
    inv_sqrt = np.zeros_like(degrees)
    nonzero = degrees > 0
    inv_sqrt[nonzero] = 1.0 / np.sqrt(degrees[nonzero])
    d_inv_sqrt = sp.diags(inv_sqrt)
    return (d_inv_sqrt @ matrix @ d_inv_sqrt).tocsr()


def row_normalize(adjacency: sp.spmatrix, self_loops: bool = False) -> sp.csr_matrix:
    """Return the row-stochastic adjacency ``D^-1 A`` (mean aggregation)."""
    matrix = adjacency.tocsr().astype(np.float64)
    if self_loops:
        matrix = add_self_loops(matrix)
    degrees = np.asarray(matrix.sum(axis=1)).ravel()
    inv = np.zeros_like(degrees)
    nonzero = degrees > 0
    inv[nonzero] = 1.0 / degrees[nonzero]
    return (sp.diags(inv) @ matrix).tocsr()


def adjacency_from_edge_index(edge_index: np.ndarray, num_nodes: int) -> sp.csr_matrix:
    """Build a sparse adjacency from a ``(2, E)`` directed edge index."""
    src, dst = edge_index
    data = np.ones(src.shape[0], dtype=np.float64)
    return sp.csr_matrix((data, (dst, src)), shape=(num_nodes, num_nodes))


def laplacian(adjacency: sp.spmatrix, normalized: bool = True) -> sp.csr_matrix:
    """Return the (normalised) graph Laplacian; used in tests as an invariant check."""
    matrix = adjacency.tocsr().astype(np.float64)
    degrees = np.asarray(matrix.sum(axis=1)).ravel()
    if not normalized:
        return (sp.diags(degrees) - matrix).tocsr()
    inv_sqrt = np.zeros_like(degrees)
    nonzero = degrees > 0
    inv_sqrt[nonzero] = 1.0 / np.sqrt(degrees[nonzero])
    d_inv_sqrt = sp.diags(inv_sqrt)
    identity = sp.eye(matrix.shape[0], format="csr")
    return (identity - d_inv_sqrt @ matrix @ d_inv_sqrt).tocsr()
