"""Dataset registry.

``load_dataset(name)`` is the single entry point used by examples, the
evaluation harness and the benchmarks.  Two families are available:

* ``"facebook"`` / ``"lastfm"`` — if the real raw files (SNAP "musae"
  Facebook Page-Page / LastFM Asia CSV dumps) are present under
  ``data/<name>/`` they are loaded; otherwise the synthetic stand-ins from
  :mod:`repro.graph.generators` are generated (see DESIGN.md §2 for why this
  substitution preserves the evaluation's shape).
* ``"small-world"`` / ``"star"`` — tiny deterministic graphs for tests.
"""

from __future__ import annotations

import csv
import json
import os
from typing import Callable, Dict, Optional

import numpy as np

from . import generators
from .graph import Graph

DATA_ROOT_ENV = "REPRO_DATA_ROOT"
_DEFAULT_DATA_ROOT = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "..", "..", "data")


def data_root() -> str:
    """Return the directory searched for real raw dataset files."""
    return os.environ.get(DATA_ROOT_ENV, os.path.normpath(_DEFAULT_DATA_ROOT))


def _real_dataset_dir(name: str) -> Optional[str]:
    candidate = os.path.join(data_root(), name)
    return candidate if os.path.isdir(candidate) else None


def load_musae_style(directory: str, name: str) -> Graph:
    """Load a SNAP "musae"-style dataset directory.

    Expected files (as distributed for Facebook Page-Page / LastFM Asia):

    * ``edges.csv`` — two columns ``id_1,id_2`` (header optional);
    * ``features.json`` — ``{"<node id>": [active feature indices]}``;
    * ``target.csv`` — columns including the node id and an integer label.
    """
    edges_path = os.path.join(directory, "edges.csv")
    features_path = os.path.join(directory, "features.json")
    target_path = os.path.join(directory, "target.csv")
    for path in (edges_path, features_path, target_path):
        if not os.path.isfile(path):
            raise FileNotFoundError(f"missing dataset file: {path}")

    with open(features_path) as handle:
        raw_features: Dict[str, list] = json.load(handle)
    num_nodes = max(int(key) for key in raw_features) + 1
    num_features = 1 + max(
        (max(indices) for indices in raw_features.values() if indices), default=0
    )
    features = np.zeros((num_nodes, num_features), dtype=np.float64)
    for key, indices in raw_features.items():
        features[int(key), indices] = 1.0

    edges = []
    with open(edges_path, newline="") as handle:
        reader = csv.reader(handle)
        for row in reader:
            if not row or not row[0].strip().isdigit():
                continue
            edges.append((int(row[0]), int(row[1])))

    labels = np.zeros(num_nodes, dtype=np.int64)
    label_names: Dict[str, int] = {}
    with open(target_path, newline="") as handle:
        reader = csv.DictReader(handle)
        id_column = "id" if "id" in (reader.fieldnames or []) else (reader.fieldnames or ["id"])[0]
        label_column = None
        for candidate in ("page_type", "target", "label"):
            if candidate in (reader.fieldnames or []):
                label_column = candidate
                break
        if label_column is None:
            label_column = (reader.fieldnames or ["target"])[-1]
        for row in reader:
            raw_label = row[label_column]
            if raw_label not in label_names and not raw_label.isdigit():
                label_names[raw_label] = len(label_names)
            value = int(raw_label) if raw_label.isdigit() else label_names[raw_label]
            labels[int(row[id_column])] = value

    return Graph(
        num_nodes=num_nodes,
        edges=np.asarray(edges, dtype=np.int64),
        features=features,
        labels=labels,
        name=name,
    )


def load_dataset(name: str, seed: int = 0, num_nodes: Optional[int] = None) -> Graph:
    """Load a dataset by name.

    Parameters
    ----------
    name:
        One of ``facebook``, ``lastfm``, ``small-world``, ``star`` (synonyms
        ``synthetic-facebook`` / ``synthetic-lastfm`` accepted).
    seed:
        Random seed for the synthetic generators.
    num_nodes:
        Optional override of the synthetic graph size.
    """
    key = name.lower().replace("_", "-")
    if key in ("facebook", "synthetic-facebook", "facebook-page-page"):
        real_dir = _real_dataset_dir("facebook")
        if real_dir is not None and num_nodes is None:
            return load_musae_style(real_dir, "facebook")
        return generators.generate_facebook_like(seed=seed, num_nodes=num_nodes)
    if key in ("lastfm", "synthetic-lastfm", "lastfm-asia"):
        real_dir = _real_dataset_dir("lastfm")
        if real_dir is not None and num_nodes is None:
            return load_musae_style(real_dir, "lastfm")
        return generators.generate_lastfm_like(seed=seed, num_nodes=num_nodes)
    if key == "small-world":
        return generators.generate_small_world(num_nodes=num_nodes or 100, seed=seed)
    if key == "star":
        return generators.generate_star(num_leaves=(num_nodes - 1) if num_nodes else 5, seed=seed)
    raise KeyError(f"unknown dataset '{name}'; available: facebook, lastfm, small-world, star")


def available_datasets() -> Dict[str, str]:
    """Return dataset names and a one-line description each."""
    return {
        "facebook": "Facebook Page-Page (synthetic stand-in unless raw files are present)",
        "lastfm": "LastFM Asia (synthetic stand-in unless raw files are present)",
        "small-world": "small Watts-Strogatz-style test graph",
        "star": "star graph, maximal degree heterogeneity toy case",
    }
