"""Performance benchmarks shipped as part of the package.

``repro.bench.engine`` is the staged-execution-engine micro-benchmark; it
is installed as the ``repro-bench`` console script and kept runnable from
the repository via the ``benchmarks/bench_engine.py`` shim (which pins the
output path to the repository root, where ``BENCH_engine.json`` records the
perf trajectory).
"""

from .engine import main as bench_engine_main

__all__ = ["bench_engine_main"]
