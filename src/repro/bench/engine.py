"""Micro-benchmark of the staged execution engine.

Times the hot paths the engine PRs target and writes the results to
``BENCH_engine.json`` at the repository root, so future PRs have a perf
trajectory to regress against (and this script *enforces* it: a >20% drop of
any previously recorded speedup fails the run):

* **TreeBatch assembly** — vectorised block assembly vs the generic per-node
  builder;
* **one training epoch** — fast backend (cached transposes, CSR segment
  reductions, fused pooling / constant-input reuse) vs the reference kernels;
* **the training overhaul** — the fused-layer + folded-propagation epoch vs
  the unfused reference autograd graph (final metrics, ledger totals and RNG
  states asserted identical), the folded vs unfolded propagation chain, and
  the cross-sweep-point batched trainer vs the per-point loop (all metrics
  asserted bit-for-bit identical);
* **MCMC balancing** — the incremental array-backed kernel (delta workload
  updates, maintained candidate set, columnar transcript) vs a faithful
  emulation of the pre-PR from-scratch kernel;
* **greedy initialization** — the batched secure-comparison kernel (one
  vectorised comparison block, one columnar ledger event) vs the per-edge
  reference protocol loop;
* **secure cold construction** — the batched vectorized-OT kernels (greedy
  with executed table-OT blocks + the incremental balancer's batched secure
  Alg. 3 path) vs the per-comparison reference protocol loops, asserted
  bit-for-bit equivalent before timing;
* **a 5-point epsilon sweep** — the engine path (shared artifact store,
  shared LDP draws, epsilon-free tree-batch key, fast backend) vs an
  emulation of the pre-refactor "seed" path (reference kernels, no artifact
  reuse, generic batch assembly, per-epoch communication-profile
  recomputation);
* **tree maintenance** — steady-state journalled delta updates (remove +
  reinsert cycles, write-ahead journal with fsync) on a maintained tree at
  10^4 devices vs one from-scratch reconstruction, with the crash-safety
  contract asserted inline: a forked child is killed mid-journal-append and
  the recovered run's state digest must match an uninterrupted run's;
* **the parallel sweep scheduler** — the same 5-point sweep through
  ``repro.runtime``'s process pool at 1 vs ``--workers`` workers (and vs the
  serial executor), with the merged metrics asserted identical across all
  three paths.  Wall-clock parallel speedup requires actual CPUs: the
  recorded ``cpu_count`` qualifies the numbers (on a single-core runner the
  section chiefly tracks scheduler overhead).

Run with::

    PYTHONPATH=src python benchmarks/bench_engine.py [--nodes 300]
        [--epochs 50] [--mcmc 1000] [--repeat 2] [--workers 4] [--smoke]
        [--only section[,section...]] [--trace trace.json]

Every section additionally records ``observed_wall_seconds``,
``observed_cpu_seconds`` and ``observed_peak_rss_bytes`` — informational
resource observations excluded from the regression gate (which reads only
``speedup``).  ``--trace PATH`` wraps the run in the observability tracer
and writes a Chrome trace-event JSON (one track per worker process;
loadable in https://ui.perfetto.dev).

(or, once installed, ``repro-bench`` — which writes ``BENCH_engine.json``
to the current directory unless ``--output`` says otherwise).

The default scale uses the paper's Facebook MCMC budget (1,000 balancing
iterations, as in ``default_config_for("facebook")``) on a 300-device
synthetic graph with 50 training epochs per sweep point.  ``--smoke`` runs
every section at a tiny scale and skips the JSON rewrite and the regression
gate — the tier-1 suite invokes it so the bench code cannot rot between
perf PRs.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import time
from pathlib import Path
from typing import Optional

import numpy as np

from repro import obs
from repro.core import (
    LumosSystem,
    MCMCBalancer,
    TreeBasedGNNTrainer,
    TreeBatch,
    default_config_for,
    greedy_initialization,
)
from repro.core.mcmc import _charge_analytic_comparisons
from repro.engine import ArtifactStore
from repro.federation import FederatedEnvironment
from repro.federation.events import SERVER_ID, MessageKind
from repro.graph import load_dataset, split_nodes
from repro.nn.backend import use_backend

EPSILONS = (0.5, 1.0, 2.0, 3.0, 4.0)

#: Sections of BENCH_engine.json whose ``speedup`` is a recorded trajectory:
#: regressing any of them by more than REGRESSION_TOLERANCE fails the run.
TRACKED_SPEEDUPS = (
    "treebatch_assembly",
    "training_epoch",
    "training_overhaul",
    "mcmc_balancing",
    "greedy_initialization",
    "secure_construction",
    "secure_transport",
    "epsilon_sweep",
    "parallel_sweep",
    "robustness_sweep",
    "tree_maintenance",
)
REGRESSION_TOLERANCE = 0.20


def _peak_rss_bytes() -> Optional[int]:
    """Peak resident set size of this process so far, in bytes.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; platforms
    without the ``resource`` module report nothing.
    """
    try:
        import resource
    except ImportError:
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return int(peak) if sys.platform == "darwin" else int(peak) * 1024


def _observed(name: str, section_fn, *section_args) -> dict:
    """Run one bench section, annotating informational resource observations.

    ``observed_*`` fields record the section's wall time, CPU time and the
    process peak RSS after it ran.  They are context for humans reading
    ``BENCH_engine.json`` — the regression gate reads only ``speedup`` (and
    ``cpu_count``), so these never participate in the >20% check.
    """
    wall_start = time.perf_counter()
    cpu_start = time.process_time()
    with obs.span(f"bench.{name}"):
        result = section_fn(*section_args)
    result["observed_wall_seconds"] = time.perf_counter() - wall_start
    result["observed_cpu_seconds"] = time.process_time() - cpu_start
    peak_rss = _peak_rss_bytes()
    if peak_rss is not None:
        result["observed_peak_rss_bytes"] = peak_rss
    return result


class _SeedScheduleTrainer(TreeBasedGNNTrainer):
    """Trainer emulating the seed's per-epoch schedule.

    The pre-refactor trainer recomputed the communication profile and tree
    sizes inside every epoch's ledger charge; dropping the caches before each
    charge reproduces that cost, so the baseline timing is a faithful stand-in
    for the pre-engine implementation.
    """

    def _charge_epoch(self, task: str) -> None:
        self._profile_cache.clear()
        self._epoch_charge_cache.clear()
        self._tree_sizes = None
        super()._charge_epoch(task)


def _pre_pr_balance(environment, initial, iterations, rng, bit_width=24):
    """Faithful emulation of the pre-PR MCMC kernel (the seed implementation).

    Every iteration re-derives the full Alg. 3 state from scratch — a fresh
    workload array, a vectorised scan over all directed edges, per-winner
    announcement messages through ``Server.select_maximum`` — and builds each
    proposal as a deep copy (``Assignment.transfer``).  This is what
    ``MCMCBalancer`` did before the incremental kernel and is the baseline
    the recorded ``mcmc_balancing`` speedup is measured against.
    """
    from repro.crypto.oblivious_transfer import TranscriptAccountant

    accountant = TranscriptAccountant()

    def find_max(assignment):
        workloads = assignment.workloads()
        workload_array = np.zeros(environment.num_devices, dtype=np.int64)
        for vertex, value in workloads.items():
            workload_array[vertex] = value
        sources, destinations = environment.directed_edges()
        neighbor_max = np.zeros(environment.num_devices, dtype=np.int64)
        if sources.size:
            np.maximum.at(neighbor_max, sources, workload_array[destinations])
        candidates = np.where(workload_array >= neighbor_max)[0].tolist()
        environment.server._candidates.extend(int(c) for c in candidates)
        environment.ledger.send(
            SERVER_ID, SERVER_ID, MessageKind.SERVER_COORDINATION,
            environment.num_devices, "alg3-candidate-announcements",
        )
        if not candidates:
            candidates = [environment.device_ids()[0]]
        candidate_workloads = [workloads[c] for c in candidates]
        pairwise = len(candidates) * max(len(candidates) - 1, 0)
        maximum_value = max(candidate_workloads)
        winners = [c for c, w in zip(candidates, candidate_workloads) if w == maximum_value]
        _charge_analytic_comparisons(accountant, int(sources.size) + pairwise)
        environment.ledger.send(
            SERVER_ID, SERVER_ID, MessageKind.SECURE_COMPARISON,
            (int(sources.size) + pairwise) * 8, f"alg3-comparisons:{int(sources.size) + pairwise}",
        )
        chosen = environment.server.select_maximum(winners)
        environment.server.reset_candidates()
        return int(chosen)

    current = initial.copy()
    history = [current.objective()]
    accepted = 0
    for _ in range(iterations):
        heaviest = find_max(current)
        source_neighbors = sorted(current.selected.get(heaviest, set()))
        if not source_neighbors:
            history.append(current.objective())
            continue
        step_limit = max(1, int(round(math.log(len(source_neighbors)))) or 1)
        step = min(int(rng.integers(1, step_limit + 1)), len(source_neighbors))
        targets = [int(v) for v in np.atleast_1d(
            rng.choice(source_neighbors, size=step, replace=False))]
        proposal = current.transfer(heaviest, targets)
        for target in targets:
            environment.exchange(
                heaviest, target, MessageKind.SERVER_COORDINATION, 8,
                description="mcmc-transition-proposal",
            )
        heaviest_after = find_max(proposal)
        difference = current.objective() - proposal.objective()
        _charge_analytic_comparisons(accountant, 1, bit_width=bit_width)
        environment.exchange(
            heaviest, heaviest_after, MessageKind.SECURE_COMPARISON, bit_width // 8,
            description="mcmc-objective-difference",
        )
        if rng.random() < min(1.0, math.exp(min(difference, 50))):
            current = proposal
            accepted += 1
            for target in targets:
                environment.exchange(
                    heaviest, target, MessageKind.SERVER_COORDINATION, 8,
                    description="mcmc-accept-notification",
                )
        history.append(current.objective())
        environment.next_round()
    environment.apply_assignment(current.as_lists())
    return current, history, accepted


def bench_mcmc_balancing(graph, args) -> dict:
    """Time the incremental balancing kernel vs the pre-PR from-scratch one."""
    iterations = args.mcmc

    def setup():
        environment = FederatedEnvironment.from_graph(
            graph.normalized_features(0.0, 1.0), seed=0
        )
        initial = greedy_initialization(environment, rng=np.random.default_rng(0))
        return environment, initial

    def run_incremental() -> float:
        environment, initial = setup()
        balancer = MCMCBalancer(
            environment, iterations=iterations,
            rng=np.random.default_rng(7), kernel="incremental",
        )
        start = time.perf_counter()
        result = balancer.run(initial)
        elapsed = time.perf_counter() - start
        run_incremental.final_objective = result.final_objective
        return elapsed

    def run_pre_pr() -> float:
        environment, initial = setup()
        start = time.perf_counter()
        current, history, _ = _pre_pr_balance(
            environment, initial, iterations, np.random.default_rng(7)
        )
        elapsed = time.perf_counter() - start
        run_pre_pr.final_objective = history[-1]
        return elapsed

    fast = _best(run_incremental, args.repeat + 1)
    slow = _best(run_pre_pr, args.repeat + 1)
    if run_incremental.final_objective != run_pre_pr.final_objective:
        raise AssertionError(
            "incremental kernel diverged from the pre-PR kernel: "
            f"{run_incremental.final_objective} != {run_pre_pr.final_objective}"
        )
    return {
        "iterations": iterations,
        "devices": graph.num_nodes,
        "incremental_seconds": fast,
        "pre_pr_seconds": slow,
        "speedup": slow / fast if fast else float("nan"),
        "final_objective": run_incremental.final_objective,
    }


def bench_greedy_initialization(graph, args) -> dict:
    """Time the batched greedy kernel vs the per-edge reference loop."""
    from repro.crypto.oblivious_transfer import TranscriptAccountant

    normalized = graph.normalized_features(0.0, 1.0)
    outcomes = {}

    def run(kernel):
        def fn() -> float:
            environment = FederatedEnvironment.from_graph(normalized, seed=0)
            accountant = TranscriptAccountant()
            start = time.perf_counter()
            assignment = greedy_initialization(
                environment, accountant=accountant,
                rng=np.random.default_rng(0), kernel=kernel,
            )
            elapsed = time.perf_counter() - start
            outcomes[kernel] = (assignment.objective(), accountant.snapshot())
            return elapsed

        return fn

    fast = _best(run("batched"), args.repeat + 1)
    slow = _best(run("reference"), args.repeat + 1)
    if outcomes["batched"] != outcomes["reference"]:
        raise AssertionError(
            "batched greedy kernel diverged from the reference loop: "
            f"{outcomes['batched']} != {outcomes['reference']}"
        )
    return {
        "devices": graph.num_nodes,
        "comparisons": outcomes["batched"][1]["comparisons"],
        "batched_seconds": fast,
        "reference_seconds": slow,
        "speedup": slow / fast if fast else float("nan"),
        "objective": outcomes["batched"][0],
    }


def bench_secure_construction(graph, args) -> dict:
    """Time secure cold construction: batched vectorized-OT kernels vs loops.

    Secure mode is the scenario the paper evaluates — every degree and
    workload comparison runs the (simulated) CrypTFlow2 millionaires'
    protocol.  The batched kernels execute the same protocol as one numpy
    block per phase (vectorised table OTs in greedy, the incremental
    balancer's batched Alg. 3 path); the reference path is the per-comparison
    python loop.  Both are asserted bit-for-bit equivalent here (assignments
    and transcript counters) before the timing is recorded.  The MCMC budget
    is capped: the reference loop's per-iteration protocol cost would make
    the paper's 1,000-iteration budget take minutes per repetition without
    changing the ratio.
    """
    from repro.core import TreeConstructor, TreeConstructorConfig

    normalized = graph.normalized_features(0.0, 1.0)
    iterations = min(args.mcmc, 30)
    outcomes = {}

    def run(secure_kernel):
        def fn() -> float:
            environment = FederatedEnvironment.from_graph(normalized, seed=0)
            constructor = TreeConstructor(
                TreeConstructorConfig(
                    mcmc_iterations=iterations, secure_kernel=secure_kernel
                ),
                rng=np.random.default_rng(0),
                secure=True,
            )
            start = time.perf_counter()
            result = constructor.construct(environment)
            elapsed = time.perf_counter() - start
            outcomes[secure_kernel] = (
                result.assignment.as_lists(),
                result.transcript.snapshot(),
            )
            return elapsed

        return fn

    fast = _best(run("batched"), args.repeat)
    slow = _best(run("reference"), args.repeat)
    if outcomes["batched"] != outcomes["reference"]:
        raise AssertionError(
            "batched secure construction diverged from the reference loops: "
            f"{outcomes['batched'][1]} != {outcomes['reference'][1]}"
        )
    return {
        "devices": graph.num_nodes,
        "mcmc_iterations": iterations,
        "comparisons": outcomes["batched"][1]["comparisons"],
        "batched_seconds": fast,
        "reference_seconds": slow,
        "speedup": slow / fast if fast else float("nan"),
    }


def bench_secure_transport(graph, args) -> dict:
    """Measured two-party execution: one bulk session vs chunked round-trips.

    Runs a comparison batch through :class:`repro.crypto.RemoteParty` — the
    parties in separate processes over a real
    :class:`~repro.runtime.channel.PartyChannel` — and records the bytes
    that actually crossed the wire next to the analytic
    :func:`~repro.crypto.secure_compare.comparison_cost` total (the driver
    itself raises if the protocol frames diverge from the model, so a
    recorded section is also a passed contract check).  The tracked speedup
    is *bulk vs chunked*: the same comparisons split over many small
    sessions pay per-session process spawn and handshake once per chunk,
    which is exactly the amortisation the OT-extension-style pad
    precomputation and batched framing exist to buy.  Before timing, the
    bulk outcome is asserted bit-for-bit equivalent to the in-process
    ``execute=True`` kernel (results, accountant counters and log, RNG
    stream state).
    """
    from repro.crypto import RemoteParty, SecureComparator, TranscriptAccountant

    bit_width = 32
    count = max(32, graph.num_nodes)
    chunks = 8
    operand_rng = np.random.default_rng(7)
    left = operand_rng.integers(0, 1 << bit_width, size=count, dtype=np.uint64)
    right = operand_rng.integers(0, 1 << bit_width, size=count, dtype=np.uint64)

    # Equivalence gate: the wire path must be indistinguishable from the
    # in-process simulation in every recorded observable.
    rng_local, rng_remote = np.random.default_rng(11), np.random.default_rng(11)
    acc_local, acc_remote = TranscriptAccountant(), TranscriptAccountant()
    local = SecureComparator(
        bit_width=bit_width, accountant=acc_local, rng=rng_local
    ).compare_batch(left, right, execute=True)
    driver = RemoteParty(bit_width=bit_width, accountant=acc_remote, rng=rng_remote)
    remote = driver.compare_batch(left, right, session_key="bench-equivalence")
    if (
        not np.array_equal(local.left_ge_right, remote.left_ge_right)
        or acc_local.snapshot() != acc_remote.snapshot()
        or acc_local._log != acc_remote._log
        or rng_local.bit_generator.state != rng_remote.bit_generator.state
    ):
        raise AssertionError(
            "two-party execution diverged from the in-process simulation: "
            f"{acc_local.snapshot()} != {acc_remote.snapshot()}"
        )
    report = remote.report

    def bulk() -> float:
        session_driver = RemoteParty(bit_width=bit_width)
        start = time.perf_counter()
        session_driver.compare_batch(left, right, session_key="bench-bulk")
        return time.perf_counter() - start

    def chunked() -> float:
        session_driver = RemoteParty(bit_width=bit_width)
        bounds = np.linspace(0, count, chunks + 1, dtype=int)
        start = time.perf_counter()
        for index in range(chunks):
            low, high = int(bounds[index]), int(bounds[index + 1])
            if high > low:
                session_driver.compare_batch(
                    left[low:high], right[low:high],
                    session_key=f"bench-chunk-{index}",
                )
        return time.perf_counter() - start

    bulk_seconds = _best(bulk, args.repeat)
    chunked_seconds = _best(chunked, args.repeat)
    return {
        "comparisons": count,
        "bit_width": bit_width,
        "chunks": chunks,
        "cpu_count": os.cpu_count(),
        "bulk_seconds": bulk_seconds,
        "chunked_seconds": chunked_seconds,
        "speedup": chunked_seconds / bulk_seconds if bulk_seconds else float("nan"),
        "protocol_payload_bytes": report.protocol_payload_bytes,
        "analytic_payload_bytes": report.analytic_payload_bytes,
        "wire_bytes": report.wire_bytes,
        "frames": report.frames,
    }


def _config(args, epsilon: float = 2.0):
    return (
        default_config_for("facebook")
        .with_mcmc_iterations(args.mcmc)
        .with_epochs(args.epochs)
        .with_epsilon(epsilon)
    )


def _best(fn, repeat: int) -> float:
    return min(fn() for _ in range(repeat))


def bench_treebatch(graph, args) -> dict:
    """Time union-graph assembly: vectorised vs generic per-node path."""
    system = LumosSystem(graph, _config(args), store=ArtifactStore())
    construction = system.construct_trees()
    initialization = system.initialize_embeddings()
    environment = system.environment
    dim = graph.num_features

    def vectorized() -> float:
        start = time.perf_counter()
        TreeBatch._build_vectorized(environment, construction, initialization, dim)
        return time.perf_counter() - start

    def generic() -> float:
        start = time.perf_counter()
        TreeBatch._build_generic(environment, construction, initialization, dim)
        return time.perf_counter() - start

    fast = _best(vectorized, args.repeat + 1)
    slow = _best(generic, args.repeat + 1)
    return {
        "vectorized_seconds": fast,
        "generic_seconds": slow,
        "speedup": slow / fast if fast else float("nan"),
    }


def bench_epoch(graph, split, args) -> dict:
    """Time one steady-state supervised training epoch on each backend.

    Measured as the marginal cost ``(t(E epochs) - t(1 epoch)) / (E - 1)`` so
    one-time setup (model init, constant propagation, prepared matrices) does
    not pollute the per-epoch number.
    """
    epochs = max(args.epochs, 10)
    results = {}
    for backend in ("numpy", "reference"):
        with use_backend(backend):
            system = LumosSystem(graph, _config(args), store=ArtifactStore())
            trainer = system.trainer()

            def run(num_epochs: int) -> float:
                start = time.perf_counter()
                trainer.train_supervised(graph.labels, split, epochs=num_epochs)
                return time.perf_counter() - start

            run(1)  # warm caches (prepared matrices, profiles)
            long = _best(lambda: run(epochs), args.repeat)
            short = _best(lambda: run(1), args.repeat)
            results[f"{backend}_seconds"] = max(long - short, 0.0) / (epochs - 1)
    results["speedup"] = results["reference_seconds"] / results["numpy_seconds"]
    return results


def bench_training_overhaul(graph, split, args) -> dict:
    """Time the fused+folded training path against its ablations.

    Three comparisons, each with its correctness asserted before timing:

    * **fused+folded vs unfused reference** — the tracked ``speedup``.  The
      two paths build different autograd graphs (one node per layer with
      closed-form adjoints + the folded ``P Â`` operator vs the composite
      reference ops), so per-epoch losses agree only to rounding; the final
      metrics, ledger totals and RNG states must match exactly.
    * **folded vs unfolded propagation** — same fused kernels, with and
      without collapsing the mean-pool/propagation chain into one operator.
    * **batched vs per-point sweep training** — the cross-point stacked
      trainer vs the sequential loop, asserted bit-for-bit identical
      (including per-epoch losses).

    Epoch timings use the marginal-cost form of ``bench_epoch`` so one-time
    setup does not pollute the per-epoch numbers.
    """
    from repro.core.lumos import run_supervised_many

    epochs = max(args.epochs, 10)
    base_config = _config(args)

    def _outcome(system, history):
        return {
            "test_accuracy": history.test_accuracy,
            "best_val_accuracy": history.best_val_accuracy,
            "train_accuracy": tuple(history.train_accuracy),
            "val_accuracy": tuple(history.val_accuracy),
            "ledger": tuple(sorted(
                system.environment.ledger.summary(
                    system.environment.num_devices
                ).items()
            )),
            "rng_state": repr(system.rng.bit_generator.state),
        }

    def _fresh_run(config, backend):
        with use_backend(backend):
            system = LumosSystem(graph, config, store=ArtifactStore())
            _, history = system.trainer().train_supervised(
                graph.labels, split, epochs=epochs
            )
        return _outcome(system, history), list(history.losses)

    fused_outcome, fused_losses = _fresh_run(base_config, "numpy")
    unfolded_outcome, unfolded_losses = _fresh_run(
        base_config.without_propagation_folding(), "numpy"
    )
    reference_outcome, reference_losses = _fresh_run(
        base_config.without_propagation_folding(), "reference"
    )
    for label, outcome, losses in (
        ("unfused reference", reference_outcome, reference_losses),
        ("unfolded", unfolded_outcome, unfolded_losses),
    ):
        if fused_outcome != outcome:
            raise AssertionError(
                f"fused+folded training diverged from the {label} path: "
                f"{fused_outcome} != {outcome}"
            )
        if not np.allclose(fused_losses, losses, rtol=1e-9, atol=1e-12):
            raise AssertionError(
                f"fused+folded losses diverged from the {label} path beyond "
                f"rounding"
            )

    timings = {}
    for label, config, backend in (
        ("fused_folded", base_config, "numpy"),
        ("fused_unfolded", base_config.without_propagation_folding(), "numpy"),
        ("reference", base_config.without_propagation_folding(), "reference"),
    ):
        with use_backend(backend):
            system = LumosSystem(graph, config, store=ArtifactStore())
            trainer = system.trainer()

            def run(num_epochs: int) -> float:
                start = time.perf_counter()
                trainer.train_supervised(graph.labels, split, epochs=num_epochs)
                return time.perf_counter() - start

            run(1)  # warm caches (prepared + folded matrices, profiles)
            # The tracked speedup is a ratio of two marginal costs, so it is
            # twice as sensitive to scheduling noise as a single timing —
            # take the min over two extra repeats to stabilise it.
            long = _best(lambda: run(epochs), args.repeat + 2)
            short = _best(lambda: run(1), args.repeat + 2)
            timings[label] = max(long - short, 0.0) / (epochs - 1)

    def _sweep(label, train):
        def fn() -> float:
            store = ArtifactStore()
            systems = [
                LumosSystem(graph, _config(args, epsilon), store=store)
                for epsilon in EPSILONS
            ]
            start = time.perf_counter()
            results = train(systems)
            elapsed = time.perf_counter() - start
            fn.outcome = tuple(
                (_outcome(system, result.history), tuple(result.history.losses))
                for system, result in zip(systems, results)
            )
            return elapsed

        fn.__name__ = label
        return fn

    per_point = _sweep(
        "per_point",
        lambda systems: [s.run_supervised(split, epochs=epochs) for s in systems],
    )
    batched = _sweep(
        "batched",
        lambda systems: run_supervised_many(systems, split, epochs=epochs),
    )
    per_point_seconds = _best(per_point, args.repeat)
    batched_seconds = _best(batched, args.repeat)
    if per_point.outcome != batched.outcome:
        raise AssertionError(
            "batched sweep training diverged from the per-point loop"
        )

    return {
        "devices": graph.num_nodes,
        "epochs": epochs,
        "fused_folded_epoch_seconds": timings["fused_folded"],
        "fused_unfolded_epoch_seconds": timings["fused_unfolded"],
        "reference_epoch_seconds": timings["reference"],
        "speedup": timings["reference"] / timings["fused_folded"]
        if timings["fused_folded"] else float("nan"),
        "folding_speedup": timings["fused_unfolded"] / timings["fused_folded"]
        if timings["fused_folded"] else float("nan"),
        "sweep_points": len(EPSILONS),
        "per_point_sweep_seconds": per_point_seconds,
        "batched_sweep_seconds": batched_seconds,
        "batching_speedup": per_point_seconds / batched_seconds
        if batched_seconds else float("nan"),
        "test_accuracy": fused_outcome["test_accuracy"],
    }


def _seed_construct(environment, config, rng):
    """Pre-refactor tree construction: greedy + the from-scratch MCMC kernel."""
    from repro.core.constructor import TreeConstructionResult
    from repro.core.tree import build_tree
    from repro.crypto.oblivious_transfer import TranscriptAccountant

    transcript = TranscriptAccountant()
    greedy = greedy_initialization(
        environment,
        accountant=transcript,
        bit_width=config.constructor.degree_comparison_bits,
        rng=rng,
        kernel="reference",  # the pre-refactor implementation was the per-edge loop
    )
    assignment, history, _ = _pre_pr_balance(
        environment, greedy, config.constructor.mcmc_iterations, rng,
        bit_width=config.constructor.workload_comparison_bits,
    )
    environment.apply_assignment(assignment.as_lists())
    local_graphs = {}
    for device_id in environment.device_ids():
        selected = sorted(assignment.selected.get(device_id, set()))
        local_graphs[device_id] = build_tree(device_id, selected)
        environment.charge_compute(
            device_id, cost=float(len(selected)), description="tree-construction"
        )
    return TreeConstructionResult(
        assignment=assignment,
        local_graphs=local_graphs,
        greedy_assignment=greedy,
        transcript=transcript,
        canonical_layout=False,  # route TreeBatch to the generic builder
    )


def _sweep_seed_path(graph, split, args) -> tuple:
    """Emulate the pre-refactor path: from-scratch balancing kernel (with its
    per-winner announcement ledger), reference compute kernels, no artifact
    reuse, generic batch assembly, per-epoch profile recomputation."""
    from repro.core import LDPEmbeddingInitializer
    from repro.crypto.ldp import FeatureBounds

    normalized = graph.normalized_features(0.0, 1.0)
    pipeline_seconds = 0.0
    start = time.perf_counter()
    with use_backend("reference"):
        for epsilon in EPSILONS:
            pipeline_start = time.perf_counter()
            config = _config(args, epsilon)
            rng = np.random.default_rng(config.seed)
            environment = FederatedEnvironment.from_graph(normalized, seed=config.seed)
            construction = _seed_construct(environment, config, rng)
            initialization = LDPEmbeddingInitializer(
                epsilon=epsilon, bounds=FeatureBounds(0.0, 1.0), rng=rng
            ).run(environment, construction.assignment)
            batch = TreeBatch._build_generic(
                environment, construction, initialization, graph.num_features
            )
            pipeline_seconds += time.perf_counter() - pipeline_start
            trainer = _SeedScheduleTrainer(
                environment, construction, initialization,
                config.trainer, rng=rng, batch=batch,
            )
            trainer.train_supervised(normalized.labels, split)
    return time.perf_counter() - start, pipeline_seconds


def _sweep_engine(graph, split, args):
    from repro.core.lumos import run_supervised_many

    store = ArtifactStore()
    pipeline_seconds = 0.0
    systems = []
    start = time.perf_counter()
    for epsilon in EPSILONS:
        pipeline_start = time.perf_counter()
        system = LumosSystem(graph, _config(args, epsilon), store=store)
        system.tree_batch()  # partition -> construction -> draws -> ldp -> batch
        pipeline_seconds += time.perf_counter() - pipeline_start
        systems.append(system)
    # Same call the runner's serial path makes: all points' training loops
    # stacked into batched backend kernels (bit-identical to per-point).
    run_supervised_many(systems, split)
    return time.perf_counter() - start, pipeline_seconds, store


def bench_epsilon_sweep(graph, split, args) -> dict:
    # Interleave the two measurements so CPU-frequency drift during the run
    # biases neither path; report best-of for each.  ``pipeline`` isolates
    # the phases the engine controls (construction, LDP exchange, batch
    # assembly); end-to-end additionally shares the per-point training cost,
    # which no sweep reuse can remove.
    seed_seconds = seed_pipeline = None
    best = best_pipeline = None
    store = None
    for _ in range(args.repeat):
        seed_elapsed, seed_pipeline_elapsed = _sweep_seed_path(graph, split, args)
        if seed_seconds is None or seed_elapsed < seed_seconds:
            seed_seconds, seed_pipeline = seed_elapsed, seed_pipeline_elapsed
        engine_elapsed, engine_pipeline_elapsed, run_store = _sweep_engine(
            graph, split, args
        )
        if best is None or engine_elapsed < best:
            best, best_pipeline, store = (
                engine_elapsed, engine_pipeline_elapsed, run_store
            )
    summary = store.summary()
    return {
        "points": len(EPSILONS),
        "epsilons": list(EPSILONS),
        "seed_path_seconds": seed_seconds,
        "engine_seconds": best,
        "speedup": seed_seconds / best,
        "seed_pipeline_seconds": seed_pipeline,
        "engine_pipeline_seconds": best_pipeline,
        "pipeline_speedup": seed_pipeline / best_pipeline,
        # How training-bound the engine path still is after the overhaul
        # (the pre-overhaul sweep spent ~85% of its time training).
        "engine_training_seconds": best - best_pipeline,
        "engine_training_share": (best - best_pipeline) / best if best else 0.0,
        "construction_runs": summary["construction"]["misses"],
        "construction_hits": summary["construction"]["hits"],
        "ldp_draws_hits": summary["ldp_draws"]["hits"],
        "tree_batch_hits": summary["tree_batch"]["hits"],
        "stage_stats": summary,
        "store_stats": store.stats(),
    }


def bench_parallel_sweep(graph, args) -> dict:
    """Time the 5-point sweep through the process-pool scheduler.

    Three executions of the *same* work plan: the runner's serial loop, the
    process executor with one worker, and with ``--workers`` workers.  The
    merged metrics must be bit-for-bit identical across all three (asserted
    here — this is the runtime's determinism contract under load); the
    tracked ``speedup`` is 1-worker vs N-workers wall clock, i.e. what the
    scheduler gains from fan-out once its fixed costs are paid.
    """
    from repro.eval.runner import ExperimentScale, run_epsilon_sweep
    from repro.runtime import ProcessExecutor

    scale = ExperimentScale(
        num_nodes=args.nodes, epochs=args.epochs, mcmc_iterations=args.mcmc, seed=0
    )
    epsilons = list(EPSILONS)
    outcomes = {}

    def run(label, executor_factory):
        def fn() -> float:
            executor = executor_factory()
            start = time.perf_counter()
            outcomes[label] = run_epsilon_sweep(
                "facebook",
                epsilons=epsilons,
                scale=scale,
                store=ArtifactStore() if executor is None else None,
                executor=executor,
            )
            return time.perf_counter() - start

        return fn

    serial = _best(run("serial", lambda: None), args.repeat)
    one = _best(run("pool_1", lambda: ProcessExecutor(max_workers=1)), args.repeat)
    if args.workers > 1:
        many = _best(
            run("pool_n", lambda: ProcessExecutor(max_workers=args.workers)),
            args.repeat,
        )
    else:
        # 1 vs 1 would only record timing jitter around 1.0x into the gate.
        many, outcomes["pool_n"] = one, outcomes["pool_1"]
    if not (outcomes["serial"] == outcomes["pool_1"] == outcomes["pool_n"]):
        raise AssertionError(
            f"parallel sweep diverged from the serial path: {outcomes}"
        )
    return {
        "points": len(epsilons),
        "workers": args.workers,
        "cpu_count": os.cpu_count(),
        "serial_seconds": serial,
        "workers1_seconds": one,
        "workers_n_seconds": many,
        "speedup": one / many if many else float("nan"),
        "vs_serial": serial / many if many else float("nan"),
    }


def bench_robustness_sweep(graph, split, args) -> dict:
    """Overhead of the fault-injection training path vs the fault-free one.

    Two ``LumosItem`` executions against one warm store: the default config
    and a hostile scenario combining dropout, churn, stragglers with a round
    deadline, and message loss.  The scenario leaves every stage key
    untouched, so both share the pipeline prefix and the timings isolate the
    training loop — the tracked ``speedup`` is fault-free over faulted wall
    clock (~1.0x; the gate trips if the fault path gets >20% slower).

    Two contracts are asserted inline: an explicitly-empty scenario (even
    with a different fault seed) is byte-for-byte the *same work item* as the
    default config, and the hostile run is deterministic across repeats.
    """
    from repro.faults import FaultScenarioConfig
    from repro.runtime import GraphSpec, LumosItem

    spec = GraphSpec(dataset="facebook", seed=0, num_nodes=graph.num_nodes)
    base = _config(args)
    hostile = FaultScenarioConfig(
        dropout_rate=0.15,
        join_rate=0.30,
        leave_rate=0.10,
        straggler_rate=0.20,
        straggler_multiplier=4.0,
        round_deadline=2.5,
        message_loss_rate=0.05,
        fault_seed=16,
    )
    baseline_item = LumosItem(graph_spec=spec, config=base, task="robustness")
    faulted_item = LumosItem(
        graph_spec=spec, config=base.with_faults(hostile), task="robustness"
    )
    empty_item = LumosItem(
        graph_spec=spec,
        config=base.with_faults(FaultScenarioConfig(fault_seed=99)),
        task="robustness",
    )
    if empty_item.key() != baseline_item.key():
        raise AssertionError("an empty fault scenario changed the work-item key")

    store = ArtifactStore()
    baseline_payload = baseline_item.execute(store)  # warms the shared prefix
    faulted_payload = faulted_item.execute(store)
    if empty_item.execute(store) != baseline_payload:
        raise AssertionError(
            "empty fault scenario diverged from the fault-free path"
        )

    def timed(work_item, expected, label):
        def fn() -> float:
            start = time.perf_counter()
            payload = work_item.execute(store)
            elapsed = time.perf_counter() - start
            if payload != expected:
                raise AssertionError(f"{label} robustness run is nondeterministic")
            return elapsed

        return fn

    fault_free = _best(
        timed(baseline_item, baseline_payload, "fault-free"), args.repeat
    )
    faulted = _best(timed(faulted_item, faulted_payload, "faulted"), args.repeat)
    value = faulted_payload["value"]
    return {
        "devices": graph.num_nodes,
        "epochs": args.epochs,
        "fault_free_seconds": fault_free,
        "faulted_seconds": faulted,
        "speedup": fault_free / faulted if faulted else float("nan"),
        "mean_participation": value["mean_participation"],
        "offline_device_rounds": value["offline_device_rounds"],
        "evicted_device_rounds": value["evicted_device_rounds"],
        "lost_update_rounds": value["lost_update_rounds"],
        "skipped_updates": value["skipped_updates"],
        "dropped_messages": value["dropped_messages"],
        "accuracy_delta": value["test_accuracy"]
        - baseline_payload["value"]["test_accuracy"],
    }


def bench_tree_maintenance(graph, args) -> dict:
    """Steady-state journalled delta maintenance vs from-scratch rebuild.

    Three measurements plus one asserted contract:

    * **steady-state update rate** — timed remove+insert cycles on a
      journalled ``MaintainedTree`` at 10^4 devices (the graph is rebuilt at
      that scale unless ``--smoke``); every cycle is two write-ahead-
      journalled mutations including the fsync, i.e. the real maintenance
      path, not an in-memory approximation.  The tracked ``speedup`` is one
      full reconstruction's wall clock over the per-delta cost — how many
      journalled updates one rebuild buys.
    * **rebuild wall clock** — ``fresh_assignment`` over the maintained
      adjacency at the maintenance layer's rebuild MCMC budget.
    * **staleness** — maintained vs rebuilt objective after the churn batch,
      the quantity the ``StalenessMonitor`` bounds in production.
    * **kill-replay contract** — a forked child runs a churn schedule with a
      ``ChaosConfig`` that ``os._exit``s it mid-journal-append (torn tail on
      disk, exit code 86); the parent recovers the journal, resumes the
      schedule at the recovered ``seq``, and the final state digest must
      equal an uninterrupted run's bit for bit.  Asserted at a small scale
      on every bench run so the crash-safety story cannot rot between PRs.
    """
    import multiprocessing
    import tempfile

    from repro.engine.store import DiskSpillStore
    from repro.faults import FaultScenarioConfig
    from repro.faults.plan import FaultPlan
    from repro.maintenance import (
        MaintainedTree,
        MaintenanceConfig,
        MutationJournal,
        compile_churn_schedule,
        first_crash_seq,
        fresh_assignment,
        resume_schedule,
        run_schedule,
    )
    from repro.maintenance.churn import _constructed_tree
    from repro.runtime.worker import ChaosConfig

    smoke = bool(getattr(args, "smoke", False))
    devices = graph.num_nodes if smoke else max(args.nodes, 10_000)
    construction_iterations = min(args.mcmc, 200)
    lists, ego, num_devices = _constructed_tree(
        "facebook", devices, 0, construction_iterations
    )
    config = MaintenanceConfig(seed=0)
    cycles = 20 if smoke else 200  # one cycle = remove + reinsert (2 mutations)

    with tempfile.TemporaryDirectory(prefix="repro-bench-maintenance-") as tmp:
        journal = MutationJournal.create(Path(tmp) / "journal.lmj")
        snapshots = DiskSpillStore(
            Path(tmp) / "snapshots", max_bytes=256 * 1024 * 1024
        )
        tree = MaintainedTree.from_construction(
            lists, ego, config, journal=journal, snapshots=snapshots
        )
        rng = np.random.default_rng(0)
        candidates = [d for d in tree.present() if ego[d]]
        sample = [
            int(d)
            for d in rng.choice(
                candidates, size=min(cycles, len(candidates)), replace=False
            )
        ]
        mutations = 2 * len(sample)

        def churn_batch() -> float:
            # Each cycle leaves membership unchanged, so repeats time the
            # same workload on a live (not pristine) tree — the steady state.
            start = time.perf_counter()
            for device in sample:
                tree.remove_device(device)
                tree.insert_device(device, ego[device])
            return time.perf_counter() - start

        def rebuild() -> float:
            start = time.perf_counter()
            rebuild.assignment, _ = fresh_assignment(
                tree.neighbors, config.rebuild_mcmc_iterations, seed=0
            )
            return time.perf_counter() - start

        update_seconds = _best(churn_batch, args.repeat)
        rebuild_seconds = _best(rebuild, args.repeat)
        maintained_objective = tree.objective()
        rebuilt_objective = max(
            (len(v) for v in rebuild.assignment.values()), default=0
        )
        journal.close()
    per_update = update_seconds / mutations if mutations else float("nan")

    # Kill-replay contract (small scale — the digest equality is scale-free).
    kr = dict(
        dataset="facebook",
        num_nodes=min(graph.num_nodes, 200),
        seed=0,
        scenario=FaultScenarioConfig(join_rate=0.30, leave_rate=0.10, fault_seed=13),
        rounds=6,
        mcmc_iterations=min(args.mcmc, 40),
        rebalance_every=4,
    )
    _, kr_ego, kr_devices = _constructed_tree(
        kr["dataset"], kr["num_nodes"], kr["seed"], kr["mcmc_iterations"]
    )
    plan = FaultPlan.compile(kr["scenario"], kr_devices, kr["rounds"])
    schedule = compile_churn_schedule(
        plan, kr_ego, rebalance_every=kr["rebalance_every"]
    )
    chaos = crash_seq = None
    for chaos_seed in range(64):
        candidate = ChaosConfig(seed=chaos_seed, crash_rate=0.05)
        predicted = first_crash_seq(candidate, len(schedule))
        if predicted is not None and 1 < predicted < len(schedule):
            chaos, crash_seq = candidate, predicted
            break
    if chaos is None:
        raise AssertionError("no chaos seed produces a mid-schedule crash")

    with tempfile.TemporaryDirectory(prefix="repro-bench-killreplay-") as tmp:
        clean_digest = run_schedule(
            str(Path(tmp) / "clean.lmj"), str(Path(tmp) / "clean-snap"), **kr
        )
        context = multiprocessing.get_context("fork")
        child = context.Process(
            target=run_schedule,
            args=(str(Path(tmp) / "torn.lmj"), str(Path(tmp) / "torn-snap")),
            kwargs={**kr, "chaos": chaos},
        )
        child.start()
        child.join(timeout=600)
        if child.exitcode != 86:
            raise AssertionError(
                f"chaos child exited {child.exitcode}, expected the worker "
                "crash code 86"
            )
        recovered_digest, resumed_at = resume_schedule(
            str(Path(tmp) / "torn.lmj"), str(Path(tmp) / "torn-snap"), **kr
        )
        if resumed_at != crash_seq - 1:
            raise AssertionError(
                f"recovery resumed at seq {resumed_at}, expected "
                f"{crash_seq - 1} (crash during append of seq {crash_seq})"
            )
        if recovered_digest != clean_digest:
            raise AssertionError(
                "kill-replay contract violated: recovered digest differs "
                "from the uninterrupted run"
            )

    return {
        "devices": num_devices,
        "construction_mcmc_iterations": construction_iterations,
        "delta_mutations": mutations,
        "update_seconds": update_seconds,
        "updates_per_second": mutations / update_seconds
        if update_seconds else float("nan"),
        "rebuild_seconds": rebuild_seconds,
        "speedup": rebuild_seconds / per_update if per_update else float("nan"),
        "maintained_objective": maintained_objective,
        "rebuilt_objective": rebuilt_objective,
        "staleness": (maintained_objective - rebuilt_objective)
        / max(rebuilt_objective, 1),
        "kill_replay_devices": kr_devices,
        "kill_replay_mutations": len(schedule),
        "kill_replay_crash_seq": crash_seq,
        "kill_replay_resumed_at": resumed_at,
        "kill_replay_match": True,
    }


def check_trajectory(payload: dict, previous_path: Path) -> list:
    """Compare recorded speedups against the previous BENCH_engine.json.

    Returns a list of human-readable regression descriptions; any entry means
    a tracked speedup fell more than ``REGRESSION_TOLERANCE`` below its
    previously recorded value — the caller fails loudly on that.
    """
    if not previous_path.exists():
        return []
    try:
        previous = json.loads(previous_path.read_text())
    except (OSError, json.JSONDecodeError):
        return []
    if previous.get("scale") != payload.get("scale"):
        # Speedups measured at a different scale are not comparable to the
        # recorded trajectory; the caller still overwrites the file, making
        # the new scale the baseline for subsequent runs.
        print("[bench_engine] scale differs from the recorded trajectory; "
              "skipping the regression check", file=sys.stderr)
        return []
    regressions = []
    for section in TRACKED_SPEEDUPS:
        previous_section = previous.get(section, {})
        measured_section = payload.get(section, {})
        recorded = previous_section.get("speedup")
        measured = measured_section.get("speedup")
        if recorded is None or measured is None:
            continue
        recorded_cpus = previous_section.get("cpu_count")
        measured_cpus = measured_section.get("cpu_count")
        if recorded_cpus is not None or measured_cpus is not None:
            # Sections that record a cpu_count (parallel_sweep,
            # secure_transport) measure a ratio the core count determines; a
            # trajectory recorded on a different machine class is not
            # comparable.  Both sides are checked against the *current*
            # box — a partial ``--only`` merge can carry a stale section
            # recorded elsewhere, and comparing such a number against a
            # fresh one is still apples to oranges even when the two stored
            # fields happen to agree.  (Sections without the field skip
            # this guard entirely.)
            current_cpus = os.cpu_count()
            if recorded_cpus != current_cpus or measured_cpus != current_cpus:
                print(f"[bench_engine] {section}: cpu_count differs from the "
                      "current machine; skipping its regression check",
                      file=sys.stderr)
                continue
        floor = recorded * (1.0 - REGRESSION_TOLERANCE)
        if measured < floor:
            regressions.append(
                f"{section}: speedup {measured:.2f}x fell below "
                f"{floor:.2f}x (recorded {recorded:.2f}x, tolerance "
                f"{REGRESSION_TOLERANCE:.0%})"
            )
    return regressions


def main(argv=None, default_output: Optional[Path] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=300)
    parser.add_argument("--epochs", type=int, default=50)
    parser.add_argument("--mcmc", type=int, default=1000,
                        help="MCMC balancing iterations (paper default for "
                             "the Facebook graph: 1000)")
    parser.add_argument("--repeat", type=int, default=3,
                        help="timing repetitions (best-of)")
    parser.add_argument("--workers", type=int, default=4,
                        help="worker-pool size of the parallel_sweep section")
    parser.add_argument("--output", default=None,
                        help="output path (default: ./BENCH_engine.json, or "
                             "the repository root when run via "
                             "benchmarks/bench_engine.py)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny scale, no JSON rewrite, no regression "
                             "gate — exercises every section (tier-1 CI)")
    parser.add_argument("--only", default=None,
                        help="comma-separated section names: measure only "
                             "these, gate only these, and merge them into "
                             "the existing BENCH_engine.json (the recorded "
                             "scale must match)")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="write a Chrome trace-event JSON of the run "
                             "(spans from every section, one track per "
                             "worker process; load in ui.perfetto.dev)")
    args = parser.parse_args(argv)
    if args.only:
        selected = {name.strip() for name in args.only.split(",") if name.strip()}
        unknown = selected - set(TRACKED_SPEEDUPS)
        if unknown:
            parser.error(
                f"unknown section(s) {sorted(unknown)}; "
                f"choose from {list(TRACKED_SPEEDUPS)}"
            )
    else:
        selected = set(TRACKED_SPEEDUPS)
    if args.smoke:
        args.nodes = min(args.nodes, 40)
        args.epochs = min(args.epochs, 3)
        args.mcmc = min(args.mcmc, 25)
        args.repeat = 1
        args.workers = min(args.workers, 2)

    graph = load_dataset("facebook", seed=0, num_nodes=args.nodes)
    split = split_nodes(graph, seed=0)

    print(f"[bench_engine] graph: {graph.num_nodes} devices, "
          f"{graph.num_edges} edges, d={graph.num_features}")
    tracer = None
    if args.trace:
        tracer = obs.Tracer(process="bench")
        obs.set_tracer(tracer)
    sections = {}
    if "treebatch_assembly" in selected:
        treebatch = sections["treebatch_assembly"] = _observed(
            "treebatch_assembly", bench_treebatch, graph, args
        )
        print(f"[bench_engine] TreeBatch assembly: vectorized "
              f"{treebatch['vectorized_seconds'] * 1e3:.2f} ms vs generic "
              f"{treebatch['generic_seconds'] * 1e3:.2f} ms "
              f"({treebatch['speedup']:.1f}x)")
    if "training_epoch" in selected:
        epoch = sections["training_epoch"] = _observed(
            "training_epoch", bench_epoch, graph, split, args
        )
        print(f"[bench_engine] one epoch: fast "
              f"{epoch['numpy_seconds'] * 1e3:.2f} ms "
              f"vs reference {epoch['reference_seconds'] * 1e3:.2f} ms "
              f"({epoch['speedup']:.2f}x)")
    if "training_overhaul" in selected:
        overhaul = sections["training_overhaul"] = _observed(
            "training_overhaul", bench_training_overhaul, graph, split, args
        )
        print(f"[bench_engine] training overhaul ({overhaul['devices']} devices, "
              f"{overhaul['epochs']} epochs): fused+folded "
              f"{overhaul['fused_folded_epoch_seconds'] * 1e3:.2f} ms/epoch vs "
              f"reference {overhaul['reference_epoch_seconds'] * 1e3:.2f} ms "
              f"({overhaul['speedup']:.2f}x; folding "
              f"{overhaul['folding_speedup']:.2f}x; "
              f"batched sweep {overhaul['batched_sweep_seconds']:.2f} s vs "
              f"per-point {overhaul['per_point_sweep_seconds']:.2f} s, "
              f"{overhaul['batching_speedup']:.2f}x)")
    if "mcmc_balancing" in selected:
        mcmc = sections["mcmc_balancing"] = _observed(
            "mcmc_balancing", bench_mcmc_balancing, graph, args
        )
        print(f"[bench_engine] MCMC balancing ({mcmc['iterations']} iterations, "
              f"{mcmc['devices']} devices): incremental "
              f"{mcmc['incremental_seconds'] * 1e3:.1f} ms vs pre-PR kernel "
              f"{mcmc['pre_pr_seconds'] * 1e3:.1f} ms ({mcmc['speedup']:.2f}x)")
    if "greedy_initialization" in selected:
        greedy = sections["greedy_initialization"] = _observed(
            "greedy_initialization", bench_greedy_initialization, graph, args
        )
        print(f"[bench_engine] greedy initialization ({greedy['comparisons']} "
              f"comparisons, {greedy['devices']} devices): batched "
              f"{greedy['batched_seconds'] * 1e3:.2f} ms vs reference "
              f"{greedy['reference_seconds'] * 1e3:.2f} ms "
              f"({greedy['speedup']:.1f}x)")
    if "secure_construction" in selected:
        secure = sections["secure_construction"] = _observed(
            "secure_construction", bench_secure_construction, graph, args
        )
        print(f"[bench_engine] secure construction ({secure['comparisons']} "
              f"protocol runs, {secure['mcmc_iterations']} MCMC iterations, "
              f"{secure['devices']} devices): batched "
              f"{secure['batched_seconds'] * 1e3:.1f} ms vs reference "
              f"{secure['reference_seconds'] * 1e3:.1f} ms "
              f"({secure['speedup']:.1f}x)")
    if "secure_transport" in selected:
        transport = sections["secure_transport"] = _observed(
            "secure_transport", bench_secure_transport, graph, args
        )
        print(f"[bench_engine] secure transport ({transport['comparisons']} "
              f"comparisons, 2 processes): bulk session "
              f"{transport['bulk_seconds'] * 1e3:.1f} ms vs "
              f"{transport['chunks']} chunked sessions "
              f"{transport['chunked_seconds'] * 1e3:.1f} ms "
              f"({transport['speedup']:.2f}x); measured "
              f"{transport['protocol_payload_bytes']} B on-protocol == "
              f"analytic {transport['analytic_payload_bytes']} B "
              f"({transport['wire_bytes']} B wire, "
              f"{transport['frames']} frames)")
    if "epsilon_sweep" in selected:
        sweep = sections["epsilon_sweep"] = _observed(
            "epsilon_sweep", bench_epsilon_sweep, graph, split, args
        )
        print(f"[bench_engine] epsilon sweep ({sweep['points']} points): engine "
              f"{sweep['engine_seconds']:.2f} s vs seed path "
              f"{sweep['seed_path_seconds']:.2f} s ({sweep['speedup']:.2f}x "
              f"end-to-end; pipeline phases "
              f"{sweep['engine_pipeline_seconds']:.2f} s "
              f"vs {sweep['seed_pipeline_seconds']:.2f} s, "
              f"{sweep['pipeline_speedup']:.2f}x; construction ran "
              f"{sweep['construction_runs']}x, tree_batch hit "
              f"{sweep['tree_batch_hits']}x, ldp draws hit "
              f"{sweep['ldp_draws_hits']}x)")
        store_stats = sweep["store_stats"]
        print(f"[bench_engine] sweep store: {store_stats['hits']} hits / "
              f"{store_stats['misses']} misses, "
              f"{store_stats['evictions']} evictions, "
              f"{store_stats['entries']} entries resident")
    if "parallel_sweep" in selected:
        parallel = sections["parallel_sweep"] = _observed(
            "parallel_sweep", bench_parallel_sweep, graph, args
        )
        print(f"[bench_engine] parallel sweep ({parallel['points']} points, "
              f"{parallel['cpu_count']} CPUs): {parallel['workers']} workers "
              f"{parallel['workers_n_seconds']:.2f} s vs 1 worker "
              f"{parallel['workers1_seconds']:.2f} s ({parallel['speedup']:.2f}x; "
              f"serial executor {parallel['serial_seconds']:.2f} s, "
              f"{parallel['vs_serial']:.2f}x vs serial)")
    if "robustness_sweep" in selected:
        robustness = sections["robustness_sweep"] = _observed(
            "robustness_sweep", bench_robustness_sweep, graph, split, args
        )
        print(f"[bench_engine] robustness sweep ({robustness['devices']} devices, "
              f"{robustness['epochs']} epochs): faulted "
              f"{robustness['faulted_seconds']:.2f} s vs fault-free "
              f"{robustness['fault_free_seconds']:.2f} s "
              f"({robustness['speedup']:.2f}x; participation "
              f"{robustness['mean_participation']:.3f}, "
              f"{robustness['dropped_messages']:.0f} dropped messages, "
              f"accuracy delta {robustness['accuracy_delta']:+.3f})")
    if "tree_maintenance" in selected:
        maintenance = sections["tree_maintenance"] = _observed(
            "tree_maintenance", bench_tree_maintenance, graph, args
        )
        print(f"[bench_engine] tree maintenance ({maintenance['devices']} "
              f"devices): {maintenance['updates_per_second']:.0f} journalled "
              f"updates/s ({maintenance['delta_mutations']} mutations in "
              f"{maintenance['update_seconds'] * 1e3:.1f} ms) vs rebuild "
              f"{maintenance['rebuild_seconds']:.2f} s "
              f"({maintenance['speedup']:.0f}x per update; staleness "
              f"{maintenance['staleness']:+.3f}; kill-replay at "
              f"{maintenance['kill_replay_devices']} devices: crash at seq "
              f"{maintenance['kill_replay_crash_seq']}, resumed at "
              f"{maintenance['kill_replay_resumed_at']}, digest match)")

    if tracer is not None:
        obs.set_tracer(None)
        trace = obs.RunTrace.from_tracer(tracer)
        trace_path = obs.write_chrome_trace(trace, args.trace)
        print(f"[bench_engine] trace written to {trace_path} "
              "(load in https://ui.perfetto.dev)")

    payload = {
        "scale": {
            "num_nodes": args.nodes,
            "epochs": args.epochs,
            "mcmc_iterations": args.mcmc,
            "repeat": args.repeat,
            # The tracked parallel_sweep speedup is a 1-vs-N ratio, so N is
            # part of what makes two runs comparable (cpu_count is recorded
            # in the section itself, as interpretation context only).
            "workers": args.workers,
        },
        **sections,
    }
    if args.smoke:
        print("[bench_engine] smoke mode: skipping the JSON rewrite and the "
              "regression gate")
        return 0
    if args.output:
        output = Path(args.output)
    elif default_output is not None:
        output = Path(default_output)
    else:
        output = Path.cwd() / "BENCH_engine.json"
    if args.only:
        # Partial run: gate and rewrite only the measured sections, keep the
        # rest of the recorded trajectory untouched.
        previous = {}
        if output.exists():
            try:
                previous = json.loads(output.read_text())
            except (OSError, json.JSONDecodeError):
                previous = {}
        if previous and previous.get("scale") != payload["scale"]:
            print("[bench_engine] --only requires the recorded scale "
                  f"{previous.get('scale')} (got {payload['scale']}); "
                  "rerun with matching --nodes/--epochs/--mcmc/--repeat/"
                  "--workers or do a full run", file=sys.stderr)
            return 1
        regressions = check_trajectory(payload, output)
        if regressions:
            for regression in regressions:
                print(f"[bench_engine] REGRESSION: {regression}", file=sys.stderr)
            print("[bench_engine] refusing to overwrite the recorded "
                  "trajectory", file=sys.stderr)
            return 1
        merged = {**previous, **payload}
        output.write_text(json.dumps(merged, indent=2) + "\n")
        print(f"[bench_engine] merged {sorted(sections)} into {output}")
        return 0
    regressions = check_trajectory(payload, output)
    if regressions:
        for regression in regressions:
            print(f"[bench_engine] REGRESSION: {regression}", file=sys.stderr)
        print("[bench_engine] refusing to overwrite the recorded trajectory",
              file=sys.stderr)
        return 1
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"[bench_engine] wrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
