"""Zero-knowledge degree / workload comparison protocols (paper Definition 2).

The tree constructor never exchanges raw degrees or workloads between
devices.  Instead it runs the secure comparison of
:mod:`repro.crypto.secure_compare` on transformed values:

* greedy initialisation compares ``round(ln(deg))`` of the two endpoints of
  every edge (Alg. 1, line 4) — the logarithm both shrinks the bit width of
  the secure comparison and ignores small degree differences;
* the MCMC iteration compares raw workloads to find the most loaded device
  (Alg. 3) and to evaluate the Metropolis-Hastings acceptance difference
  ``f(X_t) - f(X'_t)`` (Alg. 2, line 7).

Every protocol instance exposes only booleans / signed differences of
workloads that the paper's protocol itself reveals, and logs its
communication into a shared :class:`TranscriptAccountant` so system-cost
benches can report crypto overhead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .oblivious_transfer import TranscriptAccountant
from .secure_compare import BatchComparisonResult, SecureComparator


def log_degree_bucket(degree: int) -> int:
    """Return ``round(ln(degree))``, the bucketised degree used by Alg. 1."""
    if degree <= 0:
        return 0
    return int(round(math.log(degree)))


def log_degree_buckets(degrees) -> np.ndarray:
    """Vectorised :func:`log_degree_bucket` over an integer array.

    ``np.rint`` rounds halves to even exactly like python's ``round``, so the
    array path is element-for-element identical to the scalar one.
    """
    degrees = np.asarray(degrees, dtype=np.int64)
    buckets = np.zeros(degrees.shape, dtype=np.int64)
    positive = degrees > 0
    if positive.any():
        buckets[positive] = np.rint(np.log(degrees[positive])).astype(np.int64)
    return buckets


@dataclass(frozen=True)
class DegreeComparisonOutcome:
    """Result of a zero-knowledge degree comparison between two devices."""

    left_bucket_ge_right: bool
    bits_exchanged: int


class DegreeComparisonProtocol:
    """Pairwise ``round(ln(deg))`` comparison under the zero-knowledge constraint."""

    def __init__(
        self,
        bit_width: int = 8,
        accountant: Optional[TranscriptAccountant] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.accountant = accountant if accountant is not None else TranscriptAccountant()
        self._comparator = SecureComparator(bit_width=bit_width, accountant=self.accountant, rng=rng)

    def compare_degrees(self, left_degree: int, right_degree: int) -> DegreeComparisonOutcome:
        """Compare the log-buckets of two private degrees.

        Only the comparison bit is revealed (Definition 2); the raw degrees
        never leave their owners.
        """
        left_bucket = log_degree_bucket(left_degree)
        right_bucket = log_degree_bucket(right_degree)
        result = self._comparator.compare(left_bucket, right_bucket)
        return DegreeComparisonOutcome(
            left_bucket_ge_right=result.left_ge_right,
            bits_exchanged=result.bits_exchanged,
        )

    def compare_degrees_many(
        self, left_degrees, right_degrees, execute: bool = False
    ) -> BatchComparisonResult:
        """Batched :meth:`compare_degrees` over parallel degree arrays.

        One protocol run per position, evaluated as a single numpy block
        (:meth:`SecureComparator.compare_batch`): outcomes, accountant totals
        and the capped transcript log are identical to the scalar loop, and —
        per the batch RNG contract — nothing is drawn from the shared stream.
        ``execute=True`` (secure construction) runs the vectorised
        millionaires' protocol itself instead of the analytic evaluation.
        """
        return self._comparator.compare_batch(
            log_degree_buckets(left_degrees),
            log_degree_buckets(right_degrees),
            execute=execute,
        )


class WorkloadComparisonProtocol:
    """Secure workload comparisons used by the MCMC balancer (Alg. 2 and 3)."""

    def __init__(
        self,
        bit_width: int = 24,
        accountant: Optional[TranscriptAccountant] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.accountant = accountant if accountant is not None else TranscriptAccountant()
        self._comparator = SecureComparator(bit_width=bit_width, accountant=self.accountant, rng=rng)

    def is_local_maximum(self, own_workload: int, neighbor_workloads: Sequence[int]) -> bool:
        """Device operation 1 of Alg. 3: is my workload >= all my neighbours'?"""
        for other in neighbor_workloads:
            if not self._comparator.compare(int(own_workload), int(other)).left_ge_right:
                return False
        return True

    def compare_workloads_many(self, left, right) -> BatchComparisonResult:
        """Batched secure workload comparisons (``left[i] >= right[i]``).

        Runs the vectorised millionaires' protocol
        (:meth:`SecureComparator.compare_batch` with ``execute=True``) so the
        batched secure balancing kernel executes exactly the comparisons the
        per-device loop would, in one numpy block — identical outcomes,
        accountant counters and capped log, and (per the batch RNG contract)
        no draws from the shared stream.
        """
        return self._comparator.compare_batch(left, right, execute=True)

    def argmax(self, workloads: Sequence[int]) -> int:
        """Device operation 2 of Alg. 3: index of the maximum workload."""
        return self._comparator.argmax([int(value) for value in workloads])

    def objective_difference(self, objective_before: int, objective_after: int) -> int:
        """Securely compute ``f(X_t) - f(X'_t)`` (Alg. 2 line 7).

        The two maximum-workload devices jointly compute the signed difference
        of their workloads.  Only the difference — which the MH acceptance
        rule needs — is revealed; we account the communication of the
        CrypTFlow2 subtraction circuit (one comparison plus one masked
        exchange of ``bit_width`` bits).
        """
        result = self._comparator.compare(int(objective_before), int(objective_after))
        self.accountant.record("secure-subtraction", self._comparator.bit_width * 2)
        difference = int(objective_before) - int(objective_after)
        # Consistency check between the secure comparison and the difference
        # (both derive from the same private inputs).
        if (difference >= 0) != result.left_ge_right:
            raise RuntimeError("secure comparison disagrees with computed difference")
        return difference


def verify_zero_knowledge_transcript(accountant: TranscriptAccountant) -> bool:
    """Sanity check used by tests: the transcript stores only sizes, not values.

    Returns ``True`` when no logged entry embeds an operand value (entries are
    ``description:bits`` pairs with whitelisted descriptions).
    """
    allowed_prefixes = ("ot", "ot-n", "and-gate", "secure-subtraction")
    return all(entry.split(":")[0] in allowed_prefixes for entry in accountant._log)
