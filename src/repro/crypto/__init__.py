"""Privacy substrate: LDP mechanisms and secure comparison protocols."""

from .ldp import (
    FeatureBinPartitioner,
    FeatureBounds,
    GaussianMechanism,
    OneBitMechanism,
    RandomizedResponse,
)
from .oblivious_transfer import ObliviousTransfer, OTResult, TranscriptAccountant
from .secure_compare import (
    BatchComparisonResult,
    ComparisonCost,
    ComparisonResult,
    SecureComparator,
    comparison_cost,
    operand_array,
    secure_max_index,
)
from .transport import (
    MeasuredCostMismatch,
    RemoteComparisonOutcome,
    RemoteOTOutcome,
    RemoteParty,
    RemotePartyError,
    TransportReport,
    chaos_comparison_probe,
)
from .zero_knowledge import (
    DegreeComparisonOutcome,
    DegreeComparisonProtocol,
    WorkloadComparisonProtocol,
    log_degree_bucket,
    log_degree_buckets,
    verify_zero_knowledge_transcript,
)

__all__ = [
    "FeatureBounds",
    "OneBitMechanism",
    "FeatureBinPartitioner",
    "GaussianMechanism",
    "RandomizedResponse",
    "ObliviousTransfer",
    "OTResult",
    "TranscriptAccountant",
    "SecureComparator",
    "ComparisonResult",
    "ComparisonCost",
    "BatchComparisonResult",
    "comparison_cost",
    "operand_array",
    "secure_max_index",
    "MeasuredCostMismatch",
    "RemoteComparisonOutcome",
    "RemoteOTOutcome",
    "RemoteParty",
    "RemotePartyError",
    "TransportReport",
    "chaos_comparison_probe",
    "DegreeComparisonProtocol",
    "DegreeComparisonOutcome",
    "WorkloadComparisonProtocol",
    "log_degree_bucket",
    "log_degree_buckets",
    "verify_zero_knowledge_transcript",
]
