"""Privacy substrate: LDP mechanisms and secure comparison protocols."""

from .ldp import (
    FeatureBinPartitioner,
    FeatureBounds,
    GaussianMechanism,
    OneBitMechanism,
    RandomizedResponse,
)
from .oblivious_transfer import ObliviousTransfer, OTResult, TranscriptAccountant
from .secure_compare import (
    BatchComparisonResult,
    ComparisonCost,
    ComparisonResult,
    SecureComparator,
    comparison_cost,
    secure_max_index,
)
from .zero_knowledge import (
    DegreeComparisonOutcome,
    DegreeComparisonProtocol,
    WorkloadComparisonProtocol,
    log_degree_bucket,
    log_degree_buckets,
    verify_zero_knowledge_transcript,
)

__all__ = [
    "FeatureBounds",
    "OneBitMechanism",
    "FeatureBinPartitioner",
    "GaussianMechanism",
    "RandomizedResponse",
    "ObliviousTransfer",
    "OTResult",
    "TranscriptAccountant",
    "SecureComparator",
    "ComparisonResult",
    "ComparisonCost",
    "BatchComparisonResult",
    "comparison_cost",
    "secure_max_index",
    "DegreeComparisonProtocol",
    "DegreeComparisonOutcome",
    "WorkloadComparisonProtocol",
    "log_degree_bucket",
    "log_degree_buckets",
    "verify_zero_knowledge_transcript",
]
