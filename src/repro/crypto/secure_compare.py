"""Secure 2-party integer comparison (simulated CrypTFlow2 millionaires').

Lumos compares node degrees (greedy initialisation, Alg. 1) and workloads
(MCMC iteration, Alg. 2/3) without revealing the values themselves: the two
devices run a millionaires'-protocol instance and learn *only* the comparison
bit.  CrypTFlow2 (Rathee et al., CCS 2020) realises this with a recursive
block decomposition over 1-out-of-2^m OTs with complexity ``O(L log L)`` for
``L``-bit inputs.

This module simulates that protocol at the message level:

* :class:`SecureComparator.compare` decomposes both inputs into 4-bit blocks,
  evaluates per-block equality/greater-than shares through the simulated OT
  channel, and combines them with a logarithmic tree — so the *communication
  pattern and cost* mirror the real protocol; and
* the public API returns only the boolean result, never the operand of the
  other party, which is what the rest of the system relies on (Definition 2,
  zero-knowledge degree comparison).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Optional, Tuple

import numpy as np

from .. import obs
from .oblivious_transfer import ObliviousTransfer, TranscriptAccountant


@dataclass(frozen=True)
class ComparisonResult:
    """Public outcome of a secure comparison between two private integers."""

    left_ge_right: bool
    bits_exchanged: int
    ot_invocations: int

    @property
    def left_lt_right(self) -> bool:
        return not self.left_ge_right


@dataclass(frozen=True)
class ComparisonCost:
    """Analytic per-comparison cost of the CrypTFlow2 block protocol.

    The block protocol's communication depends only on the bit width — never
    on the operand values — so one comparison's transcript is a fixed pattern
    of messages.  ``pattern`` is the exact ``(description, bits)`` sequence
    :meth:`SecureComparator.compare` records: ``2 * num_blocks`` 1-out-of-2^m
    OTs followed by ``num_blocks - 1`` AND-gate rounds.  The batched kernels
    (and the MCMC balancer's analytic charger) derive their accounting from
    this single source so the two paths cannot drift.
    """

    bit_width: int
    block_bits: int
    num_blocks: int
    ot_invocations: int
    messages: int
    bits: int
    pattern: Tuple[Tuple[str, int], ...]


@lru_cache(maxsize=None)
def comparison_cost(
    bit_width: int, block_bits: int = 4, message_bits: int = 1
) -> ComparisonCost:
    """Return the (constant) transcript cost of one ``bit_width`` comparison."""
    num_blocks = (bit_width + block_bits - 1) // block_bits
    ot_bits = (1 << block_bits) * message_bits + 128
    pattern = (("ot-n", ot_bits),) * (2 * num_blocks) + (
        ("and-gate", 2 * block_bits),
    ) * max(num_blocks - 1, 0)
    return ComparisonCost(
        bit_width=bit_width,
        block_bits=block_bits,
        num_blocks=num_blocks,
        ot_invocations=2 * num_blocks,
        messages=len(pattern),
        bits=sum(bits for _, bits in pattern),
        pattern=pattern,
    )


def operand_array(values, name: str, bit_width: int) -> np.ndarray:
    """Validate a batch operand and return it as uint64 (protocol dtype).

    uint64 is what lets ``bit_width=64`` operands (up to ``2**64 - 1``)
    flow through the batch kernels; int64 inputs are range-checked before
    the widening cast so negatives fail loudly instead of wrapping.  Shared
    by the in-process :class:`SecureComparator` and the two-party transport
    driver (:mod:`repro.crypto.transport`) so both paths accept exactly the
    same operands.
    """
    array = np.asarray(values)
    if array.dtype != np.uint64:
        try:
            array = np.asarray(values, dtype=np.int64)
        except OverflowError:
            # Python ints above 2**63 - 1 (legal under bit_width=64)
            # only fit the unsigned dtype; negatives raise here too.
            array = np.asarray(values, dtype=np.uint64)
    if array.size:
        if array.dtype != np.uint64 and int(array.min()) < 0:
            raise ValueError(f"{name} must be non-negative")
        if bit_width < 64 and int(array.max()) >= (1 << bit_width):
            raise ValueError(f"{name} does not fit in {bit_width} bits")
    return array.astype(np.uint64, copy=False)


@dataclass(frozen=True)
class BatchComparisonResult:
    """Public outcome of a batch of independent secure comparisons."""

    left_ge_right: np.ndarray
    cost: ComparisonCost

    @property
    def count(self) -> int:
        return int(self.left_ge_right.shape[0])

    @property
    def bits_per_comparison(self) -> int:
        return self.cost.bits


class SecureComparator:
    """Two-party secure comparison with CrypTFlow2-style cost accounting."""

    BLOCK_BITS = 4

    def __init__(
        self,
        bit_width: int = 32,
        accountant: Optional[TranscriptAccountant] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if bit_width <= 0 or bit_width > 64:
            raise ValueError("bit_width must be in [1, 64]")
        self.bit_width = bit_width
        self.accountant = accountant if accountant is not None else TranscriptAccountant()
        self._ot = ObliviousTransfer(accountant=self.accountant, rng=rng)
        self._rng = rng if rng is not None else np.random.default_rng()

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def compare(self, left: int, right: int) -> ComparisonResult:
        """Return whether ``left >= right`` revealing only that bit.

        ``left`` is held by party A and ``right`` by party B; both values
        must be non-negative and fit in ``bit_width`` bits.
        """
        self._validate(left, "left")
        self._validate(right, "right")
        bits_before = self.accountant.bits
        ots_before = self.accountant.ot_invocations

        greater, equal = self._block_compare(int(left), int(right))
        # left >= right  <=>  left > right or left == right
        result = bool(greater or equal)

        self.accountant.comparisons += 1
        obs.add_counter("crypto.comparisons")
        return ComparisonResult(
            left_ge_right=result,
            bits_exchanged=self.accountant.bits - bits_before,
            ot_invocations=self.accountant.ot_invocations - ots_before,
        )

    def compare_many(
        self, pairs: List[Tuple[int, int]], execute: bool = False
    ) -> List[ComparisonResult]:
        """Compare a batch of pairs (each pair is an independent protocol run).

        Vectorised over :meth:`compare_batch`: the outcomes, the accountant
        totals and the transcript log are identical to running
        :meth:`compare` once per pair.
        """
        if not pairs:
            return []
        left = [pair[0] for pair in pairs]
        right = [pair[1] for pair in pairs]
        batch = self.compare_batch(left, right, execute=execute)
        return [
            ComparisonResult(
                left_ge_right=bool(outcome),
                bits_exchanged=batch.cost.bits,
                ot_invocations=batch.cost.ot_invocations,
            )
            for outcome in batch.left_ge_right
        ]

    def compare_batch(self, left, right, execute: bool = False) -> BatchComparisonResult:
        """Evaluate many independent comparisons as one numpy block.

        ``left[i] >= right[i]`` for parallel 1-D integer arrays.  Every
        comparison is charged exactly the transcript of one
        :meth:`compare` run (same counters, same capped log entries, in the
        same per-comparison pattern), so a batch is indistinguishable from
        the equivalent python loop in all recorded observables.

        ``execute`` selects how the outcome bits are produced:

        * ``False`` (the clear-mode default) evaluates them directly and
          charges the analytic per-comparison pattern;
        * ``True`` runs the millionaires' block protocol itself, vectorised
          over the batch (:meth:`_block_compare_batch` — every outcome is
          derived only from simulated table-OT outputs, the same structural
          information boundary as the scalar loop).  This is the path secure
          construction uses.

        The two paths are bit-identical in results, accountant counters and
        capped log (the executed path charges the canonical per-comparison
        interleaved pattern, not its blockwise execution order — a constant
        transcript reordering the protocol's synchronous rounds permit).

        **RNG block-draw contract**: draws **nothing** from the comparator's
        RNG under either path (the simulated 1-out-of-2^m table OTs need no
        masking randomness) — batched and looped execution leave any shared
        random stream in the same state.
        """
        left = self._operand_array(left, "left")
        right = self._operand_array(right, "right")
        if left.ndim != 1 or left.shape != right.shape:
            raise ValueError("compare_batch expects two 1-D arrays of equal length")
        cost = comparison_cost(self.bit_width, block_bits=self.BLOCK_BITS)
        count = int(left.shape[0])
        if execute:
            greater, equal = self._block_compare_batch(left, right)
            outcomes = greater | equal
        else:
            outcomes = left >= right
        self.accountant.ot_invocations += cost.ot_invocations * count
        self.accountant.record_pattern(cost.pattern, count)
        self.accountant.comparisons += count
        obs.add_counter("crypto.ot_invocations", cost.ot_invocations * count)
        obs.add_counter("crypto.comparisons", count)
        return BatchComparisonResult(left_ge_right=outcomes, cost=cost)

    def argmax(self, values: List[int]) -> int:
        """Return the index of the maximum via pairwise secure comparisons.

        Ties resolve to the earliest index.  Used to pick the most-loaded
        device among the candidate vertex set (Alg. 3, server part 2).
        """
        if not values:
            raise ValueError("argmax of an empty list")
        best_index = 0
        for index in range(1, len(values)):
            outcome = self.compare(values[index], values[best_index])
            if outcome.left_ge_right and values[index] != values[best_index]:
                best_index = index
            elif outcome.left_ge_right and values[index] == values[best_index]:
                # Equal values: keep the earlier index (deterministic tie-break).
                continue
        return best_index

    # ------------------------------------------------------------------ #
    # Protocol internals
    # ------------------------------------------------------------------ #
    def _validate(self, value: int, name: str) -> None:
        if value < 0:
            raise ValueError(f"{name} must be non-negative")
        if value >= (1 << self.bit_width):
            raise ValueError(f"{name} does not fit in {self.bit_width} bits")

    def _operand_array(self, values, name: str) -> np.ndarray:
        """Validate a batch operand (see :func:`operand_array`)."""
        return operand_array(values, name, self.bit_width)

    def _blocks(self, value: int) -> List[int]:
        """Split ``value`` into big-endian 4-bit blocks."""
        num_blocks = (self.bit_width + self.BLOCK_BITS - 1) // self.BLOCK_BITS
        blocks = []
        for index in reversed(range(num_blocks)):
            blocks.append((value >> (index * self.BLOCK_BITS)) & ((1 << self.BLOCK_BITS) - 1))
        return blocks

    def _block_compare(self, left: int, right: int) -> Tuple[bool, bool]:
        """Return (left > right, left == right) using the block recursion."""
        left_blocks = self._blocks(left)
        right_blocks = self._blocks(right)

        # Leaf layer: for every block, party A obtains secret-shared
        # greater-than and equality bits through 1-out-of-16 OTs where party B
        # is the sender holding the truth tables of its block value.
        greater_flags: List[bool] = []
        equal_flags: List[bool] = []
        table_size = 1 << self.BLOCK_BITS
        for left_block, right_block in zip(left_blocks, right_blocks):
            greater_table = tuple(int(candidate > right_block) for candidate in range(table_size))
            equal_table = tuple(int(candidate == right_block) for candidate in range(table_size))
            greater_flags.append(bool(self._ot.transfer_table(greater_table, left_block, message_bits=1)))
            equal_flags.append(bool(self._ot.transfer_table(equal_table, left_block, message_bits=1)))

        # Combine layer: logarithmic AND/OR tree, each level costing one round
        # of (simulated) Beaver-triple multiplications, accounted per node.
        while len(greater_flags) > 1:
            next_greater: List[bool] = []
            next_equal: List[bool] = []
            for index in range(0, len(greater_flags) - 1, 2):
                high_greater, high_equal = greater_flags[index], equal_flags[index]
                low_greater, low_equal = greater_flags[index + 1], equal_flags[index + 1]
                # gt = gt_high OR (eq_high AND gt_low); eq = eq_high AND eq_low
                self.accountant.record("and-gate", 2 * self.BLOCK_BITS)
                next_greater.append(high_greater or (high_equal and low_greater))
                next_equal.append(high_equal and low_equal)
            if len(greater_flags) % 2 == 1:
                next_greater.append(greater_flags[-1])
                next_equal.append(equal_flags[-1])
            greater_flags = next_greater
            equal_flags = next_equal

        return greater_flags[0], equal_flags[0]

    def _block_compare_batch(
        self, left: np.ndarray, right: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorised :meth:`_block_compare` over a whole (uint64) batch.

        Runs the same protocol steps as the scalar recursion for *every*
        position at once: one simulated 1-out-of-2^m table OT per block for
        the greater-than share and one for the equality share (party B's
        per-position truth tables are materialised as ``(n, 2^m)`` rows and
        looked up through :meth:`ObliviousTransfer.transfer_table_batch`),
        then the logarithmic AND/OR combine tree column-pair by column-pair.
        The outcome bits are therefore derived exclusively from OT outputs —
        the structural information boundary of the scalar loop is preserved.

        Accounting is left to the caller (``charge=False`` table OTs): the
        scalar loop interleaves the two OTs of each block *per comparison*,
        while this kernel executes block-by-block *across* comparisons, so
        the caller charges the canonical per-comparison pattern
        (:func:`comparison_cost`) to keep the capped log entry-for-entry
        identical to the loop.

        **RNG block-draw contract**: draws **nothing** (table OTs need no
        masking randomness).
        """
        num_blocks = (self.bit_width + self.BLOCK_BITS - 1) // self.BLOCK_BITS
        table_size = 1 << self.BLOCK_BITS
        mask = np.uint64(table_size - 1)
        count = int(left.shape[0])
        candidates = np.arange(table_size, dtype=np.uint64)

        # Leaf layer: per big-endian block, party A obtains the shares of
        # every position through two batched 1-out-of-16 OTs.
        greater = np.zeros((count, num_blocks), dtype=bool)
        equal = np.zeros((count, num_blocks), dtype=bool)
        for column, index in enumerate(reversed(range(num_blocks))):
            shift = np.uint64(index * self.BLOCK_BITS)
            left_blocks = (left >> shift) & mask
            right_blocks = (right >> shift) & mask
            greater_tables = candidates[None, :] > right_blocks[:, None]
            equal_tables = candidates[None, :] == right_blocks[:, None]
            choices = left_blocks.astype(np.int64)
            greater[:, column] = self._ot.transfer_table_batch(
                greater_tables, choices, message_bits=1, charge=False
            )
            equal[:, column] = self._ot.transfer_table_batch(
                equal_tables, choices, message_bits=1, charge=False
            )

        # Combine layer: the same logarithmic AND/OR tree as the scalar
        # recursion, evaluated over whole columns.
        while greater.shape[1] > 1:
            width = greater.shape[1]
            paired = width - (width % 2)
            high_greater = greater[:, 0:paired:2]
            high_equal = equal[:, 0:paired:2]
            low_greater = greater[:, 1:paired:2]
            low_equal = equal[:, 1:paired:2]
            next_greater = high_greater | (high_equal & low_greater)
            next_equal = high_equal & low_equal
            if width % 2 == 1:
                next_greater = np.concatenate([next_greater, greater[:, -1:]], axis=1)
                next_equal = np.concatenate([next_equal, equal[:, -1:]], axis=1)
            greater, equal = next_greater, next_equal

        return greater[:, 0], equal[:, 0]


def secure_max_index(
    values: List[int],
    bit_width: int = 32,
    accountant: Optional[TranscriptAccountant] = None,
    rng: Optional[np.random.Generator] = None,
) -> int:
    """Convenience wrapper: index of the maximum of ``values`` via secure comparison."""
    comparator = SecureComparator(bit_width=bit_width, accountant=accountant, rng=rng)
    return comparator.argmax([int(v) for v in values])
