"""Secure 2-party integer comparison (simulated CrypTFlow2 millionaires').

Lumos compares node degrees (greedy initialisation, Alg. 1) and workloads
(MCMC iteration, Alg. 2/3) without revealing the values themselves: the two
devices run a millionaires'-protocol instance and learn *only* the comparison
bit.  CrypTFlow2 (Rathee et al., CCS 2020) realises this with a recursive
block decomposition over 1-out-of-2^m OTs with complexity ``O(L log L)`` for
``L``-bit inputs.

This module simulates that protocol at the message level:

* :class:`SecureComparator.compare` decomposes both inputs into 4-bit blocks,
  evaluates per-block equality/greater-than shares through the simulated OT
  channel, and combines them with a logarithmic tree — so the *communication
  pattern and cost* mirror the real protocol; and
* the public API returns only the boolean result, never the operand of the
  other party, which is what the rest of the system relies on (Definition 2,
  zero-knowledge degree comparison).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from .oblivious_transfer import ObliviousTransfer, TranscriptAccountant


@dataclass(frozen=True)
class ComparisonResult:
    """Public outcome of a secure comparison between two private integers."""

    left_ge_right: bool
    bits_exchanged: int
    ot_invocations: int

    @property
    def left_lt_right(self) -> bool:
        return not self.left_ge_right


class SecureComparator:
    """Two-party secure comparison with CrypTFlow2-style cost accounting."""

    BLOCK_BITS = 4

    def __init__(
        self,
        bit_width: int = 32,
        accountant: Optional[TranscriptAccountant] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if bit_width <= 0 or bit_width > 63:
            raise ValueError("bit_width must be in [1, 63]")
        self.bit_width = bit_width
        self.accountant = accountant if accountant is not None else TranscriptAccountant()
        self._ot = ObliviousTransfer(accountant=self.accountant, rng=rng)
        self._rng = rng if rng is not None else np.random.default_rng()

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def compare(self, left: int, right: int) -> ComparisonResult:
        """Return whether ``left >= right`` revealing only that bit.

        ``left`` is held by party A and ``right`` by party B; both values
        must be non-negative and fit in ``bit_width`` bits.
        """
        self._validate(left, "left")
        self._validate(right, "right")
        bits_before = self.accountant.bits
        ots_before = self.accountant.ot_invocations

        greater, equal = self._block_compare(int(left), int(right))
        # left >= right  <=>  left > right or left == right
        result = bool(greater or equal)

        self.accountant.comparisons += 1
        return ComparisonResult(
            left_ge_right=result,
            bits_exchanged=self.accountant.bits - bits_before,
            ot_invocations=self.accountant.ot_invocations - ots_before,
        )

    def compare_many(self, pairs: List[Tuple[int, int]]) -> List[ComparisonResult]:
        """Compare a batch of pairs (each pair is an independent protocol run)."""
        return [self.compare(left, right) for left, right in pairs]

    def argmax(self, values: List[int]) -> int:
        """Return the index of the maximum via pairwise secure comparisons.

        Ties resolve to the earliest index.  Used to pick the most-loaded
        device among the candidate vertex set (Alg. 3, server part 2).
        """
        if not values:
            raise ValueError("argmax of an empty list")
        best_index = 0
        for index in range(1, len(values)):
            outcome = self.compare(values[index], values[best_index])
            if outcome.left_ge_right and values[index] != values[best_index]:
                best_index = index
            elif outcome.left_ge_right and values[index] == values[best_index]:
                # Equal values: keep the earlier index (deterministic tie-break).
                continue
        return best_index

    # ------------------------------------------------------------------ #
    # Protocol internals
    # ------------------------------------------------------------------ #
    def _validate(self, value: int, name: str) -> None:
        if value < 0:
            raise ValueError(f"{name} must be non-negative")
        if value >= (1 << self.bit_width):
            raise ValueError(f"{name} does not fit in {self.bit_width} bits")

    def _blocks(self, value: int) -> List[int]:
        """Split ``value`` into big-endian 4-bit blocks."""
        num_blocks = (self.bit_width + self.BLOCK_BITS - 1) // self.BLOCK_BITS
        blocks = []
        for index in reversed(range(num_blocks)):
            blocks.append((value >> (index * self.BLOCK_BITS)) & ((1 << self.BLOCK_BITS) - 1))
        return blocks

    def _block_compare(self, left: int, right: int) -> Tuple[bool, bool]:
        """Return (left > right, left == right) using the block recursion."""
        left_blocks = self._blocks(left)
        right_blocks = self._blocks(right)

        # Leaf layer: for every block, party A obtains secret-shared
        # greater-than and equality bits through 1-out-of-16 OTs where party B
        # is the sender holding the truth tables of its block value.
        greater_flags: List[bool] = []
        equal_flags: List[bool] = []
        table_size = 1 << self.BLOCK_BITS
        for left_block, right_block in zip(left_blocks, right_blocks):
            greater_table = tuple(int(candidate > right_block) for candidate in range(table_size))
            equal_table = tuple(int(candidate == right_block) for candidate in range(table_size))
            greater_flags.append(bool(self._ot.transfer_table(greater_table, left_block, message_bits=1)))
            equal_flags.append(bool(self._ot.transfer_table(equal_table, left_block, message_bits=1)))

        # Combine layer: logarithmic AND/OR tree, each level costing one round
        # of (simulated) Beaver-triple multiplications, accounted per node.
        while len(greater_flags) > 1:
            next_greater: List[bool] = []
            next_equal: List[bool] = []
            for index in range(0, len(greater_flags) - 1, 2):
                high_greater, high_equal = greater_flags[index], equal_flags[index]
                low_greater, low_equal = greater_flags[index + 1], equal_flags[index + 1]
                # gt = gt_high OR (eq_high AND gt_low); eq = eq_high AND eq_low
                self.accountant.record("and-gate", 2 * self.BLOCK_BITS)
                next_greater.append(high_greater or (high_equal and low_greater))
                next_equal.append(high_equal and low_equal)
            if len(greater_flags) % 2 == 1:
                next_greater.append(greater_flags[-1])
                next_equal.append(equal_flags[-1])
            greater_flags = next_greater
            equal_flags = next_equal

        return greater_flags[0], equal_flags[0]


def secure_max_index(
    values: List[int],
    bit_width: int = 32,
    accountant: Optional[TranscriptAccountant] = None,
    rng: Optional[np.random.Generator] = None,
) -> int:
    """Convenience wrapper: index of the maximum of ``values`` via secure comparison."""
    comparator = SecureComparator(bit_width=bit_width, accountant=accountant, rng=rng)
    return comparator.argmax([int(v) for v in values])
