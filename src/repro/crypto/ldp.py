"""Local differential privacy mechanisms.

Three mechanisms are implemented:

* :class:`OneBitMechanism` — the 1-bit encoder of Ding et al. (NeurIPS 2017)
  with the exact probabilities of paper Eq. 26 and the unbiased recovery of
  Eq. 27.  Lumos uses it (combined with element binning, see
  :class:`FeatureBinPartitioner`) to release node features to neighbours.
* :class:`GaussianMechanism` — used by the naive FedGNN baseline to noise
  features before uploading them to the server.
* :class:`RandomizedResponse` — used by the naive FedGNN baseline to noise
  adjacency bits and labels, and by the LPGNN baseline for labels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class FeatureBounds:
    """The closed interval ``[a, b]`` that every feature element lies in."""

    lower: float = 0.0
    upper: float = 1.0

    def __post_init__(self) -> None:
        if not self.upper > self.lower:
            raise ValueError("upper bound must exceed lower bound")

    @property
    def midpoint(self) -> float:
        return (self.lower + self.upper) / 2.0

    @property
    def width(self) -> float:
        return self.upper - self.lower


class OneBitMechanism:
    """The 1-bit LDP mechanism with unbiased recovery (paper Eq. 26-27).

    With per-element privacy budget ``eps' = eps * wl(u) / d`` each selected
    element ``x`` in ``[a, b]`` is mapped to 1 with probability

        P[x' = 1] = 1 / (e^eps' + 1) + (x - a)/(b - a) * (e^eps' - 1)/(e^eps' + 1)

    and recovered as an unbiased estimate of ``x``.  Elements that are not
    selected (because they fall into another neighbour's bin) are transmitted
    as the neutral symbol 0.5 and recovered as the interval midpoint.
    """

    NEUTRAL = 0.5

    def __init__(self, epsilon: float, bounds: FeatureBounds = FeatureBounds()) -> None:
        if epsilon <= 0:
            raise ValueError("privacy budget epsilon must be positive")
        self.epsilon = float(epsilon)
        self.bounds = bounds

    # ------------------------------------------------------------------ #
    # Probabilities
    # ------------------------------------------------------------------ #
    def per_element_epsilon(self, workload: int, dimension: int) -> float:
        """Per-element budget ``eps * wl / d`` (paper: noise parameter of Eq. 26)."""
        if workload <= 0 or dimension <= 0:
            raise ValueError("workload and dimension must be positive")
        return self.epsilon * workload / dimension

    def probability_one(self, values: np.ndarray, epsilon_prime: float) -> np.ndarray:
        """Return ``P[x' = 1]`` element-wise (Eq. 26)."""
        a, b = self.bounds.lower, self.bounds.upper
        values = np.clip(np.asarray(values, dtype=np.float64), a, b)
        exp_eps = np.exp(epsilon_prime)
        return 1.0 / (exp_eps + 1.0) + (values - a) / (b - a) * (exp_eps - 1.0) / (exp_eps + 1.0)

    # ------------------------------------------------------------------ #
    # Encoding / recovery
    # ------------------------------------------------------------------ #
    def encode(
        self,
        values: np.ndarray,
        workload: int,
        dimension: Optional[int] = None,
        selected: Optional[np.ndarray] = None,
        rng: Optional[np.random.Generator] = None,
        uniforms: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Encode a feature vector into ``{0, 0.5, 1}^d``.

        Parameters
        ----------
        values:
            The raw feature vector.
        workload:
            The trimmed-tree workload ``wl(u)`` of the releasing device.
        dimension:
            Total feature dimension ``d`` (defaults to ``len(values)``).
        selected:
            Boolean mask of the elements to actually encode; the rest are set
            to the neutral symbol 0.5.  ``None`` encodes every element.
        rng:
            Source of randomness.
        uniforms:
            Pre-drawn uniforms of ``values``' shape to threshold instead of
            drawing from ``rng``.  The draws are epsilon-independent, so an
            epsilon sweep can draw once and re-threshold per point —
            bit-identical to drawing inside each encode.
        """
        values = np.asarray(values, dtype=np.float64)
        dimension = int(dimension) if dimension is not None else values.shape[-1]
        epsilon_prime = self.per_element_epsilon(workload, dimension)
        probability = self.probability_one(values, epsilon_prime)
        if uniforms is None:
            rng = rng if rng is not None else np.random.default_rng()
            uniforms = rng.random(values.shape)
        elif uniforms.shape != values.shape:
            raise ValueError("uniforms must have the same shape as values")
        bits = (uniforms < probability).astype(np.float64)
        if selected is None:
            return bits
        selected = np.asarray(selected, dtype=bool)
        if selected.shape != values.shape:
            raise ValueError("selected mask must have the same shape as values")
        encoded = np.full(values.shape, self.NEUTRAL, dtype=np.float64)
        encoded[selected] = bits[selected]
        return encoded

    def recover(
        self,
        encoded: np.ndarray,
        workload: int,
        dimension: Optional[int] = None,
    ) -> np.ndarray:
        """Map encoded symbols back to unbiased feature estimates (Eq. 27)."""
        encoded = np.asarray(encoded, dtype=np.float64)
        dimension = int(dimension) if dimension is not None else encoded.shape[-1]
        epsilon_prime = self.per_element_epsilon(workload, dimension)
        a, b = self.bounds.lower, self.bounds.upper
        exp_eps = np.exp(epsilon_prime)
        ratio = (exp_eps + 1.0) / (exp_eps - 1.0)
        recovered = np.full(encoded.shape, (a + b) / 2.0, dtype=np.float64)
        recovered[encoded == 1.0] = (b - a) / 2.0 * ratio + (a + b) / 2.0
        recovered[encoded == 0.0] = (a - b) / 2.0 * ratio + (a + b) / 2.0
        return recovered

    def encode_and_recover(
        self,
        values: np.ndarray,
        workload: int,
        dimension: Optional[int] = None,
        selected: Optional[np.ndarray] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Convenience: encode then recover in one call."""
        encoded = self.encode(values, workload, dimension=dimension, selected=selected, rng=rng)
        return self.recover(encoded, workload, dimension=dimension)


class FeatureBinPartitioner:
    """Random partition of the ``d`` feature indices into ``wl`` bins.

    Lumos sends the ``k``-th bin to the ``k``-th (remaining) neighbour so the
    union of all transmissions covers every element while each neighbour sees
    only ``d / wl`` encoded elements (paper §VI-A).
    """

    def __init__(self, dimension: int, num_bins: int, rng: Optional[np.random.Generator] = None) -> None:
        if dimension <= 0:
            raise ValueError("dimension must be positive")
        if num_bins <= 0:
            raise ValueError("num_bins must be positive")
        rng = rng if rng is not None else np.random.default_rng()
        self.dimension = dimension
        self.num_bins = num_bins
        assignment = rng.integers(num_bins, size=dimension)
        self._assignment = assignment

    @property
    def assignment(self) -> np.ndarray:
        """Bin id of every feature index."""
        return self._assignment

    def mask_for_bin(self, bin_index: int) -> np.ndarray:
        """Boolean mask of the feature indices that belong to ``bin_index``."""
        if not 0 <= bin_index < self.num_bins:
            raise ValueError(f"bin index {bin_index} out of range [0, {self.num_bins})")
        return self._assignment == bin_index

    def masks(self) -> Sequence[np.ndarray]:
        """All bin masks in order."""
        return [self.mask_for_bin(index) for index in range(self.num_bins)]


class GaussianMechanism:
    """(epsilon, delta)-DP Gaussian noise addition (Dwork & Roth, 2014)."""

    def __init__(self, epsilon: float, delta: float = 1e-5, sensitivity: float = 1.0) -> None:
        if epsilon <= 0 or not 0 < delta < 1:
            raise ValueError("require epsilon > 0 and delta in (0, 1)")
        self.epsilon = epsilon
        self.delta = delta
        self.sensitivity = sensitivity

    @property
    def sigma(self) -> float:
        """Standard deviation of the calibrated Gaussian noise."""
        return self.sensitivity * np.sqrt(2.0 * np.log(1.25 / self.delta)) / self.epsilon

    def randomize(self, values: np.ndarray, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Return ``values`` plus calibrated Gaussian noise."""
        rng = rng if rng is not None else np.random.default_rng()
        values = np.asarray(values, dtype=np.float64)
        return values + rng.normal(0.0, self.sigma, size=values.shape)


class RandomizedResponse:
    """Warner's randomized response over ``k`` categories.

    The true category is reported with probability ``e^eps / (e^eps + k - 1)``
    and a uniformly random other category otherwise; this satisfies
    ``eps``-LDP.
    """

    def __init__(self, epsilon: float, num_categories: int = 2) -> None:
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        if num_categories < 2:
            raise ValueError("need at least two categories")
        self.epsilon = epsilon
        self.num_categories = num_categories

    @property
    def keep_probability(self) -> float:
        """Probability of reporting the true category."""
        exp_eps = np.exp(self.epsilon)
        return exp_eps / (exp_eps + self.num_categories - 1)

    def randomize(self, values: np.ndarray, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Apply randomized response element-wise to integer ``values``."""
        rng = rng if rng is not None else np.random.default_rng()
        values = np.asarray(values, dtype=np.int64)
        keep = rng.random(values.shape) < self.keep_probability
        # Sample a uniformly random *different* category for flipped entries.
        offsets = rng.integers(1, self.num_categories, size=values.shape)
        flipped = (values + offsets) % self.num_categories
        return np.where(keep, values, flipped)

    def randomize_bits(self, bits: np.ndarray, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Binary special case (used for adjacency-matrix perturbation)."""
        if self.num_categories != 2:
            raise ValueError("randomize_bits requires a binary mechanism")
        return self.randomize(np.asarray(bits, dtype=np.int64), rng=rng)
