"""Two-party secure execution over a real transport channel.

Everything below :class:`~repro.crypto.secure_compare.SecureComparator` was
built (PR 5) as a *single-process* simulation: both protocol parties live in
one interpreter, "communication" is a function call, and cost is what the
analytic :func:`~repro.crypto.secure_compare.comparison_cost` model says it
should be.  This module runs the same protocols across a real process
boundary so the cost becomes *measured*:

* a party process (:func:`party_main`) holds one side's private operands and
  serves the sender/receiver half of the protocol over a
  :class:`~repro.runtime.channel.PartyChannel`;
* a :class:`RemoteParty` driver holds the other side's operands **and all of
  the session's bookkeeping** — the RNG, the
  :class:`~repro.crypto.oblivious_transfer.TranscriptAccountant`, and the
  optional :class:`~repro.federation.network.CommunicationLedger`.

Because the driver draws exactly the pad blocks and charges exactly the
canonical transcript patterns the in-process kernels do, a remote session is
**bit-for-bit equivalent** to the in-process simulation in results,
accountant counters and capped log, canonical ledger transcript, and RNG
stream state.  The equivalence is asserted by ``tests/test_secure_transport.py``.

Measured-vs-analytic contract
-----------------------------
Frame payloads are sized so that the *protocol* frames of a session (the
``OT_*`` / ``CMP_*`` kinds) total **exactly** the bytes the analytic model
charges — ``count * comparison_cost(bit_width).bits // 8`` for a comparison
batch, ``count * (2 * message_bits + 128) // 8`` for an OT batch.  Where the
analytic model counts material this simulation does not need to move (base-OT
masks, Beaver-triple shares), the frames carry deterministic stand-in bytes
of the modeled size, so the wire is an honest physical realisation of the
model rather than a smaller cousin of it.  :meth:`RemoteParty.compare_batch`
and :meth:`RemoteParty.transfer_batch` re-derive the analytic total and
raise :class:`MeasuredCostMismatch` if the bytes that actually crossed the
channel diverge — the contract fails loudly, never silently.  Session
``CONTROL`` handshakes (hello / result reveal / goodbye) and ``OBS``
snapshots are *not* protocol traffic; they are reported separately and
excluded from the reconciliation, as is the channel's fixed per-frame
header (:data:`~repro.runtime.channel.FRAME_OVERHEAD_BYTES`).

Failure model
-------------
A party killed mid-session (e.g. by a :class:`~repro.runtime.worker.ChaosConfig`
schedule — see :func:`chaos_comparison_probe`) surfaces on the driver as a
typed :class:`RemotePartyError` (wrapping the channel's timeout/EOF error),
never a hang: every channel receive is deadline-bounded.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import sys
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .. import obs
from ..federation.events import MessageKind
from ..runtime.channel import (
    ChannelError,
    FrameKind,
    PartyChannel,
    channel_pair,
)
from ..runtime.worker import ChaosConfig, chaos_action
from .oblivious_transfer import ObliviousTransfer, TranscriptAccountant
from .secure_compare import ComparisonCost, SecureComparator, comparison_cost, operand_array

#: Default bound on every driver-side receive; a dead or wedged party must
#: surface within this window.
DEFAULT_SESSION_TIMEOUT = 30.0


class RemotePartyError(RuntimeError):
    """A two-party session failed: peer death, timeout, or protocol error."""


class MeasuredCostMismatch(RemotePartyError):
    """Bytes measured on the wire diverged from the analytic cost model."""


@dataclass(frozen=True)
class TransportReport:
    """Measured transport accounting for one two-party session.

    ``protocol_payload_bytes`` covers only the ``OT_*`` / ``CMP_*`` frames
    the analytic model prices (and equals ``analytic_payload_bytes`` — the
    driver raises otherwise); ``control_payload_bytes`` is session framing
    (handshakes, result reveal, obs snapshots); ``wire_bytes`` is everything
    including the per-frame channel header.
    """

    frames: int
    protocol_payload_bytes: int
    analytic_payload_bytes: int
    control_payload_bytes: int
    wire_bytes: int
    by_kind: dict

    def snapshot(self) -> dict:
        return {
            "frames": self.frames,
            "protocol_payload_bytes": self.protocol_payload_bytes,
            "analytic_payload_bytes": self.analytic_payload_bytes,
            "control_payload_bytes": self.control_payload_bytes,
            "wire_bytes": self.wire_bytes,
            "by_kind": dict(self.by_kind),
        }


@dataclass(frozen=True)
class RemoteComparisonOutcome:
    """Result of a comparison batch executed across the process boundary."""

    left_ge_right: np.ndarray
    cost: ComparisonCost
    report: TransportReport
    remote_obs: Optional[dict] = None


@dataclass(frozen=True)
class RemoteOTOutcome:
    """Result of a 1-out-of-2 OT batch executed across the process boundary."""

    chosen_messages: np.ndarray
    message_bits: int
    report: TransportReport
    remote_obs: Optional[dict] = None


#: Protocol frame kinds priced by the analytic model (everything else is
#: session overhead).
PROTOCOL_KINDS = (
    FrameKind.OT_REQUEST.name,
    FrameKind.OT_RESPONSE.name,
    FrameKind.CMP_CHOICES.name,
    FrameKind.CMP_RESPONSE.name,
    FrameKind.CMP_AND.name,
)


# --------------------------------------------------------------------- #
# Byte packing helpers (shared by both parties)
# --------------------------------------------------------------------- #
def _pack_values(values: np.ndarray, bytes_per: int) -> bytes:
    """Little-endian pack of uint64 ``values`` at ``bytes_per`` bytes each."""
    full = np.ascontiguousarray(values, dtype="<u8")
    view = full.view(np.uint8).reshape(-1, 8)
    return view[:, :bytes_per].tobytes()


def _unpack_values(payload: bytes, count: int, bytes_per: int) -> np.ndarray:
    """Inverse of :func:`_pack_values`: ``count`` uint64 values."""
    raw = np.frombuffer(payload, dtype=np.uint8, count=count * bytes_per)
    full = np.zeros((count, 8), dtype=np.uint8)
    full[:, :bytes_per] = raw.reshape(count, bytes_per)
    return full.reshape(-1).view("<u8").astype(np.uint64)


def _pack_bits(flags: np.ndarray) -> bytes:
    return np.packbits(flags.astype(np.uint8)).tobytes()


def _unpack_bits(payload: bytes, count: int) -> np.ndarray:
    bits = np.unpackbits(np.frombuffer(payload, dtype=np.uint8), count=count)
    return bits.astype(bool)


def ot_payload_bytes(message_bits: int) -> int:
    """Analytic wire bytes of one 1-out-of-2 OT (``message_bits % 8 == 0``)."""
    if message_bits % 8 != 0:
        raise ValueError("remote OT requires message_bits divisible by 8")
    return (2 * message_bits + 128) // 8


# --------------------------------------------------------------------- #
# Party process (the far side of the channel)
# --------------------------------------------------------------------- #
def party_main(
    channel: PartyChannel,
    config: dict,
    private_values: bytes,
    chaos: Optional[ChaosConfig] = None,
    trace: bool = False,
) -> None:
    """Serve one secure session as the remote party, then exit.

    ``config`` carries the public session parameters (op, count, widths);
    ``private_values`` the party's own operands, delivered out-of-band via
    process spawn arguments — private inputs never cross the channel.

    A :class:`~repro.runtime.worker.ChaosConfig` schedule is evaluated
    before every frame this party sends (``chaos_action`` over the session
    key and step index): a ``crash`` draw hard-kills the process mid-protocol
    with ``os._exit``, exactly like a SIGKILL, which the driver must surface
    as a typed error.
    """
    # Like runtime workers: never inherit the parent's ambient tracer.
    obs.set_tracer(None)
    session_key = str(config.get("session_key", "secure-session"))
    step = 0

    def guard_send(kind: FrameKind, payload: bytes) -> None:
        nonlocal step
        step += 1
        if chaos_action(chaos, f"{session_key}/step-{step}", 1) == "crash":
            os._exit(86)
        channel.send(kind, payload)

    try:
        if trace:
            with obs.tracing(process=f"party/{session_key}") as tracer:
                with obs.span("transport.party", op=config.get("op", "?")):
                    _serve_session(channel, config, private_values, guard_send)
                snapshot = tracer.snapshot()
            guard_send(FrameKind.OBS, json.dumps(snapshot).encode("utf-8"))
        else:
            _serve_session(channel, config, private_values, guard_send)
        guard_send(FrameKind.CONTROL, b"bye")
    except ChannelError:
        # Driver vanished: nothing left to report to.
        pass
    except Exception as exc:  # pragma: no cover - defensive reporting path
        try:
            channel.send(FrameKind.ERROR, f"{type(exc).__name__}: {exc}".encode())
        except ChannelError:
            pass
    finally:
        channel.close()


def _serve_session(channel, config, private_values, send) -> None:
    op = config["op"]
    if op == "compare":
        _serve_comparison(channel, config, private_values, send)
    elif op == "ot":
        _serve_ot(channel, config, private_values, send)
    else:
        raise ValueError(f"unknown session op {op!r}")


def _serve_comparison(channel, config, private_values, send) -> None:
    """Party B of the millionaires' protocol: holds ``right``, serves tables.

    Per big-endian block column the driver sends its choice blocks
    (``CMP_CHOICES``); this party evaluates the greater-than and equality
    truth tables of its own block values at those choices — exactly the
    lookups :meth:`~repro.crypto.secure_compare.SecureComparator._block_compare_batch`
    performs through ``transfer_table_batch`` — and responds with the two
    packed share columns (``CMP_RESPONSE``), padded with stand-in bytes to
    the analytic size of the two 1-out-of-2^m OTs.  The combine tree's
    ``CMP_AND`` traffic is received and discarded (its information content
    is a local computation in the collapsed simulation; the frames exist to
    realise the modeled Beaver-triple bytes on a real wire).
    """
    count = int(config["count"])
    bit_width = int(config["bit_width"])
    block_bits = int(config["block_bits"])
    right = np.frombuffer(private_values, dtype="<u8").astype(np.uint64)
    if right.shape[0] != count:
        raise ValueError("private operand count mismatch")
    cost = comparison_cost(bit_width, block_bits=block_bits)
    per_ot_bytes = ((1 << block_bits) + 128) // 8
    mask = np.uint64((1 << block_bits) - 1)

    send(FrameKind.CONTROL, b"ready")
    for index in reversed(range(cost.num_blocks)):
        _, payload = channel.recv(expected=(FrameKind.CMP_CHOICES,))
        choices = np.frombuffer(payload, dtype=np.uint8, count=count).astype(np.uint64)
        right_blocks = (right >> np.uint64(index * block_bits)) & mask
        greater = choices > right_blocks
        equal = choices == right_blocks
        body = _pack_bits(greater) + _pack_bits(equal)
        budget = 2 * per_ot_bytes * count - count
        send(FrameKind.CMP_RESPONSE, body + b"\x00" * (budget - len(body)))
    width = cost.num_blocks
    while width > 1:
        channel.recv(expected=(FrameKind.CMP_AND,))
        width = width // 2 + width % 2
    channel.recv(expected=(FrameKind.CONTROL,))  # done


def _serve_ot(channel, config, private_values, send) -> None:
    """OT receiver: holds the choice bits, learns the chosen messages.

    Sends its choices in a u64-per-position ``OT_REQUEST`` (the 64-bit slot
    stands in for the receiver half of the base-OT material the analytic
    128-bit term prices), unmasks the driver's ``OT_RESPONSE``, and reveals
    the learned values back over ``CONTROL`` so the driver can return them —
    the reveal is session overhead, not protocol traffic.
    """
    count = int(config["count"])
    message_bits = int(config["message_bits"])
    bytes_per = message_bits // 8
    choices = np.frombuffer(private_values, dtype=np.uint8, count=count).astype(np.int64)

    send(FrameKind.CONTROL, b"ready")
    send(FrameKind.OT_REQUEST, _pack_values(choices.astype(np.uint64), 8))
    _, payload = channel.recv(expected=(FrameKind.OT_RESPONSE,))
    masked_zero = _unpack_values(payload, count, bytes_per)
    offset = count * bytes_per
    masked_one = _unpack_values(payload[offset:], count, bytes_per)
    pads = _unpack_values(payload[2 * offset:], count, 8)
    masked = np.where(choices.astype(bool), masked_one, masked_zero)
    learned = masked ^ pads
    send(FrameKind.CONTROL, _pack_values(learned, 8))
    channel.recv(expected=(FrameKind.CONTROL,))  # done


# --------------------------------------------------------------------- #
# Driver (owns RNG, accountant, ledger)
# --------------------------------------------------------------------- #
class RemoteParty:
    """Drive secure sessions against a party running in another process.

    The driver is the bookkeeping side: it owns the RNG (pad draws follow
    the exact block-draw contracts of the in-process kernels), the
    :class:`TranscriptAccountant` (charged with the canonical per-operation
    patterns), and optionally a :class:`~repro.federation.network.CommunicationLedger`
    — modeled ``SECURE_COMPARISON`` traffic is charged exactly as the
    in-process callers charge it, while the physical frames are attributed
    to the ledger's transport side-list
    (:meth:`~repro.federation.network.CommunicationLedger.record_transport_frame`),
    keeping the canonical transcript untouched.
    """

    def __init__(
        self,
        bit_width: int = 32,
        accountant: Optional[TranscriptAccountant] = None,
        rng: Optional[np.random.Generator] = None,
        timeout: float = DEFAULT_SESSION_TIMEOUT,
        chaos: Optional[ChaosConfig] = None,
        ledger=None,
        left_party: int = 0,
        right_party: int = 1,
        trace_remote: bool = False,
        start_method: Optional[str] = None,
    ) -> None:
        if bit_width <= 0 or bit_width > 64:
            raise ValueError("bit_width must be in [1, 64]")
        self.bit_width = bit_width
        self.accountant = accountant if accountant is not None else TranscriptAccountant()
        self._ot = ObliviousTransfer(accountant=self.accountant, rng=rng)
        self.timeout = timeout
        self.chaos = chaos
        self.ledger = ledger
        self.left_party = left_party
        self.right_party = right_party
        self.trace_remote = trace_remote
        self.start_method = start_method

    # -- infrastructure ------------------------------------------------ #
    def _mp_context(self):
        if self.start_method is not None:
            return multiprocessing.get_context(self.start_method)
        # Mirror the runtime executor's choice: fork on Linux (cheap, keeps
        # warm imports), the platform default elsewhere.
        if sys.platform.startswith("linux") and "fork" in multiprocessing.get_all_start_methods():
            return multiprocessing.get_context("fork")
        return multiprocessing.get_context()

    def precompute_pads(self, count: int, message_bits: int = 32) -> int:
        """Bulk-draw OT pads ahead of a session (see
        :meth:`ObliviousTransfer.precompute_pads`)."""
        return self._ot.precompute_pads(count, message_bits)

    @staticmethod
    def _start_party(process) -> None:
        """Start the party process, even from inside a daemonic pool worker.

        ``multiprocessing`` forbids daemonic processes from having children
        only as an exit-time join policy; ``_run_session`` joins (and on
        failure terminates) the party within its own scope, so when the
        driver itself runs inside a runtime worker the flag is lifted for
        the duration of the start call.
        """
        current = multiprocessing.current_process()
        config = getattr(current, "_config", None)
        if isinstance(config, dict) and config.get("daemon"):
            config["daemon"] = False
            try:
                process.start()
            finally:
                config["daemon"] = True
        else:
            process.start()

    def _run_session(self, config: dict, private_values: bytes, protocol) -> Tuple[object, TransportReport, Optional[dict]]:
        """Spawn the party, run ``protocol(channel)``, reconcile, clean up."""
        context = self._mp_context()
        driver_end, party_end = channel_pair(
            timeout=self.timeout, parties=("driver", str(config["session_key"]))
        )
        process = context.Process(
            target=party_main,
            args=(party_end, config, private_values, self.chaos, self.trace_remote),
            daemon=True,
        )
        self._start_party(process)
        # The child owns its endpoint now; with fork the parent must drop its
        # duplicate so a dead child reads as EOF, not an open pipe.
        party_end.close()
        remote_obs: Optional[dict] = None
        try:
            kind, payload = self._recv(driver_end, (FrameKind.CONTROL,), config)
            result = protocol(driver_end)
            self._send(driver_end, FrameKind.CONTROL, b"done")
            while True:
                kind, payload = self._recv(
                    driver_end, (FrameKind.CONTROL, FrameKind.OBS), config
                )
                if kind is FrameKind.OBS:
                    remote_obs = json.loads(payload.decode("utf-8"))
                    continue
                break
        except ChannelError as exc:
            process.join(timeout=1.0)
            exitcode = process.exitcode
            raise RemotePartyError(
                f"session {config['session_key']!r} ({config['op']}) failed: {exc}"
                + (f" [party exit code {exitcode}]" if exitcode not in (None, 0) else "")
            ) from exc
        finally:
            driver_end.close()
            process.join(timeout=2.0)
            if process.is_alive():  # pragma: no cover - defensive cleanup
                process.terminate()
                process.join(timeout=1.0)
        stats = driver_end.stats
        by_kind = {
            name: stats.by_kind_sent.get(name, 0) + stats.by_kind_received.get(name, 0)
            for name in sorted(set(stats.by_kind_sent) | set(stats.by_kind_received))
        }
        protocol_bytes = sum(by_kind.get(name, 0) for name in PROTOCOL_KINDS)
        control_bytes = sum(
            size for name, size in by_kind.items() if name not in PROTOCOL_KINDS
        )
        report = TransportReport(
            frames=stats.frames_sent + stats.frames_received,
            protocol_payload_bytes=protocol_bytes,
            analytic_payload_bytes=int(config["analytic_bytes"]),
            control_payload_bytes=control_bytes,
            wire_bytes=stats.wire_bytes_sent + stats.wire_bytes_received,
            by_kind=by_kind,
        )
        obs.add_counter("transport.sessions")
        obs.add_counter("transport.wire_bytes", report.wire_bytes)
        if report.protocol_payload_bytes != report.analytic_payload_bytes:
            raise MeasuredCostMismatch(
                f"session {config['session_key']!r}: measured protocol bytes "
                f"{report.protocol_payload_bytes} != analytic "
                f"{report.analytic_payload_bytes} "
                f"(by kind: {report.by_kind})"
            )
        return result, report, remote_obs

    def _send(self, channel: PartyChannel, kind: FrameKind, payload: bytes) -> None:
        size = channel.send(kind, payload)
        if self.ledger is not None:
            self.ledger.record_transport_frame(
                self.left_party, self.right_party, kind.name,
                size, size + 9, description="secure-transport",
            )

    def _recv(self, channel: PartyChannel, expected, config) -> Tuple[FrameKind, bytes]:
        kind, payload = channel.recv(expected=expected)
        if self.ledger is not None:
            self.ledger.record_transport_frame(
                self.right_party, self.left_party, kind.name,
                len(payload), len(payload) + 9, description="secure-transport",
            )
        return kind, payload

    # -- comparison session -------------------------------------------- #
    def compare_batch(self, left, right, session_key: str = "cmp-session") -> RemoteComparisonOutcome:
        """Run ``left[i] >= right[i]`` with ``right`` held by the remote party.

        Bit-for-bit equivalent to
        ``SecureComparator(...).compare_batch(left, right, execute=True)``:
        same outcome bits (the leaf shares received over the wire are the
        same table lookups, the combine tree is the same column recursion),
        same accountant counters and capped log (the canonical
        per-comparison pattern of :func:`comparison_cost` is charged, as the
        in-process batch kernel does), no RNG draws (table OTs need no
        masking randomness), and — when a ledger is attached — the same
        canonical ``SECURE_COMPARISON`` message charge as the in-process
        callers, with the physical frames recorded on the transport
        side-list only.
        """
        left = operand_array(left, "left", self.bit_width)
        right = operand_array(right, "right", self.bit_width)
        if left.ndim != 1 or left.shape != right.shape:
            raise ValueError("compare_batch expects two 1-D arrays of equal length")
        count = int(left.shape[0])
        block_bits = SecureComparator.BLOCK_BITS
        cost = comparison_cost(self.bit_width, block_bits=block_bits)
        config = {
            "op": "compare",
            "session_key": session_key,
            "count": count,
            "bit_width": self.bit_width,
            "block_bits": block_bits,
            "analytic_bytes": count * (cost.bits // 8),
        }
        per_ot_bytes = ((1 << block_bits) + 128) // 8
        mask = np.uint64((1 << block_bits) - 1)

        def protocol(channel: PartyChannel):
            greater = np.zeros((count, cost.num_blocks), dtype=bool)
            equal = np.zeros((count, cost.num_blocks), dtype=bool)
            packed = -(-count // 8)
            with obs.span("transport.compare", count=count, bit_width=self.bit_width):
                for column, index in enumerate(reversed(range(cost.num_blocks))):
                    blocks = (left >> np.uint64(index * block_bits)) & mask
                    self._send(
                        channel, FrameKind.CMP_CHOICES,
                        blocks.astype(np.uint8).tobytes(),
                    )
                    _, payload = self._recv(channel, (FrameKind.CMP_RESPONSE,), config)
                    greater[:, column] = _unpack_bits(payload[:packed], count)
                    equal[:, column] = _unpack_bits(payload[packed:2 * packed], count)
                # The same logarithmic AND/OR combine tree as the in-process
                # batch kernel, with the modeled Beaver bytes realised as
                # stand-in CMP_AND frames (1 byte per gate per comparison).
                while greater.shape[1] > 1:
                    width = greater.shape[1]
                    paired = width - (width % 2)
                    gates = paired // 2
                    self._send(channel, FrameKind.CMP_AND, b"\x00" * (gates * count))
                    high_greater = greater[:, 0:paired:2]
                    high_equal = equal[:, 0:paired:2]
                    low_greater = greater[:, 1:paired:2]
                    low_equal = equal[:, 1:paired:2]
                    next_greater = high_greater | (high_equal & low_greater)
                    next_equal = high_equal & low_equal
                    if width % 2 == 1:
                        next_greater = np.concatenate(
                            [next_greater, greater[:, -1:]], axis=1
                        )
                        next_equal = np.concatenate([next_equal, equal[:, -1:]], axis=1)
                    greater, equal = next_greater, next_equal
            return greater[:, 0] | equal[:, 0]

        outcomes, report, remote_obs = self._run_session(
            config, right.astype("<u8").tobytes(), protocol
        )
        # Canonical accounting: identical to SecureComparator.compare_batch.
        self.accountant.ot_invocations += cost.ot_invocations * count
        self.accountant.record_pattern(cost.pattern, count)
        self.accountant.comparisons += count
        obs.add_counter("crypto.ot_invocations", cost.ot_invocations * count)
        obs.add_counter("crypto.comparisons", count)
        if self.ledger is not None and count:
            charge_comparison_ledger(
                self.ledger, count, cost, self.left_party, self.right_party
            )
        self._attach_remote(remote_obs)
        return RemoteComparisonOutcome(
            left_ge_right=outcomes, cost=cost, report=report, remote_obs=remote_obs
        )

    # -- OT session ----------------------------------------------------- #
    def transfer_batch(
        self,
        messages_zero,
        messages_one,
        remote_choices,
        message_bits: int = 32,
        session_key: str = "ot-session",
    ) -> RemoteOTOutcome:
        """Run a 1-out-of-2 OT batch: this driver is the sender, the remote
        party holds the choice bits and learns the chosen messages.

        Bit-for-bit equivalent to
        :meth:`ObliviousTransfer.transfer_batch`: pads come from the same
        block draw on the driver's RNG (pool-aware — see
        :meth:`precompute_pads`), the accountant is charged the identical
        ``("ot", 2 * message_bits + 128)`` pattern, and the values the
        remote party unmasks equal the in-process results.  The remote
        reveal of the learned values (so this method can return them) rides
        on ``CONTROL`` frames, outside the priced protocol traffic.
        """
        bytes_per = message_bits // 8
        per_position = ot_payload_bytes(message_bits)  # validates divisibility
        messages_zero = ObliviousTransfer._operand_array(
            messages_zero, "message_zero", message_bits
        )
        messages_one = ObliviousTransfer._operand_array(
            messages_one, "message_one", message_bits
        )
        choices = np.asarray(remote_choices, dtype=np.int64)
        if (
            messages_zero.ndim != 1
            or messages_zero.shape != messages_one.shape
            or messages_zero.shape != choices.shape
        ):
            raise ValueError("transfer_batch expects three 1-D arrays of equal length")
        if choices.size and not np.isin(choices, (0, 1)).all():
            raise ValueError("choice must be 0 or 1")
        count = int(choices.shape[0])
        wide = messages_zero.dtype == np.uint64
        if count == 0:
            empty = np.zeros(0, dtype=np.uint64 if wide else np.int64)
            report = TransportReport(0, 0, 0, 0, 0, {})
            return RemoteOTOutcome(empty, message_bits, report)
        config = {
            "op": "ot",
            "session_key": session_key,
            "count": count,
            "message_bits": message_bits,
            "analytic_bytes": count * per_position,
        }

        def protocol(channel: PartyChannel):
            with obs.span("transport.ot", count=count, message_bits=message_bits):
                _, payload = self._recv(channel, (FrameKind.OT_REQUEST,), config)
                wire_choices = _unpack_values(payload, count, 8).astype(np.int64)
                # Same block draw as the in-process kernel (pool-aware).
                pads = self._ot._take_pads(count, message_bits)
                pads = pads.astype(np.uint64)
                masked_zero = messages_zero.astype(np.uint64) ^ pads[:, 0]
                masked_one = messages_one.astype(np.uint64) ^ pads[:, 1]
                rows = np.arange(count)
                chosen_pads = pads[rows, wire_choices]
                self._send(
                    channel, FrameKind.OT_RESPONSE,
                    _pack_values(masked_zero, bytes_per)
                    + _pack_values(masked_one, bytes_per)
                    + _pack_values(chosen_pads, 8),
                )
                _, reveal = self._recv(channel, (FrameKind.CONTROL,), config)
            return _unpack_values(reveal, count, 8)

        learned, report, remote_obs = self._run_session(
            config, choices.astype(np.uint8).tobytes(), protocol
        )
        self.accountant.ot_invocations += count
        self.accountant.record_pattern((("ot", 2 * message_bits + 128),), count)
        self._attach_remote(remote_obs)
        results = learned if wide else learned.astype(np.int64)
        return RemoteOTOutcome(
            chosen_messages=results,
            message_bits=message_bits,
            report=report,
            remote_obs=remote_obs,
        )

    @staticmethod
    def _attach_remote(remote_obs: Optional[dict]) -> None:
        tracer = obs.current_tracer()
        if tracer is not None and remote_obs is not None:
            tracer.attach_remote(remote_obs)


def charge_comparison_ledger(
    ledger,
    count: int,
    cost: ComparisonCost,
    left_party: int,
    right_party: int,
    description: str = "secure-comparison",
) -> None:
    """Charge a comparison batch's modeled traffic to the ledger.

    One ``SECURE_COMPARISON`` message per direction per comparison at
    ``max(1, cost.bits // 8)`` bytes — the same shape the in-process
    callers (e.g. the greedy kernel) charge, factored here so the remote
    driver and any in-process twin charge identically and their canonical
    transcripts stay comparable.
    """
    size_bytes = max(1, cost.bits // 8)
    round_index = ledger.current_round
    forward = np.full(count, left_party, dtype=np.int64)
    backward = np.full(count, right_party, dtype=np.int64)
    ledger.send_many(
        np.concatenate([forward, backward]),
        np.concatenate([backward, forward]),
        MessageKind.SECURE_COMPARISON,
        np.full(2 * count, size_bytes, dtype=np.int64),
        np.full(2 * count, round_index, dtype=np.int64),
        description=description,
    )


def chaos_comparison_probe(
    count: int = 16,
    bit_width: int = 16,
    seed: int = 0,
    crash_rate: float = 1.0,
    timeout: float = 5.0,
) -> dict:
    """Run one small remote comparison under a chaos schedule (runtime probe).

    Importable-by-name for
    :class:`~repro.runtime.items.CallableItem`, so the runtime's chaos tests
    can dispatch a real two-party session into a worker: with
    ``crash_rate=1.0`` the party is hard-killed before its first send and
    the driver's typed :class:`RemotePartyError` propagates out of the
    worker as a ``FailedAttempt`` — never a hang, because every channel
    receive is deadline-bounded.  Returns the outcome summary when the
    session survives the schedule.
    """
    rng = np.random.default_rng(seed)
    values = rng.integers(0, 1 << bit_width, size=(2, count))
    driver = RemoteParty(
        bit_width=bit_width,
        timeout=timeout,
        chaos=ChaosConfig(seed=seed, crash_rate=crash_rate),
    )
    outcome = driver.compare_batch(
        values[0], values[1], session_key=f"chaos-probe-{seed}"
    )
    return {
        "count": count,
        "true_fraction": float(outcome.left_ge_right.mean()),
        "wire_bytes": outcome.report.wire_bytes,
    }
