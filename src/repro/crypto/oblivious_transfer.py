"""Simulated 1-out-of-2 oblivious transfer (OT).

CrypTFlow2's millionaires' protocol — which Lumos uses to compare node
degrees and workloads without revealing them — is built from 1-out-of-2 OT
invocations.  A real deployment would use an OT extension over a network; in
this single-process reproduction we *simulate* the protocol faithfully at the
message level:

* the sender holds two messages ``m0`` and ``m1``;
* the receiver holds a choice bit ``c`` and learns exactly ``m_c``;
* the sender learns nothing about ``c``; the receiver learns nothing about
  ``m_{1-c}``.

The information boundary is enforced structurally: the receiver only ever
receives the XOR-masked pair and the key for its chosen message, and the
implementation records every transmitted bit in a
:class:`TranscriptAccountant` so benches can report communication cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .. import obs


@dataclass
class TranscriptAccountant:
    """Counts messages and bits exchanged by the simulated crypto protocols."""

    #: The log stores at most this many entries (counters keep accumulating).
    LOG_CAP = 10_000

    messages: int = 0
    bits: int = 0
    ot_invocations: int = 0
    comparisons: int = 0
    _log: List[str] = field(default_factory=list)

    def record(self, description: str, bits: int) -> None:
        """Record one message of ``bits`` bits."""
        self.messages += 1
        self.bits += int(bits)
        obs.add_counter("crypto.messages")
        obs.add_counter("crypto.bits", int(bits))
        if len(self._log) < self.LOG_CAP:
            self._log.append(f"{description}:{bits}")

    def record_pattern(self, pattern: Sequence[Tuple[str, int]], count: int) -> None:
        """Record ``count`` repetitions of a fixed ``(description, bits)`` pattern.

        Counter- and log-identical to calling :meth:`record` once per entry of
        the repeated pattern (including the ``LOG_CAP`` truncation), but O(1)
        in the counters — this is how the batched protocol kernels charge one
        transcript entry per logical message without a python loop per message.
        """
        if count <= 0 or not pattern:
            return
        self.messages += len(pattern) * count
        self.bits += sum(bits for _, bits in pattern) * count
        obs.add_counter("crypto.messages", len(pattern) * count)
        obs.add_counter("crypto.bits", sum(bits for _, bits in pattern) * count)
        remaining = self.LOG_CAP - len(self._log)
        if remaining > 0:
            entries = [f"{description}:{bits}" for description, bits in pattern]
            repeats = min(count, -(-remaining // len(entries)))
            self._log.extend((entries * repeats)[:remaining])

    def record_ot(self, message_bits: int) -> None:
        """Record one 1-out-of-2 OT of ``message_bits``-bit messages.

        A semi-honest OT costs one masked pair from sender to receiver plus a
        constant-size choice message; we account 2 * message_bits + 128 bits
        (the 128-bit term standing in for the public-key / base-OT overhead).
        """
        self.ot_invocations += 1
        obs.add_counter("crypto.ot_invocations")
        self.record("ot", 2 * message_bits + 128)

    def merge(self, other: "TranscriptAccountant") -> None:
        """Fold another accountant's counters and capped log into this one.

        The log keeps ``other``'s entries in order, truncated at ``LOG_CAP``
        exactly as if every one of them had been re-recorded here — so merging
        two capped accountants yields a capped accountant whose log is the
        concatenation prefix the cap allows.
        """
        self.messages += other.messages
        self.bits += other.bits
        self.ot_invocations += other.ot_invocations
        self.comparisons += other.comparisons
        remaining = self.LOG_CAP - len(self._log)
        if remaining > 0 and other._log:
            self._log.extend(other._log[:remaining])

    def snapshot(self) -> dict:
        """Return the counters as a plain dictionary."""
        return {
            "messages": self.messages,
            "bits": self.bits,
            "ot_invocations": self.ot_invocations,
            "comparisons": self.comparisons,
        }


@dataclass(frozen=True)
class OTResult:
    """Outcome of one oblivious transfer as observed by the receiver."""

    chosen_message: int
    message_bits: int


#: Widths whose modulus ``2**bits`` no longer fits numpy's default int64
#: bounded-integer draw (``integers(high)`` accepts an exclusive bound up to
#: ``2**63``, so 63-bit pads still work on the historical path; 64-bit is the
#: first width that needs the explicit uint64 draw).
_WIDE_PAD_BITS = 64


class ObliviousTransfer:
    """Simulated semi-honest 1-out-of-2 OT with XOR one-time pads."""

    def __init__(
        self,
        accountant: Optional[TranscriptAccountant] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.accountant = accountant if accountant is not None else TranscriptAccountant()
        self._rng = rng if rng is not None else np.random.default_rng()
        #: Precomputed pad blocks per message width (OT-extension-style):
        #: ``message_bits -> (block, cursor)`` where ``block`` is an
        #: ``(n, 2)`` array drawn by :meth:`precompute_pads` and ``cursor``
        #: counts consumed rows.  See the stream contract on that method.
        self._pad_pools: dict = {}

    # ------------------------------------------------------------------ #
    # Pad generation (the only RNG touchpoint of the OT simulation)
    # ------------------------------------------------------------------ #
    def _draw_pad_block(self, count: int, message_bits: int) -> np.ndarray:
        """Draw ``(count, 2)`` one-time pads for ``message_bits``-bit messages.

        Widths up to 63 use the historical default-dtype (int64) draw, so
        every previously pinned stream stays bit-for-bit unchanged; wider
        widths (whose modulus exceeds the int64 bound) switch to an explicit
        uint64 draw.  Numpy fills bounded-integer blocks from the bit stream
        in C order with the same per-value algorithm as scalar draws of the
        same dtype, so an ``(n, 2)`` block is interchangeable with ``2 * n``
        scalar draws — the property every stream contract here relies on.
        """
        if message_bits >= _WIDE_PAD_BITS:
            return self._rng.integers(
                0, (1 << message_bits) - 1, size=(count, 2),
                dtype=np.uint64, endpoint=True,
            )
        return self._rng.integers(1 << message_bits, size=(count, 2))

    def precompute_pads(self, count: int, message_bits: int = 32) -> int:
        """Precompute ``count`` OT pad pairs in one bulk block draw.

        OT-extension-style amortisation: a two-party deployment draws the
        whole batch's masking material up front so per-transfer latency is
        transport, not pad generation.  Subsequent :meth:`transfer` /
        :meth:`transfer_batch` calls of the same ``message_bits`` consume the
        pool row by row before drawing live.

        **RNG block-draw contract**: consumes exactly the ``(count, 2)``
        block the pooled transfers would otherwise have drawn at call time —
        pad values, consumption order and the generator's final state are all
        bit-for-bit identical to the pool-free path (pinned by
        ``tests/test_secure_transport.py`` via
        ``tests/helpers/rng_contract.py``).  Pools of different widths are
        independent; re-precomputing appends to the unconsumed remainder.
        """
        if count <= 0:
            raise ValueError("count must be positive")
        block = self._draw_pad_block(count, message_bits)
        existing = self._pad_pools.get(message_bits)
        if existing is not None:
            remainder, cursor = existing
            block = np.concatenate([remainder[cursor:], block], axis=0)
        self._pad_pools[message_bits] = (block, 0)
        return int(block.shape[0])

    def pooled_pads(self, message_bits: int = 32) -> int:
        """Number of precomputed pad pairs currently available at this width."""
        entry = self._pad_pools.get(message_bits)
        if entry is None:
            return 0
        block, cursor = entry
        return int(block.shape[0]) - cursor

    def _take_pads(self, count: int, message_bits: int) -> np.ndarray:
        """Return ``(count, 2)`` pads: pool rows first, then a live draw.

        Values and stream consumption are identical to a pool-free run: the
        pool rows *are* the values the live draw would have produced (just
        drawn earlier, in the same order), and the remainder continues the
        stream exactly where the pool block left it.
        """
        entry = self._pad_pools.get(message_bits)
        if entry is None:
            return self._draw_pad_block(count, message_bits)
        block, cursor = entry
        available = block.shape[0] - cursor
        if available >= count:
            taken = block[cursor:cursor + count]
            if cursor + count == block.shape[0]:
                self._pad_pools.pop(message_bits)
            else:
                self._pad_pools[message_bits] = (block, cursor + count)
            return taken
        self._pad_pools.pop(message_bits)
        fresh = self._draw_pad_block(count - available, message_bits)
        return np.concatenate([block[cursor:], fresh], axis=0)

    def transfer(self, message_zero: int, message_one: int, choice: int, message_bits: int = 32) -> OTResult:
        """Run one OT: the receiver with ``choice`` learns exactly one message.

        Parameters
        ----------
        message_zero, message_one:
            The sender's two messages (non-negative integers below
            ``2 ** message_bits``).
        choice:
            The receiver's choice bit (0 or 1).
        message_bits:
            Bit width of the messages, used for communication accounting.
        """
        if choice not in (0, 1):
            raise ValueError("choice must be 0 or 1")
        modulus = 1 << message_bits
        for name, message in (("message_zero", message_zero), ("message_one", message_one)):
            if not 0 <= message < modulus:
                raise ValueError(f"{name} must lie in [0, 2^{message_bits})")

        # Sender masks both messages with independent one-time pads; the
        # receiver obtains only the pad of its chosen index (this is the step
        # a real protocol realises with public-key base OTs).  Narrow widths
        # keep the historical two-scalar draw (stream-compatible with every
        # pinned transcript); wide widths and pooled pads go through the
        # block path, which consumes the stream identically.
        pool = self._pad_pools.get(message_bits)
        if pool is not None or message_bits >= _WIDE_PAD_BITS:
            pads = self._take_pads(1, message_bits)
            pad_zero, pad_one = int(pads[0, 0]), int(pads[0, 1])
        else:
            pad_zero = int(self._rng.integers(modulus))
            pad_one = int(self._rng.integers(modulus))
        masked = (message_zero ^ pad_zero, message_one ^ pad_one)
        chosen_pad = pad_one if choice else pad_zero
        self.accountant.record_ot(message_bits)

        chosen_message = masked[choice] ^ chosen_pad
        return OTResult(chosen_message=chosen_message, message_bits=message_bits)

    def transfer_batch(
        self, messages_zero, messages_one, choices, message_bits: int = 32
    ):
        """Run many independent 1-out-of-2 OTs as one numpy block.

        Counter- and log-identical to calling :meth:`transfer` once per
        position, and the receiver of position ``i`` learns exactly
        ``messages_one[i] if choices[i] else messages_zero[i]``.

        **RNG block-draw contract**: consumes exactly ``2 * n`` values from
        the shared generator via one ``integers(modulus, size=(n, 2))`` block
        draw (uint64 dtype for ``message_bits=64``, whose modulus exceeds
        the int64 bound — see :meth:`_draw_pad_block`).  Numpy fills
        bounded-integer blocks from the bit stream in C order with the same
        per-value algorithm as scalar draws of the same dtype, so the stream
        is left bit-for-bit where ``n`` scalar :meth:`transfer` calls
        (pad_zero then pad_one, per position) would leave it — pinned by
        ``tests/helpers/rng_contract.py``.  Pads precomputed via
        :meth:`precompute_pads` are consumed first, with identical values
        and final stream state.
        """
        wide = message_bits >= _WIDE_PAD_BITS
        messages_zero = self._operand_array(messages_zero, "message_zero", message_bits)
        messages_one = self._operand_array(messages_one, "message_one", message_bits)
        choices = np.asarray(choices, dtype=np.int64)
        if (
            messages_zero.ndim != 1
            or messages_zero.shape != messages_one.shape
            or messages_zero.shape != choices.shape
        ):
            raise ValueError("transfer_batch expects three 1-D arrays of equal length")
        if choices.size and not np.isin(choices, (0, 1)).all():
            raise ValueError("choice must be 0 or 1")
        count = int(choices.shape[0])
        if count == 0:
            return np.zeros(0, dtype=np.uint64 if wide else np.int64)
        pads = self._take_pads(count, message_bits)
        masked = np.stack([messages_zero ^ pads[:, 0], messages_one ^ pads[:, 1]], axis=1)
        rows = np.arange(count)
        chosen = masked[rows, choices] ^ pads[rows, choices]
        self.accountant.ot_invocations += count
        self.accountant.record_pattern((("ot", 2 * message_bits + 128),), count)
        return chosen

    @staticmethod
    def _operand_array(values, name: str, message_bits: int) -> np.ndarray:
        """Validate a batch operand against ``[0, 2**message_bits)``.

        Mirrors ``SecureComparator._operand_array``: int64 is the historical
        dtype for widths below 64 (so narrow-path XOR results keep their
        int64 dtype), while 64-bit operands — legal up to ``2**64 - 1`` —
        need the unsigned widening to avoid an int64 ``OverflowError``.
        """
        array = np.asarray(values)
        if array.dtype != np.uint64:
            try:
                array = np.asarray(values, dtype=np.int64)
            except OverflowError:
                # Python ints above 2**63 - 1 only fit uint64; genuinely
                # negative inputs still raise here rather than wrapping.
                array = np.asarray(values, dtype=np.uint64)
        if array.size:
            if array.dtype != np.uint64 and int(array.min()) < 0:
                raise ValueError(f"{name} must lie in [0, 2^{message_bits})")
            if message_bits < 64 and int(array.max()) >= (1 << message_bits):
                raise ValueError(f"{name} must lie in [0, 2^{message_bits})")
        if message_bits >= _WIDE_PAD_BITS:
            return array.astype(np.uint64, copy=False)
        return array.astype(np.int64, copy=False)

    def transfer_table(self, table: Tuple[int, ...], choice: int, message_bits: int = 32) -> int:
        """1-out-of-N OT built from a direct table lookup with N-message cost.

        CrypTFlow2 uses 1-out-of-16 OTs for blocks of 4 bits; we account the
        communication as ``N * message_bits`` and return only the chosen entry.
        """
        if not 0 <= choice < len(table):
            raise ValueError("choice out of table range")
        self.accountant.ot_invocations += 1
        self.accountant.record("ot-n", len(table) * message_bits + 128)
        return int(table[choice])

    def transfer_table_batch(
        self, tables, choices, message_bits: int = 32, charge: bool = True
    ):
        """Run many independent 1-out-of-N table OTs as one numpy block.

        ``tables`` is an ``(n, N)`` array — row ``i`` is the sender's truth
        table of position ``i`` — and ``choices`` the receiver's ``n`` table
        indices.  Counter- and log-identical to ``n`` :meth:`transfer_table`
        calls when ``charge`` is true; ``charge=False`` runs the transfer
        without touching the accountant, for callers (the batched
        millionaires' kernel) that charge the canonical *per-comparison*
        interleaved pattern themselves instead of this blockwise order.

        **RNG block-draw contract**: draws **nothing** — like the scalar
        table OT, the simulated lookup needs no masking randomness.
        """
        tables = np.asarray(tables)
        choices = np.asarray(choices, dtype=np.int64)
        if tables.ndim != 2 or choices.ndim != 1 or tables.shape[0] != choices.shape[0]:
            raise ValueError("transfer_table_batch expects (n, N) tables and n choices")
        if choices.size and not (
            0 <= int(choices.min()) and int(choices.max()) < tables.shape[1]
        ):
            raise ValueError("choice out of table range")
        count = int(choices.shape[0])
        if charge and count:
            self.accountant.ot_invocations += count
            self.accountant.record_pattern(
                (("ot-n", tables.shape[1] * message_bits + 128),), count
            )
        return tables[np.arange(count), choices]
