"""Scenario configuration for fault injection.

A :class:`FaultScenarioConfig` describes *what can go wrong* in a federation:
Bernoulli per-round dropout, Markov join/leave churn, straggler latency
multipliers with an optional round deadline, and message loss.  The config is
a frozen dataclass so it can be fingerprinted by the staged engine and used
as a dictionary key; compiling it into a concrete per-round schedule is the
job of :class:`repro.faults.plan.FaultPlan`.

This module must stay import-light (stdlib only): ``repro.core.config``
embeds a scenario in every :class:`LumosConfig`, so importing anything from
``repro.core`` or ``repro.engine`` here would create a cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["FaultScenarioConfig"]


def _check_rate(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")


@dataclass(frozen=True)
class FaultScenarioConfig:
    """Declarative description of an unreliable-federation scenario.

    Parameters
    ----------
    dropout_rate:
        Bernoulli probability that an otherwise-online device skips a round
        entirely (no compute, no messages, nothing charged).
    join_rate / leave_rate:
        Markov churn transition probabilities: an offline device comes online
        with ``join_rate`` per round, an online device leaves with
        ``leave_rate``.  The initial state is drawn from the stationary
        distribution ``join / (join + leave)``; with ``leave_rate == 0`` the
        chain is always online and the scenario is effectively churn-free.
    straggler_rate / straggler_multiplier:
        Each round, each device independently becomes a straggler with
        ``straggler_rate``; its latency multiplier is drawn uniformly from
        ``[1, straggler_multiplier]``.  Non-stragglers run at multiplier 1.
    round_deadline:
        Optional deadline expressed as a latency *multiple* of the nominal
        round.  A device whose sampled multiplier exceeds the deadline is
        evicted from that round's aggregation: its messages were sent (and
        are charged) but arrive too late to be merged.
    message_loss_rate:
        Probability that an online, non-evicted device's round update is lost
        in transit — charged to the sender, never delivered.
    fault_seed:
        Seed for the fault plan's *own* RNG stream.  The pipeline RNG is
        never touched, so an empty scenario leaves training bit-identical.
    """

    dropout_rate: float = 0.0
    join_rate: float = 0.0
    leave_rate: float = 0.0
    straggler_rate: float = 0.0
    straggler_multiplier: float = 4.0
    round_deadline: Optional[float] = None
    message_loss_rate: float = 0.0
    fault_seed: int = 0

    def __post_init__(self) -> None:
        _check_rate("dropout_rate", self.dropout_rate)
        _check_rate("join_rate", self.join_rate)
        _check_rate("leave_rate", self.leave_rate)
        _check_rate("straggler_rate", self.straggler_rate)
        _check_rate("message_loss_rate", self.message_loss_rate)
        if self.straggler_multiplier < 1.0:
            raise ValueError(
                "straggler_multiplier must be >= 1, got "
                f"{self.straggler_multiplier!r}"
            )
        if self.round_deadline is not None and self.round_deadline <= 0.0:
            raise ValueError(
                f"round_deadline must be positive, got {self.round_deadline!r}"
            )

    def is_empty(self) -> bool:
        """True when the scenario cannot perturb any round.

        ``fault_seed`` (and a pure ``join_rate`` with ``leave_rate == 0``,
        whose stationary chain never goes offline) are deliberately ignored:
        two empty scenarios must share cache keys with the fault-free path.
        """
        return (
            self.dropout_rate == 0.0
            and self.leave_rate == 0.0
            and self.straggler_rate == 0.0
            and self.message_loss_rate == 0.0
        )
