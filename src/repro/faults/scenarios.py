"""Named scenario grids for robustness sweeps.

The default grid spans the four fault mechanisms individually plus one
combined "hostile" arm, always anchored by a fault-free baseline so sweep
reports can express every metric as a delta vs full availability.
"""

from __future__ import annotations

from typing import Dict

from .config import FaultScenarioConfig

__all__ = ["default_robustness_scenarios"]


def default_robustness_scenarios() -> Dict[str, FaultScenarioConfig]:
    return {
        "baseline": FaultScenarioConfig(),
        "dropout_10": FaultScenarioConfig(dropout_rate=0.10, fault_seed=11),
        "dropout_30": FaultScenarioConfig(dropout_rate=0.30, fault_seed=12),
        "churn": FaultScenarioConfig(join_rate=0.30, leave_rate=0.10, fault_seed=13),
        "stragglers": FaultScenarioConfig(
            straggler_rate=0.20,
            straggler_multiplier=4.0,
            round_deadline=2.5,
            fault_seed=14,
        ),
        "lossy": FaultScenarioConfig(message_loss_rate=0.05, fault_seed=15),
        "hostile": FaultScenarioConfig(
            dropout_rate=0.15,
            join_rate=0.30,
            leave_rate=0.10,
            straggler_rate=0.20,
            straggler_multiplier=4.0,
            round_deadline=2.5,
            message_loss_rate=0.05,
            fault_seed=16,
        ),
    }
