"""Compilation of fault scenarios into deterministic per-round schedules.

``FaultPlan.compile`` turns a :class:`FaultScenarioConfig` into concrete
boolean/latency matrices of shape ``(num_rounds, num_devices)``.  The plan
owns its RNG stream (``np.random.default_rng(config.fault_seed)``) and draws
in a fixed block order so the schedule is bit-for-bit reproducible across
processes and platforms:

1. **churn** (only when ``join_rate > 0 or leave_rate > 0``): one uniform
   block of shape ``(num_devices,)`` for the stationary initial state, then
   one block of shape ``(num_rounds - 1, num_devices)`` for the per-round
   Markov transitions (skipped when ``num_rounds <= 1``);
2. **dropout** (only when ``dropout_rate > 0``): one
   ``(num_rounds, num_devices)`` block;
3. **stragglers** (only when ``straggler_rate > 0``): a selection block then
   a magnitude block, both ``(num_rounds, num_devices)``;
4. **message loss** (only when ``message_loss_rate > 0``): one
   ``(num_rounds, num_devices)`` block.

Disabled mechanisms draw nothing, so e.g. adding message loss to a dropout
scenario does not shift the dropout schedule.

Derived mask algebra (all ``(num_rounds, num_devices)``):

- ``online``   — churn state AND not dropped out; only online devices do any
  work or send any bytes in a round.
- ``latency``  — float multiplier of the nominal per-round time; 1.0 for
  non-stragglers.
- ``evicted``  — online devices whose multiplier exceeds the round deadline;
  they sent their update (charged) but the server stopped waiting.
- ``lost``     — online, non-evicted devices whose update was lost in
  transit (charged, never delivered).
- ``participating`` — ``online & ~evicted & ~lost``: the devices whose
  updates actually enter the round's aggregation.

This module imports only numpy + stdlib (see ``repro.faults.config``).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict

import numpy as np

from .config import FaultScenarioConfig

__all__ = ["FaultPlan", "schedule_digest"]


@dataclass(frozen=True)
class FaultPlan:
    """A compiled, immutable per-round availability/latency schedule."""

    config: FaultScenarioConfig
    num_devices: int
    num_rounds: int
    online: np.ndarray
    latency: np.ndarray
    evicted: np.ndarray
    lost: np.ndarray
    participating: np.ndarray
    #: Pre-dropout churn state (the raw Markov chain): ``present[r, d]`` is
    #: True when device ``d`` is a federation member in round ``r``.  All
    #: ones for churn-free scenarios.  This is the schedule the maintenance
    #: layer turns into real tree mutations (``churn_events``), while
    #: ``online`` additionally masks per-round dropout — a dropped-out
    #: device skipped a round but never left the tree.
    present: np.ndarray = None

    @classmethod
    def compile(
        cls,
        config: FaultScenarioConfig,
        num_devices: int,
        num_rounds: int,
    ) -> "FaultPlan":
        if num_devices <= 0:
            raise ValueError(f"num_devices must be positive, got {num_devices}")
        if num_rounds < 0:
            raise ValueError(f"num_rounds must be >= 0, got {num_rounds}")
        shape = (num_rounds, num_devices)
        rng = np.random.default_rng(config.fault_seed)

        # Block 1: Markov join/leave churn.
        churn = config.join_rate > 0.0 or config.leave_rate > 0.0
        if churn:
            denominator = config.join_rate + config.leave_rate
            stationary = config.join_rate / denominator if denominator > 0 else 1.0
            state = rng.random(num_devices) < stationary
            present = np.empty(shape, dtype=bool)
            if num_rounds > 0:
                present[0] = state
                if num_rounds > 1:
                    transitions = rng.random((num_rounds - 1, num_devices))
                    for r in range(1, num_rounds):
                        u = transitions[r - 1]
                        state = np.where(
                            state, u >= config.leave_rate, u < config.join_rate
                        )
                        present[r] = state
        else:
            present = np.ones(shape, dtype=bool)

        # Block 2: Bernoulli per-round dropout.
        if config.dropout_rate > 0.0:
            dropped = rng.random(shape) < config.dropout_rate
        else:
            dropped = np.zeros(shape, dtype=bool)
        online = present & ~dropped

        # Block 3: straggler selection + latency magnitude.
        latency = np.ones(shape, dtype=np.float64)
        if config.straggler_rate > 0.0:
            selected = rng.random(shape) < config.straggler_rate
            magnitude = rng.random(shape)
            latency = np.where(
                selected,
                1.0 + magnitude * (config.straggler_multiplier - 1.0),
                latency,
            )
        if config.round_deadline is not None:
            evicted = online & (latency > config.round_deadline)
        else:
            evicted = np.zeros(shape, dtype=bool)

        # Block 4: message loss for surviving updates.
        if config.message_loss_rate > 0.0:
            lost = online & ~evicted & (rng.random(shape) < config.message_loss_rate)
        else:
            lost = np.zeros(shape, dtype=bool)

        participating = online & ~evicted & ~lost
        return cls(
            config=config,
            num_devices=num_devices,
            num_rounds=num_rounds,
            online=online,
            latency=latency,
            evicted=evicted,
            lost=lost,
            participating=participating,
            present=present,
        )

    # -- per-round accessors -------------------------------------------------

    def online_mask(self, round_index: int) -> np.ndarray:
        return self.online[round_index]

    def latency_row(self, round_index: int) -> np.ndarray:
        return self.latency[round_index]

    def evicted_mask(self, round_index: int) -> np.ndarray:
        return self.evicted[round_index]

    def lost_mask(self, round_index: int) -> np.ndarray:
        return self.lost[round_index]

    def participants(self, round_index: int) -> np.ndarray:
        return self.participating[round_index]

    def present_mask(self, round_index: int) -> np.ndarray:
        return self.present[round_index]

    def churn_events(self):
        """Yield ``(round_index, joins, leaves)`` from the churn chain.

        Diffs consecutive rows of ``present`` against an all-present start
        (the tree is constructed over the full graph), returning sorted
        device-id lists.  This is the bridge from the compiled schedule to
        the maintenance layer: a leave removes the device from the tree, a
        join re-inserts it with its original ego edges.
        """
        previous = np.ones(self.num_devices, dtype=bool)
        for round_index in range(self.num_rounds):
            row = self.present[round_index]
            leaves = [int(d) for d in np.where(previous & ~row)[0]]
            joins = [int(d) for d in np.where(~previous & row)[0]]
            yield round_index, joins, leaves
            previous = row

    # -- aggregates ----------------------------------------------------------

    def is_empty(self) -> bool:
        return self.config.is_empty()

    def participation_fraction(self) -> np.ndarray:
        """Fraction of devices whose update merges, per round."""
        if self.num_rounds == 0:
            return np.zeros(0, dtype=np.float64)
        return self.participating.mean(axis=1)

    def summary(self) -> Dict[str, float]:
        total = float(self.num_rounds * self.num_devices)
        mean_participation = (
            float(self.participating.sum()) / total if total else 1.0
        )
        return {
            "mean_participation": mean_participation,
            "offline_device_rounds": float((~self.online).sum()),
            "evicted_device_rounds": float(self.evicted.sum()),
            "lost_update_rounds": float(self.lost.sum()),
            "mean_latency_multiplier": float(self.latency.mean()) if total else 1.0,
        }

    def fingerprint(self) -> str:
        """Engine fingerprint of the scenario that produced this plan.

        The derived arrays are a pure function of ``(config, num_devices,
        num_rounds)``; the shape comes from the graph and epoch count, which
        already enter every cache key, so fingerprinting the config suffices.
        """
        from ..engine.fingerprint import fingerprint_value  # lazy: avoid cycle

        return fingerprint_value(self.config)

    def schedule_digest(self) -> str:
        """SHA-256 over the derived training-side arrays (replay witness).

        ``present`` is deliberately excluded: it is a pure function of the
        same draws (``online = present & ~dropped``), and keeping the hashed
        tuple fixed preserves every digest recorded before the maintenance
        layer existed.
        """
        hasher = hashlib.sha256()
        hasher.update(f"{self.num_rounds}x{self.num_devices}".encode("utf-8"))
        for array in (self.online, self.latency, self.evicted, self.lost):
            hasher.update(np.ascontiguousarray(array).tobytes())
        return hasher.hexdigest()


def schedule_digest(
    config: FaultScenarioConfig, num_devices: int, num_rounds: int
) -> str:
    """Compile ``config`` and digest the schedule.

    Module-level so it can be shipped across process boundaries as a
    ``CallableItem`` target (``repro.faults.plan:schedule_digest``) to prove
    the replay is bit-for-bit identical in a worker process.
    """
    return FaultPlan.compile(config, num_devices, num_rounds).schedule_digest()
