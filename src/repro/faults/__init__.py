"""Deterministic fault injection for unreliable federations.

The package is deliberately dependency-light: ``config`` and ``plan`` import
only the standard library and numpy so that ``repro.core.config`` can depend
on :class:`FaultScenarioConfig` without creating an import cycle through the
staged engine.
"""

from .config import FaultScenarioConfig
from .plan import FaultPlan, schedule_digest
from .scenarios import default_robustness_scenarios

__all__ = [
    "FaultScenarioConfig",
    "FaultPlan",
    "schedule_digest",
    "default_robustness_scenarios",
]
