"""Content-keyed artifact store with LRU eviction and hit/miss accounting.

The store is the memory of the staged execution engine: every expensive
pipeline stage (partition, tree construction, LDP initialisation, batch
assembly) writes its result here under a key derived from the *content* of
its inputs.  Subsequent runs — another epsilon in a sweep, another backbone,
a repeated experiment — hit the store instead of recomputing, which is what
turns a sweep from O(points x full-pipeline) into O(stages-changed).

Hit/miss counters are tracked per stage name so tests and benchmarks can
assert reuse (e.g. "a 5-point epsilon sweep runs tree construction exactly
once").
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple


@dataclass
class StageStats:
    """Cache counters of one stage."""

    hits: int = 0
    misses: int = 0

    @property
    def total(self) -> int:
        return self.hits + self.misses


@dataclass
class StoredArtifact:
    """One cached stage result plus the side effects needed to replay it.

    ``value`` is the stage's return value.  ``rng_state`` is the bit-generator
    state of the pipeline RNG *after* the stage ran, so a cache hit leaves the
    shared RNG stream exactly where a cold run would have — downstream stages
    (and training) are bit-for-bit identical either way.  ``messages`` /
    ``compute_events`` / ``rounds_delta`` capture the communication-ledger
    delta the stage produced, replayed into the (fresh) environment's ledger
    on a hit so system-side accounting does not depend on cache state.
    """

    value: Any
    rng_state: Optional[dict] = None
    messages: Tuple = ()
    compute_events: Tuple = ()
    bulk_events: Tuple = ()
    rounds_delta: int = 0
    base_round: int = 0


class ArtifactStore:
    """In-memory LRU store mapping content keys to :class:`StoredArtifact`."""

    def __init__(self, max_entries: int = 64) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, StoredArtifact]" = OrderedDict()
        self.stats: Dict[str, StageStats] = {}

    # ------------------------------------------------------------------ #
    # Entry access
    # ------------------------------------------------------------------ #
    def get(self, key: str) -> Optional[StoredArtifact]:
        """Return the artifact stored under ``key`` (refreshing its LRU slot)."""
        artifact = self._entries.get(key)
        if artifact is not None:
            self._entries.move_to_end(key)
        return artifact

    def put(self, key: str, artifact: StoredArtifact) -> None:
        """Store ``artifact`` under ``key``, evicting the LRU entry if full."""
        self._entries[key] = artifact
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        self._entries.clear()
        self.stats.clear()

    # ------------------------------------------------------------------ #
    # Accounting
    # ------------------------------------------------------------------ #
    def _stats_for(self, stage: str) -> StageStats:
        if stage not in self.stats:
            self.stats[stage] = StageStats()
        return self.stats[stage]

    def record_hit(self, stage: str) -> None:
        self._stats_for(stage).hits += 1

    def record_miss(self, stage: str) -> None:
        self._stats_for(stage).misses += 1

    def hit_count(self, stage: str) -> int:
        """Cache hits recorded for ``stage``."""
        return self.stats.get(stage, StageStats()).hits

    def miss_count(self, stage: str) -> int:
        """Cache misses (i.e. actual computations) recorded for ``stage``."""
        return self.stats.get(stage, StageStats()).misses

    def summary(self) -> Dict[str, Dict[str, int]]:
        """Hit/miss counters per stage, as plain dictionaries."""
        return {
            stage: {"hits": stats.hits, "misses": stats.misses}
            for stage, stats in sorted(self.stats.items())
        }


_default_store: Optional[ArtifactStore] = None


def default_store() -> ArtifactStore:
    """The process-wide store shared by all systems that don't pass their own."""
    global _default_store
    if _default_store is None:
        _default_store = ArtifactStore()
    return _default_store


def configure_default_store(max_entries: int) -> ArtifactStore:
    """Replace the process-wide store (e.g. to bound memory differently)."""
    global _default_store
    _default_store = ArtifactStore(max_entries=max_entries)
    return _default_store
