"""Content-keyed artifact store with LRU eviction and hit/miss accounting.

The store is the memory of the staged execution engine: every expensive
pipeline stage (partition, tree construction, LDP initialisation, batch
assembly) writes its result here under a key derived from the *content* of
its inputs.  Subsequent runs — another epsilon in a sweep, another backbone,
a repeated experiment — hit the store instead of recomputing, which is what
turns a sweep from O(points x full-pipeline) into O(stages-changed).

Hit/miss counters are tracked per stage name so tests and benchmarks can
assert reuse (e.g. "a 5-point epsilon sweep runs tree construction exactly
once").
"""

from __future__ import annotations

import hashlib
import io
import os
import pickle
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

import numpy as np

from .. import obs


@dataclass
class StageStats:
    """Cache counters of one stage."""

    hits: int = 0
    misses: int = 0

    @property
    def total(self) -> int:
        return self.hits + self.misses


@dataclass
class StoredArtifact:
    """One cached stage result plus the side effects needed to replay it.

    ``value`` is the stage's return value.  ``rng_state`` is the bit-generator
    state of the pipeline RNG *after* the stage ran, so a cache hit leaves the
    shared RNG stream exactly where a cold run would have — downstream stages
    (and training) are bit-for-bit identical either way.  ``messages`` /
    ``compute_events`` / ``rounds_delta`` capture the communication-ledger
    delta the stage produced, replayed into the (fresh) environment's ledger
    on a hit so system-side accounting does not depend on cache state.
    """

    value: Any
    rng_state: Optional[dict] = None
    messages: Tuple = ()
    compute_events: Tuple = ()
    bulk_events: Tuple = ()
    bulk_messages: Tuple = ()
    rounds_delta: int = 0
    base_round: int = 0


class ArtifactStore:
    """In-memory LRU store mapping content keys to :class:`StoredArtifact`."""

    def __init__(self, max_entries: int = 64) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, StoredArtifact]" = OrderedDict()
        self.stage_stats: Dict[str, StageStats] = {}
        self.evictions = 0

    # ------------------------------------------------------------------ #
    # Entry access
    # ------------------------------------------------------------------ #
    def get(self, key: str) -> Optional[StoredArtifact]:
        """Return the artifact stored under ``key`` (refreshing its LRU slot)."""
        artifact = self._entries.get(key)
        if artifact is not None:
            self._entries.move_to_end(key)
        return artifact

    def put(self, key: str, artifact: StoredArtifact) -> None:
        """Store ``artifact`` under ``key``, evicting the LRU entry if full."""
        self._entries[key] = artifact
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            evicted_key, evicted = self._entries.popitem(last=False)
            self.evictions += 1
            obs.add_counter("store.evictions")
            self._on_evict(evicted_key, evicted)

    def _on_evict(self, key: str, artifact: StoredArtifact) -> None:
        """Hook invoked when an entry leaves memory (spill stores persist it)."""

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        self._entries.clear()
        self.stage_stats.clear()
        self.evictions = 0

    # ------------------------------------------------------------------ #
    # Accounting
    # ------------------------------------------------------------------ #
    def _stats_for(self, stage: str) -> StageStats:
        if stage not in self.stage_stats:
            self.stage_stats[stage] = StageStats()
        return self.stage_stats[stage]

    def record_hit(self, stage: str) -> None:
        self._stats_for(stage).hits += 1

    def record_miss(self, stage: str) -> None:
        self._stats_for(stage).misses += 1

    def hit_count(self, stage: str) -> int:
        """Cache hits recorded for ``stage``."""
        return self.stage_stats.get(stage, StageStats()).hits

    def miss_count(self, stage: str) -> int:
        """Cache misses (i.e. actual computations) recorded for ``stage``."""
        return self.stage_stats.get(stage, StageStats()).misses

    def summary(self) -> Dict[str, Dict[str, int]]:
        """Hit/miss counters per stage, as plain dictionaries."""
        return {
            stage: {"hits": stats.hits, "misses": stats.misses}
            for stage, stats in sorted(self.stage_stats.items())
        }

    def stats(self) -> Dict[str, Any]:
        """One-call snapshot of the store's effectiveness counters.

        ``hits`` / ``misses`` aggregate over stages; ``evictions`` counts
        entries pushed out of the in-memory LRU.  Subclasses extend the
        snapshot (spill traffic, byte footprint) — benchmarks report it per
        run so cache effectiveness is visible next to the timings.
        """
        return {
            "entries": len(self._entries),
            "hits": sum(stats.hits for stats in self.stage_stats.values()),
            "misses": sum(stats.misses for stats in self.stage_stats.values()),
            "evictions": self.evictions,
            "per_stage": self.summary(),
        }


class DiskSpillStore(ArtifactStore):
    """Artifact store that spills over a byte budget to a disk directory.

    Entries live in memory (LRU, like :class:`ArtifactStore`) until the
    estimated in-memory footprint exceeds ``max_bytes``; the least recently
    used entries are then serialised to ``directory`` (one ``.npz`` per
    content key) and dropped from memory.  A later ``get`` — in this process
    or any other process pointed at the same directory — transparently loads
    the entry back, so paper-scale sweeps reuse artifacts across runs, which
    is exactly what content-derived keys make safe.

    Artifacts are pickled and wrapped in a ``uint8`` array inside the
    ``np.savez`` container, so loading never needs ``allow_pickle`` at the
    numpy layer and the format stays a single self-describing file per key.
    Every spill records a SHA-256 checksum of the payload bytes, verified on
    reload: a truncated or corrupted file is *quarantined* (renamed to
    ``*.quarantined`` so ``__contains__`` stops advertising it, preserved
    for post-mortem) and degrades to a cache miss — the artifact is simply
    recomputed, never crashing the worker that hit it.
    """

    # v2 added the payload checksum field; v1 files (or any unreadable
    # version) degrade to a miss and are quarantined like corrupt files.
    _FORMAT_VERSION = 2

    def __init__(
        self,
        directory,
        max_bytes: int = 256 * 1024 * 1024,
        max_entries: int = 256,
    ) -> None:
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        super().__init__(max_entries=max_entries)
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max_bytes
        self._sizes: Dict[str, int] = {}
        self._total_bytes = 0
        self.spill_writes = 0
        self.spill_loads = 0
        self.integrity_failures = 0
        # Keys this instance has durably published (written or successfully
        # loaded).  Only they may skip the atomic re-publish on eviction:
        # a bare ``path.exists()`` is not a guarantee — another process may
        # have unlinked the file (corruption cleanup) between our check and
        # a reader's open.
        self._published: set = set()

    # ------------------------------------------------------------------ #
    # Entry access
    # ------------------------------------------------------------------ #
    def get(self, key: str) -> Optional[StoredArtifact]:
        artifact = super().get(key)
        if artifact is not None:
            return artifact
        path = self._path_for(key)
        if not path.exists():
            return None
        artifact = self._load(path, key)
        if artifact is not None:
            self.spill_loads += 1
            obs.add_counter("store.spill_loads")
            self.put(key, artifact)
        return artifact

    def put(self, key: str, artifact: StoredArtifact) -> None:
        previous = self._sizes.pop(key, 0)
        self._total_bytes -= previous
        size = self._estimate_bytes(artifact)
        self._sizes[key] = size
        self._total_bytes += size
        super().put(key, artifact)
        self._spill_over_budget()

    def __contains__(self, key: str) -> bool:
        return super().__contains__(key) or self._path_for(key).exists()

    def clear(self) -> None:
        """Drop memory entries, counters *and* this directory's spill files."""
        super().clear()
        self._sizes.clear()
        self._total_bytes = 0
        self._published.clear()
        self.spill_writes = 0
        self.spill_loads = 0
        self.integrity_failures = 0
        for pattern in ("*.npz", "*.npz.quarantined"):
            for path in self.directory.glob(pattern):
                try:
                    path.unlink()
                except OSError:
                    pass

    @property
    def in_memory_bytes(self) -> int:
        """Estimated footprint of the entries currently held in memory."""
        return self._total_bytes

    def stats(self) -> Dict[str, Any]:
        """Extend the base snapshot with spill traffic and byte footprint."""
        snapshot = super().stats()
        snapshot.update(
            spill_writes=self.spill_writes,
            spill_loads=self.spill_loads,
            integrity_failures=self.integrity_failures,
            in_memory_bytes=self._total_bytes,
        )
        return snapshot

    # ------------------------------------------------------------------ #
    # Spill mechanics
    # ------------------------------------------------------------------ #
    def _on_evict(self, key: str, artifact: StoredArtifact) -> None:
        self._total_bytes -= self._sizes.pop(key, 0)
        self._write(key, artifact)

    def _spill_over_budget(self) -> None:
        while self._total_bytes > self.max_bytes and self._entries:
            key, artifact = self._entries.popitem(last=False)
            self.evictions += 1
            obs.add_counter("store.evictions")
            self._on_evict(key, artifact)

    def _write(self, key: str, artifact: StoredArtifact) -> None:
        path = self._path_for(key)
        if key in self._published and path.exists():
            # Entries are immutable under their content key and this
            # instance already published (or verified) the bytes — the file
            # on disk is current (e.g. a reloaded entry being evicted
            # again).  Any key we did *not* publish ourselves is re-written
            # below even if a file exists: the replace is atomic and
            # content-identical, so racing writers are harmless, while
            # skipping on a stale ``exists()`` observation could strand the
            # key with no file at all.
            return
        payload_bytes = pickle.dumps(artifact, protocol=pickle.HIGHEST_PROTOCOL)
        payload = np.frombuffer(payload_bytes, dtype=np.uint8)
        checksum = hashlib.sha256(payload_bytes).digest()
        buffer = io.BytesIO()
        np.savez(
            buffer,
            version=np.int64(self._FORMAT_VERSION),
            key=np.frombuffer(key.encode("utf-8"), dtype=np.uint8),
            checksum=np.frombuffer(checksum, dtype=np.uint8),
            payload=payload,
        )
        # Per-process temp name: concurrent writers of one key (two sweeps,
        # a scheduler's worker pool) must not interleave into one file; the
        # final rename publishes a complete file atomically, so readers in
        # other processes see either the previous complete file or this one,
        # never a torn write (stress-tested by
        # ``tests/test_store_concurrency.py``).
        temporary = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        temporary.write_bytes(buffer.getvalue())
        temporary.replace(path)  # atomic publish for cross-process readers
        self._published.add(key)
        self.spill_writes += 1
        obs.add_counter("store.spill_writes")
        obs.add_counter("store.spill_bytes", len(payload_bytes))

    def persist(self, key: str) -> bool:
        """Force-publish the entry under ``key`` to disk (without evicting).

        Returns ``True`` when the key is durably on disk afterwards.  This
        is the hand-off primitive of the parallel runtime: the scheduler
        persists the shared pipeline prefix (and workers persist their
        results) so any process pointed at the directory can hydrate them.
        """
        artifact = self._entries.get(key)
        if artifact is not None:
            self._write(key, artifact)
            return True
        return self._path_for(key).exists()

    def _load(self, path: Path, key: str) -> Optional[StoredArtifact]:
        usable = False
        try:
            with np.load(path) as archive:
                version_ok = int(archive["version"]) == self._FORMAT_VERSION
                stored_key = bytes(archive["key"].tobytes()).decode("utf-8")
                if version_ok and stored_key == key:
                    payload_bytes = archive["payload"].tobytes()
                    checksum = bytes(archive["checksum"].tobytes())
                    if hashlib.sha256(payload_bytes).digest() != checksum:
                        return None  # bit rot / tampering inside a valid zip
                    artifact = pickle.loads(payload_bytes)
                    usable = True
                    self._published.add(key)
                    return artifact
                return None
        except Exception:
            return None
        finally:
            if not usable:
                # Any unusable file — truncated archive, checksum mismatch,
                # stale format or pickle from an older revision, digest
                # collision — degrades to a cache miss AND is quarantined
                # (renamed out of the ``*.npz`` namespace), so a later
                # eviction re-publishes the key, ``__contains__`` stops
                # advertising an unloadable entry, and the corrupt bytes
                # survive for post-mortem instead of being destroyed.
                self._published.discard(key)
                self.integrity_failures += 1
                obs.add_counter("store.integrity_failures")
                try:
                    path.replace(path.with_name(f"{path.name}.quarantined"))
                except OSError:
                    try:
                        path.unlink()
                    except OSError:
                        pass

    def _path_for(self, key: str) -> Path:
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()[:40]
        return self.directory / f"{digest}.npz"

    @staticmethod
    def _estimate_bytes(artifact: StoredArtifact) -> int:
        """Cheap footprint estimate: array buffers plus a per-object floor."""
        seen: set = set()
        total = 0
        stack = [artifact.value, artifact.messages, artifact.compute_events,
                 artifact.bulk_events, artifact.bulk_messages]
        while stack:
            obj = stack.pop()
            identity = id(obj)
            if identity in seen:
                continue
            seen.add(identity)
            if isinstance(obj, np.ndarray):
                total += obj.nbytes
            elif isinstance(obj, dict):
                total += 64 * len(obj)
                stack.extend(obj.keys())
                stack.extend(obj.values())
            elif isinstance(obj, (list, tuple, set, frozenset)):
                total += 16 * len(obj)
                stack.extend(obj)
            elif isinstance(obj, (bytes, str)):
                total += len(obj)
            elif hasattr(obj, "__dict__"):
                total += 64
                stack.extend(vars(obj).values())
            elif hasattr(obj, "__slots__"):
                total += 64
                stack.extend(
                    getattr(obj, slot)
                    for slot in obj.__slots__
                    if hasattr(obj, slot)
                )
            else:
                total += 32
        return total


_default_store: Optional[ArtifactStore] = None


def default_store() -> ArtifactStore:
    """The process-wide store shared by all systems that don't pass their own."""
    global _default_store
    if _default_store is None:
        _default_store = ArtifactStore()
    return _default_store


def configure_default_store(max_entries: int) -> ArtifactStore:
    """Replace the process-wide store (e.g. to bound memory differently)."""
    global _default_store
    _default_store = ArtifactStore(max_entries=max_entries)
    return _default_store
