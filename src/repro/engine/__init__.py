"""Staged execution engine: pipeline, stages and the content-keyed store.

See ``docs/architecture.md`` for the stage graph, the key-derivation rules
and the replay semantics that make cache hits bit-for-bit identical to cold
runs.
"""

from .fingerprint import fingerprint_array, fingerprint_graph, fingerprint_value, stage_key
from .pipeline import Pipeline, build_lumos_pipeline
from .stages import (
    EmbeddingInitStage,
    LDPDrawsStage,
    PartitionStage,
    PipelineContext,
    Stage,
    TreeBatchStage,
    TreeConstructionStage,
    lumos_stages,
)
from .store import (
    ArtifactStore,
    DiskSpillStore,
    StageStats,
    StoredArtifact,
    configure_default_store,
    default_store,
)

__all__ = [
    "ArtifactStore",
    "DiskSpillStore",
    "StageStats",
    "StoredArtifact",
    "configure_default_store",
    "default_store",
    "Pipeline",
    "build_lumos_pipeline",
    "PipelineContext",
    "Stage",
    "PartitionStage",
    "TreeConstructionStage",
    "LDPDrawsStage",
    "EmbeddingInitStage",
    "TreeBatchStage",
    "lumos_stages",
    "fingerprint_array",
    "fingerprint_graph",
    "fingerprint_value",
    "stage_key",
]
