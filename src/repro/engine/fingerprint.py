"""Content fingerprints for artifact keys.

Stage keys in the execution engine are *content-derived*: two pipeline runs
that would compute the same value map to the same key, regardless of which
``LumosSystem`` instance (or which process-lifetime order) issues them.  The
helpers here hash the three kinds of content a stage key is built from:

* numpy arrays and :class:`~repro.graph.graph.Graph` objects (data),
* (frozen) dataclass configuration objects (hyper-parameters),
* plain python scalars / containers.

Graph fingerprints are memoised per graph object (graphs are immutable value
objects), so sweeps that re-use one graph pay the hashing cost once.
"""

from __future__ import annotations

import hashlib
from dataclasses import fields, is_dataclass
from enum import Enum
from typing import Any

import numpy as np

from ..caching import IdentityCache

_graph_cache = IdentityCache()


def _hash_bytes(*parts: bytes) -> str:
    """Hash parts with unambiguous framing (length-prefixed, so that moving
    bytes between adjacent parts always changes the digest)."""
    digest = hashlib.sha256()
    for part in parts:
        digest.update(len(part).to_bytes(8, "little"))
        digest.update(part)
    return digest.hexdigest()[:24]


def _array_parts(array: np.ndarray) -> tuple:
    array = np.ascontiguousarray(array)
    return (str(array.dtype).encode(), repr(array.shape).encode(), array.tobytes())


def fingerprint_array(array: np.ndarray) -> str:
    """Stable fingerprint of a numpy array (dtype, shape and raw bytes)."""
    return _hash_bytes(*_array_parts(array))


def fingerprint_value(value: Any) -> str:
    """Fingerprint an arbitrary (config-like) python value."""
    return _hash_bytes(_canonical(value).encode())


def stage_key(*parts: Any) -> str:
    """Join key components into a stage cache key (``/``-separated).

    Keys must contain *every* input that changes the stage's output and
    nothing else — an extra component needlessly busts the cache across
    sweeps (the pre-PR ``tree_batch`` keyed on epsilon was exactly that bug),
    a missing one aliases different results.  Centralising the join keeps the
    separator discipline in one place.
    """
    return "/".join(str(part) for part in parts)


def _canonical(value: Any) -> str:
    """Render ``value`` into a canonical string for hashing."""
    if value is None or isinstance(value, (bool, int, str)):
        return repr(value)
    if isinstance(value, float):
        return repr(float(value))
    if isinstance(value, Enum):
        return f"{type(value).__name__}.{value.name}"
    if isinstance(value, np.ndarray):
        return f"ndarray:{fingerprint_array(value)}"
    if isinstance(value, (np.integer, np.floating)):
        return repr(value.item())
    if is_dataclass(value) and not isinstance(value, type):
        body = ",".join(
            f"{f.name}={_canonical(getattr(value, f.name))}" for f in fields(value)
        )
        return f"{type(value).__name__}({body})"
    if isinstance(value, dict):
        body = ",".join(
            f"{_canonical(k)}:{_canonical(v)}" for k, v in sorted(value.items(), key=repr)
        )
        return f"{{{body}}}"
    if isinstance(value, (list, tuple, set, frozenset)):
        items = sorted(value, key=repr) if isinstance(value, (set, frozenset)) else value
        return f"{type(value).__name__}[{','.join(_canonical(v) for v in items)}]"
    raise TypeError(f"cannot fingerprint value of type {type(value).__name__}")


def fingerprint_graph(graph) -> str:
    """Fingerprint a :class:`~repro.graph.graph.Graph` (memoised per object)."""
    cached = _graph_cache.get(graph)
    if cached is not None:
        return cached
    parts = [str(graph.num_nodes).encode()]
    parts.extend(_array_parts(graph.edges))
    parts.extend(_array_parts(graph.features))
    if graph.labels is not None:
        parts.append(b"labels")
        parts.extend(_array_parts(graph.labels))
    return _graph_cache.put(graph, _hash_bytes(*parts))
