"""The Lumos pipeline stages.

Each stage wraps one expensive phase of the Lumos pipeline and knows three
things:

* ``key(context)`` — a content-derived cache key (inputs that change the
  stage's output are part of the key; nothing else is);
* ``compute(context)`` — run the phase for real, mutating the context's
  environment / RNG exactly like the eager pipeline did;
* ``replay(context, value)`` — re-install a cached result into a fresh
  context cheaply (apply the assignment, store received features, ...).

The surrounding :class:`~repro.engine.pipeline.Pipeline` takes care of the
parts every stage shares: RNG state capture/restore and communication-ledger
delta capture/replay, which together make a cache hit observably identical
to a cold computation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Optional

import numpy as np

from ..federation.simulator import FederatedEnvironment
from ..graph.ego import partition_node_level
from ..graph.graph import Graph
from .fingerprint import fingerprint_graph, fingerprint_value, stage_key

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from ..core.config import LumosConfig

# NOTE: repro.core is imported lazily inside the stage methods — the core
# package itself wires LumosSystem through this engine, so a module-level
# import here would be circular.


@dataclass
class PipelineContext:
    """Mutable state threaded through one pipeline run.

    ``rng`` is the single shared random stream of the deployment (the same
    discipline as the eager pipeline: construction, LDP initialisation and
    training consume it in order).  ``artifacts`` and ``keys`` collect each
    completed stage's value and cache key.
    """

    graph: Graph
    config: "LumosConfig"
    rng: np.random.Generator
    environment: Optional[FederatedEnvironment] = None
    artifacts: Dict[str, Any] = field(default_factory=dict)
    keys: Dict[str, str] = field(default_factory=dict)


class Stage:
    """One cacheable phase of the pipeline."""

    name: str = "stage"

    def key(self, context: PipelineContext) -> str:
        raise NotImplementedError

    def compute(self, context: PipelineContext) -> Any:
        raise NotImplementedError

    def replay(self, context: PipelineContext, value: Any) -> Any:
        """Install a cached ``value`` into ``context``.

        May return a replacement value derived from the cached one for this
        run (e.g. the tree batch re-bound to the current LDP exchange);
        returning ``None`` keeps the cached value.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class PartitionStage(Stage):
    """Node-level partition of the global graph into ego networks.

    The partition depends only on the graph; the (fresh, per-run) federated
    environment is rebuilt from it on both the compute and the replay path,
    because devices carry mutable per-run state that must not be shared
    between systems.
    """

    name = "partition"

    def key(self, context: PipelineContext) -> str:
        return stage_key(
            "partition",
            fingerprint_graph(context.graph),
            f"seed={context.config.seed}",
        )

    def compute(self, context: PipelineContext) -> Any:
        partition = partition_node_level(context.graph)
        self.replay(context, partition)
        return partition

    def replay(self, context: PipelineContext, value: Any) -> None:
        context.environment = FederatedEnvironment.from_partition(
            value, seed=context.config.seed
        )


class TreeConstructionStage(Stage):
    """Heterogeneity-aware tree construction (greedy + MCMC balancing)."""

    name = "construction"

    def key(self, context: PipelineContext) -> str:
        return stage_key(
            "construction",
            context.keys["partition"],
            fingerprint_value(context.config.constructor),
        )

    def compute(self, context: PipelineContext) -> Any:
        from ..core.constructor import TreeConstructor

        constructor = TreeConstructor(context.config.constructor, rng=context.rng)
        return constructor.construct(context.environment)

    def replay(self, context: PipelineContext, value: Any) -> None:
        context.environment.apply_assignment(value.assignment.as_lists())


class LDPDrawsStage(Stage):
    """Epsilon-independent randomness of the LDP feature exchange.

    The 1-bit mechanism's bin partitions and uniform draws depend only on
    the construction (who sends to whom, with what workload) and on the RNG
    stream — not on epsilon.  Splitting them out makes an epsilon sweep pay
    the draws once; the per-point ``ldp_init`` stage is a cheap threshold.
    """

    name = "ldp_draws"

    def key(self, context: PipelineContext) -> str:
        return stage_key("ldpdraws", context.keys["construction"])

    def compute(self, context: PipelineContext) -> Any:
        from ..core.embedding_init import LDPEmbeddingInitializer
        from ..crypto.ldp import FeatureBounds

        initializer = LDPEmbeddingInitializer(
            epsilon=context.config.trainer.epsilon,
            bounds=FeatureBounds(0.0, 1.0),
            rng=context.rng,
        )
        return initializer.draw(
            context.environment, context.artifacts["construction"].assignment
        )


class EmbeddingInitStage(Stage):
    """LDP feature exchange: thresholds the shared draws for one epsilon."""

    name = "ldp_init"

    def key(self, context: PipelineContext) -> str:
        return stage_key(
            "ldp",
            context.keys["ldp_draws"],
            f"epsilon={float(context.config.trainer.epsilon)!r}",
        )

    def compute(self, context: PipelineContext) -> Any:
        from ..core.embedding_init import LDPEmbeddingInitializer
        from ..crypto.ldp import FeatureBounds

        initializer = LDPEmbeddingInitializer(
            epsilon=context.config.trainer.epsilon,
            bounds=FeatureBounds(0.0, 1.0),
            rng=context.rng,
        )
        return initializer.threshold(
            context.environment, context.artifacts["ldp_draws"]
        )

    def replay(self, context: PipelineContext, value: Any) -> None:
        devices = context.environment.devices
        for receiver, per_sender in value.received_features.items():
            device = devices[receiver]
            for sender, feature in per_sender.items():
                device.store_received_feature(sender, feature)


class TreeBatchStage(Stage):
    """Assembly of the block-diagonal union graph the trainer runs on.

    Keyed on the construction and the trainer backend — the LDP features
    enter the batch as a plain row-fill, so across an epsilon sweep the
    cached structure is re-bound to the current point's exchange on replay
    instead of being reassembled (``TreeBatch.with_initialization``).  The
    backend participates in the key because the artifact carries
    backend-prepared operators (the folded pool/propagation chain), and
    cached artifacts must never mix backends.
    """

    name = "tree_batch"

    def key(self, context: PipelineContext) -> str:
        return stage_key(
            "batch",
            context.keys["construction"],
            f"d={context.graph.num_features}",
            f"backend={context.config.trainer.backend}",
        )

    def compute(self, context: PipelineContext) -> Any:
        from ..core.trainer import TreeBatch
        from ..nn.backend import use_backend

        batch = TreeBatch.build(
            context.environment,
            context.artifacts["construction"],
            context.artifacts["ldp_init"],
            context.graph.num_features,
        )
        # Prewarm the pooling operators on the cached artifact: every sweep
        # point re-bound via with_initialization shares them (fold_chain runs
        # once per construction, not once per epsilon).
        trainer_config = context.config.trainer
        if trainer_config.fold_propagation:
            if trainer_config.backend == "auto":
                batch.folded_pool_adjacency()
            else:
                with use_backend(trainer_config.backend):
                    batch.folded_pool_adjacency()
            batch.pool_row_sums()
        return batch

    def replay(self, context: PipelineContext, value: Any) -> Any:
        return value.with_initialization(context.artifacts["ldp_init"])


def lumos_stages() -> list:
    """The canonical stage sequence of a Lumos deployment."""
    return [
        PartitionStage(),
        TreeConstructionStage(),
        LDPDrawsStage(),
        EmbeddingInitStage(),
        TreeBatchStage(),
    ]
