"""Staged execution pipeline with content-keyed artifact reuse.

A :class:`Pipeline` runs an ordered list of :class:`~repro.engine.stages.Stage`
objects over a :class:`~repro.engine.stages.PipelineContext`, consulting an
:class:`~repro.engine.store.ArtifactStore` before every stage:

* **miss** — the stage computes for real; the pipeline records the stage's
  RNG consumption and communication-ledger delta alongside the value;
* **hit** — the stage's cached value is replayed: the ledger delta is
  appended to the fresh environment's ledger, the shared RNG is fast-forwarded
  to the post-stage state, and the stage's ``replay`` hook re-installs cheap
  derived state (assignments, received features).

The two bookkeeping steps are what make reuse *transparent*: a downstream
consumer (the trainer, the ledger summary, a later stage) cannot distinguish
a warm run from a cold one — results are bit-for-bit identical.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from .. import obs
from ..federation.events import ComputeEvent
from .stages import PipelineContext, Stage, lumos_stages
from .store import ArtifactStore, StoredArtifact, default_store


class Pipeline:
    """Runs stages in order with artifact reuse."""

    def __init__(self, stages: List[Stage], store: Optional[ArtifactStore] = None) -> None:
        if not stages:
            raise ValueError("a pipeline needs at least one stage")
        names = [stage.name for stage in stages]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate stage names: {names}")
        self.stages = list(stages)
        self.store = store if store is not None else default_store()

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(self, context: PipelineContext, through: Optional[str] = None) -> PipelineContext:
        """Execute stages (up to and including ``through``) over ``context``.

        Stages already present in ``context.artifacts`` are skipped, so a
        context can be advanced incrementally (``through="construction"``
        now, ``through="tree_batch"`` later) without recomputation.
        """
        if through is not None and all(stage.name != through for stage in self.stages):
            raise KeyError(f"unknown stage '{through}'")
        for stage in self.stages:
            if stage.name not in context.artifacts:
                self._run_stage(stage, context)
            if stage.name == through:
                break
        return context

    def stage_keys(self, context: PipelineContext) -> "dict[str, str]":
        """Derive every stage's cache key *without* computing any artifact.

        Stage keys are functions of the context's graph, config and the
        preceding stages' keys only — never of computed values — so the full
        fingerprint chain of a run can be known up front.  This is what the
        parallel runtime (:mod:`repro.runtime`) plans with: work items whose
        chains collide dedupe to one execution, and the longest prefix shared
        between items is computed once and handed to workers through a
        :class:`~repro.engine.store.DiskSpillStore`.

        ``context.keys`` is filled in as a side effect (same slot the
        executing pipeline uses), and the mapping is returned in stage order.
        """
        for stage in self.stages:
            context.keys[stage.name] = stage.key(context)
        return {stage.name: context.keys[stage.name] for stage in self.stages}

    def _run_stage(self, stage: Stage, context: PipelineContext) -> None:
        with obs.span(f"engine.stage.{stage.name}") as trace_span:
            key = stage.key(context)
            artifact = self.store.get(key)
            if artifact is not None:
                self.store.record_hit(stage.name)
                trace_span["attributes"]["cache"] = "hit"
                obs.add_counter(f"engine.stage.{stage.name}.hits")
                # A stage may derive a per-run value from the cached one (e.g.
                # the tree batch re-binds the current run's LDP features); when
                # replay returns None the cached value is used as-is.
                replayed = stage.replay(context, artifact.value)
                self._replay_side_effects(context, artifact)
                value = artifact.value if replayed is None else replayed
            else:
                self.store.record_miss(stage.name)
                trace_span["attributes"]["cache"] = "miss"
                obs.add_counter(f"engine.stage.{stage.name}.misses")
                marks = self._ledger_marks(context)
                value = stage.compute(context)
                artifact = self._capture(context, value, marks)
                self.store.put(key, artifact)
        context.artifacts[stage.name] = value
        context.keys[stage.name] = key

    # ------------------------------------------------------------------ #
    # Side-effect capture / replay
    # ------------------------------------------------------------------ #
    @staticmethod
    def _ledger_marks(context: PipelineContext):
        environment = context.environment
        if environment is None:
            return (0, 0, 0, 0, 0)
        ledger = environment.ledger
        return (
            len(ledger.messages),
            len(ledger.compute_events),
            len(ledger.bulk_compute_events),
            len(ledger.bulk_message_events),
            ledger.current_round,
        )

    @staticmethod
    def _capture(context: PipelineContext, value, marks) -> StoredArtifact:
        (
            messages_before,
            events_before,
            bulk_before,
            bulk_messages_before,
            round_before,
        ) = marks
        ledger = context.environment.ledger if context.environment is not None else None
        messages: tuple = ()
        compute_events: tuple = ()
        bulk_events: tuple = ()
        bulk_messages: tuple = ()
        rounds_delta = 0
        if ledger is not None:
            messages = tuple(ledger.messages[messages_before:])
            compute_events = tuple(
                (event.device, event.cost, event.round_index, event.description)
                for event in ledger.compute_events[events_before:]
            )
            bulk_events = tuple(ledger.bulk_compute_events[bulk_before:])
            bulk_messages = tuple(ledger.bulk_message_events[bulk_messages_before:])
            rounds_delta = ledger.current_round - round_before
        return StoredArtifact(
            value=value,
            rng_state=context.rng.bit_generator.state,
            messages=messages,
            compute_events=compute_events,
            bulk_events=bulk_events,
            bulk_messages=bulk_messages,
            rounds_delta=rounds_delta,
            base_round=round_before,
        )

    @staticmethod
    def _replay_side_effects(context: PipelineContext, artifact: StoredArtifact) -> None:
        if artifact.rng_state is not None:
            context.rng.bit_generator.state = artifact.rng_state
        environment = context.environment
        if environment is None:
            return
        ledger = environment.ledger
        offset = ledger.current_round - artifact.base_round
        if offset == 0:
            ledger.messages.extend(artifact.messages)
        else:
            ledger.messages.extend(
                dataclasses.replace(message, round_index=message.round_index + offset)
                for message in artifact.messages
            )
        ledger.compute_events.extend(
            ComputeEvent(
                device=device,
                cost=cost,
                round_index=round_index + offset,
                description=description,
            )
            for device, cost, round_index, description in artifact.compute_events
        )
        if offset == 0:
            ledger.bulk_compute_events.extend(artifact.bulk_events)
            ledger.bulk_message_events.extend(artifact.bulk_messages)
        else:
            ledger.bulk_compute_events.extend(
                dataclasses.replace(event, round_index=event.round_index + offset)
                for event in artifact.bulk_events
            )
            ledger.bulk_message_events.extend(
                dataclasses.replace(event, round_indices=event.round_indices + offset)
                for event in artifact.bulk_messages
            )
        ledger.current_round += artifact.rounds_delta


def build_lumos_pipeline(store: Optional[ArtifactStore] = None) -> Pipeline:
    """The standard Lumos pipeline: partition -> trees -> LDP -> batch."""
    return Pipeline(lumos_stages(), store=store)
