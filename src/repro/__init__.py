"""Reproduction of *Lumos: Heterogeneity-aware Federated Graph Learning over
Decentralized Devices* (ICDE 2023).

Top-level subpackages
---------------------
``repro.nn``
    Numpy autograd / neural-network substrate (replaces PyTorch).
``repro.graph``
    Graph data structures, ego-network partition, synthetic datasets, splits.
``repro.gnn``
    GCN / GAT layers, encoders and task heads.
``repro.crypto``
    Privacy substrate: local differential privacy encoders and a simulated
    CrypTFlow2-style secure integer comparison protocol.
``repro.federation``
    Synchronous federated runtime simulator with communication accounting.
``repro.core``
    Lumos itself: heterogeneity-aware tree constructor and tree-based GNN
    trainer.
``repro.engine``
    Staged execution pipeline with a content-keyed artifact store (stage
    reuse across sweeps and repeated runs).
``repro.baselines``
    Centralized GNN, LPGNN, and the naive federated GNN baseline.
``repro.runtime``
    Parallel execution runtime: a multi-process scheduler of independent
    engine work items (sweep points, ablation arms, baselines) with
    bit-for-bit deterministic merging.
``repro.eval``
    Metrics, experiment runner and per-figure reproduction entry points.
"""

__version__ = "1.0.0"

__all__ = [
    "nn",
    "graph",
    "gnn",
    "crypto",
    "federation",
    "core",
    "engine",
    "baselines",
    "runtime",
    "eval",
]
