"""Parallel execution runtime: a multi-process scheduler over the engine.

The engine (:mod:`repro.engine`) made the expensive pipeline phases
content-keyed and replayable; this package makes them *schedulable*.
Independent engine invocations — epsilon-sweep points, ablation arms,
baseline comparisons, figure grids — become picklable
:class:`~repro.runtime.items.WorkItem` objects collected in a deduplicating
:class:`~repro.runtime.plan.WorkPlan`; an
:class:`~repro.runtime.executor.Executor` then runs the plan either inline
(:class:`~repro.runtime.executor.SerialExecutor`) or across a worker pool
(:class:`~repro.runtime.executor.ProcessExecutor`) that computes the shared
pipeline prefix once, hands it to workers through a
:class:`~repro.engine.store.DiskSpillStore`, retries crashed or timed-out
items, and merges results deterministically — bit-for-bit identical to the
serial path.  ``docs/architecture.md`` §8 describes the contracts.
"""

from .channel import (
    ChannelClosed,
    ChannelError,
    ChannelStats,
    ChannelTimeout,
    FrameCorruption,
    FrameKind,
    PartyChannel,
    channel_pair,
)
from .executor import (
    DEFAULT_BACKOFF_BASE,
    DEFAULT_STORE_BYTES,
    Executor,
    FailedAttempt,
    ItemRecord,
    ProcessExecutor,
    RuntimeReport,
    SerialExecutor,
    WorkItemFailure,
    backoff_delay,
    resolve_executor,
)
from .items import (
    BaselineItem,
    CallableItem,
    GraphSpec,
    LumosItem,
    WorkItem,
    execute_item,
)
from .plan import WarmupRun, WorkPlan, shared_prefix_plan
from .worker import ChaosConfig, chaos_action

__all__ = [
    "BaselineItem",
    "CallableItem",
    "ChannelClosed",
    "ChannelError",
    "ChannelStats",
    "ChannelTimeout",
    "ChaosConfig",
    "DEFAULT_BACKOFF_BASE",
    "DEFAULT_STORE_BYTES",
    "Executor",
    "FailedAttempt",
    "FrameCorruption",
    "FrameKind",
    "GraphSpec",
    "ItemRecord",
    "LumosItem",
    "PartyChannel",
    "ProcessExecutor",
    "RuntimeReport",
    "SerialExecutor",
    "WarmupRun",
    "WorkItem",
    "WorkItemFailure",
    "WorkPlan",
    "backoff_delay",
    "channel_pair",
    "chaos_action",
    "execute_item",
    "resolve_executor",
    "shared_prefix_plan",
]
